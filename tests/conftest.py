"""Shared test configuration: run every campaign under the auditor.

The invariant auditor (:mod:`repro.core.audit`) is opt-in for library
users (``CampaignSpec(audit=...)`` / ``repro --audit``), but the test
suite flips the module default so every campaign executed by any test
is audited — each of the ~700 tests doubles as a conservation, billing
and delivery-semantics check, and a regression that breaks an invariant
fails loudly even if no assertion looks at the affected meter.

Specs that set ``audit=False`` explicitly still opt out (the tri-state
``CampaignSpec.audit`` beats the module default), as do testbeds built
directly with ``Testbed(audit=False)`` — the default only moves the
*unspecified* case.
"""

import pytest

from repro.core import audit as audit_mod


@pytest.fixture(autouse=True)
def audit_by_default():
    previous = audit_mod.DEFAULT_AUDIT
    audit_mod.DEFAULT_AUDIT = True
    try:
        yield
    finally:
        audit_mod.DEFAULT_AUDIT = previous
