"""Unit tests for the shared workload objects behind the deployments."""

import pytest

from repro.core.deployments.ml import MLWorkload, ml_workload
from repro.core.deployments.video import VideoWorkload, video_workload
from repro.storage.payload import KB, MB


@pytest.fixture(scope="module")
def workload():
    return ml_workload("small", seed=0)


def test_ml_workload_rejects_unknown_scale():
    with pytest.raises(ValueError, match="scale"):
        MLWorkload("medium")


def test_ml_workload_cache_by_scale_and_seed(workload):
    assert ml_workload("small", seed=0) is workload
    assert ml_workload("small", seed=1) is not workload


def test_ml_workload_split_sizes(workload):
    # 200 rows split 80/20.
    assert workload.train_dataset.n_rows == 160
    assert workload.test_dataset.n_rows == 40


def test_ml_workload_payload_sizes_are_consistent(workload):
    trained = workload.trained
    n_features = 14 + trained.encoder.n_output_features
    assert workload.prepared_bytes == 160 * n_features * 8
    assert workload.reduced_bytes == 160 * trained.pca.n_components * 8
    assert workload.best_model_bytes == trained.best.payload_size
    assert workload.dataset_bytes > 10 * KB


def test_ml_workload_candidate_lookup(workload):
    result = workload.candidate_result("rf-deep")
    assert result.candidate.name == "rf-deep"
    with pytest.raises(KeyError):
        workload.candidate_result("svm-9000")


def test_ml_workload_summary_is_payload_safe(workload):
    from repro.storage.payload import estimate_size
    summary = workload.summary_of("knn-5")
    assert summary["name"] == "knn-5"
    assert summary["error"] > 0
    assert estimate_size(summary) < 64 * KB


# -- video ------------------------------------------------------------------------

def test_video_workload_rejects_bad_workers():
    with pytest.raises(ValueError):
        VideoWorkload(n_workers=0)


def test_video_workload_total_is_about_100mb():
    workload = video_workload(n_workers=4, seed=0)
    assert 90 * MB <= workload.video.total_bytes <= 110 * MB
    assert workload.total_mb == pytest.approx(
        workload.video.total_bytes / MB)


def test_video_workload_chunks_partition_frames():
    workload = video_workload(n_workers=10, seed=0)
    chunks = workload.chunks()
    assert len(chunks) == 10
    assert sum(chunk.n_frames for chunk in chunks) == \
        workload.video.n_frames
    override = workload.chunks(5)
    assert len(override) == 5


def test_video_detect_sample_is_deterministic():
    workload = video_workload(n_workers=4, seed=0)
    first = workload.detect_sample(start_frame=100)
    second = workload.detect_sample(start_frame=100)
    assert first == second
    for frame_index, _, _ in first:
        assert 100 <= frame_index < 100 + workload.detect_frames_per_chunk


def test_video_workload_cache_key_includes_kwargs():
    base = video_workload(n_workers=4, seed=0)
    assert video_workload(n_workers=4, seed=0) is base
    other = video_workload(n_workers=4, seed=0, detect_frames_per_chunk=1)
    assert other is not base
