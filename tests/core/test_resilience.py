"""Resilience campaigns: determinism, SLO verdicts, mitigation plumbing.

The acceptance bar mirrors the reliability suite: the same
``(seed, FaultPlan, MitigationPolicy)`` must yield a bit-identical
resilience report whether the campaign runs serially, in a worker pool,
or is replayed from the on-disk cache — and every audited pass must
finish with the invariant auditor clean.
"""

import json

import pytest

from repro.core import (
    CampaignOutcome,
    CampaignSpec,
    CircuitOpenError,
    FaultPlan,
    MitigationEngine,
    MitigationPolicy,
    ParallelRunner,
    ResilienceSummary,
    ResultCache,
    Testbed,
    execute_spec,
)
from repro.core.cache import cache_key
from repro.core.persistence import (
    campaign_to_dict,
    cost_report_to_dict,
    resilience_from_dict,
    resilience_to_dict,
)

pytestmark = [pytest.mark.resilience, pytest.mark.faults]


def outcome_blob(outcome: CampaignOutcome) -> str:
    """Every observable of a resilience outcome, as one string."""
    return json.dumps({
        "campaign": campaign_to_dict(outcome.campaign),
        "cost": cost_report_to_dict(outcome.cost),
        "resilience": (resilience_to_dict(outcome.resilience)
                       if outcome.resilience is not None else None),
    }, sort_keys=True, default=repr)


PLAN = FaultPlan(outage_windows=((60.0, 45.0),), outage_mode="crash",
                 retry_max_attempts=2, retry_interval_s=1.0)
POLICY = MitigationPolicy(breaker_failure_threshold=4,
                          breaker_recovery_timeout_s=20.0,
                          hedge_after_s=30.0, max_hedges=1,
                          deadline_factor=8.0, deadline_min_s=10.0,
                          request_timeout_s=240.0)


def make_spec(deployment="Az-Dorch", seed=83, **overrides):
    kwargs = dict(deployment=deployment, workload="ml-training",
                  scale="small", campaign="resilience",
                  iterations=3, warmup=1, seed=seed,
                  fault_plan=PLAN.to_items(),
                  mitigation=POLICY.to_items(),
                  slo_availability=0.99, audit=True)
    kwargs.update(overrides)
    return CampaignSpec(**kwargs)


# -- policy validation -------------------------------------------------------------

def test_policy_rejects_bad_values():
    with pytest.raises(ValueError):
        MitigationPolicy(breaker_failure_threshold=-1)
    with pytest.raises(ValueError):
        MitigationPolicy(breaker_recovery_timeout_s=0.0)
    with pytest.raises(ValueError):
        MitigationPolicy(hedge_after_s=-0.5)
    with pytest.raises(ValueError):
        MitigationPolicy(max_hedges=0)
    with pytest.raises(ValueError):
        MitigationPolicy(deadline_factor=-1.0)
    with pytest.raises(ValueError):
        MitigationPolicy(request_timeout_s=0.0)


def test_policy_items_round_trip():
    items = POLICY.to_items()
    assert MitigationPolicy.from_items(items) == POLICY
    assert MitigationPolicy.from_items(tuple(reversed(items))) == POLICY
    with pytest.raises(ValueError):
        MitigationPolicy.from_items((("not_a_knob", 1),))


def test_default_policy_is_inert():
    assert not MitigationPolicy().enabled
    assert MitigationPolicy(hedge_after_s=5.0).enabled
    assert MitigationPolicy(breaker_failure_threshold=3).enabled
    assert MitigationPolicy(deadline_factor=4.0).enabled


# -- spec plumbing -----------------------------------------------------------------

def test_spec_validates_mitigation_and_slo_eagerly():
    with pytest.raises(ValueError):
        make_spec(mitigation=(("hedge_after_s", -1.0),))
    with pytest.raises(ValueError):
        make_spec(mitigation=(("not_a_knob", 1),))
    with pytest.raises(ValueError):
        make_spec(slo_availability=0.0)
    with pytest.raises(ValueError):
        make_spec(slo_availability=1.5)
    with pytest.raises(ValueError):
        make_spec(slo_p99_s=-1.0)
    with pytest.raises(ValueError):
        make_spec(iterations=0)


def test_spec_accepts_nested_outage_windows_and_stays_hashable():
    spec = make_spec(fault_plan=(("outage_windows", [[60.0, 45.0]]),))
    hash(spec)                               # frozen all the way down
    assert spec.fault_plan_obj().outage_windows == ((60.0, 45.0),)
    assert spec.mitigation_obj() == POLICY


def test_mitigation_changes_spec_identity():
    base = make_spec(mitigation=())
    mitigated = make_spec()
    assert base.spec_hash() != mitigated.spec_hash()
    assert cache_key(base) != cache_key(mitigated)
    # No pairs → the inert default policy (hard timeout only).
    assert base.mitigation_obj() == MitigationPolicy()


# -- end-to-end execution ----------------------------------------------------------

@pytest.mark.parametrize(
    "deployment", ["AWS-Step", "Az-Dorch", "GCP-Flows"])
def test_resilience_campaign_produces_summary(deployment):
    outcome = execute_spec(make_spec(deployment=deployment))
    summary = outcome.resilience
    assert isinstance(summary, ResilienceSummary)
    assert summary.deployment == deployment
    assert summary.total_runs == 3
    assert summary.successes + summary.failures == summary.total_runs
    assert 0.0 <= summary.availability <= 1.0
    assert summary.outage_windows == ((60.0, 105.0),)
    assert summary.slo_availability == 0.99
    assert summary.slo_availability_met == (
        summary.availability >= summary.slo_availability)
    assert summary.error_budget_burn >= 0.0
    assert summary.mean_recovery_time_s >= 0.0
    assert summary.cost_per_run > 0
    assert summary.baseline_cost_per_run > 0
    # The audited pass finished clean.
    assert outcome.audit is not None and outcome.audit.passed


def test_resilience_campaign_is_audit_clean_in_gray_mode():
    plan = FaultPlan(outage_windows=((40.0, 60.0),), outage_mode="gray",
                     gray_latency_factor=3.0, gray_error_probability=0.3,
                     brownout_delay_s=2.0, partition_drop_probability=0.2,
                     retry_max_attempts=2, retry_interval_s=1.0)
    outcome = execute_spec(make_spec(deployment="Az-Dorch",
                                     fault_plan=plan.to_items()))
    summary = outcome.resilience
    assert outcome.audit is not None and outcome.audit.passed
    # Gray degradation fired: slowdowns/errors/brownouts are accounted.
    chaos = (summary.gray_errors + summary.browned_out_messages
             + summary.dropped_messages)
    assert summary.total_runs == 3
    assert chaos >= 0                      # counters survive persistence


def test_recovery_times_are_censored_at_end_of_run():
    from repro.core.resilience import _recovery_times
    windows = ((10.0, 20.0), (50.0, 60.0), (500.0, 600.0))
    # Recovered after the first window, never after the second.
    times = _recovery_times(windows, [5.0, 25.0], end_of_run=100.0)
    assert times == (15.0, 50.0)           # censored at end-of-run


# -- mitigation engine behaviour ---------------------------------------------------

def _engine(testbed, policy, label="test"):
    return MitigationEngine(policy=policy, env=testbed.env,
                            streams=testbed.streams, label=label,
                            gb_s_probe=lambda: 0.0)


def test_breaker_opens_and_recovers_half_open():
    testbed = Testbed(seed=11, platforms=["aws"])
    policy = MitigationPolicy(breaker_failure_threshold=2,
                              breaker_recovery_timeout_s=10.0,
                              request_timeout_s=60.0)
    engine = _engine(testbed, policy)

    def failing():
        yield testbed.env.timeout(0.1)
        raise RuntimeError("induced")

    def succeeding():
        yield testbed.env.timeout(0.1)
        return "ok"

    for _ in range(2):
        with pytest.raises(RuntimeError, match="induced"):
            testbed.run(engine.call(failing))
    assert engine.breaker_opens == 1
    with pytest.raises(CircuitOpenError):
        testbed.run(engine.call(failing))
    assert engine.short_circuits == 1

    # After the recovery timeout a half-open probe is admitted, and a
    # success closes the breaker again.
    def wait():
        yield testbed.env.timeout(20.0)
    testbed.run(wait())
    assert testbed.run(engine.call(succeeding)) == "ok"
    assert engine.breaker_probes == 1
    assert testbed.run(engine.call(succeeding)) == "ok"


def test_adaptive_deadline_abandons_stragglers():
    testbed = Testbed(seed=11, platforms=["aws"])
    policy = MitigationPolicy(deadline_factor=2.0, deadline_min_s=0.5,
                              request_timeout_s=600.0)
    engine = _engine(testbed, policy)

    def quick():
        yield testbed.env.timeout(0.2)
        return "quick"

    def straggler():
        yield testbed.env.timeout(1000.0)
        return "late"

    for _ in range(5):                     # warm the latency EWMA
        assert testbed.run(engine.call(quick)) == "quick"
    before = testbed.now
    with pytest.raises(Exception):
        testbed.run(engine.call(straggler))
    assert engine.deadline_abandons == 1
    # Abandoned at the adaptive deadline, far before 1000s elapsed.
    assert testbed.now - before < 100.0


def test_hedging_races_and_cancels_the_loser():
    testbed = Testbed(seed=11, platforms=["aws"])
    policy = MitigationPolicy(hedge_after_s=1.0, max_hedges=1,
                              request_timeout_s=600.0)
    engine = _engine(testbed, policy)
    durations = iter([50.0, 2.0])          # first attempt slow, hedge fast

    def variable():
        yield testbed.env.timeout(next(durations))
        return "done"

    assert testbed.run(engine.call(variable)) == "done"
    assert engine.hedges_launched == 1
    assert engine.hedge_wins == 1
    assert engine.hedges_cancelled == 1
    assert testbed.now == pytest.approx(3.0)   # hedge at 1.0 + 2.0s run


# -- bit-identity: serial / worker pool / cache (acceptance) -----------------------

@pytest.mark.parametrize(
    "deployment", ["AWS-Step", "Az-Dorch", "GCP-Flows"])
def test_resilience_is_bit_identical_across_runners(deployment, tmp_path):
    spec = make_spec(deployment=deployment)
    serial = ParallelRunner(workers=1).run([spec])[0]

    # A decoy spec forces the real pool path, as in test_parallel.py.
    decoy = make_spec(deployment=deployment, seed=spec.seed + 1)
    cache = ResultCache(tmp_path / "cache")
    runner = ParallelRunner(workers=2, cache=cache)
    pooled = runner.run([spec, decoy])[0]
    replay = runner.run([spec])[0]

    reference = outcome_blob(serial)
    assert outcome_blob(pooled) == reference
    assert outcome_blob(replay) == reference
    assert not pooled.cached and replay.cached
    assert replay.resilience == serial.resilience


def test_resilience_survives_cache_round_trip(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    spec = make_spec()
    outcome = execute_spec(spec)
    cache.put(spec, outcome)
    replay = cache.get(spec)
    assert replay is not None and replay.cached
    assert replay.resilience == outcome.resilience
    assert replay.resilience.outage_windows == ((60.0, 105.0),)


# -- persistence -------------------------------------------------------------------

def test_resilience_summary_dict_round_trip():
    summary = execute_spec(make_spec()).resilience
    document = resilience_to_dict(summary)
    assert document["kind"] == "resilience"
    assert resilience_from_dict(document) == summary
    assert resilience_from_dict(json.loads(json.dumps(document))) == summary
