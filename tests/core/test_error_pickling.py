"""Every typed error that crosses a process boundary must pickle clean.

Worker processes (ParallelRunner's pool, SupervisedRunner's per-spec
workers) hand exceptions back to the parent through pickle.  An error
type that loses state in that round trip turns a precise diagnosis into
a bare ``TypeError: __init__() missing ...`` at the *receiving* end —
the failure mode this suite pins down for every error the workers can
raise, plus the fuzzer's own types.
"""

import pickle

import pytest

from repro.core.audit import CheckResult, InvariantViolation
from repro.core.checkpoint import JournalError
from repro.core.fuzz import FuzzError
from repro.core.mitigation import CircuitOpenError, MitigationTimeout
from repro.core.parallel import CampaignSpec, SpecExecutionError
from repro.core.persistence import SpecValidationError
from repro.core.supervise import SpecTimeout, WorkerCrash
from repro.platforms.base import (
    FunctionTimeout,
    LoadShedError,
    PayloadLimitExceeded,
    ThrottlingError,
)
from repro.platforms.faults import TransientFault

SPEC = CampaignSpec(deployment="AWS-Lambda", workload="ml-training",
                    iterations=1)


def _execution_failed():
    from repro.aws.stepfunctions import ExecutionFailed
    return ExecutionFailed("States.Timeout", cause="took too long")


def _orchestration_failed():
    from repro.azure.durable import OrchestrationFailedError
    return OrchestrationFailedError("activity blew up")


def _queue_full():
    from repro.storage.queue import QueueFullError
    return QueueFullError("queue 'work' is full")


def _invariant_violation():
    violation = CheckResult("billing_soundness", False, "overbilled",
                            evidence=("charge 3 has no span",))
    return InvariantViolation([violation], spec_hash="a" * 64,
                              repro_hint="echo '{}' | repro fuzz shrink -")


ERRORS = [
    pytest.param(lambda: SpecExecutionError(SPEC, "ValueError: boom",
                                            "Traceback ..."),
                 id="SpecExecutionError"),
    pytest.param(lambda: WorkerCrash(SPEC, "killed by signal 9"),
                 id="WorkerCrash"),
    pytest.param(lambda: SpecTimeout(SPEC, 4.0), id="SpecTimeout"),
    pytest.param(_invariant_violation, id="InvariantViolation"),
    pytest.param(lambda: SpecValidationError("fanout", "must be int"),
                 id="SpecValidationError"),
    pytest.param(lambda: FunctionTimeout("fn timed out after 3 s"),
                 id="FunctionTimeout"),
    pytest.param(lambda: LoadShedError("deadline shed"),
                 id="LoadShedError"),
    pytest.param(lambda: ThrottlingError("429", retry_after_s=1.5),
                 id="ThrottlingError"),
    pytest.param(lambda: PayloadLimitExceeded(2048, 1024, "workflow"),
                 id="PayloadLimitExceeded"),
    pytest.param(lambda: TransientFault("transient fault in reduce"),
                 id="TransientFault"),
    pytest.param(_execution_failed, id="ExecutionFailed"),
    pytest.param(_orchestration_failed, id="OrchestrationFailedError"),
    pytest.param(_queue_full, id="QueueFullError"),
    pytest.param(lambda: CircuitOpenError("breaker aws.f open"),
                 id="CircuitOpenError"),
    pytest.param(lambda: MitigationTimeout("deadline 3 s expired"),
                 id="MitigationTimeout"),
    pytest.param(lambda: JournalError("manifest mismatch"),
                 id="JournalError"),
    pytest.param(lambda: FuzzError("corpus entry checksum mismatch"),
                 id="FuzzError"),
]


@pytest.mark.parametrize("build", ERRORS)
def test_error_survives_pickle_round_trip(build):
    original = build()
    clone = pickle.loads(pickle.dumps(original))
    assert type(clone) is type(original)
    assert str(clone) == str(original)
    # Every attribute the sender set must arrive; repr-compare so
    # nested specs/violations compare by value.
    assert {k: repr(v) for k, v in vars(clone).items()} == \
           {k: repr(v) for k, v in vars(original).items()}


def test_spec_execution_error_keeps_spec_and_hint():
    original = SpecExecutionError(SPEC, "ValueError: boom", "tb")
    clone = pickle.loads(pickle.dumps(original))
    assert clone.spec == SPEC
    assert clone.repro_hint == original.repro_hint
    assert "fuzz shrink" in clone.repro_hint


def test_spec_validation_error_keeps_key_and_detail():
    clone = pickle.loads(pickle.dumps(
        SpecValidationError("fault_plan", "entry 2 is not a pair")))
    assert clone.key == "fault_plan"
    assert clone.detail == "entry 2 is not a pair"
    assert "fault_plan" in str(clone)


def test_invariant_violation_keeps_spec_evidence():
    clone = pickle.loads(pickle.dumps(_invariant_violation()))
    assert clone.spec_hash == "a" * 64
    assert clone.repro_hint.endswith("repro fuzz shrink -")
    assert clone.violations[0].invariant == "billing_soundness"
    assert "spec:" in str(clone) and "repro:" in str(clone)
