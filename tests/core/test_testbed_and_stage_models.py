"""Tests for the Testbed facade and the calibrated stage models."""

import numpy as np
import pytest

from repro.core import Testbed
from repro.core.stage_models import (
    ML_DURATIONS,
    ML_LARGE_ROWS,
    ML_SMALL_ROWS,
    ml_work_models,
    video_detect_seconds,
    video_work_models,
)
from repro.platforms.calibration import AWSCalibration, AzureCalibration
from repro.storage.payload import MB


# -- testbed ------------------------------------------------------------------------

def test_testbed_isolated_stacks():
    testbed = Testbed(seed=0)
    assert testbed.aws.meter is not testbed.azure.meter
    assert testbed.aws.billing is not testbed.azure.billing
    assert testbed.aws.blob is not testbed.azure.blob
    assert testbed.stack("aws") is testbed.aws
    assert testbed.stack("azure") is testbed.azure
    assert testbed.stack("gcp") is testbed.gcp
    assert testbed.gcp.meter is not testbed.aws.meter
    with pytest.raises(ValueError):
        testbed.stack("openwhisk")


def test_testbed_accepts_custom_calibrations():
    aws = AWSCalibration()
    aws.keep_alive_s = 123.0
    azure = AzureCalibration()
    azure.scale_interval_s = 99.0
    testbed = Testbed(seed=0, aws_calibration=aws, azure_calibration=azure)
    assert testbed.lambdas.calibration.keep_alive_s == 123.0
    assert testbed.app.calibration.scale_interval_s == 99.0


def test_testbed_advance_moves_clock():
    testbed = Testbed(seed=0)
    testbed.advance(100.0)
    assert testbed.now == 100.0
    with pytest.raises(ValueError):
        testbed.advance(-1.0)


def test_testbed_run_drives_generator():
    testbed = Testbed(seed=0)

    def work():
        yield testbed.env.timeout(5.0)
        return "done"

    assert testbed.run(work()) == "done"
    assert testbed.now == 5.0


def test_reset_meters_clears_platform_state():
    testbed = Testbed(seed=0)
    testbed.aws.meter.record("stepfunctions", "m", "transition")
    testbed.aws.billing.charge_request("f")
    testbed.aws.telemetry.record("x", "execution", 0.0, 1.0)
    testbed.aws.reset_meters()
    assert len(testbed.aws.meter) == 0
    assert testbed.aws.billing.total_requests() == 0
    assert len(testbed.aws.telemetry) == 0


# -- stage models ----------------------------------------------------------------------

def test_ml_durations_scale_monotonically():
    small, large = ML_DURATIONS["small"], ML_DURATIONS["large"]
    assert large.prepare > small.prepare
    assert large.train_rf > small.train_rf
    assert large.inference > small.inference
    assert ML_LARGE_ROWS > ML_SMALL_ROWS


def test_ml_work_models_cover_all_stages():
    for scale in ("small", "large"):
        models = ml_work_models(scale)
        expected = {"prepare", "reduce", "train_rf", "train_knn",
                    "train_lasso", "select", "inference", "apply_prepare",
                    "apply_reduce", "deserialize", "load_model"}
        assert expected <= set(models)


def test_ml_work_models_sample_near_nominal():
    rng = np.random.default_rng(0)
    models = ml_work_models("large")
    draws = [models["train_rf"].duration(rng) for _ in range(200)]
    assert abs(np.mean(draws) - ML_DURATIONS["large"].train_rf) < 2.0


def test_deserialize_scales_with_megabytes():
    rng = np.random.default_rng(0)
    models = ml_work_models("small")
    small = np.mean([models["deserialize"].duration(rng, units=1.0)
                     for _ in range(50)])
    big = np.mean([models["deserialize"].duration(rng, units=10.0)
                   for _ in range(50)])
    assert big > 5 * small


def test_video_models_and_helper():
    rng = np.random.default_rng(0)
    models = video_work_models()
    assert {"split", "detect", "merge"} <= set(models)
    # The analytic helper matches the work model's expectation.
    chunk_bytes = 2 * MB
    expected = video_detect_seconds(chunk_bytes)
    draws = [models["detect"].duration(rng, units=chunk_bytes / MB)
             for _ in range(200)]
    assert abs(np.mean(draws) - expected) < 0.5


def test_rf_dominates_other_training_stages():
    for scale in ("small", "large"):
        durations = ML_DURATIONS[scale]
        assert durations.train_rf > durations.train_knn
        assert durations.train_rf > durations.train_lasso
