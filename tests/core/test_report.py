"""Tests for the table/figure text renderers."""

import pytest

from repro.core.report import (
    render_bars,
    render_breakdown,
    render_cdf,
    render_grouped_bars,
    render_table,
)


def test_render_table_aligns_columns():
    text = render_table(["name", "value"], [["a", 1], ["longer", 22.5]],
                        title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1] and "value" in lines[1]
    # All data rows have the same width.
    widths = {len(line) for line in lines[1:]}
    assert len(widths) == 1


def test_render_table_float_formatting():
    text = render_table(["v"], [[0.00012345], [12.3456], [1234567.0], [0]])
    assert "0.0001234" in text
    assert "12.35" in text
    assert "1,234,567" in text


def test_render_bars_scales_to_peak():
    text = render_bars({"a": 10.0, "bb": 50.0}, unit="s", width=10)
    lines = text.splitlines()
    assert lines[1].count("#") == 10           # the peak fills the width
    assert lines[0].count("#") == 2            # 10/50 of the width
    assert "50.00s" in lines[1]
    assert lines[0].startswith("a ")           # labels aligned


def test_render_bars_rejects_empty():
    with pytest.raises(ValueError):
        render_bars({})


def test_render_bars_zero_values_safe():
    text = render_bars({"a": 0.0})
    assert "#" in text   # minimum one mark, no division by zero


def test_render_grouped_bars_sections():
    text = render_grouped_bars({"g1": {"a": 1.0}, "g2": {"b": 2.0}},
                               title="G")
    assert text.splitlines()[0] == "G"
    assert "-- g1" in text and "-- g2" in text


def test_render_cdf_quantile_table():
    points = [(float(i), i / 100.0) for i in range(1, 101)]
    text = render_cdf({"series": points}, quantiles=(0.5, 0.9))
    assert "0.50" in text and "0.90" in text
    lines = text.splitlines()
    assert "series" in lines[0]


def test_render_cdf_value_at_fraction_clamps():
    points = [(1.0, 0.5), (2.0, 1.0)]
    text = render_cdf({"s": points}, quantiles=(0.25, 0.99))
    # 0.25 resolves to the first point; 0.99 to the last.
    assert "1.00" in text and "2.00" in text


def test_render_breakdown_totals():
    text = render_breakdown({"impl": (2.0, 3.0)})
    assert "5.00" in text
    assert "queue time" in text


def test_render_timeseries_sparkline():
    from repro.core.report import render_timeseries
    points = [(float(index * 60), float(index % 5)) for index in range(10)]
    text = render_timeseries(points, title="T", unit="s")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert lines[1].startswith("[") and lines[1].endswith("]")
    assert "min=0.00s" in lines[2]
    assert "max=4.00s" in lines[2]


def test_render_timeseries_downsamples():
    from repro.core.report import render_timeseries
    points = [(float(index), float(index)) for index in range(500)]
    text = render_timeseries(points, width=40)
    spark = text.splitlines()[0]
    assert len(spark) <= 42  # brackets + at most `width` marks


def test_render_timeseries_flat_series():
    from repro.core.report import render_timeseries
    text = render_timeseries([(0.0, 5.0), (1.0, 5.0)])
    assert "min=5.00" in text and "max=5.00" in text


def test_render_timeseries_empty_raises():
    from repro.core.report import render_timeseries
    with pytest.raises(ValueError):
        render_timeseries([])
