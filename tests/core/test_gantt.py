"""Tests for the span Gantt renderer."""

import pytest

from repro.core.report import render_gantt
from repro.sim import Environment
from repro.telemetry import SpanKind, Telemetry


@pytest.fixture
def telemetry():
    env = Environment()
    telemetry = Telemetry(clock=lambda: env.now)
    telemetry.record("boot", SpanKind.COLD_START, 0.0, 2.0)
    telemetry.record("work", SpanKind.EXECUTION, 2.0, 10.0)
    telemetry.record("wait", SpanKind.QUEUE_WAIT, 1.0, 1.5)
    return telemetry


def test_gantt_rows_and_axis(telemetry):
    text = render_gantt(telemetry.spans, title="G")
    lines = text.splitlines()
    assert lines[0] == "G"
    assert "0.00s" in lines[1] and "10.00s" in lines[1]
    assert len(lines) == 2 + 3          # title + axis + three spans
    # Rows sorted by start time.
    assert "cold_start:boot" in lines[2]
    assert "queue_wait:wait" in lines[3]
    assert "execution:work" in lines[4]


def test_gantt_bar_lengths_proportional(telemetry):
    text = render_gantt(telemetry.spans, width=50)
    rows = {line.split()[0]: line for line in text.splitlines()[1:]}
    long_bar = rows["execution:work"].count("#")
    short_bar = rows["queue_wait:wait"].count("#")
    assert long_bar > 5 * short_bar


def test_gantt_window_filter(telemetry):
    text = render_gantt(telemetry.spans, since=1.5)
    assert "cold_start:boot" not in text
    assert "execution:work" in text


def test_gantt_empty_window_raises(telemetry):
    with pytest.raises(ValueError):
        render_gantt(telemetry.spans, since=100.0)


def test_gantt_caps_rows(telemetry):
    for index in range(100):
        telemetry.record(f"s{index}", SpanKind.EXECUTION, 0.0, 1.0)
    text = render_gantt(telemetry.spans, max_rows=10)
    assert len(text.splitlines()) == 11   # axis + 10 rows


def test_gantt_open_spans_excluded():
    env = Environment()
    telemetry = Telemetry(clock=lambda: env.now)
    telemetry.start_span("open", SpanKind.EXECUTION)
    telemetry.record("closed", SpanKind.EXECUTION, 0.0, 1.0)
    text = render_gantt(telemetry.spans)
    assert "open" not in text
