"""Tests for the command-line interface."""

import pytest

from repro.cli import _variants, _worker_list, build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_variants_parsing():
    assert _variants("AWS-Step, Az-Dorch") == ["AWS-Step", "Az-Dorch"]
    import argparse
    with pytest.raises(argparse.ArgumentTypeError, match="unknown"):
        _variants("GCP-Functions")


def test_worker_list_parsing():
    assert _worker_list("1,5,10") == [1, 5, 10]
    import argparse
    with pytest.raises(argparse.ArgumentTypeError):
        _worker_list("0,5")
    with pytest.raises(argparse.ArgumentTypeError):
        _worker_list("a,b")


def test_latency_command_runs(capsys):
    code = main(["latency", "--iterations", "2",
                 "--variants", "AWS-Lambda,AWS-Step"])
    assert code == 0
    output = capsys.readouterr().out
    assert "ML training latency" in output
    assert "AWS-Step" in output


def test_inference_command_runs(capsys):
    code = main(["inference", "--iterations", "2"])
    assert code == 0
    assert "ML inference latency" in capsys.readouterr().out


def test_coldstart_command_runs(capsys):
    code = main(["coldstart", "--days", "0.125"])   # 3 hourly requests
    assert code == 0
    output = capsys.readouterr().out
    assert "Cold start delay" in output
    assert "Az-Queue" in output


def test_video_command_runs(capsys):
    code = main(["video", "--workers", "4"])
    assert code == 0
    assert "Video processing latency" in capsys.readouterr().out


def test_cost_command_runs(capsys):
    code = main(["cost", "--workers", "4", "--runs-per-month", "10",
                 "--measured-runs", "2"])
    assert code == 0
    output = capsys.readouterr().out
    assert "Monthly video cost" in output
    assert "tx share" in output


def test_seed_flag_changes_nothing_structural(capsys):
    assert main(["--seed", "5", "video", "--workers", "2"]) == 0


def test_takeaways_command_runs(capsys):
    code = main(["takeaways", "--iterations", "3"])
    output = capsys.readouterr().out
    assert "key takeaways reproduced" in output
    assert code == 0


# -- crash-safe sweeps: --journal and repro resume -------------------------------

def test_journal_flag_writes_resumable_journal(tmp_path, capsys):
    from repro.core import SweepJournal

    journal_root = tmp_path / "journal"
    code = main(["latency", "--iterations", "2",
                 "--variants", "AWS-Lambda,AWS-Step",
                 "--journal", str(journal_root),
                 "--cache-dir", str(tmp_path / "cache")])
    assert code == 0
    assert "ML training latency" in capsys.readouterr().out

    journal = SweepJournal(journal_root)
    assert journal.is_complete()
    manifest = journal.open()
    assert manifest.argv is not None
    assert "--journal" in manifest.argv

    # `repro resume` re-dispatches the recorded command; everything is
    # journaled already so it replays without recomputing.
    code = main(["resume", str(journal_root)])
    output = capsys.readouterr().out
    assert code == 0
    assert "resuming sweep" in output
    assert "ML training latency" in output


def test_journal_refuses_reuse_without_resume_flag(tmp_path, capsys):
    journal_root = tmp_path / "journal"
    argv = ["latency", "--iterations", "2", "--variants", "AWS-Lambda",
            "--journal", str(journal_root),
            "--cache-dir", str(tmp_path / "cache")]
    assert main(argv) == 0
    capsys.readouterr()
    with pytest.raises(SystemExit, match="--resume"):
        main(argv)
    assert main(argv + ["--resume"]) == 0


def test_resume_rejects_missing_journal(tmp_path):
    with pytest.raises(SystemExit, match="no sweep journal"):
        main(["resume", str(tmp_path / "nope")])


def test_resume_flag_without_journal_errors():
    """--resume alone would otherwise be silently ignored and re-run
    the whole sweep uncheckpointed."""
    with pytest.raises(SystemExit, match="--journal"):
        main(["latency", "--iterations", "2", "--variants", "AWS-Lambda",
              "--resume", "--no-cache"])


def test_resume_supplies_journal_when_recorded_argv_lacks_one(
        tmp_path, capsys):
    """A journal whose recorded argv never named --journal (created
    programmatically) still resumes: `repro resume` injects the journal
    path the user pointed it at."""
    from repro.core import CampaignSpec, SupervisedRunner, SweepJournal

    journal_root = tmp_path / "journal"
    spec = CampaignSpec(deployment="AWS-Lambda", workload="ml-training",
                        scale="small", iterations=2, warmup=1, seed=0)
    argv = ["latency", "--iterations", "2", "--variants", "AWS-Lambda",
            "--cache-dir", str(tmp_path / "cache")]
    result = SupervisedRunner(
        workers=1, journal=SweepJournal(journal_root)).run([spec],
                                                           argv=argv)
    assert result.ok

    code = main(["resume", str(journal_root)])
    output = capsys.readouterr().out
    assert code == 0
    assert "resuming sweep" in output
    assert "ML training latency" in output


def test_supervise_flags_run_the_supervised_pool(tmp_path, capsys):
    code = main(["latency", "--iterations", "2",
                 "--variants", "AWS-Lambda",
                 "--spec-timeout", "300", "--max-worker-restarts", "1",
                 "--no-cache"])
    assert code == 0
    assert "ML training latency" in capsys.readouterr().out


@pytest.mark.fuzz
def test_fuzz_run_clean_session_exits_zero(tmp_path, capsys):
    code = main(["fuzz", "run", "--seed", "0", "--budget", "3",
                 "--corpus-out", str(tmp_path / "corpus"),
                 "--cache-dir", str(tmp_path / "cache")])
    output = capsys.readouterr().out
    assert code == 0
    assert "fuzz seed 0: 3/3 specs checked, 0 finding(s)" in output
    assert not (tmp_path / "corpus").exists()   # nothing to bank


@pytest.mark.fuzz
def test_fuzz_run_resume_flag_without_journal_errors():
    with pytest.raises(SystemExit, match="--journal"):
        main(["fuzz", "run", "--budget", "3", "--resume", "--no-cache"])


@pytest.mark.fuzz
def test_fuzz_replay_missing_corpus_is_a_noop(tmp_path, capsys):
    code = main(["fuzz", "replay", str(tmp_path / "nope")])
    assert code == 0
    assert "nothing to replay" in capsys.readouterr().out


@pytest.mark.fuzz
def test_fuzz_replay_shipped_corpus_stays_green(capsys):
    """The committed regression corpus must replay green: every bug the
    fuzzer has found stays fixed."""
    code = main(["fuzz", "replay", "corpus"])
    output = capsys.readouterr().out
    assert code == 0, output
    assert "RED" not in output and "INVALID" not in output


@pytest.mark.fuzz
def test_fuzz_shrink_clean_spec_reports_nothing_to_do(tmp_path, capsys):
    import json as json_mod

    from repro.core import CampaignSpec
    from repro.core.persistence import spec_to_dict

    spec = CampaignSpec(deployment="AWS-Lambda", workload="ml-training",
                        iterations=1, warmup=0)
    path = tmp_path / "spec.json"
    path.write_text(json_mod.dumps(spec_to_dict(spec)))
    code = main(["fuzz", "shrink", str(path)])
    assert code == 0
    assert "nothing to shrink" in capsys.readouterr().out


@pytest.mark.fuzz
def test_fuzz_shrink_rejects_bad_input(tmp_path):
    garbage = tmp_path / "bad.json"
    garbage.write_text("{not json")
    with pytest.raises(SystemExit, match="not JSON"):
        main(["fuzz", "shrink", str(garbage)])
    invalid = tmp_path / "invalid.json"
    invalid.write_text('{"deployment": "AWS-Lambda", "bogus": 1}')
    with pytest.raises(SystemExit, match="bogus"):
        main(["fuzz", "shrink", str(invalid)])
