"""Tests for the command-line interface."""

import pytest

from repro.cli import _variants, _worker_list, build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_variants_parsing():
    assert _variants("AWS-Step, Az-Dorch") == ["AWS-Step", "Az-Dorch"]
    import argparse
    with pytest.raises(argparse.ArgumentTypeError, match="unknown"):
        _variants("GCP-Functions")


def test_worker_list_parsing():
    assert _worker_list("1,5,10") == [1, 5, 10]
    import argparse
    with pytest.raises(argparse.ArgumentTypeError):
        _worker_list("0,5")
    with pytest.raises(argparse.ArgumentTypeError):
        _worker_list("a,b")


def test_latency_command_runs(capsys):
    code = main(["latency", "--iterations", "2",
                 "--variants", "AWS-Lambda,AWS-Step"])
    assert code == 0
    output = capsys.readouterr().out
    assert "ML training latency" in output
    assert "AWS-Step" in output


def test_inference_command_runs(capsys):
    code = main(["inference", "--iterations", "2"])
    assert code == 0
    assert "ML inference latency" in capsys.readouterr().out


def test_coldstart_command_runs(capsys):
    code = main(["coldstart", "--days", "0.125"])   # 3 hourly requests
    assert code == 0
    output = capsys.readouterr().out
    assert "Cold start delay" in output
    assert "Az-Queue" in output


def test_video_command_runs(capsys):
    code = main(["video", "--workers", "4"])
    assert code == 0
    assert "Video processing latency" in capsys.readouterr().out


def test_cost_command_runs(capsys):
    code = main(["cost", "--workers", "4", "--runs-per-month", "10",
                 "--measured-runs", "2"])
    assert code == 0
    output = capsys.readouterr().out
    assert "Monthly video cost" in output
    assert "tx share" in output


def test_seed_flag_changes_nothing_structural(capsys):
    assert main(["--seed", "5", "video", "--workers", "2"]) == 0


def test_takeaways_command_runs(capsys):
    code = main(["takeaways", "--iterations", "3"])
    output = capsys.readouterr().out
    assert "key takeaways reproduced" in output
    assert code == 0
