"""Tests for the platform-neutral workflow IR and its two compilers."""

import pytest

from repro.core import Testbed
from repro.core.workflow import (
    MapNode,
    ParallelNode,
    SequenceNode,
    TaskNode,
    Workflow,
    map_over,
    parallel,
    sequence,
    task,
)
from repro.platforms.base import FunctionSpec


# -- node validation --------------------------------------------------------------

def test_node_validation():
    with pytest.raises(ValueError):
        TaskNode(function="")
    with pytest.raises(ValueError):
        SequenceNode(steps=[])
    with pytest.raises(ValueError):
        ParallelNode(branches=[])
    with pytest.raises(ValueError):
        MapNode(items_path="items", iterator=task("f"))
    with pytest.raises(ValueError):
        MapNode(items_path="$.items", iterator=task("f"),
                max_concurrency=-1)


def test_workflow_validation():
    with pytest.raises(ValueError):
        Workflow("", task("f"))
    with pytest.raises(TypeError):
        Workflow("wf", "not-a-node")


def test_functions_deduplicated_in_order():
    wf = Workflow("wf", sequence(
        task("a"), parallel(task("b"), task("a")),
        map_over("$.items", task("c"))))
    assert wf.functions() == ["a", "b", "c"]


# -- ASL compilation ------------------------------------------------------------------

def test_to_asl_sequence_chains_states():
    wf = Workflow("etl", sequence(task("extract"), task("transform"),
                                  task("load")))
    definition = wf.to_asl()
    from repro.aws import parse_state_machine
    machine = parse_state_machine(definition)    # must validate
    assert machine.state_count() == 3
    # Walk the chain: extract → transform → load → end.
    state = machine.state(machine.start_at)
    assert state.resource == "extract"
    state = machine.state(state.next_state)
    assert state.resource == "transform"
    state = machine.state(state.next_state)
    assert state.resource == "load"
    assert state.end


def test_to_asl_parallel_and_map_validate():
    wf = Workflow("wide", sequence(
        parallel(task("a"), sequence(task("b"), task("c"))),
        map_over("$.items", task("d"), max_concurrency=3)))
    from repro.aws import parse_state_machine
    machine = parse_state_machine(wf.to_asl())
    assert machine.state_count() > 4


# -- end-to-end on both platforms ----------------------------------------------------------

def make_handlers(testbed):
    def double(ctx, event):
        yield from ctx.busy(0.2)
        return event * 2

    def tag(ctx, event):
        yield from ctx.busy(0.1)
        return {"value": event, "items": [1, 2, 3]}

    def inc(ctx, event):
        yield from ctx.busy(0.1)
        return event + 1

    for name, handler in [("double", double), ("tag", tag), ("inc", inc)]:
        testbed.lambdas.register(FunctionSpec(
            name=name, handler=handler, memory_mb=512, timeout_s=60.0))
        testbed.app.register(FunctionSpec(
            name=name, handler=handler, memory_mb=1536, timeout_s=60.0))


WORKFLOW = Workflow("both", sequence(
    task("double"),
    task("tag"),
    map_over("$.items", task("inc")),
))


def test_same_workflow_same_result_on_both_clouds():
    testbed = Testbed(seed=3)
    make_handlers(testbed)
    WORKFLOW.deploy_aws(testbed)
    WORKFLOW.deploy_azure(testbed)

    record = testbed.run(testbed.stepfunctions.start_execution("both", 5))
    assert record.status == "SUCCEEDED"

    azure_output = testbed.run(testbed.durable.client.run("both", 5))
    assert record.output == azure_output == [2, 3, 4]


def test_parallel_fanout_on_both_clouds():
    wf = Workflow("fan", parallel(task("double"), task("inc")))
    testbed = Testbed(seed=4)
    make_handlers(testbed)
    wf.deploy_aws(testbed)
    wf.deploy_azure(testbed)
    record = testbed.run(testbed.stepfunctions.start_execution("fan", 10))
    azure_output = testbed.run(testbed.durable.client.run("fan", 10))
    assert record.output == azure_output == [20, 11]


def test_deploy_fails_fast_on_missing_function():
    wf = Workflow("ghostly", task("ghost"))
    testbed = Testbed(seed=5)
    with pytest.raises(KeyError):
        wf.deploy_aws(testbed)
    with pytest.raises(KeyError):
        wf.deploy_azure(testbed)


def test_map_over_non_list_fails_azure():
    from repro.azure.durable import OrchestrationFailedError
    wf = Workflow("badmap", map_over("$.value", task("inc")))
    testbed = Testbed(seed=6)
    make_handlers(testbed)
    wf.deploy_azure(testbed)

    with pytest.raises(OrchestrationFailedError):
        testbed.run(testbed.durable.client.run("badmap", {"value": 7}))


def test_nested_sequence_inside_map():
    wf = Workflow("nested", sequence(
        task("tag"),
        map_over("$.items", sequence(task("inc"), task("double")))))
    testbed = Testbed(seed=7)
    make_handlers(testbed)
    wf.deploy_aws(testbed)
    wf.deploy_azure(testbed)
    record = testbed.run(testbed.stepfunctions.start_execution("nested", 0))
    azure_output = testbed.run(testbed.durable.client.run("nested", 0))
    assert record.output == azure_output == [4, 6, 8]


def test_deploy_aws_express_workflow():
    from repro.aws.stepfunctions import EXPRESS
    wf = Workflow("fastlane", task("double"))
    testbed = Testbed(seed=8)
    make_handlers(testbed)
    wf.deploy_aws(testbed, workflow_type=EXPRESS)
    assert testbed.stepfunctions.workflow_type_of("fastlane") == EXPRESS
    record = testbed.run(testbed.stepfunctions.start_execution(
        "fastlane", 4))
    assert record.output == 8
    assert testbed.aws.meter.count(service="stepfunctions-express") > 0
