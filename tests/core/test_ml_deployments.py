"""Integration tests: every Table II ML variant end-to-end on the testbed."""

import pytest

from repro.core import (
    Testbed,
    build_ml_inference_deployments,
    build_ml_training_deployments,
)
from repro.core.deployments.ml import ml_workload


@pytest.fixture(scope="module")
def workload():
    """Small-scale workload; real training happens once per process."""
    return ml_workload("small", seed=0)


def fresh_testbed():
    return Testbed(seed=42)


def run_one(name):
    testbed = fresh_testbed()
    deployments = build_ml_training_deployments(testbed, "small")
    deployment = deployments[name]
    deployment.deploy()
    return deployment, testbed.run(deployment.invoke())


@pytest.mark.parametrize("name", ["AWS-Lambda", "AWS-Step", "Az-Func",
                                  "Az-Queue", "Az-Dorch", "Az-Dent"])
def test_training_variant_completes(name, workload):
    deployment, result = run_one(name)
    assert result.deployment == name
    assert result.latency > 0
    assert result.value is not None


def test_all_variants_agree_on_best_model(workload):
    best_names = set()
    for name in ["AWS-Lambda", "AWS-Step", "Az-Func", "Az-Dorch", "Az-Dent"]:
        _, result = run_one(name)
        value = result.value
        best = value.get("best", value.get("name"))
        if isinstance(best, dict):
            best = best.get("name")
        best_names.add(best)
    # Same dataset, same candidates, same real training → same winner.
    assert len(best_names) == 1
    assert best_names.pop() == workload.trained.best.candidate.name


def test_aws_step_records_transitions(workload):
    testbed = fresh_testbed()
    deployment = build_ml_training_deployments(testbed, "small")["AWS-Step"]
    deployment.deploy()
    testbed.run(deployment.invoke())
    transitions = testbed.aws.meter.count(service="stepfunctions",
                                          operation="transition")
    assert transitions == 4  # Prepare, Reduce, Train, Select


def test_azure_durable_bills_replay_gbs(workload):
    testbed = fresh_testbed()
    deployment = build_ml_training_deployments(testbed, "small")["Az-Dorch"]
    deployment.deploy()
    testbed.run(deployment.invoke())
    orchestrator_gb_s = sum(
        charge.gb_s for charge in testbed.azure.billing.compute
        if charge.function_name.startswith("orchestrator::"))
    assert orchestrator_gb_s > 0


def test_stateless_variants_record_no_stateful_transactions(workload):
    testbed = fresh_testbed()
    deployment = build_ml_training_deployments(testbed, "small")["AWS-Lambda"]
    deployment.deploy()
    testbed.run(deployment.invoke())
    assert testbed.aws.meter.count(service="stepfunctions") == 0


def test_cold_start_reported_for_first_run(workload):
    for name in ["AWS-Step", "Az-Dorch", "Az-Dent", "Az-Queue"]:
        _, result = run_one(name)
        assert result.cold_start_delay is not None, name
        assert result.cold_start_delay > 0, name


def test_queue_chain_cold_start_slowest(workload):
    """Fig 10's ordering: Az-Queue ≫ AWS-Step > durable variants."""
    delays = {}
    for name in ["AWS-Step", "Az-Dorch", "Az-Dent", "Az-Queue"]:
        _, result = run_one(name)
        delays[name] = result.cold_start_delay
    assert delays["Az-Queue"] > delays["AWS-Step"]
    assert delays["Az-Queue"] > delays["Az-Dorch"]
    assert delays["Az-Dorch"] < 3.0
    assert delays["Az-Dent"] < 3.0


@pytest.mark.parametrize("name", ["AWS-Step", "Az-Dorch", "Az-Dent"])
def test_inference_variant_completes(name, workload):
    testbed = fresh_testbed()
    deployments = build_ml_inference_deployments(testbed, "small")
    deployment = deployments[name]
    deployment.deploy()
    result = testbed.run(deployment.invoke())
    assert result.latency > 0
    value = result.value
    assert value["n_predictions"] == workload.test_dataset.n_rows


def test_inference_dent_slower_than_dorch(workload):
    """Fig 9: entity-op inference (Az-Dent) is slower than Az-Dorch.

    The Azure-vs-AWS 2× comparison only manifests at the large scale
    (the AWS penalty is model re-hydration, and the small-scale model is
    tiny); the large-scale comparison lives in the Fig 9 benchmark.
    """
    latencies = {}
    for name in ["Az-Dorch", "Az-Dent"]:
        testbed = fresh_testbed()
        deployment = build_ml_inference_deployments(testbed, "small")[name]
        deployment.deploy()
        # Warm run, then the median of several measured runs.
        testbed.run(deployment.invoke())
        runs = []
        for _ in range(5):
            runs.append(testbed.run(deployment.invoke()).latency)
            testbed.advance(30.0)
        runs.sort()
        latencies[name] = runs[len(runs) // 2]
    assert latencies["Az-Dent"] > latencies["Az-Dorch"]
