"""Integration tests: video variants end-to-end + the Fig 12 mechanism."""

import pytest

from repro.core import Testbed, build_video_deployments


def fresh(n_workers=8):
    testbed = Testbed(seed=7)
    return testbed, build_video_deployments(testbed, n_workers=n_workers)


@pytest.mark.parametrize("name", ["AWS-Lambda", "AWS-Step", "Az-Func",
                                  "Az-Dorch"])
def test_video_variant_completes(name):
    testbed, deployments = fresh()
    deployment = deployments[name]
    deployment.deploy()
    result = testbed.run(deployment.invoke())
    assert result.latency > 0
    assert result.value is not None


def test_detection_counts_agree_across_platforms():
    counts = {}
    for name in ["AWS-Step", "Az-Dorch"]:
        testbed, deployments = fresh()
        deployment = deployments[name]
        deployment.deploy()
        result = testbed.run(deployment.invoke())
        counts[name] = result.value["n_detections"]
    assert counts["AWS-Step"] == counts["Az-Dorch"]
    assert counts["AWS-Step"] > 0


def test_aws_step_parallelism_beats_monolith():
    """Fig 12 left half: AWS fan-out cuts latency vs the single Lambda."""
    testbed, deployments = fresh(n_workers=16)
    mono = deployments["AWS-Lambda"]
    step = deployments["AWS-Step"]
    mono.deploy()
    step.deploy()
    mono_result = testbed.run(mono.invoke())
    step_result = testbed.run(step.invoke(n_workers=16))
    assert step_result.latency < mono_result.latency * 0.5


def test_azure_fanout_stalls_behind_scale_controller():
    """Fig 12 right half: more Azure workers ≠ proportional speedup."""
    testbed, deployments = fresh(n_workers=4)
    dorch = deployments["Az-Dorch"]
    dorch.deploy()
    few = testbed.run(dorch.invoke(n_workers=4))
    many = testbed.run(dorch.invoke(n_workers=32))
    # 8× the workers comes nowhere near 8× the speedup.
    assert many.latency > few.latency / 4


def test_aws_map_transitions_scale_with_workers():
    testbed, deployments = fresh(n_workers=4)
    step = deployments["AWS-Step"]
    step.deploy()
    testbed.run(step.invoke(n_workers=4))
    first = testbed.aws.meter.count(service="stepfunctions",
                                    operation="transition")
    testbed.run(step.invoke(n_workers=8))
    second = testbed.aws.meter.count(service="stepfunctions",
                                     operation="transition") - first
    assert second == first + 4  # one extra transition per extra worker


def test_video_chunks_fit_payload_limits():
    testbed, deployments = fresh(n_workers=8)
    step = deployments["AWS-Step"]
    step.deploy()
    result = testbed.run(step.invoke())
    # The Map items (chunk references) crossed the 256 KB boundary check,
    # so the execution succeeded rather than failing on DataLimitExceeded.
    assert result.value["n_chunks"] == 8
