"""The invariant auditor: clean runs audit clean, seeded bugs are caught.

Acceptance bar for the audit layer:

* every campaign type on both platforms finishes with all six invariants
  green (no false positives — the full suite runs audited via conftest);
* a seeded delivery-semantics mutation (broker duplication enabled while
  completion dedupe is disabled) raises :class:`InvariantViolation` with
  an evidence trail naming the duplicated completions;
* audit verdicts are bit-identical across the serial runner, the
  :class:`ParallelRunner` worker pool and cache replay.
"""

import pickle

import pytest

from repro.core import audit as audit_mod
from repro.core.audit import (
    InvariantViolation,
    collect_violations,
    enabled_for,
    merge_reports,
)
from repro.core.cache import ResultCache
from repro.core.parallel import (CampaignSpec, ParallelRunner,
                                 SpecExecutionError, execute_spec)
from repro.core.persistence import audit_from_dict, audit_to_dict
from repro.platforms.faults import FaultPlan

pytestmark = pytest.mark.audit


def latency_spec(variant, **kwargs):
    kwargs.setdefault("audit", True)
    return CampaignSpec(deployment=variant, workload="ml-training",
                        scale="small", iterations=2, seed=13, **kwargs)


def chaos_plan(**kwargs):
    kwargs.setdefault("error_probability", 0.2)
    kwargs.setdefault("retry_max_attempts", 3)
    return FaultPlan(**kwargs)


def broken_dedupe_spec(seed=5):
    """A fault plan that duplicates completions AND disables the dedupe:
    every activity result is processed (and billed) more than once."""
    plan = FaultPlan(queue_duplication_probability=1.0,
                     completion_dedupe=False)
    return CampaignSpec(deployment="Az-Dorch", workload="ml-training",
                        scale="small", iterations=2, seed=seed,
                        campaign="reliability", fault_plan=plan.to_items(),
                        audit=True)


# -- module knobs ------------------------------------------------------------------

def test_enabled_for_tristate():
    assert enabled_for(True) is True
    assert enabled_for(False) is False
    assert enabled_for(None) is audit_mod.DEFAULT_AUDIT


def test_conftest_turns_the_default_on():
    # The suite-wide fixture: unspecified specs audit during tests.
    assert audit_mod.DEFAULT_AUDIT is True


def test_collect_violations_restores_the_flag():
    assert audit_mod.RAISE_ON_VIOLATION is True
    with collect_violations():
        assert audit_mod.RAISE_ON_VIOLATION is False
    assert audit_mod.RAISE_ON_VIOLATION is True


# -- clean runs audit clean --------------------------------------------------------

@pytest.mark.parametrize("variant", ["AWS-Lambda", "AWS-Step", "Az-Func",
                                     "Az-Queue", "Az-Dorch", "Az-Dent"])
def test_clean_latency_run_has_no_violations(variant):
    outcome = execute_spec(latency_spec(variant))
    report = outcome.audit
    assert report is not None and report.passed
    assert report.arrivals == 3                 # warmup + iterations
    assert dict(report.outcomes)["succeeded"] == 3
    assert {check.invariant for check in report.checks} == set(
        audit_mod.INVARIANTS)


def test_faulted_reliability_run_audits_clean():
    spec = CampaignSpec(deployment="Az-Dorch", workload="ml-training",
                        scale="small", iterations=2, seed=11,
                        campaign="reliability",
                        fault_plan=chaos_plan().to_items(), audit=True)
    report = execute_spec(spec).audit
    assert report is not None and report.passed


def test_unaudited_spec_attaches_no_report():
    outcome = execute_spec(latency_spec("AWS-Lambda", audit=False))
    assert outcome.audit is None


# -- the seeded mutation is caught -------------------------------------------------

def test_broken_dedupe_raises_invariant_violation():
    with pytest.raises(InvariantViolation) as error:
        execute_spec(broken_dedupe_spec())
    violated = {check.invariant for check in error.value.violations}
    assert "delivery_semantics" in violated
    evidence = "\n".join(item for check in error.value.violations
                         for item in check.evidence)
    assert "completion" in evidence and "seq" in evidence


def test_collect_violations_reports_instead_of_raising():
    with collect_violations():
        outcome = execute_spec(broken_dedupe_spec())
    report = outcome.audit
    assert report is not None and not report.passed
    assert any(check.invariant == "delivery_semantics"
               for check in report.violations)


def test_invariant_violation_survives_pickling():
    with collect_violations():
        report = execute_spec(broken_dedupe_spec()).audit
    error = InvariantViolation(report.violations, report)
    clone = pickle.loads(pickle.dumps(error))
    assert clone.violations == error.violations
    assert str(clone) == str(error)


def test_worker_pool_propagates_violations():
    """A violation in a worker process must fail the batch, not be
    swallowed by the runner's serial-fallback exception net.  The pool
    surfaces it as a typed per-spec failure naming the failing spec."""
    specs = [broken_dedupe_spec(seed=5), broken_dedupe_spec(seed=6)]
    with pytest.raises(SpecExecutionError) as excinfo:
        ParallelRunner(workers=2, cache=None).run(specs)
    assert excinfo.value.spec_hash == specs[0].spec_hash()
    assert specs[0].spec_hash()[:12] in str(excinfo.value)
    assert "InvariantViolation" in excinfo.value.message


# -- bit-identical verdicts across execution paths ---------------------------------

def test_verdicts_identical_serial_parallel_and_cache(tmp_path):
    specs = [latency_spec("AWS-Step"), latency_spec("Az-Dorch")]
    serial = [execute_spec(spec).audit for spec in specs]

    pooled = [outcome.audit for outcome in
              ParallelRunner(workers=2, cache=None).run(specs)]

    cache = ResultCache(tmp_path)
    runner = ParallelRunner(workers=1, cache=cache)
    runner.run(specs)                       # populate
    replayed = runner.run(specs)            # replay
    assert all(outcome.cached for outcome in replayed)
    cached = [outcome.audit for outcome in replayed]

    for report in (*pooled, *cached):
        assert report is not None
    assert [r.verdicts() for r in serial] == [r.verdicts() for r in pooled]
    assert [audit_to_dict(r) for r in serial] == [
        audit_to_dict(r) for r in pooled]
    assert [audit_to_dict(r) for r in serial] == [
        audit_to_dict(r) for r in cached]


def test_audit_report_json_roundtrip():
    report = execute_spec(latency_spec("Az-Dent")).audit
    assert audit_from_dict(audit_to_dict(report)) == report


def test_merge_reports_counts_passes_and_violations():
    clean = execute_spec(latency_spec("AWS-Lambda")).audit
    with collect_violations():
        dirty = execute_spec(broken_dedupe_spec()).audit
    merged = merge_reports([clean, dirty, None])
    passes, fails = merged["delivery_semantics"]
    assert (passes, fails) == (1, 1)
    assert merged["clock_monotonicity"] == (2, 0)


# -- spec validation (audit + telemetry interplay) ---------------------------------

def test_audit_spec_rejects_disabled_telemetry_spans():
    with pytest.raises(ValueError, match="telemetry"):
        CampaignSpec(deployment="AWS-Lambda", iterations=2, audit=True,
                     calibration_overrides={"aws.telemetry_spans": False})


def test_telemetry_override_fine_without_audit():
    spec = CampaignSpec(deployment="AWS-Lambda", iterations=2, audit=False,
                        calibration_overrides={
                            "aws.telemetry_spans": False})
    assert dict(spec.calibration_overrides)["aws.telemetry_spans"] is False
