"""The campaign fuzzer: generation, differential checking, shrinking,
corpus replay — and the planted-bug acceptance demo (found → shrunk →
replayed red → replayed green after the fix)."""

import json

import pytest

from repro.core.fuzz import (
    PLANT_ENV,
    FuzzVerdict,
    SpecGenerator,
    check_spec,
    expected_violation,
    planted_bug_active,
    read_repro,
    replay_corpus,
    repro_filename,
    run_fuzz,
    shrink,
    write_repro,
)
from repro.core.audit import spec_repro_hint
from repro.core.parallel import WORKLOAD_VARIANTS, CampaignSpec
from repro.core.persistence import spec_from_dict, spec_to_dict

pytestmark = pytest.mark.fuzz

#: Seed-0 stream index of a dedupe-off-under-duplication spec — the
#: planted bug's trigger (asserted below, so a generator change that
#: moves it fails loudly here, not in CI's smoke run).
PLANTED_INDEX = 10
#: Budget that covers PLANTED_INDEX with a couple of specs to spare.
PLANTED_BUDGET = 12


@pytest.fixture()
def plant(monkeypatch):
    monkeypatch.setenv(PLANT_ENV, "dedupe")


# -- generation --------------------------------------------------------------------


def test_generator_is_reproducible_from_seed():
    first = SpecGenerator(7).specs(30)
    second = SpecGenerator(7).specs(30)
    assert first == second
    assert SpecGenerator(8).specs(30) != first


def test_draw_is_reproducible_from_seed_and_index():
    generator = SpecGenerator(7)
    assert generator.draw(13) == SpecGenerator(7).draw(13)


def test_generated_specs_are_valid_and_diverse():
    specs = SpecGenerator(0).specs(60)
    campaigns = {spec.campaign for spec in specs}
    workloads = {spec.workload for spec in specs}
    assert campaigns == {"latency", "coldstart", "fanout", "reliability",
                         "overload", "resilience"}
    assert workloads == {"ml-training", "ml-inference", "video"}
    for spec in specs:
        assert spec.deployment in WORKLOAD_VARIANTS[spec.workload]
        assert spec.audit is True
        # every draw round-trips exactly through persistence
        assert spec_from_dict(spec_to_dict(spec)) == spec


def test_deep_combos_are_reachable():
    specs = SpecGenerator(0).specs(120)
    assert any(expected_violation(spec) for spec in specs)
    assert any(dict(spec.fault_plan).get("outage_windows")
               for spec in specs)
    assert any(spec.mitigation for spec in specs)
    assert any(spec.calibration_overrides for spec in specs)


def test_intolerant_campaigns_never_draw_run_killing_faults():
    """run_campaign aborts on a failed run by design; the generator must
    not pair it with faults that kill whole invocations."""
    for spec in SpecGenerator(0).specs(150):
        if spec.campaign in ("latency", "coldstart", "fanout"):
            plan = dict(spec.fault_plan)
            assert "crash_probability" not in plan
            assert "error_probability" not in plan
            assert "outage_windows" not in plan
            # A 4x straggler pushes the longest functions past GCP's
            # 540 s ceiling — run-killing for campaigns that abort on
            # a failed run.
            assert plan.get("straggler_factor", 2.0) == 2.0


def test_partition_drops_only_pair_with_resilience():
    """A partition-dropped message is lost for good; only the resilience
    executor's hard request timeout backstops a run stranded on one —
    reliability and overload would wait forever."""
    seen = 0
    for seed in range(3):
        for spec in SpecGenerator(seed).specs(100):
            if "partition_drop_probability" in dict(spec.fault_plan):
                assert spec.campaign == "resilience"
                seen += 1
    assert seen > 0   # the gate must not silence the feature entirely


def test_planted_index_is_where_we_think(plant):
    generator = SpecGenerator(0)
    assert planted_bug_active(generator.draw(PLANTED_INDEX))
    assert PLANTED_INDEX < PLANTED_BUDGET


def test_plant_is_inert_without_the_env():
    assert not planted_bug_active(SpecGenerator(0).draw(PLANTED_INDEX))


# -- the differential oracle -------------------------------------------------------


def test_clean_spec_checks_ok_on_every_path():
    spec = CampaignSpec(deployment="AWS-Lambda", workload="ml-training",
                        iterations=1, warmup=0)
    verdict = check_spec(spec)
    assert verdict.ok
    paths = {result.path for result in verdict.paths}
    assert paths == {"serial", "pool", "cache", "persistence"}
    checksums = {result.checksum for result in verdict.paths}
    assert len(checksums) == 1       # bit-identical on every path


def test_expected_violation_is_not_a_finding():
    """Dedupe-off under duplication trips the auditor *by design*; an
    identical-on-every-path violation is the lab working, not a bug."""
    spec = SpecGenerator(0).draw(PLANTED_INDEX)
    assert expected_violation(spec)
    verdict = check_spec(spec)
    assert verdict.ok, verdict.findings


def test_planted_bug_breaks_path_parity(plant):
    spec = SpecGenerator(0).draw(PLANTED_INDEX)
    verdict = check_spec(spec)
    assert not verdict.ok
    assert any(finding.startswith(("divergence:", "error-parity:"))
               for finding in verdict.findings)


def test_repro_hint_is_pasteable():
    spec = CampaignSpec(deployment="AWS-Lambda", workload="ml-training",
                        iterations=1)
    hint = spec_repro_hint(spec)
    assert hint.endswith("python -m repro fuzz shrink -")
    blob = hint.split("echo '", 1)[1].split("' |", 1)[0]
    assert spec_from_dict(json.loads(blob)) == spec


# -- shrinking ---------------------------------------------------------------------


def test_shrink_preserves_fingerprint_and_minimizes(plant):
    spec = SpecGenerator(0).draw(PLANTED_INDEX)
    verdict = check_spec(spec)
    fingerprint = verdict.findings[0]
    minimal, spent = shrink(spec, fingerprint)
    assert spent > 0
    # still fails the same way ...
    assert fingerprint in check_spec(minimal).findings
    # ... on a spec no bigger than the original
    assert minimal.iterations <= spec.iterations
    assert len(minimal.fault_plan) <= len(spec.fault_plan)
    assert len(minimal.mitigation) <= len(spec.mitigation)
    # the trigger fields survived the shrink
    assert planted_bug_active(minimal)


def test_shrink_is_deterministic(plant):
    spec = SpecGenerator(0).draw(PLANTED_INDEX)
    fingerprint = check_spec(spec).findings[0]
    assert shrink(spec, fingerprint) == shrink(spec, fingerprint)


# -- corpus documents --------------------------------------------------------------


def test_repro_documents_round_trip_and_detect_tampering(tmp_path):
    spec = CampaignSpec(deployment="AWS-Lambda", workload="ml-training",
                        iterations=1)
    path = tmp_path / repro_filename(spec, "crash:ValueError")
    write_repro(path, spec, "crash:ValueError", found={"seed": 0,
                                                       "index": 3})
    loaded, fingerprint, document = read_repro(path)
    assert loaded == spec
    assert fingerprint == "crash:ValueError"
    assert document["found"] == {"seed": 0, "index": 3}

    tampered = json.loads(path.read_text())
    tampered["spec"]["iterations"] = 99
    path.write_text(json.dumps(tampered))
    from repro.core.fuzz import FuzzError
    with pytest.raises(FuzzError, match="checksum"):
        read_repro(path)


# -- the acceptance demo: find, shrink, replay red, fix, replay green --------------


def test_planted_bug_found_shrunk_and_replayed(tmp_path, plant,
                                               monkeypatch):
    corpus = tmp_path / "corpus"
    result = run_fuzz(seed=0, budget=PLANTED_BUDGET, corpus_dir=corpus)
    assert result.executed == PLANTED_BUDGET
    assert not result.ok
    found = {verdict.index for verdict in result.findings}
    assert PLANTED_INDEX in found
    assert result.corpus_paths           # a shrunk reproducer landed
    for path in result.corpus_paths:
        minimal, fingerprint, _ = read_repro(path)
        assert planted_bug_active(minimal)

    # Replay while the bug is still in: every entry is red.
    red = replay_corpus(corpus)
    assert red and all(entry.reproduced for entry in red)

    # "Fix" the bug; the same corpus replays green.
    monkeypatch.delenv(PLANT_ENV)
    green = replay_corpus(corpus)
    assert green and not any(entry.reproduced for entry in green)
    assert not any(entry.error for entry in green)


def test_fuzz_session_is_deterministic(tmp_path, plant):
    corpora = []
    verdicts = []
    for run in ("a", "b"):
        corpus = tmp_path / run
        result = run_fuzz(seed=0, budget=PLANTED_BUDGET,
                          corpus_dir=corpus)
        corpora.append({path.name: path.read_bytes()
                        for path in sorted(corpus.iterdir())})
        verdicts.append([(verdict.index, verdict.spec_hash,
                          verdict.findings)
                         for verdict in result.verdicts])
    assert corpora[0] == corpora[1]
    assert verdicts[0] == verdicts[1]


def test_fuzz_session_journal_resumes(tmp_path):
    """A journaled session re-run with resume=True replays completed
    specs from the journal and reaches the same verdicts."""
    journal = tmp_path / "journal"
    first = run_fuzz(seed=1, budget=6, journal=journal,
                     time_budget_s=0.0)    # exhausted before any chunk
    assert first.exhausted and first.executed == 0

    second = run_fuzz(seed=1, budget=6, journal=journal, resume=True)
    assert second.executed == 6
    assert [verdict.ok for verdict in second.verdicts] == [True] * 6


def test_verdict_shape():
    verdict = check_spec(CampaignSpec(deployment="AWS-Lambda",
                                      workload="ml-training",
                                      iterations=1, warmup=0))
    assert isinstance(verdict, FuzzVerdict)
    assert verdict.spec_hash == verdict.spec.spec_hash()
    assert verdict.findings == ()
