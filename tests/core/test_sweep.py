"""Tests for the calibration sweep utilities."""

import pytest

from repro.core import Testbed, build_video_deployments
from repro.core.sweep import CalibrationSweep, GridSweep, SweepPoint, tabulate


def test_sweep_validates_platform_and_parameter():
    with pytest.raises(ValueError, match="platform"):
        CalibrationSweep("openwhisk", "scale_interval_s", [1.0])
    with pytest.raises(AttributeError, match="no field"):
        CalibrationSweep("azure", "warp_factor", [1.0])
    with pytest.raises(ValueError, match="at least one"):
        CalibrationSweep("azure", "scale_interval_s", [])


def test_sweep_points_carry_overrides():
    sweep = CalibrationSweep("aws", "keep_alive_s", [60.0, 120.0])
    points = sweep.points()
    assert [point.overrides for point in points] == [
        {"keep_alive_s": 60.0}, {"keep_alive_s": 120.0}]


def test_sweep_run_applies_override():
    sweep = CalibrationSweep("azure", "scale_interval_s", [7.0, 14.0])
    results = sweep.run(
        lambda testbed: testbed.azure_calibration.scale_interval_s)
    assert [point.value for point in results] == [7.0, 14.0]


def test_sweep_measures_real_behaviour():
    """Sensitivity smoke test: slower controller → slower fan-out."""
    def fanout_latency(testbed):
        deployment = build_video_deployments(testbed, n_workers=24)[
            "Az-Dorch"]
        deployment.deploy()
        return testbed.run(deployment.invoke(n_workers=24)).latency

    sweep = CalibrationSweep("azure", "scale_interval_s",
                             [2.0, 40.0], seed=3)
    results = sweep.run(fanout_latency)
    fast, slow = results[0].value, results[1].value
    assert slow > fast


def test_grid_sweep_cartesian_product():
    grid = GridSweep({"aws.keep_alive_s": [1.0, 2.0],
                      "azure.scale_interval_s": [5.0, 10.0, 20.0]})
    points = grid.points()
    assert len(points) == 6
    # Every combination appears exactly once.
    combos = {(point.overrides["aws.keep_alive_s"],
               point.overrides["azure.scale_interval_s"])
              for point in points}
    assert len(combos) == 6


def test_grid_sweep_validates_keys():
    with pytest.raises(ValueError, match="grid keys"):
        GridSweep({"keep_alive_s": [1.0]})
    with pytest.raises(AttributeError):
        GridSweep({"aws.warp": [1.0]})
    with pytest.raises(ValueError):
        GridSweep({})


def test_grid_sweep_run_applies_both_platforms():
    grid = GridSweep({"aws.keep_alive_s": [42.0],
                      "azure.cpu_slowdown": [2.0]})
    results = grid.run(lambda testbed: (
        testbed.aws_calibration.keep_alive_s,
        testbed.azure_calibration.cpu_slowdown))
    assert results[0].value == (42.0, 2.0)


def test_tabulate_rows():
    points = [SweepPoint(overrides={"a": 1, "b": 2}, value=9.0)]
    assert tabulate(points) == [[1, 2, 9.0]]
    with pytest.raises(ValueError):
        tabulate([])
