"""Tests for the experiment runner, campaigns, metrics and cost reports."""

import pytest

from repro.core import (
    ColdStartCampaign,
    ExperimentRunner,
    Testbed,
    build_ml_training_deployments,
    cdf_points,
    cost_report,
    percentile,
    summarize,
)
from repro.core.costs import monthly_projection
from repro.core.metrics import breakdown_from_spans, fraction_above


# -- metrics ---------------------------------------------------------------------

def test_percentile_basics():
    values = list(range(1, 101))
    assert percentile(values, 50) == pytest.approx(50.5)
    assert percentile(values, 99) == pytest.approx(99.01)
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1.0], 150)


def test_summarize_stats():
    stats = summarize([1.0, 2.0, 3.0, 4.0, 100.0])
    assert stats.count == 5
    assert stats.median == 3.0
    assert stats.minimum == 1.0
    assert stats.maximum == 100.0
    assert stats.p99 > stats.p95 >= stats.median
    with pytest.raises(ValueError):
        summarize([])


def test_cdf_points_monotonic():
    points = cdf_points([5.0, 1.0, 3.0, 2.0, 4.0])
    latencies = [latency for latency, _ in points]
    fractions = [fraction for _, fraction in points]
    assert latencies == sorted(latencies)
    assert fractions[-1] == pytest.approx(1.0)


def test_cdf_points_downsamples():
    points = cdf_points(list(range(1000)), n_points=50)
    assert len(points) == 50


def test_fraction_above():
    assert fraction_above([10, 20, 30, 40], 25) == 0.5
    assert fraction_above([10.0], 5.0) == 1.0


# -- campaigns --------------------------------------------------------------------

@pytest.fixture(scope="module")
def campaign():
    testbed = Testbed(seed=3)
    deployment = build_ml_training_deployments(testbed, "small")["AWS-Step"]
    runner = ExperimentRunner(think_time_s=20.0, settle_time_s=2.0)
    return runner.run_campaign(deployment, iterations=10, warmup=1)


def test_campaign_collects_requested_iterations(campaign):
    assert len(campaign.runs) == 10
    assert len(campaign.breakdowns) == 10


def test_campaign_latencies_positive_and_stable(campaign):
    stats = campaign.stats()
    assert stats.minimum > 0
    # Warm runs of the same workflow: p99 within 3x of median.
    assert stats.p99 < stats.median * 3


def test_campaign_breakdowns_cover_latency(campaign):
    breakdown = campaign.median_breakdown()
    assert breakdown.execution_time > 0
    assert breakdown.total <= campaign.stats().p99 * 1.5


def test_p99_breakdown_picks_tail_run(campaign):
    breakdown = campaign.p99_breakdown()
    assert breakdown.total > 0


def test_runner_validates_iterations():
    testbed = Testbed(seed=3)
    deployment = build_ml_training_deployments(testbed, "small")["AWS-Lambda"]
    with pytest.raises(ValueError):
        ExperimentRunner().run_campaign(deployment, iterations=0)


def test_cold_start_campaign_spacing():
    testbed = Testbed(seed=5)
    deployment = build_ml_training_deployments(testbed, "small")["AWS-Step"]
    campaign = ColdStartCampaign(interval_s=3600.0, days=0.5)
    assert campaign.request_count == 12
    result = campaign.run(deployment)
    assert len(result.runs) == 12
    # Every hourly request should be a cold start (keep-alive is 10 min).
    assert len(result.cold_start_delays) == 12
    delays = result.cold_start_delays
    # AWS-Step cold start: step overhead + Lambda cold ≈ 2.5-5 s (Fig 10).
    assert all(2.0 <= delay <= 6.0 for delay in delays)


def test_cold_start_campaign_validates_arguments():
    with pytest.raises(ValueError):
        ColdStartCampaign(interval_s=0.0)


# -- costs -------------------------------------------------------------------------

def test_cost_report_aws(campaign):
    pass  # placeholder ordering; real assertions below use fresh testbeds


def test_cost_report_components():
    testbed = Testbed(seed=9)
    deployment = build_ml_training_deployments(testbed, "small")["AWS-Step"]
    deployment.deploy()
    testbed.run(deployment.invoke())
    report = cost_report(deployment)
    assert report.platform == "aws"
    assert report.gb_s > 0
    assert report.compute_cost > 0
    assert report.transaction_count == 4
    assert report.transaction_cost == pytest.approx(4 * 2.5e-5)
    assert report.total == report.compute_cost + report.transaction_cost


def test_cost_report_per_run_scaling():
    testbed = Testbed(seed=9)
    deployment = build_ml_training_deployments(testbed, "small")["AWS-Lambda"]
    deployment.deploy()
    testbed.run(deployment.invoke())
    testbed.run(deployment.invoke())
    total = cost_report(deployment)
    per_run = cost_report(deployment, per_runs=2)
    assert per_run.gb_s == pytest.approx(total.gb_s / 2)


def test_azure_cost_report_includes_replay_gbs():
    testbed = Testbed(seed=9)
    deployment = build_ml_training_deployments(testbed, "small")["Az-Dorch"]
    deployment.deploy()
    testbed.run(deployment.invoke())
    report = cost_report(deployment)
    assert report.platform == "azure"
    assert report.replay_gb_s > 0
    assert report.transaction_count > 10  # queue + table traffic


def test_monthly_projection_adds_idle_polling():
    testbed = Testbed(seed=9)
    deployment = build_ml_training_deployments(testbed, "small")["Az-Func"]
    deployment.deploy()
    testbed.run(deployment.invoke())
    report = cost_report(deployment)
    projected = monthly_projection(report, runs_per_month=100,
                                   idle_transactions_per_month=1_000_000)
    assert projected.compute_cost == pytest.approx(report.compute_cost * 100)
    assert projected.transaction_cost > report.transaction_cost * 100
