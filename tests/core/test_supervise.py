"""Tests for the supervised runner: crashes, stalls, timeouts, signals.

The supervised pool's contract is graceful degradation with bit-exact
recovery: SIGKILLed workers are restarted and the sweep's outcomes match
an undisturbed serial run; deterministic failures surface as typed
per-spec errors without discarding sibling work; SIGINT leaves a journal
holding every completed outcome, resumable to a bit-identical result.

The chaos tests kill this test run's *own* worker processes (seeded, so
the kill schedule is reproducible); the SIGINT test drives a real
``python -m repro`` subprocess.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core import (
    CampaignSpec,
    ChaosPlan,
    ParallelRunner,
    ResultCache,
    SpecTimeout,
    SupervisedRunner,
    SweepJournal,
)
from repro.core.parallel import SpecExecutionError
from repro.core.persistence import payload_checksum

from tests.core.test_parallel import outcome_blob

pytestmark = pytest.mark.supervise

REPO_ROOT = Path(__file__).resolve().parents[2]


def sweep_specs(count=3, seed=31):
    names = ["AWS-Lambda", "Az-Dorch", "AWS-Step", "Az-Func"]
    return [CampaignSpec(deployment=names[i % len(names)], iterations=2,
                         warmup=0, seed=seed + i)
            for i in range(count)]


def broken_spec(seed=0):
    """A spec that fails deterministically at execution time."""
    return CampaignSpec(deployment="AWS-Lambda", iterations=1, warmup=0,
                        seed=seed, invoke_kwargs={"bogus_kwarg": 1})


# -- baseline: drop-in equivalence -----------------------------------------------

def test_supervised_pool_is_bit_identical_to_serial(tmp_path):
    specs = sweep_specs(3)
    reference = [outcome_blob(outcome)
                 for outcome in ParallelRunner(workers=1).run(specs)]
    result = SupervisedRunner(workers=2).run(specs)
    assert result.ok and result.completed == result.outcomes
    assert [outcome_blob(outcome) for outcome in result.outcomes] == \
        reference


def test_runner_validates_parameters():
    with pytest.raises(ValueError):
        SupervisedRunner(workers=0)
    with pytest.raises(ValueError):
        SupervisedRunner(spec_timeout_s=0.0)
    with pytest.raises(ValueError):
        SupervisedRunner(max_restarts=-1)
    with pytest.raises(ValueError):
        ChaosPlan(kill_probability=1.5)
    with pytest.raises(ValueError):
        ChaosPlan(kill_after_s=-1.0)


# -- typed failure taxonomy ------------------------------------------------------

def test_deterministic_failure_is_typed_and_spares_siblings(tmp_path):
    """A spec that raises fails once — no retry, it is deterministic —
    while its siblings complete, journal and cache as usual."""
    good = sweep_specs(1)[0]
    specs = [broken_spec(), good]
    cache = ResultCache(tmp_path / "cache")
    journal = SweepJournal(tmp_path / "j")
    result = SupervisedRunner(workers=2, cache=cache,
                              journal=journal).run(specs)

    assert not result.ok
    assert result.outcomes[0] is None
    assert outcome_blob(result.outcomes[1]) == \
        outcome_blob(ParallelRunner(workers=1).run([good])[0])

    [failure] = result.failures
    assert failure.index == 0
    assert failure.kind == "SpecExecutionError"
    assert failure.attempts == 1                 # deterministic: no retry
    assert specs[0].spec_hash()[:12] in str(failure)
    with pytest.raises(SpecExecutionError):
        result.raise_if_failed()

    # The completed sibling survived the failure in both stores.
    assert sorted(journal.completed(specs)) == [1]
    assert cache.get(good) is not None


def test_spec_timeout_kills_retries_then_fails_typed(tmp_path):
    """A wall-clock deadline the spec cannot meet burns the whole
    restart budget and surfaces as a SpecTimeout failure."""
    spec = CampaignSpec(deployment="Az-Dorch", iterations=40, warmup=0,
                        seed=3)
    runner = SupervisedRunner(workers=1, spec_timeout_s=0.01,
                              max_restarts=1, backoff_base_s=0.0,
                              stall_timeout_s=None)
    result = runner.run([spec])
    assert not result.ok and result.outcomes == [None]
    [failure] = result.failures
    assert failure.kind == "SpecTimeout"
    assert failure.attempts == 2                 # first try + one restart
    assert isinstance(failure.error, SpecTimeout)
    assert spec.spec_hash()[:12] in str(failure.error)


# -- in-process degradation ------------------------------------------------------

def test_first_launch_failure_degrades_inline_without_losing_specs(
        monkeypatch, tmp_path):
    """When the very first worker launch fails (sandboxed interpreter),
    the runner degrades to in-process execution — including the spec
    whose launch attempt triggered the degradation.  Regression: that
    spec was popped from the queue and lost, leaving a silent None hole
    in an ok PartialSweepResult."""
    specs = sweep_specs(3)
    reference = [outcome_blob(outcome)
                 for outcome in ParallelRunner(workers=1).run(specs)]

    def refuse_to_spawn(self, context, task, kills):
        raise OSError("process spawning forbidden")

    monkeypatch.setattr(SupervisedRunner, "_launch", refuse_to_spawn)
    journal = SweepJournal(tmp_path / "j")
    result = SupervisedRunner(workers=2, journal=journal).run(specs)

    assert result.ok, [str(failure) for failure in result.failures]
    assert all(outcome is not None for outcome in result.outcomes)
    assert [outcome_blob(outcome) for outcome in result.outcomes] == \
        reference
    assert journal.is_complete()


def test_drain_reports_discarded_error_messages(capsys):
    """An ('error', ...) message sitting in a worker pipe at interrupt
    time is deterministic — resume will only reproduce it — so the
    drain reports the broken spec to stderr instead of silently
    dropping the message."""
    import multiprocessing

    from repro.core.supervise import _Task, _Worker

    class _DoneProcess:
        def is_alive(self):
            return False

        def join(self, timeout=None):
            pass

    parent_conn, child_conn = multiprocessing.Pipe(duplex=False)
    child_conn.send(("error", "ValueError: boom", "traceback"))
    child_conn.close()
    spec = broken_spec()
    worker = _Worker(_Task(0, spec), _DoneProcess(), parent_conn,
                     heartbeat=None, deadline=None, kill_at=None)

    outcomes = [None]
    SupervisedRunner(workers=1)._drain_and_stop([worker], outcomes)

    stderr = capsys.readouterr().err
    assert spec.spec_hash()[:12] in stderr
    assert "fail again on resume" in stderr
    assert "ValueError: boom" in stderr
    assert outcomes == [None]


# -- self-chaos: SIGKILL recovery ------------------------------------------------

def test_chaos_sigkill_recovery_is_bit_identical(tmp_path):
    """Every spec's first attempt is SIGKILLed; the sweep still
    completes with outcomes bit-identical to the serial runner and a
    consistent, fully-checksummed journal."""
    specs = sweep_specs(3, seed=47)
    reference = [outcome_blob(outcome)
                 for outcome in ParallelRunner(workers=1).run(specs)]

    journal = SweepJournal(tmp_path / "j")
    chaos = ChaosPlan(kill_probability=1.0, kill_after_s=0.0,
                      max_kills_per_spec=1, seed=5)
    runner = SupervisedRunner(workers=2, journal=journal, chaos=chaos,
                              max_restarts=2, backoff_base_s=0.0)
    result = runner.run(specs)

    assert result.ok, [str(failure) for failure in result.failures]
    assert [outcome_blob(outcome) for outcome in result.outcomes] == \
        reference
    # Journal consistency: complete, checksum-verified, no quarantine.
    assert journal.is_complete()
    assert not list(journal.quarantine_dir.glob("*"))
    assert [outcome_blob(outcome) for outcome in journal.outcomes()] == \
        reference


def test_chaos_kill_schedule_is_seeded():
    plan = ChaosPlan(kill_probability=0.5, seed=9, max_kills_per_spec=3)
    first = [plan.should_kill(i, 1, 0) for i in range(32)]
    assert first == [plan.should_kill(i, 1, 0) for i in range(32)]
    assert any(first) and not all(first)
    assert not plan.should_kill(0, 1, 3)         # kill budget spent


# -- whole-process SIGINT --------------------------------------------------------

def _journal_entries(journal_root: Path):
    return sorted((journal_root / "entries").glob("*.json"))


@pytest.mark.skipif(sys.platform == "win32", reason="POSIX signals")
def test_sigint_flushes_journal_and_resume_is_bit_identical(tmp_path):
    """Ctrl-C mid-sweep: the process exits 130, every journal entry is
    intact (no torn writes), and resuming merges to the same outcomes
    an uninterrupted run produces."""
    journal_root = tmp_path / "journal"
    command = [sys.executable, "-m", "repro", "latency",
               "--iterations", "200", "--variants",
               "AWS-Lambda,AWS-Step,Az-Func,Az-Queue,Az-Dorch,Az-Dent",
               "--journal", str(journal_root), "--no-cache", "-j", "2"]
    env = dict(os.environ,
               PYTHONPATH=str(REPO_ROOT / "src"),
               REPRO_CACHE_DIR=str(tmp_path / "unused-cache"))
    process = subprocess.Popen(command, cwd=str(REPO_ROOT), env=env,
                               stdout=subprocess.PIPE,
                               stderr=subprocess.PIPE, text=True)
    try:
        # Wait until some progress is journaled, then interrupt.
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            if process.poll() is not None:
                break
            if len(_journal_entries(journal_root)) >= 1:
                break
            time.sleep(0.05)
        assert process.poll() is None, \
            f"sweep finished before it could be interrupted:\n" \
            f"{process.communicate()[1]}"
        process.send_signal(signal.SIGINT)
        stdout, stderr = process.communicate(timeout=60)
    finally:
        if process.poll() is None:
            process.kill()
            process.communicate()

    assert process.returncode == 130, (stdout, stderr)
    assert "repro resume" in stderr

    # No torn entries: every journal file parses and self-checksums.
    entries = _journal_entries(journal_root)
    assert entries, "SIGINT flushed nothing to the journal"
    for path in entries:
        document = json.loads(path.read_text())
        assert document["checksum"] == \
            payload_checksum(document["outcome"])

    # Resume re-runs only the missing specs; merged outcomes match an
    # uninterrupted serial run bit for bit.
    journal = SweepJournal(journal_root)
    specs = journal.open().specs()
    done_before = set(journal.completed(specs))
    result = SupervisedRunner(workers=2, journal=journal).resume()
    assert result.ok
    assert journal.is_complete()
    assert not list(journal.quarantine_dir.glob("*"))
    assert {index for index, outcome in enumerate(result.outcomes)
            if outcome.cached} >= done_before

    reference = ParallelRunner(workers=1).run(specs)
    assert [outcome_blob(outcome) for outcome in result.outcomes] == \
        [outcome_blob(outcome) for outcome in reference]
