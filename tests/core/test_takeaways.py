"""Tests for the key-takeaway scorecard."""

import pytest

from repro.core.takeaways import (
    Takeaway,
    evaluate_ml_takeaways,
    evaluate_video_takeaways,
    render_takeaways,
)


@pytest.fixture(scope="module")
def ml_takeaways():
    return evaluate_ml_takeaways(iterations=5, seed=1)


@pytest.fixture(scope="module")
def video_takeaways():
    return evaluate_video_takeaways(seed=1)


def test_ml_takeaways_all_hold(ml_takeaways):
    assert len(ml_takeaways) == 4
    for takeaway in ml_takeaways:
        assert takeaway.holds, f"{takeaway.claim}: {takeaway.evidence}"


def test_video_takeaways_all_hold(video_takeaways):
    assert len(video_takeaways) == 3
    for takeaway in video_takeaways:
        assert takeaway.holds, f"{takeaway.claim}: {takeaway.evidence}"


def test_takeaways_carry_evidence(ml_takeaways):
    for takeaway in ml_takeaways:
        assert takeaway.evidence
        assert takeaway.section == "V-A"


def test_render_takeaways_scorecard(ml_takeaways):
    text = render_takeaways(ml_takeaways)
    assert text.count("[ok]") == 4
    assert "4/4 key takeaways reproduced" in text


def test_render_marks_failures():
    text = render_takeaways([
        Takeaway("V-A", "claim", True, "yes"),
        Takeaway("V-B", "other claim", False, "nope"),
    ])
    assert "[ok]" in text and "[??]" in text
    assert "1/2 key takeaways reproduced" in text


def test_render_rejects_empty():
    with pytest.raises(ValueError):
        render_takeaways([])
