"""Tests for the parallel campaign engine, spec determinism and cache.

The load-bearing property is bit-identity: a :class:`CampaignSpec`
executed serially in this process, in a worker process, or replayed from
the on-disk cache must produce the *same* campaign — latencies,
cold-start delays, breakdowns and cost meters — or the parallel engine
is not a drop-in replacement for the serial runner.
"""

import itertools
import json

import pytest

from repro.core import (
    CampaignOutcome,
    CampaignSpec,
    ExperimentRunner,
    ParallelRunner,
    ResultCache,
    Testbed,
    build_ml_training_deployments,
    build_video_deployments,
    cost_report,
    execute_spec,
)
from repro.core.cache import cache_key
from repro.core.deployments.base import Deployment
from repro.core.persistence import campaign_to_dict, cost_report_to_dict


def outcome_blob(outcome: CampaignOutcome) -> str:
    """Every observable of an outcome, as one comparable string."""
    return json.dumps({
        "campaign": campaign_to_dict(outcome.campaign),
        "cost": cost_report_to_dict(outcome.cost),
        "idle": outcome.idle_transactions,
    }, sort_keys=True, default=repr)


# -- spec validation and identity ------------------------------------------------

def test_spec_rejects_bad_fields():
    with pytest.raises(ValueError):
        CampaignSpec(deployment="AWS-Step", workload="quantum")
    with pytest.raises(ValueError):
        CampaignSpec(deployment="AWS-Step", campaign="sideways")
    with pytest.raises(ValueError):
        CampaignSpec(deployment="AWS-Step", iterations=0)
    with pytest.raises(ValueError):
        CampaignSpec(deployment="AWS-Step",
                     calibration_overrides={"scale_interval_s": 5.0})


def test_spec_hash_is_stable_and_sensitive():
    spec = CampaignSpec(deployment="AWS-Step", iterations=5, seed=3)
    same = CampaignSpec(deployment="AWS-Step", iterations=5, seed=3)
    other = CampaignSpec(deployment="AWS-Step", iterations=5, seed=4)
    assert spec.spec_hash() == same.spec_hash()
    assert spec.spec_hash() != other.spec_hash()
    assert spec == same and hash(spec) == hash(same)


def test_override_order_does_not_change_identity():
    first = CampaignSpec(
        deployment="Az-Dorch",
        calibration_overrides=[("azure.scale_interval_s", 10.0),
                               ("aws.concurrency_limit", 500)])
    second = CampaignSpec(
        deployment="Az-Dorch",
        calibration_overrides=[("aws.concurrency_limit", 500),
                               ("azure.scale_interval_s", 10.0)])
    assert first.spec_hash() == second.spec_hash()
    assert cache_key(first) == cache_key(second)


def test_calibration_override_changes_cache_key_only_via_calibration():
    base = CampaignSpec(deployment="Az-Dorch")
    tweaked = CampaignSpec(
        deployment="Az-Dorch",
        calibration_overrides={"azure.scale_interval_s": 99.0})
    assert base.calibration_hash() != tweaked.calibration_hash()
    assert cache_key(base) != cache_key(tweaked)
    assert tweaked.calibrations()["azure"].scale_interval_s == 99.0
    with pytest.raises(AttributeError):
        CampaignSpec(deployment="Az-Dorch",
                     calibration_overrides={"azure.not_a_field": 1}
                     ).calibrations()


# -- determinism: serial / worker / cache (satellite S3 + acceptance) ------------

ML_SPEC = CampaignSpec(deployment="Az-Dorch", workload="ml-training",
                       scale="small", iterations=3, warmup=1, seed=29)
VIDEO_SPEC = CampaignSpec(deployment="AWS-Step", workload="video",
                          fanout=4, campaign="latency", iterations=1,
                          warmup=0, think_time_s=0.0, settle_time_s=0.0,
                          seed=7, invoke_kwargs={"n_workers": 4})


def serial_reference(spec: CampaignSpec) -> CampaignOutcome:
    """The spec's campaign, hand-driven through the serial runner."""
    Deployment._run_ids = itertools.count(1)
    testbed = Testbed(seed=spec.seed, calibrations=spec.calibrations())
    if spec.workload == "ml-training":
        deployment = build_ml_training_deployments(
            testbed, spec.scale, seed=spec.workload_seed)[spec.deployment]
    else:
        deployment = build_video_deployments(
            testbed, n_workers=spec.fanout,
            seed=spec.workload_seed)[spec.deployment]
    runner = ExperimentRunner(think_time_s=spec.think_time_s,
                              settle_time_s=spec.settle_time_s)
    campaign = runner.run_campaign(deployment, spec.iterations,
                                   warmup=spec.warmup,
                                   invoke_kwargs=dict(spec.invoke_kwargs)
                                   or None)
    cost = cost_report(deployment,
                       per_runs=spec.warmup + spec.iterations)
    return CampaignOutcome(spec=spec, campaign=campaign, cost=cost)


@pytest.mark.parametrize("spec", [ML_SPEC, VIDEO_SPEC],
                         ids=["ml-training", "video"])
def test_spec_matches_hand_driven_serial_runner(spec):
    assert outcome_blob(serial_reference(spec)) == \
        outcome_blob(execute_spec(spec))


@pytest.mark.parametrize("spec", [ML_SPEC, VIDEO_SPEC],
                         ids=["ml-training", "video"])
def test_worker_process_is_bit_identical(spec, tmp_path):
    """Serial in-process, worker-process, and two cache replays agree."""
    serial = ParallelRunner(workers=1).run([spec])[0]

    # Two specs force the pool path; workers=2 exercises real fan-out
    # (the runner degrades to serial if the sandbox forbids pools, which
    # still must be bit-identical).
    decoy = CampaignSpec(deployment=spec.deployment,
                         workload=spec.workload, scale=spec.scale,
                         fanout=spec.fanout, campaign=spec.campaign,
                         iterations=spec.iterations, warmup=spec.warmup,
                         think_time_s=spec.think_time_s,
                         settle_time_s=spec.settle_time_s,
                         invoke_kwargs=spec.invoke_kwargs,
                         seed=spec.seed + 1)
    cache = ResultCache(tmp_path / "cache")
    parallel = ParallelRunner(workers=2, cache=cache)
    first = parallel.run([spec, decoy])[0]
    replay = parallel.run([spec])[0]
    again = parallel.run([spec])[0]

    reference = outcome_blob(serial)
    assert outcome_blob(first) == reference
    assert outcome_blob(replay) == reference
    assert outcome_blob(again) == reference
    assert not first.cached and replay.cached and again.cached

    # The cached campaign preserves the exact floats.
    assert replay.campaign.latencies == serial.campaign.latencies
    assert replay.campaign.cold_start_delays == \
        serial.campaign.cold_start_delays
    assert replay.cost.gb_s == serial.cost.gb_s
    assert replay.cost.transaction_count == serial.cost.transaction_count


def test_outcomes_come_back_in_spec_order(tmp_path):
    specs = [CampaignSpec(deployment=name, iterations=2, warmup=0,
                          seed=11)
             for name in ("AWS-Lambda", "Az-Func", "Az-Queue")]
    outcomes = ParallelRunner(
        workers=2, cache=ResultCache(tmp_path / "c")).run(specs)
    assert [outcome.spec.deployment for outcome in outcomes] == \
        ["AWS-Lambda", "Az-Func", "Az-Queue"]
    assert all(outcome.campaign.runs for outcome in outcomes)


# -- campaign types through the spec interface -----------------------------------

def test_coldstart_spec_executes():
    spec = CampaignSpec(deployment="Az-Dorch", campaign="coldstart",
                        interval_s=3600.0, days=0.2, seed=5)
    outcome = execute_spec(spec)
    assert outcome.campaign.cold_start_delays
    assert outcome_blob(outcome) == outcome_blob(execute_spec(spec))


def test_fanout_spec_executes_and_meters_idle():
    spec = CampaignSpec(deployment="Az-Dorch", workload="video",
                        campaign="fanout", fanout=3, batch=2,
                        settle_time_s=5.0, idle_window_s=600.0, seed=1)
    outcome = execute_spec(spec)
    assert len(outcome.campaign.runs) == 2
    assert outcome.idle_transactions >= 0
    assert outcome_blob(outcome) == outcome_blob(execute_spec(spec))


# -- cache mechanics -------------------------------------------------------------

def test_cache_miss_on_empty_and_corrupt_documents(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    spec = CampaignSpec(deployment="AWS-Lambda", iterations=2, warmup=0)
    assert cache.get(spec) is None and len(cache) == 0

    outcome = execute_spec(spec)
    path = cache.put(spec, outcome)
    assert path.exists() and len(cache) == 1
    assert outcome_blob(cache.get(spec)) == outcome_blob(outcome)

    path.write_text("not json {")
    assert cache.get(spec) is None          # corrupt → miss, not crash
    path.write_text(json.dumps({"format_version": -1}))
    assert cache.get(spec) is None          # stale format → miss

    cache.put(spec, outcome)
    assert cache.clear() == 1 and len(cache) == 0


def test_cache_write_is_atomic_and_truncation_quarantines(tmp_path):
    """A document truncated mid-entry (a torn write that somehow landed,
    or on-disk corruption) is quarantined on read and reported as a
    miss, and the recompute overwrites it cleanly."""
    cache = ResultCache(tmp_path / "cache")
    spec = CampaignSpec(deployment="Az-Func", iterations=2, warmup=0,
                        seed=13)
    outcome = execute_spec(spec)
    path = cache.put(spec, outcome)
    # The atomic write left no staging files behind the published name.
    assert not list(path.parent.glob(".*.tmp"))

    intact = path.read_text()
    path.write_text(intact[:len(intact) // 2])   # truncate mid-payload
    assert cache.get(spec) is None
    quarantined = list((cache.root / "quarantine").glob("*.corrupt"))
    assert len(quarantined) == 1 and not path.exists()

    cache.put(spec, outcome)                     # recompute-and-overwrite
    assert outcome_blob(cache.get(spec)) == outcome_blob(outcome)


def test_cache_checksum_mismatch_is_a_miss(tmp_path):
    """Valid JSON whose payload disagrees with its checksum (bit rot)
    is quarantined, not replayed."""
    cache = ResultCache(tmp_path / "cache")
    spec = CampaignSpec(deployment="Az-Func", iterations=2, warmup=0,
                        seed=13)
    path = cache.put(spec, execute_spec(spec))
    document = json.loads(path.read_text())
    document["outcome"]["idle_transactions"] = 10**9
    path.write_text(json.dumps(document, default=repr))
    assert cache.get(spec) is None
    assert list((cache.root / "quarantine").glob("*.corrupt"))


def test_pool_surfaces_worker_failure_as_typed_spec_error(tmp_path):
    """A spec that raises in a worker fails the run with a typed error
    naming the failing spec — and the specs that completed are already
    cached, so a retry skips them."""
    from repro.core.parallel import SpecExecutionError

    good = CampaignSpec(deployment="AWS-Lambda", iterations=2, warmup=0,
                        seed=3)
    # Constructs fine, fails inside the worker: the stray kwarg only
    # explodes when the campaign invokes the deployment.
    bad = CampaignSpec(deployment="AWS-Lambda", iterations=1, warmup=0,
                       invoke_kwargs={"bogus_kwarg": 1})
    cache = ResultCache(tmp_path / "cache")
    with pytest.raises(SpecExecutionError) as excinfo:
        ParallelRunner(workers=2, cache=cache).run([good, bad])

    error = excinfo.value
    assert error.spec_hash == bad.spec_hash()
    assert bad.spec_hash()[:12] in str(error)
    assert "TypeError" in error.message
    assert error.traceback_text                  # worker traceback kept
    # Completed sibling was cached before the failure was raised.
    hit = cache.get(good)
    assert hit is not None
    assert outcome_blob(hit) == outcome_blob(execute_spec(good))


def test_serial_path_raises_same_typed_error():
    from repro.core.parallel import SpecExecutionError

    bad = CampaignSpec(deployment="AWS-Lambda", iterations=1, warmup=0,
                       invoke_kwargs={"bogus_kwarg": 1})
    with pytest.raises(SpecExecutionError) as excinfo:
        ParallelRunner(workers=1).run([bad])
    assert excinfo.value.spec_hash == bad.spec_hash()


def test_cache_env_var_sets_default_root(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env-root"))
    cache = ResultCache()
    assert cache.root == tmp_path / "env-root"
    assert "env-root" in repr(cache)


def test_runner_rejects_nonpositive_workers():
    with pytest.raises(ValueError):
        ParallelRunner(workers=0)


def test_run_campaigns_returns_campaigns_only():
    specs = [CampaignSpec(deployment="AWS-Lambda", iterations=2,
                          warmup=0, seed=2)]
    campaigns = ParallelRunner(workers=1).run_campaigns(specs)
    assert len(campaigns) == 1 and campaigns[0].latencies
