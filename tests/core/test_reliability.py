"""Reliability campaigns: determinism, summary contents, persistence.

The acceptance bar for the chaos harness: the same ``(seed, FaultPlan)``
must yield a bit-identical reliability report whether the campaign runs
in this process, in a worker pool, or is replayed from the on-disk
cache.
"""

import json

import pytest

from repro.core import (
    CampaignOutcome,
    CampaignSpec,
    FaultPlan,
    ParallelRunner,
    ReliabilitySummary,
    ResultCache,
    execute_spec,
)
from repro.core.cache import cache_key
from repro.core.persistence import (
    campaign_to_dict,
    cost_report_to_dict,
    reliability_from_dict,
    reliability_to_dict,
)

pytestmark = pytest.mark.faults


def outcome_blob(outcome: CampaignOutcome) -> str:
    """Every observable of a reliability outcome, as one string."""
    return json.dumps({
        "campaign": campaign_to_dict(outcome.campaign),
        "cost": cost_report_to_dict(outcome.cost),
        "reliability": (reliability_to_dict(outcome.reliability)
                        if outcome.reliability is not None else None),
    }, sort_keys=True, default=repr)


PLAN = FaultPlan(crash_probability=0.2, error_probability=0.05,
                 retry_max_attempts=3, retry_interval_s=1.0)

AWS_SPEC = CampaignSpec(deployment="AWS-Step", workload="ml-training",
                        scale="small", campaign="reliability",
                        iterations=3, warmup=1, seed=83,
                        fault_plan=PLAN.to_items())
AZ_SPEC = CampaignSpec(deployment="Az-Dorch", workload="ml-training",
                       scale="small", campaign="reliability",
                       iterations=3, warmup=1, seed=83,
                       fault_plan=PLAN.to_items())


# -- spec plumbing -----------------------------------------------------------------

def test_spec_validates_fault_plan_eagerly():
    with pytest.raises(ValueError):
        CampaignSpec(deployment="AWS-Step", campaign="reliability",
                     fault_plan=(("crash_probability", 2.0),))
    with pytest.raises(ValueError):
        CampaignSpec(deployment="AWS-Step",
                     fault_plan=(("not_a_fault", 1),))
    with pytest.raises(ValueError):
        CampaignSpec(deployment="AWS-Step", campaign="reliability",
                     iterations=0)


def test_fault_plan_changes_spec_identity():
    base = CampaignSpec(deployment="AWS-Step", campaign="reliability",
                        iterations=2, seed=1)
    faulted = CampaignSpec(deployment="AWS-Step", campaign="reliability",
                           iterations=2, seed=1,
                           fault_plan=PLAN.to_items())
    assert base.spec_hash() != faulted.spec_hash()
    assert cache_key(base) != cache_key(faulted)
    assert base.fault_plan_obj() is None
    assert faulted.fault_plan_obj() == PLAN


def test_fault_plan_item_order_does_not_change_identity():
    items = PLAN.to_items()
    shuffled = tuple(reversed(items))
    first = CampaignSpec(deployment="AWS-Step", campaign="reliability",
                         iterations=2, fault_plan=items)
    second = CampaignSpec(deployment="AWS-Step", campaign="reliability",
                          iterations=2, fault_plan=shuffled)
    assert first.spec_hash() == second.spec_hash()


# -- end-to-end execution ----------------------------------------------------------

@pytest.mark.parametrize("spec", [AWS_SPEC, AZ_SPEC],
                         ids=["AWS-Step", "Az-Dorch"])
def test_reliability_campaign_produces_summary(spec):
    outcome = execute_spec(spec)
    summary = outcome.reliability
    assert isinstance(summary, ReliabilitySummary)
    assert summary.deployment == spec.deployment
    assert summary.total_runs == spec.iterations
    assert summary.successes + summary.failures == summary.total_runs
    assert 0.0 <= summary.success_rate <= 1.0
    # The plan actually fired: some fault was injected across the runs.
    injected = (summary.injected_crashes + summary.injected_errors
                + summary.injected_stragglers)
    assert injected > 0
    # Crashed attempts spent billable compute.
    if summary.injected_crashes:
        assert summary.wasted_gb_s > 0
    assert summary.cost_per_run > 0
    assert summary.baseline_cost_per_run > 0
    assert summary.cost_amplification == pytest.approx(
        summary.cost_per_run / summary.baseline_cost_per_run)


def test_fault_free_reliability_is_its_own_baseline():
    spec = CampaignSpec(deployment="Az-Dorch", workload="ml-training",
                        scale="small", campaign="reliability",
                        iterations=2, warmup=0, seed=19)
    summary = execute_spec(spec).reliability
    assert summary.failures == 0
    assert summary.retries == 0
    assert summary.cost_amplification == pytest.approx(1.0)
    assert summary.tail_inflation == pytest.approx(1.0)
    assert summary.p99_latency_s == summary.baseline_p99_latency_s


def test_host_crash_recovery_is_not_counted_as_retries():
    """Regression guard: history-replay recovery after a host crash
    re-drives the orchestrator, but those replayed activities are
    restarts of *lost* work, not platform retries — the retry total must
    stay zero when host crashes are the only injected fault."""
    plan = FaultPlan(host_crash_times=(40.0,))
    spec = CampaignSpec(deployment="Az-Dorch", workload="ml-training",
                        scale="small", campaign="reliability",
                        iterations=3, warmup=0, seed=7,
                        fault_plan=plan.to_items())
    summary = execute_spec(spec).reliability
    assert summary.host_crashes == 1          # the crash actually fired
    assert summary.retries == 0               # recovery != retry
    assert summary.mean_recovery_time_s >= 0.0


# -- bit-identity: serial / worker pool / cache (acceptance) -----------------------

@pytest.mark.parametrize("spec", [AWS_SPEC, AZ_SPEC],
                         ids=["AWS-Step", "Az-Dorch"])
def test_faulted_campaign_is_bit_identical_across_runners(spec, tmp_path):
    serial = ParallelRunner(workers=1).run([spec])[0]

    # A decoy spec forces the real pool path, as in test_parallel.py.
    decoy = CampaignSpec(deployment=spec.deployment,
                         workload=spec.workload, scale=spec.scale,
                         campaign=spec.campaign,
                         iterations=spec.iterations, warmup=spec.warmup,
                         seed=spec.seed + 1, fault_plan=spec.fault_plan)
    cache = ResultCache(tmp_path / "cache")
    parallel = ParallelRunner(workers=2, cache=cache)
    pooled = parallel.run([spec, decoy])[0]
    replay = parallel.run([spec])[0]

    reference = outcome_blob(serial)
    assert outcome_blob(pooled) == reference
    assert outcome_blob(replay) == reference
    assert not pooled.cached and replay.cached

    # The cached summary preserves the exact report, field for field.
    assert replay.reliability == serial.reliability
    assert replay.reliability.wasted_gb_s == serial.reliability.wasted_gb_s


def test_reliability_survives_cache_round_trip(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    outcome = execute_spec(AWS_SPEC)
    cache.put(AWS_SPEC, outcome)
    replay = cache.get(AWS_SPEC)
    assert replay is not None and replay.cached
    assert replay.reliability == outcome.reliability


# -- persistence -------------------------------------------------------------------

def test_reliability_summary_dict_round_trip():
    summary = execute_spec(AZ_SPEC).reliability
    document = reliability_to_dict(summary)
    assert document["kind"] == "reliability"
    assert reliability_from_dict(document) == summary
    assert reliability_from_dict(json.loads(json.dumps(document))) == summary
