"""Idle-poll elision: fewer kernel events, the same transaction bill.

The fast path replaces sampled empty polls on a provably idle queue with
a blocking wait plus arithmetic billing.  These tests pin the contract:

* the bill matches sampled polling (elision changes *when* polls are
  recorded, not how many);
* the kernel dispatches far fewer events during idle waits;
* anything that makes poll timing observable — fault plans, depth
  bounds — falls back to honest sampled polling;
* campaign outcomes (including audit verdicts) stay bit-identical
  across the serial runner, the worker pool, and cache replay with the
  fast path on and off, with and without a fault plan.
"""

import json

import numpy as np
import pytest

from repro.core.cache import ResultCache
from repro.core.parallel import CampaignSpec, ParallelRunner, execute_spec
from repro.core.persistence import (
    audit_to_dict,
    campaign_to_dict,
    cost_report_to_dict,
)
from repro.platforms.faults import FaultPlan
from repro.sim import Environment
from repro.storage.meter import TransactionMeter
from repro.storage.queue import CloudQueue


def make_queue(elision, **kwargs):
    env = Environment()
    meter = TransactionMeter(clock=lambda: env.now)
    queue = CloudQueue(env, meter, np.random.default_rng(0),
                       idle_poll_elision=elision, **kwargs)
    return env, meter, queue


def drain_receive(env, queue, deadline):
    def consumer(env):
        yield from queue.receive(deadline=deadline)

    env.process(consumer(env))
    env.run()


# -- billing parity and event reduction --------------------------------------------

def test_elision_bills_like_sampled_polling():
    env_s, meter_s, queue_s = make_queue(elision=False)
    drain_receive(env_s, queue_s, deadline=600.0)
    sampled = meter_s.count("queue", "poll")

    env_e, meter_e, queue_e = make_queue(elision=True)
    drain_receive(env_e, queue_e, deadline=600.0)
    elided = meter_e.count("queue", "poll")

    # The arithmetic ignores per-poll service latency (ms against 30 s
    # backoff), so allow a poll or two of drift over ten minutes.
    assert sampled > 10
    assert abs(elided - sampled) <= 3


def test_elision_cuts_kernel_events():
    env_s, _, queue_s = make_queue(elision=False)
    drain_receive(env_s, queue_s, deadline=600.0)

    env_e, _, queue_e = make_queue(elision=True)
    drain_receive(env_e, queue_e, deadline=600.0)

    assert env_e._sequence * 5 < env_s._sequence


def test_meter_read_settles_a_parked_consumer():
    """A consumer parked with no deadline still accrues its bill: any
    meter read settles the outstanding polls up to the current time."""
    env, meter, queue = make_queue(elision=True)

    def consumer(env):
        yield from queue.receive()   # parks forever — nobody enqueues

    env.process(consumer(env))
    env.run(until=600.0)
    parked = meter.count("queue", "poll")

    env_s, meter_s, queue_s = make_queue(elision=False)
    drain_receive(env_s, queue_s, deadline=600.0)
    sampled = meter_s.count("queue", "poll")
    assert abs(parked - sampled) <= 3


def test_elided_consumer_wakes_on_enqueue():
    env, meter, queue = make_queue(elision=True)
    got = []

    def consumer(env):
        message = yield from queue.receive()
        got.append((env.now, message.value))

    def producer(env):
        yield env.timeout(100.0)
        yield from queue.enqueue("ping")

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert len(got) == 1
    at, value = got[0]
    assert value == "ping"
    # Woken by the enqueue, then one real (metered) poll — sub-second
    # delivery, not a backoff period later.
    assert 100.0 <= at < 101.0


# -- fallback to sampled polling ---------------------------------------------------

class _InertFaults:
    """A fault plan presence marker: injects nothing, disables elision."""

    def draw_queue_faults(self, name):
        return 0.0, False


@pytest.mark.parametrize("kwargs", [{"faults": _InertFaults()},
                                    {"max_depth": 100}],
                         ids=["fault-plan", "depth-bound"])
def test_observable_timing_disables_elision(kwargs):
    env, meter, queue = make_queue(elision=True, **kwargs)
    drain_receive(env, queue, deadline=600.0)
    # Sampled polling: one record per poll, nothing accrued lazily.
    poll_records = [record for record in meter.records
                    if record.operation == "poll"]
    assert all(record.count == 1 for record in poll_records)
    assert len(poll_records) > 10
    assert not queue._idle_accruals


# -- campaign-level parity ---------------------------------------------------------

def _spec(elision, **kwargs):
    return CampaignSpec(
        deployment="Az-Dorch", workload="ml-training", scale="small",
        iterations=2, seed=17, audit=True,
        calibration_overrides={"azure.idle_poll_elision": elision},
        **kwargs)


def outcome_blob(outcome):
    return json.dumps({
        "campaign": campaign_to_dict(outcome.campaign),
        "cost": cost_report_to_dict(outcome.cost),
        "idle": outcome.idle_transactions,
        "audit": audit_to_dict(outcome.audit)
        if outcome.audit is not None else None,
    }, sort_keys=True, default=repr)


def test_elision_preserves_campaign_bill_and_verdict():
    on = execute_spec(_spec(True))
    off = execute_spec(_spec(False))
    assert on.audit.passed and off.audit.passed
    assert on.campaign.latencies and off.campaign.latencies
    # Elision shifts poll timestamps (and the rng draws their latencies
    # consumed), so runs are not bit-identical across the flag — but the
    # transaction bill must agree to within backoff-arithmetic drift.
    on_polls = on.cost.transaction_count
    off_polls = off.cost.transaction_count
    assert abs(on_polls - off_polls) <= max(5, 0.05 * off_polls)


FAULTED = dict(campaign="reliability",
               fault_plan=FaultPlan(error_probability=0.2,
                                    queue_delay_probability=0.3,
                                    retry_max_attempts=3).to_items())


@pytest.mark.parametrize("elision", [True, False],
                         ids=["elision-on", "elision-off"])
@pytest.mark.parametrize("extra", [{}, FAULTED],
                         ids=["fault-free", "fault-plan"])
def test_bit_identical_across_runners(elision, extra, tmp_path):
    """Acceptance: serial, worker pool, and cache replay agree on every
    observable — including audit verdicts — whichever way the idle-poll
    flag is set, with and without a fault plan."""
    spec = _spec(elision, **extra)
    serial = execute_spec(spec)
    runner = ParallelRunner(workers=2, cache=ResultCache(tmp_path / "c"))
    worker = runner.run([spec])[0]
    replay = runner.run([spec])[0]
    assert not worker.cached and replay.cached
    reference = outcome_blob(serial)
    assert outcome_blob(worker) == reference
    assert outcome_blob(replay) == reference
    assert serial.audit is not None and serial.audit.passed
