"""Property-based cross-cloud equivalence.

Hypothesis generates random workflow IR trees over a small algebra of
deterministic handlers; each tree is compiled to an ASL state machine and
to a durable orchestrator and executed on a fresh testbed.  The two
clouds must produce **identical outputs** — the strongest statement the
workbench can make about the faithfulness of its two execution engines.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Testbed
from repro.core.workflow import Workflow, map_over, parallel, sequence, task
from repro.platforms.base import FunctionSpec


# -- deterministic handler algebra over 'documents' --------------------------
# Documents are {"value": int, "items": [int, ...]}.

def _handler(fn):
    def handler(ctx, event):
        yield from ctx.busy(0.05)
        return fn(event)
    return handler


HANDLERS = {
    "inc": _handler(lambda d: {"value": d["value"] + 1,
                               "items": d["items"]}),
    "double": _handler(lambda d: {"value": d["value"] * 2,
                                  "items": d["items"]}),
    "spread": _handler(lambda d: {"value": d["value"],
                                  "items": [d["value"] + i
                                            for i in range(3)]}),
    "item_inc": _handler(lambda i: i + 1),
    "summarize": _handler(lambda d: {"value": sum(d["items"]),
                                     "items": d["items"]}),
}

#: Leaf tasks usable at document level (item_inc operates on ints, so it
#: only appears inside map iterators).
DOC_TASKS = ["inc", "double", "spread", "summarize"]


@st.composite
def workflow_trees(draw, depth=0):
    """Random document-level workflow nodes."""
    if depth >= 2:
        return task(draw(st.sampled_from(DOC_TASKS)))
    choice = draw(st.integers(0, 3))
    if choice == 0:
        return task(draw(st.sampled_from(DOC_TASKS)))
    if choice == 1:
        steps = [draw(workflow_trees(depth=depth + 1))
                 for _ in range(draw(st.integers(1, 3)))]
        return sequence(*steps)
    if choice == 2:
        branches = [task(draw(st.sampled_from(DOC_TASKS)))
                    for _ in range(draw(st.integers(1, 3)))]
        # A parallel block yields a list of documents; merge it back into
        # a single document so the algebra stays closed.
        return sequence(parallel(*branches), task("merge_docs"))
    # Map over the items list; ensure items exist first via 'spread'.
    return sequence(task("spread"),
                    map_over("$.items", task("item_inc")),
                    task("wrap_items"))


def _register_all(testbed):
    handlers = dict(HANDLERS)
    handlers["wrap_items"] = _handler(
        lambda items: {"value": sum(items), "items": items})
    handlers["merge_docs"] = _handler(
        lambda docs: {"value": sum(d["value"] for d in docs),
                      "items": [i for d in docs for i in d["items"]]})
    for name, handler in handlers.items():
        testbed.lambdas.register(FunctionSpec(
            name=name, handler=handler, memory_mb=512, timeout_s=60.0))
        testbed.app.register(FunctionSpec(
            name=name, handler=handler, memory_mb=1536, timeout_s=60.0))


_counter = {"n": 0}


@given(root=workflow_trees(), value=st.integers(-5, 5))
@settings(max_examples=40, deadline=None)
def test_random_workflows_agree_across_clouds(root, value):
    _counter["n"] += 1
    workflow = Workflow(f"prop-{_counter['n']}", root)
    testbed = Testbed(seed=1)
    _register_all(testbed)
    workflow.deploy_aws(testbed)
    workflow.deploy_azure(testbed)

    document = {"value": value, "items": [value]}
    record = testbed.run(
        testbed.stepfunctions.start_execution(workflow.name, document))
    assert record.status == "SUCCEEDED", record.error
    azure_output = testbed.run(
        testbed.durable.client.run(workflow.name, document))
    assert record.output == azure_output


@given(root=workflow_trees(), value=st.integers(-3, 3))
@settings(max_examples=20, deadline=None)
def test_random_workflows_bill_both_platforms(root, value):
    """Every cross-cloud run leaves a coherent billing trail."""
    _counter["n"] += 1
    workflow = Workflow(f"bill-{_counter['n']}", root)
    testbed = Testbed(seed=2)
    _register_all(testbed)
    workflow.deploy_aws(testbed)
    workflow.deploy_azure(testbed)
    document = {"value": value, "items": [value]}
    testbed.run(testbed.stepfunctions.start_execution(workflow.name,
                                                      document))
    testbed.run(testbed.durable.client.run(workflow.name, document))

    n_tasks = len(workflow.functions())
    assert testbed.aws.billing.total_gb_s() > 0
    assert testbed.azure.billing.total_gb_s() > 0
    # AWS metered at least one transition per task state.
    assert testbed.aws.meter.count(service="stepfunctions") >= 1
    # Azure persisted history for the orchestration.
    assert testbed.azure.meter.count(service="table") >= 4
