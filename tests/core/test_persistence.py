"""Tests for JSON persistence of campaigns and cost reports."""

import json

import pytest

from repro.core import Testbed, build_ml_training_deployments, cost_report
from repro.core.costs import CostReport
from repro.core.experiment import ExperimentRunner
from repro.core.persistence import (
    campaign_from_dict,
    campaign_to_dict,
    cost_report_from_dict,
    cost_report_to_dict,
    load_results,
    save_results,
)


@pytest.fixture(scope="module")
def campaign_and_report():
    testbed = Testbed(seed=2)
    deployment = build_ml_training_deployments(testbed, "small")["AWS-Step"]
    runner = ExperimentRunner(think_time_s=10.0, settle_time_s=2.0)
    campaign = runner.run_campaign(deployment, iterations=4, warmup=0)
    return campaign, cost_report(deployment, per_runs=4)


def test_campaign_roundtrip(campaign_and_report):
    campaign, _ = campaign_and_report
    restored = campaign_from_dict(campaign_to_dict(campaign))
    assert restored.deployment == campaign.deployment
    assert restored.latencies == campaign.latencies
    assert restored.stats() == campaign.stats()
    assert len(restored.breakdowns) == len(campaign.breakdowns)


def test_cost_report_roundtrip(campaign_and_report):
    _, report = campaign_and_report
    restored = cost_report_from_dict(cost_report_to_dict(report))
    assert restored == report


def test_save_and_load_results_file(tmp_path, campaign_and_report):
    campaign, report = campaign_and_report
    path = save_results(tmp_path / "nested" / "results.json",
                        campaigns=[campaign], cost_reports=[report],
                        metadata={"scale": "small", "seed": 2})
    assert path.exists()
    loaded = load_results(path)
    assert loaded["metadata"]["scale"] == "small"
    assert loaded["campaigns"][0].latencies == campaign.latencies
    assert loaded["cost_reports"][0] == report


def test_saved_file_is_plain_json(tmp_path, campaign_and_report):
    campaign, _ = campaign_and_report
    path = save_results(tmp_path / "r.json", campaigns=[campaign])
    data = json.loads(path.read_text())
    assert data["kind"] == "results"
    assert data["format_version"] == 1


def test_kind_mismatch_rejected(campaign_and_report):
    campaign, report = campaign_and_report
    with pytest.raises(ValueError, match="expected"):
        campaign_from_dict(cost_report_to_dict(report))
    with pytest.raises(ValueError, match="expected"):
        cost_report_from_dict(campaign_to_dict(campaign))


def test_version_mismatch_rejected(campaign_and_report):
    campaign, _ = campaign_and_report
    data = campaign_to_dict(campaign)
    data["format_version"] = 99
    with pytest.raises(ValueError, match="version"):
        campaign_from_dict(data)


def test_exotic_run_values_stringified(tmp_path):
    from repro.core.deployments.base import RunResult
    from repro.core.experiment import CampaignResult

    class Exotic:
        def __repr__(self):
            return "Exotic()"

    campaign = CampaignResult(deployment="x")
    campaign.runs.append(RunResult(
        deployment="x", started_at=0.0, finished_at=1.0, value=Exotic()))
    path = save_results(tmp_path / "r.json", campaigns=[campaign])
    loaded = load_results(path)
    assert loaded["campaigns"][0].runs[0].value == "Exotic()"
