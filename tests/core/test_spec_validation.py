"""Adversarial-input coverage for ``spec_from_dict``.

A repro document is hand-editable JSON; the fuzzer mutates them on
purpose.  Whatever arrives, rebuilding a spec must either succeed or
raise :class:`SpecValidationError` *naming the offending key* — never a
bare ``KeyError``/``TypeError``/``AttributeError`` from the dataclass
machinery.
"""

import json

import pytest

from repro.core.fuzz import SpecGenerator
from repro.core.persistence import (
    SpecValidationError,
    spec_from_dict,
    spec_to_dict,
)


@pytest.fixture()
def base():
    return spec_to_dict(SpecGenerator(3).draw(0))


def _rejects(document, key):
    with pytest.raises(SpecValidationError) as caught:
        spec_from_dict(document)
    assert caught.value.key == key
    assert repr(key) in str(caught.value)
    return caught.value


def test_round_trip_is_exact(base):
    spec = spec_from_dict(base)
    assert spec_to_dict(spec) == base


def test_non_dict_documents_are_rejected():
    for document in (None, 7, "spec", ["deployment"], True):
        with pytest.raises(SpecValidationError):
            spec_from_dict(document)


def test_unknown_key_is_named(base):
    base["deploymnet"] = "AWS-Lambda"   # the classic typo
    _rejects(base, "deploymnet")


def test_wrong_typed_scalar_is_named(base):
    base["iterations"] = "three"
    _rejects(base, "iterations")


def test_bool_is_not_an_int(base):
    base["warmup"] = True
    _rejects(base, "warmup")


def test_bad_audit_value_is_named(base):
    base["audit"] = "yes"
    _rejects(base, "audit")


def test_truncated_fault_plan_entry_is_named(base):
    base["fault_plan"] = [["crash_probability"]]   # lost its value
    _rejects(base, "fault_plan")


def test_non_list_fault_plan_is_named(base):
    base["fault_plan"] = {"crash_probability": 0.1}
    _rejects(base, "fault_plan")


def test_unknown_fault_field_is_reported(base):
    base["fault_plan"] = [["crash_probabilty", 0.1]]
    error = pytest.raises(SpecValidationError,
                          spec_from_dict, base).value
    assert "crash_probabilty" in str(error) or \
           error.key == "fault_plan"


def test_unknown_deployment_is_a_validation_error(base):
    base["deployment"] = "IBM-Cloud"
    error = pytest.raises(SpecValidationError,
                          spec_from_dict, base).value
    assert "deployment" in str(error)


MUTATIONS = [
    lambda doc: doc.update(unexpected_key=1) or "unexpected_key",
    lambda doc: doc.update(iterations=None) or "iterations",
    lambda doc: doc.update(think_time_s="fast") or "think_time_s",
    lambda doc: doc.update(audit=3) or "audit",
    lambda doc: doc.update(fault_plan=[["straggler_factor"]])
    or "fault_plan",
    lambda doc: doc.update(mitigation=[["hedge_after_s", 1.0, 2.0]])
    or "mitigation",
    lambda doc: doc.update(calibration_overrides="aws.keep_alive_s=60")
    or "calibration_overrides",
    lambda doc: doc.update(invoke_kwargs=[[1, 2]]) or "invoke_kwargs",
]


@pytest.mark.parametrize("index", range(6))
@pytest.mark.parametrize("mutate", MUTATIONS)
def test_mutated_generator_documents_fail_typed(index, mutate):
    """Property check: fuzzer-drawn specs, serialized then mutated,
    always fail with a typed error naming the key."""
    document = spec_to_dict(SpecGenerator(11).draw(index))
    key = mutate(document)
    with pytest.raises(SpecValidationError) as caught:
        spec_from_dict(json.loads(json.dumps(document, default=repr)))
    assert caught.value.key == key


@pytest.mark.parametrize("index", range(6))
def test_unmutated_generator_documents_rebuild(index):
    spec = SpecGenerator(11).draw(index)
    document = json.loads(json.dumps(spec_to_dict(spec), default=repr))
    assert spec_from_dict(document) == spec
