"""Coverage for remaining code paths: concurrency limits, no-drain load,
billing edge cases."""

import pytest

from repro.core import Testbed, build_ml_inference_deployments
from repro.core.arrivals import LoadGenerator, UniformArrivals
from repro.platforms.base import FunctionSpec


def test_lambda_concurrency_limit_enforced():
    testbed = Testbed(seed=1)
    testbed.aws_calibration.concurrency_limit = 3

    def slow(ctx, event):
        yield from ctx.busy(100.0)
        return event

    testbed.lambdas.register(FunctionSpec(
        name="slow", handler=slow, memory_mb=512, timeout_s=600.0))

    def fan_out(env):
        def one(env):
            result = yield from testbed.lambdas.invoke("slow", 1)
            return result

        processes = [env.process(one(env)) for _ in range(5)]
        yield env.all_of(processes)

    with pytest.raises(RuntimeError, match="concurrent execution limit"):
        testbed.env.run(until=testbed.env.process(fan_out(testbed.env)))


def test_load_generator_without_drain_stops_at_horizon():
    testbed = Testbed(seed=2)
    deployment = build_ml_inference_deployments(testbed, "small")["AWS-Step"]
    generator = LoadGenerator(UniformArrivals(rate_per_s=0.5),
                              horizon_s=20.0, drain=False)
    campaign = generator.run(deployment)
    # The clock stopped at the horizon; in-flight runs were not awaited.
    assert testbed.now == pytest.approx(20.0, abs=1.0)
    assert len(campaign.runs) <= 9


def test_invocation_result_duration_property():
    from repro.platforms.base import InvocationResult
    result = InvocationResult(value=None, started_at=1.0, finished_at=3.5,
                              cold_start=False)
    assert result.duration == 2.5


def test_blob_store_repr_and_queue_repr():
    testbed = Testbed(seed=3)
    assert "BlobStore" in repr(testbed.aws.blob)
    assert "TransactionMeter" in repr(testbed.aws.meter)
    assert "BillingMeter" in repr(testbed.aws.billing)


def test_workflow_repr_and_deployment_repr():
    from repro.core import Workflow, task
    from repro.core.deployments import build_ml_training_deployments
    workflow = Workflow("w", task("f"))
    assert "w" in repr(workflow) and "f" in repr(workflow)
    testbed = Testbed(seed=4)
    deployment = build_ml_training_deployments(testbed, "small")["Az-Dorch"]
    assert "Az-Dorch" in repr(deployment)
    assert "azure" in repr(deployment)


def test_entity_id_and_task_reprs():
    from repro.azure import EntityId
    from repro.azure.durable.tasks import AtomicTask
    assert str(EntityId("A", "b")) == "@A@b"
    assert "seq=3" in repr(AtomicTask(seq=3, kind="activity", target="t"))


def test_deployment_double_deploy_is_idempotent():
    testbed = Testbed(seed=5)
    from repro.core.deployments import build_ml_training_deployments
    deployment = build_ml_training_deployments(testbed, "small")["AWS-Step"]
    deployment.deploy()
    deployment.deploy()   # second call must not re-register anything
    record = testbed.run(deployment.invoke())
    assert record.latency > 0


def test_span_repr_shows_state():
    from repro.telemetry import SpanKind, Telemetry
    telemetry = Telemetry(clock=lambda: 1.5)
    span = telemetry.start_span("x", SpanKind.EXECUTION)
    assert "open" in repr(span)
    telemetry.end_span(span)
    assert "1.5" in repr(span)
