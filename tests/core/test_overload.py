"""Overload campaigns: determinism, four-bucket accounting, persistence.

The acceptance bar for the overload harness: the same spec must yield a
bit-identical overload report whether the campaign runs in this process,
in a worker pool, or is replayed from the on-disk cache — and at every
swept rate the four buckets (succeeded, throttled, shed, failed) must
account for every offered request while both platforms stay live.
"""

import json

import pytest

from repro.core import (
    CampaignOutcome,
    CampaignSpec,
    OverloadSummary,
    ParallelRunner,
    ResultCache,
    execute_spec,
)
from repro.core.cache import cache_key
from repro.core.overload import classify_error
from repro.core.persistence import (
    campaign_to_dict,
    cost_report_to_dict,
    overload_from_dict,
    overload_to_dict,
)
from repro.platforms.base import LoadShedError, ThrottlingError

pytestmark = pytest.mark.overload

OVERRIDES = {
    "aws.concurrency_limit": 8,
    "aws.burst_concurrency": 8,
    "aws.refill_per_s": 1.0,
    "azure.max_instances": 2,
    "azure.queue_depth_limit": 12,
    "azure.shed_deadline_s": 30.0,
}


def spec_for(variant, rate, seed=29, horizon=60.0, arrival="poisson"):
    return CampaignSpec(deployment=variant, workload="ml-training",
                        scale="small", campaign="overload",
                        arrival=arrival, arrival_rate_per_s=rate,
                        horizon_s=horizon, seed=seed,
                        calibration_overrides=OVERRIDES)


def outcome_blob(outcome: CampaignOutcome) -> str:
    """Every observable of an overload outcome, as one string."""
    return json.dumps({
        "campaign": campaign_to_dict(outcome.campaign),
        "cost": cost_report_to_dict(outcome.cost),
        "overload": (overload_to_dict(outcome.overload)
                     if outcome.overload is not None else None),
    }, sort_keys=True, default=repr)


# -- spec plumbing -----------------------------------------------------------------

def test_overload_spec_requires_rate_and_horizon():
    with pytest.raises(ValueError, match="arrival_rate_per_s"):
        CampaignSpec(deployment="AWS-Step", campaign="overload",
                     horizon_s=60.0)
    with pytest.raises(ValueError, match="horizon_s"):
        CampaignSpec(deployment="AWS-Step", campaign="overload",
                     arrival_rate_per_s=1.0)
    with pytest.raises(ValueError, match="arrival"):
        CampaignSpec(deployment="AWS-Step", campaign="overload",
                     arrival="lumpy", arrival_rate_per_s=1.0,
                     horizon_s=60.0)


def test_rate_changes_spec_identity():
    slow = spec_for("AWS-Step", 0.5)
    fast = spec_for("AWS-Step", 2.0)
    assert slow.spec_hash() != fast.spec_hash()
    assert cache_key(slow) != cache_key(fast)


def test_spec_rejects_bad_overload_calibration():
    with pytest.raises(ValueError, match="burst_concurrency"):
        CampaignSpec(
            deployment="AWS-Step", campaign="overload",
            arrival_rate_per_s=1.0, horizon_s=60.0,
            calibration_overrides={"aws.burst_concurrency": 0},
        ).calibrations()
    with pytest.raises(ValueError, match="queue_depth_limit"):
        CampaignSpec(
            deployment="Az-Func", campaign="overload",
            arrival_rate_per_s=1.0, horizon_s=60.0,
            calibration_overrides={"azure.queue_depth_limit": -1},
        ).calibrations()


# -- error classification ----------------------------------------------------------

@pytest.mark.parametrize("error, bucket", [
    (ThrottlingError("rate exceeded"), "throttled"),
    (LoadShedError("dropped"), "shed"),
    (RuntimeError("AWS-Step training failed: "
                  "Lambda.TooManyRequestsException"), "throttled"),
    (RuntimeError("execution of 'train' shed after waiting 45.0s"), "shed"),
    (RuntimeError("handler blew up"), "failed"),
])
def test_classify_error(error, bucket):
    assert classify_error(error) == bucket


# -- end-to-end execution ----------------------------------------------------------

@pytest.mark.parametrize("variant", ["AWS-Step", "Az-Func"])
def test_buckets_account_for_every_offered_request(variant):
    summary = execute_spec(spec_for(variant, 1.0)).overload
    assert isinstance(summary, OverloadSummary)
    assert summary.offered > 0
    assert (summary.succeeded + summary.throttled + summary.shed
            + summary.failed) == summary.offered
    assert summary.failed == 0   # overload is not failure
    assert 0.0 <= summary.success_rate <= 1.0
    assert summary.goodput_per_s == pytest.approx(
        summary.succeeded / summary.horizon_s)


def test_both_platforms_stay_live_past_saturation():
    """At the highest rate neither platform collapses: AWS sheds load via
    429 + backoff, Azure via bounded queues and deadline drops."""
    aws = execute_spec(spec_for("AWS-Step", 2.0)).overload
    azure = execute_spec(spec_for("Az-Func", 2.0)).overload
    assert aws.succeeded > 0 and azure.succeeded > 0
    assert aws.throttled > 0          # admission rejected the excess
    assert aws.retry_amplification > 1.0
    assert azure.throttled + azure.shed > 0   # queues pushed back
    assert azure.retries == 0         # no retry traffic on the Azure side
    for summary in (aws, azure):
        assert summary.failed == 0
        assert summary.p99_latency_s > 0


def test_light_load_passes_untouched():
    summary = execute_spec(spec_for("AWS-Step", 0.1)).overload
    assert summary.throttled == summary.shed == summary.failed == 0
    assert summary.succeeded == summary.offered
    assert summary.retry_amplification == pytest.approx(1.0)


# -- bit-identity: serial / worker pool / cache (acceptance) -----------------------

@pytest.mark.parametrize("variant", ["AWS-Step", "Az-Func"])
def test_overload_campaign_is_bit_identical_across_runners(variant,
                                                           tmp_path):
    spec = spec_for(variant, 1.5)
    serial = ParallelRunner(workers=1).run([spec])[0]

    # A decoy spec forces the real pool path, as in test_parallel.py.
    decoy = spec_for(variant, 1.5, seed=spec.seed + 1)
    cache = ResultCache(tmp_path / "cache")
    parallel = ParallelRunner(workers=2, cache=cache)
    pooled = parallel.run([spec, decoy])[0]
    replay = parallel.run([spec])[0]

    reference = outcome_blob(serial)
    assert outcome_blob(pooled) == reference
    assert outcome_blob(replay) == reference
    assert not pooled.cached and replay.cached
    assert replay.overload == serial.overload


def test_overload_survives_cache_round_trip(tmp_path):
    spec = spec_for("Az-Func", 1.0)
    cache = ResultCache(tmp_path / "cache")
    outcome = execute_spec(spec)
    cache.put(spec, outcome)
    replay = cache.get(spec)
    assert replay is not None and replay.cached
    assert replay.overload == outcome.overload


# -- persistence -------------------------------------------------------------------

def test_overload_summary_dict_round_trip():
    summary = execute_spec(spec_for("AWS-Step", 1.0)).overload
    document = overload_to_dict(summary)
    assert document["kind"] == "overload"
    assert overload_from_dict(document) == summary
    assert overload_from_dict(json.loads(json.dumps(document))) == summary
