"""Tests for arrival processes and the open-loop load generator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Testbed, build_ml_inference_deployments
from repro.platforms.calibration import AzureCalibration
from repro.core.arrivals import (
    BurstyArrivals,
    DiurnalArrivals,
    LoadGenerator,
    PoissonArrivals,
    UniformArrivals,
)


@pytest.fixture
def rng():
    return np.random.default_rng(7)


# -- arrival processes -----------------------------------------------------------

def test_poisson_rate_approximation(rng):
    times = PoissonArrivals(rate_per_s=5.0).schedule(rng, horizon_s=1000.0)
    assert abs(len(times) / 1000.0 - 5.0) < 0.5
    assert list(times) == sorted(times)
    assert all(0 <= t < 1000.0 for t in times)


def test_poisson_rejects_nonpositive_rate():
    with pytest.raises(ValueError):
        PoissonArrivals(rate_per_s=0.0)


def test_uniform_spacing(rng):
    times = UniformArrivals(rate_per_s=2.0).schedule(rng, horizon_s=10.0)
    gaps = np.diff(times)
    assert np.allclose(gaps, 0.5)
    assert len(times) == 19


def test_diurnal_rate_modulates(rng):
    arrivals = DiurnalArrivals(base_rate_per_s=1.0, amplitude_per_s=9.0,
                               period_s=100.0)
    assert arrivals.rate_at(25.0) == pytest.approx(10.0)   # sin peak
    assert arrivals.rate_at(75.0) == pytest.approx(1.0)    # sin trough
    times = np.array(arrivals.schedule(rng, horizon_s=1000.0))
    # More arrivals near peaks than troughs over many periods.
    phase = (times % 100.0)
    peak_half = ((phase > 0) & (phase < 50)).sum()
    trough_half = (phase >= 50).sum()
    assert peak_half > 1.5 * trough_half


def test_diurnal_rate_at_stays_within_bounds():
    arrivals = DiurnalArrivals(base_rate_per_s=2.0, amplitude_per_s=6.0,
                               period_s=3600.0)
    samples = [arrivals.rate_at(t) for t in np.linspace(0.0, 7200.0, 500)]
    assert all(2.0 <= rate <= 8.0 for rate in samples)
    assert max(samples) == pytest.approx(8.0, rel=1e-3)   # sin peak
    assert min(samples) == pytest.approx(2.0, abs=1e-2)   # sin trough


def test_bursty_bursts_cluster(rng):
    """Bursts are tight clusters on top of the Poisson background."""
    quiet = BurstyArrivals(rate_per_s=0.05, burst_size=15,
                           bursts_per_hour=0.0)
    times = np.array(quiet.schedule(rng, horizon_s=3600.0))
    _, counts = np.unique(times, return_counts=True)
    assert counts.max() == 1   # no bursts scheduled, no clusters

    bursty = BurstyArrivals(rate_per_s=0.05, burst_size=15,
                            bursts_per_hour=30.0)
    times = np.array(bursty.schedule(rng, horizon_s=3600.0))
    _, counts = np.unique(times, return_counts=True)
    clusters = counts[counts >= 15]
    assert len(clusters) >= 10   # ~30 bursts expected over the hour
    # Burst arrivals dominate the sparse background traffic.
    assert clusters.sum() > 0.5 * len(times)


def test_bursty_includes_bursts(rng):
    arrivals = BurstyArrivals(rate_per_s=0.01, burst_size=20,
                              bursts_per_hour=30.0)
    times = np.array(arrivals.schedule(rng, horizon_s=3600.0))
    # Bursts create many exactly-coincident arrivals.
    _, counts = np.unique(times, return_counts=True)
    assert counts.max() >= 20


@given(rate=st.floats(0.1, 20.0), horizon=st.floats(1.0, 100.0))
@settings(max_examples=30, deadline=None)
def test_schedules_are_sorted_and_bounded(rate, horizon):
    rng = np.random.default_rng(0)
    for process in (PoissonArrivals(rate), UniformArrivals(rate)):
        times = process.schedule(rng, horizon)
        assert list(times) == sorted(times)
        assert all(0 <= t < horizon for t in times)


# -- load generator --------------------------------------------------------------------

def test_load_generator_validates_horizon():
    with pytest.raises(ValueError):
        LoadGenerator(PoissonArrivals(1.0), horizon_s=0.0)


def test_open_loop_runs_overlap():
    """Open loop means requests overlap — unlike the closed-loop runner."""
    testbed = Testbed(seed=9)
    deployment = build_ml_inference_deployments(testbed, "small")["AWS-Step"]
    generator = LoadGenerator(UniformArrivals(rate_per_s=1.0),
                              horizon_s=10.0)
    campaign = generator.run(deployment)
    assert len(campaign.runs) == 9
    # With ~2.5 s runs arriving every second, some must overlap.
    overlaps = sum(
        1 for a, b in zip(campaign.runs, campaign.runs[1:])
        if b.started_at < a.finished_at)
    assert overlaps > 0


def test_load_generator_deterministic_under_saturation():
    """Same seed, same schedule, same latencies — even with the shared
    pool saturated and runs queueing behind a tightened instance cap."""
    def campaign():
        calibration = AzureCalibration(max_instances=2)
        testbed = Testbed(seed=11, azure_calibration=calibration)
        deployment = build_ml_inference_deployments(
            testbed, "small")["Az-Dorch"]
        generator = LoadGenerator(PoissonArrivals(rate_per_s=1.0),
                                  horizon_s=30.0)
        return generator.run(deployment)

    first, second = campaign(), campaign()
    assert first.latencies == second.latencies
    assert [run.started_at for run in first.runs] == [
        run.started_at for run in second.runs]
    # The cap actually bit: overlapping arrivals queued behind it.
    overlaps = sum(
        1 for a, b in zip(first.runs, first.runs[1:])
        if b.started_at < a.finished_at)
    assert overlaps > 0


def test_load_generator_collects_all_latencies():
    testbed = Testbed(seed=10)
    deployment = build_ml_inference_deployments(testbed, "small")["Az-Dorch"]
    generator = LoadGenerator(PoissonArrivals(rate_per_s=0.1),
                              horizon_s=60.0)
    campaign = generator.run(deployment)
    assert all(run.latency > 0 for run in campaign.runs)
    assert [run.started_at for run in campaign.runs] == sorted(
        run.started_at for run in campaign.runs)


# -- vectorization determinism regressions ---------------------------------------

def test_poisson_vectorized_matches_scalar_loop():
    """The chunked cumsum schedule is float-for-float identical to the
    scalar ``now += rng.exponential(scale)`` loop it replaced."""
    rate, horizon = 3.0, 200.0
    vectorized = PoissonArrivals(rate).schedule(
        np.random.default_rng(42), horizon)

    reference_rng = np.random.default_rng(42)
    times = []
    now = float(reference_rng.exponential(1.0 / rate))
    while now < horizon:
        times.append(now)
        now += float(reference_rng.exponential(1.0 / rate))
    assert vectorized.tolist() == times


def test_chunk_boundaries_preserve_exact_sums():
    """Forcing tiny chunks (many boundary carries) changes nothing: the
    running sum is carried into the next chunk's first gap exactly."""
    from repro.core.arrivals import _exponential_arrivals

    rate, horizon = 2.0, 500.0
    whole = _exponential_arrivals(np.random.default_rng(5), rate, horizon)
    chunked = _exponential_arrivals(np.random.default_rng(5), rate, horizon,
                                    _chunk=16)
    assert whole.tolist() == chunked.tolist()


def test_uniform_vectorized_matches_scalar_comprehension():
    rate, horizon = 2.0, 10.0
    vectorized = UniformArrivals(rate).schedule(
        np.random.default_rng(0), horizon)
    interval = 1.0 / rate
    count = int(horizon / interval)
    reference = [interval * (index + 1) for index in range(count)
                 if interval * (index + 1) < horizon]
    assert vectorized.tolist() == reference


def test_diurnal_vectorized_thinning_matches_scalar_draws():
    """The one-shot vectorized uniform draw consumes the generator stream
    exactly as one scalar ``rng.random()`` per candidate would."""
    from repro.core.arrivals import _exponential_arrivals

    arrivals = DiurnalArrivals(base_rate_per_s=1.0, amplitude_per_s=4.0,
                               period_s=300.0)
    vectorized = arrivals.schedule(np.random.default_rng(123),
                                   horizon_s=500.0)

    reference_rng = np.random.default_rng(123)
    peak = arrivals.base_rate_per_s + arrivals.amplitude_per_s
    candidates = _exponential_arrivals(reference_rng, peak, 500.0)
    fractions = arrivals._keep_fraction(candidates)
    kept = [t for t, p in zip(candidates.tolist(), fractions.tolist())
            if reference_rng.random() < p]
    assert vectorized.tolist() == kept


def test_diurnal_schedule_stream_is_pinned():
    """Golden values: the seeded diurnal stream must never drift across
    refactors (exact float equality, not approx)."""
    arrivals = DiurnalArrivals(base_rate_per_s=1.0, amplitude_per_s=4.0,
                               period_s=300.0)
    times = arrivals.schedule(np.random.default_rng(7), horizon_s=500.0)
    assert len(times) == 1671
    assert times[:4].tolist() == [
        0.1415058511583843,
        0.3465465208173653,
        0.4602562522940156,
        1.3592629714333502,
    ]
    assert float(times[-1]) == 499.50032279795437


def test_bursty_same_seed_same_schedule():
    arrivals = BurstyArrivals(rate_per_s=0.5, burst_size=5,
                              bursts_per_hour=20.0)
    first = arrivals.schedule(np.random.default_rng(3), horizon_s=1800.0)
    second = arrivals.schedule(np.random.default_rng(3), horizon_s=1800.0)
    assert first.tolist() == second.tolist()
