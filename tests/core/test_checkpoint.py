"""Tests for the sweep journal: atomic entries, quarantine, resume.

The journal's contract is that a killed sweep loses nothing it
completed and a resumed sweep is bit-identical to an uninterrupted one.
Corruption (torn writes, bit rot, entries from a different sweep) is
detected by checksum/manifest cross-checks, quarantined, and simply
recomputed.
"""

import json

import pytest

from repro.core import (
    CampaignSpec,
    JournalError,
    ParallelRunner,
    ResultCache,
    SupervisedRunner,
    SweepJournal,
)
from repro.core.cache import cache_key
from repro.core.persistence import payload_checksum, spec_from_dict

from tests.core.test_parallel import outcome_blob


def sweep_specs(count=3, seed=17):
    names = ["AWS-Lambda", "Az-Func", "Az-Dorch", "AWS-Step", "Az-Queue"]
    return [CampaignSpec(deployment=names[i % len(names)], iterations=2,
                         warmup=0, seed=seed + i)
            for i in range(count)]


# -- manifest mechanics ----------------------------------------------------------

def test_manifest_round_trips_specs_hash_exact(tmp_path):
    specs = sweep_specs()
    journal = SweepJournal(tmp_path / "j")
    journal.create(specs, argv=["latency", "--journal", "j"])

    manifest = journal.open()
    assert manifest.argv == ["latency", "--journal", "j"]
    assert manifest.keys == [cache_key(spec) for spec in specs]
    rebuilt = manifest.specs()
    assert rebuilt == specs
    assert [spec.spec_hash() for spec in rebuilt] == \
        [spec.spec_hash() for spec in specs]


def test_spec_from_dict_is_hash_exact():
    spec = CampaignSpec(deployment="Az-Dorch", workload="video",
                        campaign="fanout", fanout=3, batch=2,
                        seed=9, invoke_kwargs={"n_workers": 3},
                        calibration_overrides=[("azure.scale_interval_s",
                                                10.0)])
    clone = spec_from_dict(json.loads(json.dumps(spec.canonical())))
    assert clone == spec
    assert clone.spec_hash() == spec.spec_hash()
    assert cache_key(clone) == cache_key(spec)


def test_create_refuses_overwrite_and_open_requires_manifest(tmp_path):
    journal = SweepJournal(tmp_path / "j")
    with pytest.raises(JournalError):
        journal.open()                       # nothing there yet
    journal.create(sweep_specs())
    with pytest.raises(JournalError):
        journal.create(sweep_specs())        # already holds a manifest


def test_create_or_open_validates_the_sweep(tmp_path):
    specs = sweep_specs()
    journal = SweepJournal(tmp_path / "j")
    journal.create_or_open(specs)            # creates

    journal.create_or_open(specs)            # same sweep: fine
    with pytest.raises(JournalError):
        journal.create_or_open(specs, resume=False)   # explicit refusal
    with pytest.raises(JournalError):
        journal.create_or_open(sweep_specs(seed=99))  # different sweep


def test_manifest_rejects_foreign_documents(tmp_path):
    journal = SweepJournal(tmp_path / "j")
    journal.root.mkdir()
    journal.manifest_path.write_text(json.dumps({"kind": "something"}))
    with pytest.raises(JournalError):
        journal.open()
    journal.manifest_path.write_text("torn {")
    with pytest.raises(JournalError):
        journal.open()


# -- entries: record / completed / quarantine ------------------------------------

def test_record_and_completed_round_trip_bit_identical(tmp_path):
    specs = sweep_specs(2)
    outcomes = ParallelRunner(workers=1).run(specs)
    journal = SweepJournal(tmp_path / "j")
    journal.create(specs)
    for index, outcome in enumerate(outcomes):
        journal.record(index, outcome)

    assert journal.is_complete()
    assert "2/2" in journal.progress()
    replayed = journal.outcomes()
    for original, replay in zip(outcomes, replayed):
        assert replay.cached
        assert outcome_blob(replay) == outcome_blob(original)


def test_corrupt_entries_are_quarantined_not_fatal(tmp_path):
    specs = sweep_specs(3)
    outcomes = ParallelRunner(workers=1).run(specs)
    journal = SweepJournal(tmp_path / "j")
    journal.create(specs)
    paths = [journal.record(index, outcome)
             for index, outcome in enumerate(outcomes)]

    # Torn write: the file stops mid-document.
    paths[0].write_text(paths[0].read_text()[:40])
    # Bit rot: valid JSON whose payload no longer matches its checksum.
    document = json.loads(paths[1].read_text())
    document["outcome"]["idle_transactions"] = 10**6
    paths[1].write_text(json.dumps(document, default=repr))

    completed = journal.completed(specs)
    assert sorted(completed) == [2]          # only the intact entry
    quarantined = sorted(journal.quarantine_dir.glob("*.corrupt"))
    assert len(quarantined) == 2
    assert not paths[0].exists() and not paths[1].exists()

    with pytest.raises(JournalError):
        journal.outcomes()                   # incomplete now


def test_entry_from_another_sweep_is_rejected(tmp_path):
    specs = sweep_specs(2)
    other = sweep_specs(2, seed=99)
    outcomes = ParallelRunner(workers=1).run(other)
    journal = SweepJournal(tmp_path / "j")
    journal.create(specs)
    # A structurally valid, checksum-valid entry — for the wrong sweep.
    foreign = SweepJournal(tmp_path / "other")
    foreign.create(other)
    path = foreign.record(0, outcomes[0])
    target = journal.entries_dir / path.name
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(path.read_text())

    assert journal.completed(specs) == {}
    assert list(journal.quarantine_dir.glob("*.corrupt"))


def test_entry_checksum_survives_json_round_trip(tmp_path):
    spec = sweep_specs(1)[0]
    outcome = ParallelRunner(workers=1).run([spec])[0]
    journal = SweepJournal(tmp_path / "j")
    journal.create([spec])
    path = journal.record(0, outcome)
    document = json.loads(path.read_text())
    assert document["checksum"] == payload_checksum(document["outcome"])


# -- resume bit-identity across execution paths ----------------------------------

def test_resumed_sweep_is_bit_identical_across_paths(tmp_path):
    """A partially journaled sweep, finished by resume, matches the
    serial runner, the worker pool, and a cache replay bit for bit."""
    specs = sweep_specs(4)
    reference = [outcome_blob(outcome)
                 for outcome in ParallelRunner(workers=1).run(specs)]

    # Simulate an interrupted sweep: only half the entries made it.
    journal = SweepJournal(tmp_path / "j")
    journal.create(specs)
    head = ParallelRunner(workers=1).run(specs[:2])
    for index, outcome in enumerate(head):
        journal.record(index, outcome)

    # Resume through the supervised pool, journal and cache engaged.
    cache = ResultCache(tmp_path / "cache")
    runner = SupervisedRunner(workers=2, cache=cache, journal=journal)
    result = runner.resume()
    assert result.ok
    assert [outcome_blob(outcome) for outcome in result.outcomes] == \
        reference
    # Journaled half replayed, missing half computed fresh.
    assert [outcome.cached for outcome in result.outcomes[:2]] == \
        [True, True]

    # The journal now replays the whole sweep bit-identically ...
    assert [outcome_blob(outcome) for outcome in journal.outcomes()] == \
        reference
    # ... and so does the cache the resume populated.
    replay = ParallelRunner(workers=1, cache=cache).run(specs)
    assert all(outcome.cached for outcome in replay)
    assert [outcome_blob(outcome) for outcome in replay] == reference


def test_cache_hits_are_journaled_on_resume(tmp_path):
    """Outcomes satisfied by the result cache still land in the journal,
    so a later resume needs neither the cache nor a recompute."""
    specs = sweep_specs(2)
    cache = ResultCache(tmp_path / "cache")
    ParallelRunner(workers=1, cache=cache).run(specs)   # warm the cache

    journal = SweepJournal(tmp_path / "j")
    result = SupervisedRunner(workers=1, cache=cache,
                              journal=journal).run(specs)
    assert result.ok
    assert journal.is_complete()
