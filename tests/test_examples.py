"""Smoke tests: every example script runs to completion.

Examples are the library's front door; they must not rot.  Each is
executed in-process (same interpreter, fresh module namespace) and its
stdout sanity-checked.  The heavyweight ML/video sweeps are exercised
with reduced parameters where the module exposes them.
"""

import importlib.util
import io
import sys
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def load_module(name):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def run_main(name, *args):
    module = load_module(name)
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        module.main(*args)
    return buffer.getvalue()


def test_quickstart():
    output = run_main("quickstart")
    assert "AWS Step Functions" in output
    assert "Azure Durable" in output
    assert "A-1001" in output


def test_cross_cloud_workflow():
    output = run_main("cross_cloud_workflow")
    assert "identical results" in output


def test_durable_entities_counter():
    output = run_main("durable_entities_counter")
    assert "pricing" in output
    assert "billable" in output


def test_approval_workflow():
    output = run_main("approval_workflow")
    assert "booked" in output
    assert "escalated" in output


def test_observability():
    output = run_main("observability")
    assert "Gantt" in output
    assert "scheduling delay" in output


def test_cost_explorer():
    output = run_main("cost_explorer")
    assert "runs/month" in output
    assert "cheaper" in output


def test_ml_training_pipeline_small():
    output = run_main("ml_training_pipeline", "small")
    assert "best fit" in output
    assert "Az-Dent" in output


def test_video_fanout():
    # Trim the sweep for test runtime.
    module = load_module("video_fanout")
    module.WORKER_COUNTS = [1, 8]
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        module.main()
    output = buffer.getvalue()
    assert "AWS-Step" in output and "Az-Dorch" in output
