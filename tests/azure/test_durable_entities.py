"""Tests for durable entities: state, serialization, orchestrator access."""

import pytest

from repro.azure import EntityId, EntitySpec, OrchestratorSpec
from repro.platforms.base import FunctionSpec


def counter_add(ctx, state, amount):
    yield from ctx.busy(0.5)
    new_state = (state or 0) + amount
    return new_state, new_state


def counter_spec():
    return EntitySpec(name="Counter", operations={"add": counter_add},
                      initial_state=lambda: 0)


def test_entity_id_str_roundtrip():
    entity = EntityId("Counter", "main")
    assert str(entity) == "@Counter@main"
    assert EntityId.parse(str(entity)) == entity


def test_entity_id_parse_rejects_garbage():
    with pytest.raises(ValueError):
        EntityId.parse("Counter@main")
    with pytest.raises(ValueError):
        EntityId.parse("@CounterOnly")


def test_entity_spec_unknown_operation():
    spec = counter_spec()
    with pytest.raises(KeyError, match="no operation"):
        spec.operation("divide")


def test_call_entity_from_orchestrator(runtime, run):
    runtime.register_entity(counter_spec())

    def orchestrator(context):
        counter = EntityId("Counter", "main")
        first = yield context.call_entity(counter, "add", 5)
        second = yield context.call_entity(counter, "add", 7)
        return first, second

    runtime.register_orchestrator(OrchestratorSpec("counting", orchestrator))
    assert run(runtime.client.run("counting")) == (5, 12)


def test_entity_state_persists_across_orchestrations(runtime, run):
    runtime.register_entity(counter_spec())

    def orchestrator(context):
        result = yield context.call_entity(EntityId("Counter", "k"), "add", 1)
        return result

    runtime.register_orchestrator(OrchestratorSpec("inc", orchestrator))
    assert run(runtime.client.run("inc")) == 1
    assert run(runtime.client.run("inc")) == 2
    assert run(runtime.client.run("inc")) == 3


def test_builtin_get_and_set_operations(runtime, run):
    runtime.register_entity(counter_spec())

    def orchestrator(context):
        counter = EntityId("Counter", "main")
        yield context.call_entity(counter, "set", 100)
        value = yield context.call_entity(counter, "get")
        return value

    runtime.register_orchestrator(OrchestratorSpec("getset", orchestrator))
    assert run(runtime.client.run("getset")) == 100


def test_entity_operations_are_serialized(runtime, run, env):
    """Concurrent calls to one entity key execute one at a time."""
    active = {"count": 0, "max": 0}

    def slow_op(ctx, state, _input):
        active["count"] += 1
        active["max"] = max(active["max"], active["count"])
        yield from ctx.busy(5.0)
        active["count"] -= 1
        return (state or 0) + 1, None

    runtime.register_entity(EntitySpec(
        name="Serial", operations={"op": slow_op}, initial_state=lambda: 0))

    def orchestrator(context):
        entity = EntityId("Serial", "one")
        tasks = [context.call_entity(entity, "op") for _ in range(4)]
        yield context.task_all(tasks)
        return "done"

    runtime.register_orchestrator(OrchestratorSpec("hammer", orchestrator))
    run(runtime.client.run("hammer"))
    assert active["max"] == 1
    # Four serialized 5 s ops: at least 20 s of simulated time passed.
    assert env.now >= 20.0


def test_different_keys_run_concurrently(runtime, run, env):
    def slow_op(ctx, state, _input):
        yield from ctx.busy(5.0)
        return state, None

    runtime.register_entity(EntitySpec(
        name="Sharded", operations={"op": slow_op}))

    def orchestrator(context):
        tasks = [context.call_entity(EntityId("Sharded", f"k{i}"), "op")
                 for i in range(4)]
        yield context.task_all(tasks)
        return "done"

    runtime.register_orchestrator(OrchestratorSpec("sharded", orchestrator))
    run(runtime.client.run("sharded"))
    # Four different keys on a pool that scales: much less than 4×5 s of
    # pure serial time plus overheads would allow.
    assert env.now < 60.0


def test_signal_entity_is_fire_and_forget(runtime, run):
    runtime.register_entity(counter_spec())

    def orchestrator(context):
        counter = EntityId("Counter", "sig")
        yield context.signal_entity(counter, "add", 10)
        # A later two-way call observes the signal's effect (same queue,
        # serialized processing).
        value = yield context.call_entity(counter, "add", 1)
        return value

    runtime.register_orchestrator(OrchestratorSpec("signaler", orchestrator))
    assert run(runtime.client.run("signaler")) == 11


def test_client_signal_and_read_state(runtime, run, env):
    runtime.register_entity(counter_spec())
    entity = EntityId("Counter", "client")

    def scenario(env):
        yield from runtime.client.signal_entity(entity, "add", 42)
        # Give the pump time to process the signal.
        yield env.timeout(60.0)
        state = yield from runtime.client.read_entity_state(entity)
        return state

    assert run(scenario(env)) == 42


def test_read_unset_entity_returns_initial_state(runtime, run):
    runtime.register_entity(counter_spec())

    def scenario(env):
        state = yield from runtime.client.read_entity_state(
            EntityId("Counter", "fresh"))
        return state

    assert run(scenario(runtime.env)) == 0


def test_unknown_entity_operation_fails_orchestration(runtime, run):
    from repro.azure.durable import OrchestrationFailedError
    runtime.register_entity(counter_spec())

    def orchestrator(context):
        yield context.call_entity(EntityId("Counter", "x"), "divide", 2)

    runtime.register_orchestrator(OrchestratorSpec("badop", orchestrator))
    with pytest.raises(OrchestrationFailedError, match="no operation"):
        run(runtime.client.run("badop"))


def test_unregistered_entity_type_fails_orchestration(runtime, run):
    from repro.azure.durable import OrchestrationFailedError
    runtime.register_entity(counter_spec())

    def orchestrator(context):
        yield context.call_entity(EntityId("Ghost", "x"), "get")

    runtime.register_orchestrator(OrchestratorSpec("ghostly", orchestrator))
    with pytest.raises(OrchestrationFailedError, match="no such entity"):
        run(runtime.client.run("ghostly"))


def test_entity_ops_slower_than_equivalent_activity(runtime, run, telemetry):
    """The paper's takeaway: entity ops > stateless activities (§V-A)."""

    def work_op(ctx, state, _input):
        yield from ctx.busy(1.0)
        return state, "done"

    def work_activity(ctx, _input):
        yield from ctx.busy(1.0)
        return "done"

    runtime.register_entity(EntitySpec(name="Worker",
                                       operations={"work": work_op}))
    runtime.register_activity(FunctionSpec(
        name="worker", handler=work_activity, memory_mb=1536,
        timeout_s=1800.0))

    def orchestrator(context):
        yield context.call_activity("worker")
        yield context.call_entity(EntityId("Worker", "w"), "work")
        return "ok"

    runtime.register_orchestrator(OrchestratorSpec("compare", orchestrator))
    run(runtime.client.run("compare"))

    activity_span = telemetry.find(kind="execution", name="worker")[0]
    entity_span = telemetry.find(kind="execution", name="entity::Worker")[0]
    # Same 1 s of logic, but the entity op pays dispatch overhead plus a
    # state read and a state write.
    assert entity_span.duration > activity_span.duration


def test_entity_state_transactions_metered(runtime, run, meter):
    runtime.register_entity(counter_spec())

    def orchestrator(context):
        yield context.call_entity(EntityId("Counter", "m"), "add", 1)
        return "ok"

    runtime.register_orchestrator(OrchestratorSpec("metered", orchestrator))
    run(runtime.client.run("metered"))
    # One read (miss) + one write for the op.
    assert meter.count(service="table", operation="read") >= 1
    assert meter.count(service="table", operation="insert") >= 1
