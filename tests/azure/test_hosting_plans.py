"""Tests for the premium hosting plan and Netherite mode extensions."""

import pytest

from repro.azure import (
    AzurePriceModel,
    DurableFunctionsRuntime,
    FunctionAppService,
    OrchestratorSpec,
)
from repro.platforms.base import FunctionSpec


def echo(ctx, event):
    yield from ctx.busy(1.0)
    return event


# -- premium plan -----------------------------------------------------------------

def test_unknown_plan_rejected(env, telemetry, billing, streams,
                               calibration):
    with pytest.raises(ValueError, match="hosting plan"):
        FunctionAppService(env, telemetry, billing, streams, calibration,
                           plan="dedicated-v9")


def test_premium_plan_prewarms_instances(env, telemetry, billing, streams,
                                         calibration):
    app = FunctionAppService(env, telemetry, billing, streams, calibration,
                             plan=FunctionAppService.PREMIUM)
    assert app.live_instance_count == calibration.premium_min_instances


def test_premium_plan_has_no_cold_start(env, telemetry, billing, streams,
                                        calibration, run):
    app = FunctionAppService(env, telemetry, billing, streams, calibration,
                             plan=FunctionAppService.PREMIUM)
    app.register(FunctionSpec(name="echo", handler=echo, memory_mb=1536,
                              timeout_s=60.0))
    result = run(app.invoke("echo", {"x": 1}))
    assert not result.cold_start
    assert result.queue_wait < 0.5


def test_premium_pool_never_shrinks_below_floor(env, telemetry, billing,
                                                streams, calibration, run):
    app = FunctionAppService(env, telemetry, billing, streams, calibration,
                             plan=FunctionAppService.PREMIUM)
    app.register(FunctionSpec(name="echo", handler=echo, memory_mb=1536,
                              timeout_s=60.0))
    run(app.invoke("echo", {}))

    def idle(env):
        yield env.timeout(calibration.instance_idle_timeout_s * 3)

    env.run(until=env.process(idle(env)))
    assert app.live_instance_count >= calibration.premium_min_instances


def test_premium_monthly_cost(calibration):
    price = AzurePriceModel(calibration).premium_monthly_cost(hours=730.0)
    expected = (calibration.premium_min_instances
                * calibration.premium_instance_hourly_price * 730.0)
    assert price == pytest.approx(expected)
    assert price > 100.0   # always-on capacity is not cheap


# -- Netherite mode ----------------------------------------------------------------

def _durable_runtime(env, telemetry, billing, meter, streams, calibration):
    runtime = DurableFunctionsRuntime(
        env, telemetry, billing, meter, streams, calibration=calibration)
    runtime.register_activity(FunctionSpec(
        name="double", handler=lambda ctx, e: _double(ctx, e),
        memory_mb=1536, timeout_s=60.0))

    def orchestrator(context):
        value = context.input
        for _ in range(4):
            value = yield context.call_activity("double", value)
        return value

    runtime.register_orchestrator(OrchestratorSpec("chain", orchestrator))
    return runtime


def _double(ctx, event):
    yield from ctx.busy(0.5)
    return event * 2


def test_netherite_mode_preserves_results(env, telemetry, billing, meter,
                                          streams, calibration, run):
    calibration.netherite_mode = True
    runtime = _durable_runtime(env, telemetry, billing, meter, streams,
                               calibration)
    assert run(runtime.client.run("chain", 1)) == 16


def test_netherite_mode_cuts_storage_transactions(env, telemetry, billing,
                                                  meter, streams,
                                                  calibration, run):
    from repro.platforms.billing import BillingMeter
    from repro.sim import Environment, RandomStreams
    from repro.storage.meter import TransactionMeter
    from repro.telemetry import Telemetry

    def table_tx(netherite):
        local_env = Environment()
        local_meter = TransactionMeter(clock=lambda: local_env.now)
        local_calibration = type(calibration)()
        local_calibration.execution_jitter = calibration.execution_jitter
        local_calibration.cpu_slowdown = 1.0
        local_calibration.netherite_mode = netherite
        runtime = _durable_runtime(
            local_env, Telemetry(clock=lambda: local_env.now),
            BillingMeter(), local_meter, RandomStreams(5),
            local_calibration)

        def scenario(env):
            output = yield from runtime.client.run("chain", 1)
            return output

        local_env.run(until=local_env.process(scenario(local_env)))
        return (local_meter.count(service="table", operation="insert")
                + local_meter.count(service="table", operation="query"))

    classic = table_tx(netherite=False)
    netherite = table_tx(netherite=True)
    # Batched commits replace per-event writes and full-history reads.
    assert netherite < classic * 0.6


def test_netherite_mode_cuts_replay_gbs(env, telemetry, billing, meter,
                                        streams, calibration, run):
    calibration.netherite_mode = True
    runtime = _durable_runtime(env, telemetry, billing, meter, streams,
                               calibration)
    run(runtime.client.run("chain", 1))
    replay_gb_s = sum(
        charge.gb_s for charge in billing.compute
        if charge.function_name.startswith("orchestrator::"))
    # Episodes still execute (base cost) but there is no per-event replay:
    # 5 episodes × ~0.2 s at 256 MB ≈ 0.25 GB-s, far below classic mode.
    assert replay_gb_s < 1.0
