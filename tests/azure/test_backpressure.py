"""Queue backpressure, 429 rejection and deadline shedding on Azure."""

import numpy as np
import pytest

from repro.azure.app import TRIGGER_DURABLE, TRIGGER_HTTP
from repro.platforms.base import FunctionSpec, LoadShedError, ThrottlingError
from repro.platforms.calibration import AzureCalibration
from repro.storage.queue import CloudQueue, QueueFullError


def busy(ctx, event):
    yield from ctx.busy(5.0)
    return event


def register(app, name="work", handler=busy, **kwargs):
    app.register(FunctionSpec(name=name, handler=handler, **kwargs))


def _invoke(app, event, trigger=TRIGGER_HTTP, errors=None):
    try:
        result = yield from app.invoke("work", event, trigger=trigger)
    except (ThrottlingError, LoadShedError) as error:
        if errors is not None:
            errors.append(error)
        return None
    return result


# -- trigger-level 429 -----------------------------------------------------------


def test_trigger_rejects_past_queue_depth(env, app):
    app.calibration.queue_depth_limit = 2
    register(app)
    errors = []

    def storm(env):
        processes = [env.process(_invoke(app, index, errors=errors))
                     for index in range(5)]
        yield env.all_of(processes)

    env.run(until=env.process(storm(env)))
    assert app.rejections == 3
    assert len(errors) == 3
    assert all(isinstance(error, ThrottlingError) for error in errors)
    assert all("429" in str(error) for error in errors)
    assert all(error.retry_after_s > 0 for error in errors)


def test_durable_trigger_bypasses_the_bound(env, app):
    """Durable work is queue-driven; it backpressures at storage, not 429."""
    app.calibration.queue_depth_limit = 1
    register(app)
    errors = []

    def storm(env):
        first = env.process(_invoke(app, 0, errors=errors))
        durable = env.process(
            _invoke(app, 1, trigger=TRIGGER_DURABLE, errors=errors))
        rejected = env.process(_invoke(app, 2, errors=errors))
        yield env.all_of([first, durable, rejected])

    env.run(until=env.process(storm(env)))
    assert app.rejections == 1
    assert len(errors) == 1


def test_rejected_requests_are_not_billed(env, app, billing):
    app.calibration.queue_depth_limit = 1
    register(app)
    errors = []

    def storm(env):
        processes = [env.process(_invoke(app, index, errors=errors))
                     for index in range(3)]
        yield env.all_of(processes)

    env.run(until=env.process(storm(env)))
    assert app.rejections == 2
    assert billing.total_requests() == 1


# -- deadline shedding -----------------------------------------------------------


def test_deadline_sheds_stuck_work(env, app, run):
    """Work still queued past the budget is dropped, counted as shed."""
    app.calibration.shed_deadline_s = 0.5   # shorter than any cold start
    register(app)
    with pytest.raises(LoadShedError) as info:
        run(app.invoke("work", 1))
    assert info.value.waited_s == pytest.approx(0.5)
    assert info.value.deadline_s == pytest.approx(0.5)
    assert app.shed == 1
    assert app.pending_count == 0   # the shed item left the queue


def test_shed_work_frees_the_slot_for_later_arrivals(env, app):
    app.calibration.shed_deadline_s = 0.5
    register(app)
    errors = []

    def story(env):
        yield env.process(_invoke(app, 1, errors=errors))
        # The pool has warmed up by now; a later request succeeds.
        yield env.timeout(30.0)
        result = yield from app.invoke("work", 2)
        return result

    result = env.run(until=env.process(story(env)))
    assert len(errors) == 1
    assert isinstance(errors[0], LoadShedError)
    assert result.value == 2


def test_no_deadline_means_no_shedding(env, app, run):
    assert app.calibration.shed_deadline_s is None
    register(app)
    result = run(app.invoke("work", 1))
    assert result.value == 1
    assert app.shed == 0


# -- bounded storage queues ------------------------------------------------------


@pytest.fixture
def bounded_queue(env, meter):
    return CloudQueue(env, meter, np.random.default_rng(3),
                      name="bounded", max_depth=2, visibility_timeout=5.0)


def test_nonblocking_enqueue_raises_when_full(env, bounded_queue, run):
    run(bounded_queue.enqueue("a"))
    run(bounded_queue.enqueue("b"))
    with pytest.raises(QueueFullError, match="depth bound"):
        run(bounded_queue.enqueue("c", block=False))


def test_blocking_enqueue_waits_for_space(env, bounded_queue):
    def producer(env):
        yield from bounded_queue.enqueue("a")
        yield from bounded_queue.enqueue("b")
        message_id = yield from bounded_queue.enqueue("c")   # blocks
        return message_id

    def consumer(env):
        yield env.timeout(10.0)
        message = yield from bounded_queue.poll()
        yield from bounded_queue.delete(message)

    blocked = env.process(producer(env))
    env.process(consumer(env))
    env.run(until=blocked)
    assert env.now > 10.0   # the producer really waited for the delete
    assert blocked.value is not None


def test_queue_rejects_nonpositive_depth(env, meter):
    with pytest.raises(ValueError, match="max_depth"):
        CloudQueue(env, meter, np.random.default_rng(0), max_depth=0)


def test_visibility_timeout_requeues(env, bounded_queue):
    def story(env):
        yield from bounded_queue.enqueue("job")
        first = yield from bounded_queue.poll()
        assert first.dequeue_count == 1
        hidden = yield from bounded_queue.poll()
        assert hidden is None   # invisible while leased
        yield env.timeout(bounded_queue.visibility_timeout + 1.0)
        again = yield from bounded_queue.poll()
        assert again is not None
        assert again.message_id == first.message_id
        assert again.dequeue_count == 2

    env.run(until=env.process(story(env)))


# -- calibration validation ------------------------------------------------------


@pytest.mark.parametrize("field, value", [
    ("max_instances", 0),
    ("max_instances", -1),
    ("queue_depth_limit", 0),
    ("queue_depth_limit", -3),
    ("shed_deadline_s", 0.0),
    ("shed_deadline_s", -1.0),
])
def test_calibration_rejects_nonpositive(field, value):
    with pytest.raises(ValueError, match="must be"):
        AzureCalibration(**{field: value})


def test_calibration_accepts_disabled_bounds():
    calibration = AzureCalibration(queue_depth_limit=None,
                                   shed_deadline_s=None)
    assert calibration.queue_depth_limit is None
    assert calibration.shed_deadline_s is None
