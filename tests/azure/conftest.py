"""Shared fixtures for Azure platform tests."""

import pytest

from repro.azure import DurableFunctionsRuntime, FunctionAppService
from repro.platforms.billing import BillingMeter
from repro.platforms.calibration import AzureCalibration
from repro.sim import Constant, Environment, RandomStreams
from repro.storage.meter import TransactionMeter
from repro.telemetry import Telemetry


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def telemetry(env):
    return Telemetry(clock=lambda: env.now)


@pytest.fixture
def billing(env):
    return BillingMeter(clock=lambda: env.now)


@pytest.fixture
def meter(env):
    return TransactionMeter(clock=lambda: env.now)


@pytest.fixture
def streams():
    return RandomStreams(seed=777)


@pytest.fixture
def calibration():
    """Deterministic-ish calibration for unit tests."""
    calibration = AzureCalibration()
    calibration.execution_jitter = Constant(1.0)
    calibration.cpu_slowdown = 1.0
    return calibration


@pytest.fixture
def app(env, telemetry, billing, streams, calibration):
    return FunctionAppService(env, telemetry, billing, streams, calibration)


@pytest.fixture
def runtime(env, telemetry, billing, meter, streams, calibration):
    return DurableFunctionsRuntime(
        env, telemetry, billing, meter, streams, calibration=calibration)


@pytest.fixture
def run(env):
    """Drive a generator to completion inside the simulation."""
    def runner(generator):
        def process(env):
            result = yield from generator
            return result
        return env.run(until=env.process(process(env)))
    return runner
