"""End-to-end tests for durable orchestrations: replay, fan-out, failure."""

import pytest

from repro.azure import EntityId, EntitySpec, OrchestratorSpec
from repro.azure.durable import OrchestrationFailedError, OrchestrationStatus
from repro.platforms.base import FunctionSpec
from repro.storage.payload import KB


def register_activity(runtime, name, handler, **kwargs):
    kwargs.setdefault("memory_mb", 1536)
    kwargs.setdefault("timeout_s", 1800.0)
    runtime.register_activity(FunctionSpec(name=name, handler=handler,
                                           **kwargs))


def double_activity(ctx, event):
    yield from ctx.busy(1.0)
    return event * 2


def add_activity(ctx, event):
    yield from ctx.busy(0.5)
    return event["a"] + event["b"]


def test_single_activity_orchestration(runtime, run):
    register_activity(runtime, "double", double_activity)

    def orchestrator(context):
        result = yield context.call_activity("double", context.input)
        return result

    runtime.register_orchestrator(OrchestratorSpec("simple", orchestrator))
    output = run(runtime.client.run("simple", 21))
    assert output == 42


def test_activity_chain_runs_sequentially(runtime, run, env):
    register_activity(runtime, "double", double_activity)

    def orchestrator(context):
        first = yield context.call_activity("double", context.input)
        second = yield context.call_activity("double", first)
        third = yield context.call_activity("double", second)
        return third

    runtime.register_orchestrator(OrchestratorSpec("chain", orchestrator))
    output = run(runtime.client.run("chain", 1))
    assert output == 8
    # Three sequential 1 s activities: at least 3 s of simulated time.
    assert env.now >= 3.0


def test_orchestrator_is_replayed_per_completion(runtime, run):
    """The generator re-executes from the top on each episode."""
    register_activity(runtime, "double", double_activity)
    replays = []

    def orchestrator(context):
        replays.append(context.is_replaying)
        first = yield context.call_activity("double", 1)
        second = yield context.call_activity("double", first)
        return second

    runtime.register_orchestrator(OrchestratorSpec("replayed", orchestrator))
    output = run(runtime.client.run("replayed"))
    assert output == 4
    # Episode 1 (start), episode 2 (first completion), episode 3 (second):
    # the orchestrator body ran at least 3 times.
    assert len(replays) >= 3


def test_fan_out_with_task_all(runtime, run):
    register_activity(runtime, "double", double_activity)

    def orchestrator(context):
        tasks = [context.call_activity("double", item)
                 for item in context.input]
        results = yield context.task_all(tasks)
        return results

    runtime.register_orchestrator(OrchestratorSpec("fanout", orchestrator))
    output = run(runtime.client.run("fanout", [1, 2, 3, 4, 5]))
    assert output == [2, 4, 6, 8, 10]


def test_task_any_returns_first_completion(runtime, run):
    def fast(ctx, event):
        yield from ctx.busy(1.0)
        return "fast"

    def slow(ctx, event):
        yield from ctx.busy(60.0)
        return "slow"

    register_activity(runtime, "fast", fast)
    register_activity(runtime, "slow", slow)

    def orchestrator(context):
        fast_task = context.call_activity("fast")
        slow_task = context.call_activity("slow")
        winner, value = yield context.task_any([fast_task, slow_task])
        return value

    runtime.register_orchestrator(OrchestratorSpec("race", orchestrator))
    assert run(runtime.client.run("race")) == "fast"


def test_sub_orchestration(runtime, run):
    register_activity(runtime, "double", double_activity)

    def child(context):
        result = yield context.call_activity("double", context.input)
        return result

    def parent(context):
        first = yield context.call_sub_orchestrator("child", 10)
        second = yield context.call_sub_orchestrator("child", first)
        return second

    runtime.register_orchestrator(OrchestratorSpec("child", child))
    runtime.register_orchestrator(OrchestratorSpec("parent", parent))
    assert run(runtime.client.run("parent")) == 40


def test_durable_timer(runtime, run, env):
    def orchestrator(context):
        yield context.create_timer(120.0)
        return "woke"

    runtime.register_orchestrator(OrchestratorSpec("sleeper", orchestrator))
    assert run(runtime.client.run("sleeper")) == "woke"
    assert env.now >= 120.0


def test_activity_failure_raises_in_orchestrator(runtime, run):
    def explode(ctx, event):
        yield from ctx.busy(0.1)
        raise RuntimeError("activity exploded")

    register_activity(runtime, "explode", explode)
    caught = []

    def orchestrator(context):
        from repro.azure.durable import ActivityFailedError
        try:
            yield context.call_activity("explode")
        except ActivityFailedError as error:
            caught.append(str(error))
            return "recovered"

    runtime.register_orchestrator(OrchestratorSpec("fragile", orchestrator))
    assert run(runtime.client.run("fragile")) == "recovered"
    assert "exploded" in caught[0]


def test_unhandled_activity_failure_fails_orchestration(runtime, run):
    def explode(ctx, event):
        yield from ctx.busy(0.1)
        raise RuntimeError("boom")

    register_activity(runtime, "explode", explode)

    def orchestrator(context):
        yield context.call_activity("explode")

    runtime.register_orchestrator(OrchestratorSpec("doomed", orchestrator))
    with pytest.raises(OrchestrationFailedError, match="boom"):
        run(runtime.client.run("doomed"))


def test_status_transitions_pending_running_completed(runtime, run, env):
    register_activity(runtime, "double", double_activity)

    def orchestrator(context):
        result = yield context.call_activity("double", 1)
        return result

    runtime.register_orchestrator(OrchestratorSpec("status", orchestrator))

    def scenario(env):
        instance_id = yield from runtime.client.start_new("status", None)
        status = runtime.client.get_status(instance_id)
        assert status.status == OrchestrationStatus.PENDING
        yield from runtime.client.wait_for_completion(instance_id)
        return runtime.client.get_status(instance_id)

    instance = run(scenario(env))
    assert instance.status == OrchestrationStatus.COMPLETED
    assert instance.cold_start_delay > 0
    assert instance.end_to_end_latency > 0
    assert instance.running_at < instance.completed_at


def test_payload_limit_on_activity_input(runtime, run):
    register_activity(runtime, "double", double_activity)

    def orchestrator(context):
        yield context.call_activity("double", "x" * (65 * KB))

    runtime.register_orchestrator(OrchestratorSpec("bloated", orchestrator))
    with pytest.raises(OrchestrationFailedError, match="64|payload|limit"):
        run(runtime.client.run("bloated"))


def test_payload_limit_on_activity_result(runtime, run):
    def bloater(ctx, event):
        yield from ctx.busy(0.1)
        return "x" * (65 * KB)

    register_activity(runtime, "bloater", bloater)

    def orchestrator(context):
        result = yield context.call_activity("bloater")
        return result

    runtime.register_orchestrator(OrchestratorSpec("bloated2", orchestrator))
    with pytest.raises(OrchestrationFailedError):
        run(runtime.client.run("bloated2"))


def test_history_persisted_to_table(runtime, run, meter):
    register_activity(runtime, "double", double_activity)

    def orchestrator(context):
        result = yield context.call_activity("double", 1)
        return result

    runtime.register_orchestrator(OrchestratorSpec("hist", orchestrator))
    run(runtime.client.run("hist"))
    # ExecutionStarted, TaskScheduled, TaskCompleted, ExecutionCompleted.
    inserts = meter.count(service="table", operation="insert")
    assert inserts >= 4
    # Each episode reads the partition back.
    assert meter.count(service="table", operation="query") >= 2


def test_replay_episodes_bill_compute(runtime, run, billing):
    register_activity(runtime, "double", double_activity)

    def orchestrator(context):
        first = yield context.call_activity("double", 1)
        second = yield context.call_activity("double", first)
        return second

    runtime.register_orchestrator(OrchestratorSpec("billed", orchestrator))
    run(runtime.client.run("billed"))
    episodes = billing.execution_count("orchestrator::billed")
    assert episodes >= 3  # start + 2 completions
    assert billing.total_gb_s() > 0


def test_replay_spans_grow_with_history(runtime, run, telemetry):
    register_activity(runtime, "double", double_activity)

    def orchestrator(context):
        value = context.input
        for _ in range(4):
            value = yield context.call_activity("double", value)
        return value

    runtime.register_orchestrator(OrchestratorSpec("growing", orchestrator))
    run(runtime.client.run("growing", 1))
    replays = telemetry.find(kind="replay", name="growing")
    histories = [span.attributes["history_events"] for span in replays]
    assert histories == sorted(histories)
    assert histories[-1] > histories[0]


def test_idle_polling_accrues_transactions(runtime, run, meter, env):
    """The pumps keep polling after the workflow is done — billable."""
    register_activity(runtime, "double", double_activity)

    def orchestrator(context):
        result = yield context.call_activity("double", 1)
        return result

    runtime.register_orchestrator(OrchestratorSpec("idleTest", orchestrator))
    run(runtime.client.run("idleTest"))
    polls_at_completion = meter.count(service="queue", operation="poll")

    def idle(env):
        yield env.timeout(3600.0)

    env.run(until=env.process(idle(env)))
    polls_after_idle_hour = meter.count(service="queue", operation="poll")
    # An idle hour at ≤30 s backoff across 5 queues: ≥ 300 more polls.
    assert polls_after_idle_hour - polls_at_completion > 300


def test_nondeterministic_orchestrator_detected(runtime, run):
    register_activity(runtime, "double", double_activity)
    flip = []

    def orchestrator(context):
        flip.append(True)
        if len(flip) == 1:
            first = yield context.call_activity("double", 1)
        else:
            first = yield context.create_timer(5.0)   # diverges on replay
        return first

    runtime.register_orchestrator(OrchestratorSpec("evil", orchestrator))
    with pytest.raises(OrchestrationFailedError, match="[Nn]on[Dd]eterminism"):
        run(runtime.client.run("evil"))
