"""Tests for the Azure Functions consumption-plan runtime."""

import pytest

from repro.azure.app import TRIGGER_DURABLE, TRIGGER_HTTP, TRIGGER_QUEUE
from repro.platforms.base import FunctionSpec, FunctionTimeout
from repro.sim import Constant


def echo(ctx, event):
    yield from ctx.busy(1.0)
    return {"echo": event}


def make_spec(name="echo", handler=echo, **kwargs):
    kwargs.setdefault("memory_mb", 1536)
    kwargs.setdefault("timeout_s", 1800.0)
    return FunctionSpec(name=name, handler=handler, **kwargs)


def test_register_and_invoke(app, run):
    app.register(make_spec())
    result = run(app.invoke("echo", {"x": 1}))
    assert result.value == {"echo": {"x": 1}}


def test_register_rejects_oversized_memory(app):
    with pytest.raises(ValueError, match="caps memory"):
        app.register(make_spec(memory_mb=2048))


def test_register_rejects_excessive_timeout(app):
    with pytest.raises(ValueError, match="plan limit"):
        app.register(make_spec(timeout_s=3600.0))


def test_invoke_unknown_function(app, run):
    with pytest.raises(KeyError, match="no such Azure function"):
        run(app.invoke("ghost", {}))


def test_scaled_to_zero_pays_trigger_cold_start(app, run, calibration):
    app.register(make_spec())
    result = run(app.invoke("echo", {}, trigger=TRIGGER_DURABLE))
    assert result.cold_start
    # Durable cold start is calibrated to 0.5-2 s (Fig 10).
    assert 0.5 <= result.queue_wait <= 2.5


def test_queue_trigger_cold_start_is_much_slower(app, run):
    app.register(make_spec())
    result = run(app.invoke("echo", {}, trigger=TRIGGER_QUEUE))
    # 10-20 s (Fig 10), plus the warm dispatch hop.
    assert 10.0 <= result.queue_wait <= 21.0


def test_warm_invocation_reuses_instance(env, app, run):
    app.register(make_spec())
    run(app.invoke("echo", {}))
    assert app.live_instance_count == 1
    result = run(app.invoke("echo", {}))
    assert not result.cold_start
    assert result.queue_wait < 1.0
    assert app.live_instance_count == 1


def test_concurrency_limited_by_instance_slots(env, app, run, calibration):
    """Work beyond the pool's slots waits for the scale controller."""
    app.register(make_spec(name="slow", handler=_slow_handler))
    run(app.invoke("slow", {}))  # one warm instance now

    def fan_out(env):
        processes = [env.process(_invoke(app, "slow", i)) for i in range(8)]
        yield env.all_of(processes)
        return [process.value for process in processes]

    results = env.run(until=env.process(fan_out(env)))
    waits = sorted(result.queue_wait for result in results)
    # Two fit on the warm instance immediately; with 30 s tasks the rest
    # queue until the controller adds instances (≥ one evaluation cycle).
    assert waits[0] < 1.0
    assert waits[-1] > calibration.scale_interval_s * 0.9


def _invoke(app, name, payload):
    result = yield from app.invoke(name, payload)
    return result


def test_scale_controller_grows_pool_under_backlog(env, app, run):
    app.register(make_spec(name="slow", handler=_slow_handler))

    def fan_out(env):
        processes = [env.process(_invoke(app, "slow", i)) for i in range(30)]
        yield env.all_of(processes)

    env.run(until=env.process(fan_out(env)))
    assert app.controller.scale_out_events > 0
    assert app.live_instance_count > 1


def _slow_handler(ctx, event):
    yield from ctx.busy(30.0)
    return event


def test_idle_instances_reclaimed(env, app, run, calibration):
    app.register(make_spec())
    run(app.invoke("echo", {}))
    assert app.live_instance_count == 1

    def wait(env):
        yield env.timeout(calibration.instance_idle_timeout_s
                          + 2 * calibration.scale_interval_s)

    env.run(until=env.process(wait(env)))
    assert app.live_instance_count == 0


def test_billing_uses_measured_memory_rounded_to_128(app, billing, run):
    spec = make_spec(name="light", measured_memory_mb=200)
    app.register(spec)
    run(app.invoke("light", {}))
    charge = billing.compute[-1]
    assert charge.memory_mb == 256  # 200 rounded up to 128-multiple


def test_billing_minimum_100ms(app, billing, run):
    def instant(ctx, event):
        yield from ctx.busy(0.001)
        return None

    app.register(make_spec(name="instant", handler=instant))
    run(app.invoke("instant", {}))
    assert billing.compute[-1].billed_duration == pytest.approx(0.1)


def test_billing_ms_granularity_above_minimum(app, billing, run):
    def timed(ctx, event):
        yield from ctx.busy(0.2345)
        return None

    app.register(make_spec(name="timed", handler=timed))
    run(app.invoke("timed", {}))
    assert billing.compute[-1].billed_duration == pytest.approx(0.235)


def test_timeout_enforced(app, run):
    def forever(ctx, event):
        yield from ctx.busy(100.0)
        return None

    app.register(make_spec(name="forever", handler=forever, timeout_s=5.0))
    with pytest.raises(FunctionTimeout):
        run(app.invoke("forever", {}))


def test_scheduling_span_records_queue_wait(app, telemetry, run):
    app.register(make_spec())
    run(app.invoke("echo", {}))
    spans = telemetry.find(kind="scheduling", name="echo")
    assert len(spans) == 1
    assert spans[0].attributes["queue_wait"] == pytest.approx(spans[0].duration)


def test_handler_exception_propagates(app, run):
    def broken(ctx, event):
        yield from ctx.busy(0.1)
        raise ValueError("kaput")

    app.register(make_spec(name="broken", handler=broken))
    with pytest.raises(ValueError, match="kaput"):
        run(app.invoke("broken", {}))
