"""Tests for the Az-Queue function-chain implementation."""

import pytest

from repro.azure import QueueChain
from repro.platforms.base import FunctionSpec


def stage(value_fn):
    def handler(ctx, event):
        yield from ctx.busy(1.0)
        return value_fn(event)
    return handler


@pytest.fixture
def chain_app(app):
    app.register(FunctionSpec(name="inc", handler=stage(lambda x: x + 1),
                              memory_mb=1536, timeout_s=1800.0))
    app.register(FunctionSpec(name="double", handler=stage(lambda x: x * 2),
                              memory_mb=1536, timeout_s=1800.0))
    app.register(FunctionSpec(name="square", handler=stage(lambda x: x * x),
                              memory_mb=1536, timeout_s=1800.0))
    return app


def test_chain_threads_value_through_stages(chain_app, meter, run):
    chain = QueueChain(chain_app, meter, ["inc", "double", "square"])
    result = run(chain.run(3))
    assert result.value == 64  # ((3+1)*2)^2


def test_chain_requires_stages(chain_app, meter):
    with pytest.raises(ValueError, match="at least one stage"):
        QueueChain(chain_app, meter, [])


def test_chain_rejects_unknown_stage(chain_app, meter):
    with pytest.raises(KeyError):
        QueueChain(chain_app, meter, ["inc", "ghost"])


def test_chain_accumulates_queue_time(chain_app, meter, run):
    chain = QueueChain(chain_app, meter, ["inc", "double", "square"])
    result = run(chain.run(1))
    # Three queue-trigger hops, each with a polling delay.
    assert result.queue_time > 1.0
    assert result.execution_time >= 3.0
    assert result.latency >= result.queue_time + result.execution_time - 1.0


def test_chain_queue_transactions_metered(chain_app, meter, run):
    chain = QueueChain(chain_app, meter, ["inc", "double"])
    run(chain.run(1))
    assert meter.count(service="queue", operation="enqueue") == 2
    assert meter.count(service="queue", operation="poll") >= 2


def test_chain_emits_workflow_span(chain_app, meter, telemetry, run):
    chain = QueueChain(chain_app, meter, ["inc"], name="mychain")
    run(chain.run(1))
    spans = telemetry.find(kind="workflow", name="mychain")
    assert len(spans) == 1
    assert spans[0].attributes["implementation"] == "az-queue"


def test_chain_queue_time_dominates_vs_durable_dispatch(chain_app, meter,
                                                        run):
    """Fig 8's core contrast: queue-trigger hops cost seconds each."""
    chain = QueueChain(chain_app, meter, ["inc", "double", "square"])
    results = [run(chain.run(1)) for _ in range(10)]
    mean_queue_time = sum(r.queue_time for r in results) / len(results)
    assert mean_queue_time > 3.0  # several seconds across 3 hops
