"""Tests for advanced durable features: external events, retries,
continue-as-new, and the approval-vs-timeout pattern."""

import pytest

from repro.azure import OrchestratorSpec, RetryOptions
from repro.azure.durable import OrchestrationFailedError, OrchestrationStatus
from repro.azure.durable.tasks import ExternalEventTask
from repro.platforms.base import FunctionSpec


def register_activity(runtime, name, handler):
    runtime.register_activity(FunctionSpec(
        name=name, handler=handler, memory_mb=1536, timeout_s=1800.0))


# -- external events -----------------------------------------------------------

def test_wait_for_external_event(runtime, run, env):
    def orchestrator(context):
        approval = yield context.wait_for_external_event("Approval")
        return {"approved_by": approval}

    runtime.register_orchestrator(OrchestratorSpec("approval", orchestrator))

    def scenario(env):
        client = runtime.client
        instance_id = yield from client.start_new("approval")
        yield env.timeout(120.0)   # the orchestration idles, unloaded
        status = client.get_status(instance_id)
        assert status.status == OrchestrationStatus.RUNNING
        yield from client.raise_event(instance_id, "Approval", "alice")
        output = yield from client.wait_for_completion(instance_id)
        return output

    assert run(scenario(env)) == {"approved_by": "alice"}
    assert env.now >= 120.0


def test_external_events_match_by_name_and_order(runtime, run, env):
    def orchestrator(context):
        first = yield context.wait_for_external_event("tick")
        second = yield context.wait_for_external_event("tick")
        other = yield context.wait_for_external_event("tock")
        return [first, second, other]

    runtime.register_orchestrator(OrchestratorSpec("ticker", orchestrator))

    def scenario(env):
        client = runtime.client
        instance_id = yield from client.start_new("ticker")
        yield env.timeout(10.0)
        yield from client.raise_event(instance_id, "tock", "T")
        yield from client.raise_event(instance_id, "tick", 1)
        yield from client.raise_event(instance_id, "tick", 2)
        output = yield from client.wait_for_completion(instance_id)
        return output

    assert run(scenario(env)) == [1, 2, "T"]


def test_raise_event_on_finished_instance_rejected(runtime, run, env):
    def orchestrator(context):
        yield context.create_timer(1.0)
        return "done"

    runtime.register_orchestrator(OrchestratorSpec("quick", orchestrator))

    def scenario(env):
        client = runtime.client
        instance_id = yield from client.start_new("quick")
        yield from client.wait_for_completion(instance_id)
        yield from client.raise_event(instance_id, "late")

    with pytest.raises(OrchestrationFailedError, match="finished"):
        run(scenario(env))


def test_approval_or_timeout_pattern(runtime, run, env):
    """The canonical human-interaction pattern: event vs durable timer."""
    outcomes = []

    def orchestrator(context):
        approval = context.wait_for_external_event("Approval")
        deadline = context.create_timer(300.0)
        winner, value = yield context.task_any([approval, deadline])
        if isinstance(winner, ExternalEventTask):
            return {"outcome": "approved", "by": value}
        return {"outcome": "timed out"}

    runtime.register_orchestrator(OrchestratorSpec("gate", orchestrator))

    def approved(env):
        client = runtime.client
        instance_id = yield from client.start_new("gate")
        yield env.timeout(50.0)
        yield from client.raise_event(instance_id, "Approval", "bob")
        output = yield from client.wait_for_completion(instance_id)
        return output

    assert run(approved(env)) == {"outcome": "approved", "by": "bob"}

    def expired(env):
        client = runtime.client
        instance_id = yield from client.start_new("gate")
        output = yield from client.wait_for_completion(instance_id)
        return output

    assert run(expired(env)) == {"outcome": "timed out"}


# -- retries ----------------------------------------------------------------------

def test_retry_options_validation():
    with pytest.raises(ValueError):
        RetryOptions(first_retry_interval_s=0)
    with pytest.raises(ValueError):
        RetryOptions(max_number_of_attempts=0)
    with pytest.raises(ValueError):
        RetryOptions(backoff_coefficient=0.5)
    with pytest.raises(ValueError):
        RetryOptions(first_retry_interval_s=5.0, max_retry_interval_s=1.0)
    with pytest.raises(ValueError):
        RetryOptions(retry_timeout_s=0.0)
    options = RetryOptions(first_retry_interval_s=2.0, backoff_coefficient=3.0)
    assert options.delay_before_attempt(1) == 2.0
    assert options.delay_before_attempt(2) == 6.0


def test_retry_options_caps_backoff_at_max_interval():
    options = RetryOptions(first_retry_interval_s=2.0,
                           backoff_coefficient=3.0,
                           max_retry_interval_s=10.0)
    # Uncapped the sequence would be 2, 6, 18, 54 …
    assert options.delay_before_attempt(1) == 2.0
    assert options.delay_before_attempt(2) == 6.0
    assert options.delay_before_attempt(3) == 10.0
    assert options.delay_before_attempt(4) == 10.0


def test_retry_timeout_stops_retrying(runtime, run, env):
    attempts = []

    def broken(ctx, event):
        yield from ctx.busy(0.1)
        attempts.append(1)
        raise RuntimeError("permanent")

    register_activity(runtime, "broken", broken)

    def orchestrator(context):
        yield context.call_activity_with_retry(
            "broken", RetryOptions(first_retry_interval_s=10.0,
                                   max_number_of_attempts=10,
                                   retry_timeout_s=15.0))

    runtime.register_orchestrator(OrchestratorSpec("impatient",
                                                   orchestrator))
    with pytest.raises(OrchestrationFailedError, match="permanent"):
        run(runtime.client.run("impatient"))
    # Ten attempts were allowed, but the 15 s retry budget only fits the
    # initial attempt plus one 10 s-delayed retry.
    assert len(attempts) == 2


def test_call_activity_with_retry_recovers(runtime, run, env):
    attempts = []

    def flaky(ctx, event):
        yield from ctx.busy(0.1)
        attempts.append(1)
        if len(attempts) < 3:
            raise RuntimeError("transient failure")
        return "finally"

    register_activity(runtime, "flaky", flaky)

    def orchestrator(context):
        result = yield context.call_activity_with_retry(
            "flaky", RetryOptions(first_retry_interval_s=5.0,
                                  max_number_of_attempts=5))
        return result

    runtime.register_orchestrator(OrchestratorSpec("retrier", orchestrator))
    assert run(runtime.client.run("retrier")) == "finally"
    assert len(attempts) == 3
    # Two backoff delays (5 s + 10 s) elapsed before success.
    assert env.now >= 15.0


def test_retry_exhaustion_fails_orchestration(runtime, run):
    def broken(ctx, event):
        yield from ctx.busy(0.1)
        raise RuntimeError("permanent")

    register_activity(runtime, "broken", broken)

    def orchestrator(context):
        yield context.call_activity_with_retry(
            "broken", RetryOptions(first_retry_interval_s=1.0,
                                   max_number_of_attempts=2))

    runtime.register_orchestrator(OrchestratorSpec("doomed", orchestrator))
    with pytest.raises(OrchestrationFailedError, match="permanent"):
        run(runtime.client.run("doomed"))


# -- continue-as-new -----------------------------------------------------------------

def test_continue_as_new_restarts_with_new_input(runtime, run):
    def add_one(ctx, event):
        yield from ctx.busy(0.1)
        return event + 1

    register_activity(runtime, "add_one", add_one)

    def orchestrator(context):
        value = yield context.call_activity("add_one", context.input)
        if value < 5:
            context.continue_as_new(value)
            return None
        return value

    runtime.register_orchestrator(OrchestratorSpec("counter", orchestrator))
    assert run(runtime.client.run("counter", 0)) == 5


def test_continue_as_new_truncates_history(runtime, run):
    """The eternal-orchestration pattern keeps replay cost bounded."""
    def noop(ctx, event):
        yield from ctx.busy(0.05)
        return event

    register_activity(runtime, "noop", noop)

    def orchestrator(context):
        yield context.call_activity("noop", context.input)
        if context.input < 10:
            context.continue_as_new(context.input + 1)
            return None
        return "done"

    runtime.register_orchestrator(OrchestratorSpec("eternal", orchestrator))

    def scenario(env):
        client = runtime.client
        instance_id = yield from client.start_new("eternal", 0)
        output = yield from client.wait_for_completion(instance_id)
        instance = client.get_status(instance_id)
        return output, len(instance.history)

    output, history_length = run(scenario(runtime.env))
    assert output == "done"
    # History holds only the final generation's events, not all eleven.
    assert history_length < 8
