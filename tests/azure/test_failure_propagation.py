"""Failure-path tests: sub-orchestrations, entities, bad orchestrator code."""

import pytest

from repro.azure import EntityId, EntitySpec, OrchestratorSpec
from repro.azure.durable import ActivityFailedError, OrchestrationFailedError
from repro.azure.durable.taskhub import OrchestrationStatus
from repro.platforms.base import FunctionSpec


def register_activity(runtime, name, handler):
    runtime.register_activity(FunctionSpec(
        name=name, handler=handler, memory_mb=1536, timeout_s=1800.0))


def failing_activity(ctx, event):
    yield from ctx.busy(0.1)
    raise RuntimeError("inner failure")


def test_sub_orchestration_failure_propagates_to_parent(runtime, run):
    register_activity(runtime, "boom", failing_activity)

    def child(context):
        yield context.call_activity("boom")

    def parent(context):
        result = yield context.call_sub_orchestrator("child")
        return result

    runtime.register_orchestrator(OrchestratorSpec("child", child))
    runtime.register_orchestrator(OrchestratorSpec("parent", parent))
    with pytest.raises(OrchestrationFailedError, match="inner failure"):
        run(runtime.client.run("parent"))
    # Both instances ended Failed.
    statuses = {instance.orchestrator: instance.status
                for instance in runtime.taskhub.instances.values()}
    assert statuses["parent"] == OrchestrationStatus.FAILED
    assert statuses["child"] == OrchestrationStatus.FAILED


def test_parent_can_catch_sub_orchestration_failure(runtime, run):
    register_activity(runtime, "boom", failing_activity)

    def child(context):
        yield context.call_activity("boom")

    def parent(context):
        try:
            yield context.call_sub_orchestrator("child")
        except ActivityFailedError:
            return "handled"

    runtime.register_orchestrator(OrchestratorSpec("child", child))
    runtime.register_orchestrator(OrchestratorSpec("parent", parent))
    assert run(runtime.client.run("parent")) == "handled"
    parent_instance = [i for i in runtime.taskhub.instances.values()
                       if i.orchestrator == "parent"][0]
    assert parent_instance.status == OrchestrationStatus.COMPLETED


def test_entity_operation_user_error_propagates(runtime, run):
    def bad_op(ctx, state, _input):
        yield from ctx.busy(0.1)
        raise ValueError("entity logic bug")

    runtime.register_entity(EntitySpec(name="Bad",
                                       operations={"op": bad_op}))

    def orchestrator(context):
        yield context.call_entity(EntityId("Bad", "k"), "op")

    runtime.register_orchestrator(OrchestratorSpec("uses-bad", orchestrator))
    with pytest.raises(OrchestrationFailedError, match="entity logic bug"):
        run(runtime.client.run("uses-bad"))


def test_entity_failure_does_not_poison_the_key(runtime, run):
    """After a failed op, the entity keeps serving (state unchanged)."""
    calls = []

    def fragile_op(ctx, state, flag):
        yield from ctx.busy(0.05)
        calls.append(flag)
        if flag == "fail":
            raise RuntimeError("whoops")
        return (state or 0) + 1, (state or 0) + 1

    runtime.register_entity(EntitySpec(name="Fragile",
                                       operations={"op": fragile_op},
                                       initial_state=lambda: 0))

    def orchestrator(context):
        entity = EntityId("Fragile", "k")
        try:
            yield context.call_entity(entity, "op", "fail")
        except ActivityFailedError:
            pass
        value = yield context.call_entity(entity, "op", "ok")
        return value

    runtime.register_orchestrator(OrchestratorSpec("resilient",
                                                   orchestrator))
    assert run(runtime.client.run("resilient")) == 1
    assert calls == ["fail", "ok"]


def test_orchestrator_yielding_garbage_fails_cleanly(runtime, run):
    def orchestrator(context):
        yield "not a durable task"

    runtime.register_orchestrator(OrchestratorSpec("garbage", orchestrator))
    with pytest.raises(OrchestrationFailedError, match="only yield"):
        run(runtime.client.run("garbage"))


def test_orchestrator_immediate_exception_fails(runtime, run):
    def orchestrator(context):
        raise KeyError("config missing")
        yield  # pragma: no cover

    runtime.register_orchestrator(OrchestratorSpec("crashy", orchestrator))
    with pytest.raises(OrchestrationFailedError, match="config missing"):
        run(runtime.client.run("crashy"))


def test_failure_in_one_fanout_branch_fails_task_all(runtime, run):
    def sometimes(ctx, event):
        yield from ctx.busy(0.1)
        if event == 2:
            raise RuntimeError("branch 2 died")
        return event

    register_activity(runtime, "sometimes", sometimes)

    def orchestrator(context):
        tasks = [context.call_activity("sometimes", index)
                 for index in range(4)]
        results = yield context.task_all(tasks)
        return results

    runtime.register_orchestrator(OrchestratorSpec("fragile-fan",
                                                   orchestrator))
    with pytest.raises(OrchestrationFailedError, match="branch 2 died"):
        run(runtime.client.run("fragile-fan"))


def test_activity_timeout_fails_orchestration(runtime, run):
    def endless(ctx, event):
        yield from ctx.busy(10_000.0)
        return None

    runtime.register_activity(FunctionSpec(
        name="endless", handler=endless, memory_mb=1536, timeout_s=5.0))

    def orchestrator(context):
        yield context.call_activity("endless")

    runtime.register_orchestrator(OrchestratorSpec("stuck", orchestrator))
    with pytest.raises(OrchestrationFailedError, match="exceeded"):
        run(runtime.client.run("stuck"))


def test_wait_for_completion_twice_is_idempotent(runtime, run):
    def quick(ctx, event):
        yield from ctx.busy(0.1)
        return "ok"

    register_activity(runtime, "quick", quick)

    def orchestrator(context):
        result = yield context.call_activity("quick")
        return result

    runtime.register_orchestrator(OrchestratorSpec("idem", orchestrator))

    def scenario(env):
        client = runtime.client
        instance_id = yield from client.start_new("idem")
        first = yield from client.wait_for_completion(instance_id)
        second = yield from client.wait_for_completion(instance_id)
        return first, second

    assert run(scenario(runtime.env)) == ("ok", "ok")
