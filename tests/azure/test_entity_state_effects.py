"""Tests: entity state size affects op latency; chain cold starts."""

import pytest

from repro.azure import EntityId, EntitySpec, OrchestratorSpec, QueueChain
from repro.platforms.base import FunctionSpec
from repro.storage.payload import MB


def test_large_entity_state_slows_operations(runtime, run, telemetry):
    """Multi-MB entity state pays its read/write transfer time (§IV-A:
    'Entities are ... persisted with much larger storage size (few MBs)')."""

    class BigState:
        payload_size = 5 * MB

    def touch_small(ctx, state, _input):
        yield from ctx.busy(0.1)
        return state, "ok"

    def touch_big(ctx, state, _input):
        yield from ctx.busy(0.1)
        return state if state is not None else BigState(), "ok"

    runtime.register_entity(EntitySpec(
        name="Small", operations={"touch": touch_small},
        initial_state=lambda: 0))
    runtime.register_entity(EntitySpec(
        name="Big", operations={"touch": touch_big},
        initial_state=BigState))

    def orchestrator(context):
        # Touch twice so the second op pays the full read+write of the
        # persisted state.
        yield context.call_entity(EntityId("Small", "s"), "touch")
        yield context.call_entity(EntityId("Small", "s"), "touch")
        yield context.call_entity(EntityId("Big", "b"), "touch")
        yield context.call_entity(EntityId("Big", "b"), "touch")
        return "done"

    runtime.register_orchestrator(OrchestratorSpec("stateful",
                                                   orchestrator))
    run(runtime.client.run("stateful"))

    small_ops = telemetry.durations(kind="execution", name="entity::Small")
    big_ops = telemetry.durations(kind="execution", name="entity::Big")
    # The second Big op reads and rewrites 5 MB of state.
    assert max(big_ops) > max(small_ops)


def test_queue_chain_pays_queue_trigger_cold_start(env, app, meter, run,
                                                   calibration):
    """After a long idle period the chain's first hop goes 10-20 s cold."""
    def stage(ctx, event):
        yield from ctx.busy(0.5)
        return event

    app.register(FunctionSpec(name="s1", handler=stage, memory_mb=1536,
                              timeout_s=600.0))
    chain = QueueChain(app, meter, ["s1"], name="coldchain")

    def scenario(env):
        cold_first = yield from chain.run(1)
        warm = yield from chain.run(2)            # instances still live
        # Scale to zero: idle long past the instance timeout.
        yield env.timeout(calibration.instance_idle_timeout_s * 3)
        cold_again = yield from chain.run(3)
        return cold_first, warm, cold_again

    cold_first, warm, cold_again = run(scenario(env))
    # Cold runs pay the 10-20 s queue-trigger wake (Fig 10) on top of the
    # ordinary polling delay; the warm run pays only the polling delay.
    assert cold_first.latency > warm.latency + 8.0
    assert cold_again.latency > warm.latency + 8.0
