"""Reliability tests: fault injection and event-sourced crash recovery."""

import pytest

from repro.azure import EntityId, EntitySpec, OrchestratorSpec, RetryOptions
from repro.azure.durable import OrchestrationFailedError
from repro.platforms.base import FunctionSpec
from repro.platforms.faults import ContainerCrash, FaultInjector

pytestmark = pytest.mark.faults


def step(ctx, event):
    yield from ctx.busy(2.0)
    return event + 1


# -- fault injector ---------------------------------------------------------------

def test_fault_injector_validates_probability():
    with pytest.raises(ValueError):
        FaultInjector(crash_probability=1.5)


def test_fault_injector_zero_probability_is_transparent(runtime, run):
    injector = FaultInjector(crash_probability=0.0)
    runtime.register_activity(FunctionSpec(
        name="safe", handler=injector.wrap(step), memory_mb=1536,
        timeout_s=60.0))

    def orchestrator(context):
        result = yield context.call_activity("safe", 1)
        return result

    runtime.register_orchestrator(OrchestratorSpec("safe-wf", orchestrator))
    assert run(runtime.client.run("safe-wf")) == 2
    assert injector.crashes == 0
    assert injector.invocations == 1
    assert injector.observed_crash_rate == 0.0


def test_fault_injector_certain_crash_raises(runtime, run):
    injector = FaultInjector(crash_probability=1.0)
    runtime.register_activity(FunctionSpec(
        name="doomed", handler=injector.wrap(step), memory_mb=1536,
        timeout_s=60.0))

    def orchestrator(context):
        yield context.call_activity("doomed", 1)

    runtime.register_orchestrator(OrchestratorSpec("doomed-wf",
                                                   orchestrator))
    with pytest.raises(OrchestrationFailedError, match="ContainerCrash"):
        run(runtime.client.run("doomed-wf"))
    assert injector.crashes == 1


def test_retries_survive_a_crashy_fleet(runtime, run):
    """With framework retries, a 40 % crash rate still completes."""
    injector = FaultInjector(crash_probability=0.4)
    runtime.register_activity(FunctionSpec(
        name="flaky", handler=injector.wrap(step), memory_mb=1536,
        timeout_s=60.0))

    def orchestrator(context):
        value = context.input
        for _ in range(5):
            value = yield context.call_activity_with_retry(
                "flaky", RetryOptions(first_retry_interval_s=1.0,
                                      max_number_of_attempts=10), value)
        return value

    runtime.register_orchestrator(OrchestratorSpec("resilient",
                                                   orchestrator))
    assert run(runtime.client.run("resilient", 0)) == 5
    # Crashes actually happened and were absorbed.
    assert injector.invocations >= 5
    # (Crash count is stochastic; at 40 % over ≥5 calls it is very likely
    # nonzero, but the invariant under test is completion, not the count.)


# -- crash recovery -------------------------------------------------------------------

def test_recovery_rebuilds_finished_instance_from_table(runtime, run):
    runtime.register_activity(FunctionSpec(
        name="step", handler=step, memory_mb=1536, timeout_s=60.0))

    def orchestrator(context):
        value = yield context.call_activity("step", 10)
        return value

    runtime.register_orchestrator(OrchestratorSpec("recoverable",
                                                   orchestrator))

    def scenario(env):
        client = runtime.client
        instance_id = yield from client.start_new("recoverable")
        output = yield from client.wait_for_completion(instance_id)
        before = client.get_status(instance_id)
        history_length = len(before.history)

        # Host crash: all in-memory state evaporates.
        runtime.taskhub.simulate_host_crash()
        assert client.get_status(instance_id).history == []

        recovered = yield from runtime.taskhub.recover_instance(instance_id)
        return output, history_length, recovered

    output, history_length, recovered = run(scenario(runtime.env))
    assert output == 11
    assert len(recovered.history) == history_length
    assert recovered.status == "Completed"
    assert recovered.output == 11


def test_recovery_resumes_in_flight_orchestration(runtime, run, env):
    """Crash mid-flight; the pending completion message drives resume."""
    runtime.register_activity(FunctionSpec(
        name="slow", handler=lambda ctx, e: _slow(ctx, e),
        memory_mb=1536, timeout_s=120.0))

    def orchestrator(context):
        first = yield context.call_activity("slow", 1)
        second = yield context.call_activity("slow", first)
        return second

    runtime.register_orchestrator(OrchestratorSpec("midflight",
                                                   orchestrator))

    def scenario(env):
        client = runtime.client
        instance_id = yield from client.start_new("midflight")
        # Let the first activity finish and the second get scheduled.
        yield env.timeout(15.0)
        status = client.get_status(instance_id)
        assert status.status == "Running"

        # Crash and recover: queues/tables survive, memory does not.
        runtime.taskhub.simulate_host_crash()
        yield from runtime.taskhub.recover_instance(instance_id)

        output = yield from client.wait_for_completion(instance_id)
        return output

    assert run(scenario(env)) == 3


def _slow(ctx, event):
    yield from ctx.busy(10.0)
    return event + 1


# -- recovery economics (event sourcing does not re-bill) --------------------------

def test_recovery_does_not_rebill_completed_activities(runtime, billing, run):
    """Rebuilding from the history table is a storage read, not compute.

    The client-level crash/recover entry points delegate to the task
    hub, so this also covers the ``DurableClient`` recovery path.
    """
    runtime.register_activity(FunctionSpec(
        name="step", handler=step, memory_mb=1536, timeout_s=60.0))

    def orchestrator(context):
        value = yield context.call_activity("step", 10)
        value = yield context.call_activity("step", value)
        return value

    runtime.register_orchestrator(OrchestratorSpec("frugal", orchestrator))

    def scenario(env):
        client = runtime.client
        instance_id = yield from client.start_new("frugal")
        output = yield from client.wait_for_completion(instance_id)
        executions = billing.execution_count("step")
        gb_s = billing.total_gb_s()

        pending = client.simulate_host_crash()
        assert instance_id in pending
        recovered = yield from client.recover_instance(instance_id)
        return output, executions, gb_s, recovered

    output, executions, gb_s, recovered = run(scenario(runtime.env))
    assert output == 12
    assert executions == 2
    assert recovered.status == "Completed"
    assert recovered.output == 12
    # Recovery re-read the log; it did not re-run (or re-bill) anything.
    assert billing.execution_count("step") == executions
    assert billing.total_gb_s() == pytest.approx(gb_s)


def test_midflight_recovery_bills_each_activity_once(runtime, billing, run,
                                                     env):
    runtime.register_activity(FunctionSpec(
        name="slow", handler=_slow, memory_mb=1536, timeout_s=120.0))

    def orchestrator(context):
        first = yield context.call_activity("slow", 1)
        second = yield context.call_activity("slow", first)
        return second

    runtime.register_orchestrator(OrchestratorSpec("thrifty", orchestrator))

    def scenario(env):
        client = runtime.client
        instance_id = yield from client.start_new("thrifty")
        # First activity finished, second scheduled — then the host dies.
        yield env.timeout(15.0)
        runtime.taskhub.simulate_host_crash()
        yield from runtime.taskhub.recover_instance(instance_id)
        output = yield from client.wait_for_completion(instance_id)
        return output

    assert run(scenario(env)) == 3
    # Replay fed the first result from history: two billed activity
    # executions total, despite the crash in between.
    assert billing.execution_count("slow") == 2


def test_entity_state_survives_host_crash(runtime, run):
    """Entity state lives in the storage table, not the host's memory."""

    def counter_add(ctx, state, amount):
        yield from ctx.busy(0.5)
        new_state = (state or 0) + amount
        return new_state, new_state

    runtime.register_entity(EntitySpec(
        name="Counter", operations={"add": counter_add},
        initial_state=lambda: 0))

    def orchestrator(context):
        result = yield context.call_entity(
            EntityId("Counter", "main"), "add", 5)
        return result

    runtime.register_orchestrator(OrchestratorSpec("bump", orchestrator))
    assert run(runtime.client.run("bump")) == 5

    pending = runtime.client.simulate_host_crash()

    def recover(env):
        for instance_id in pending:
            yield from runtime.client.recover_instance(instance_id)

    run(recover(runtime.env))
    # The counter resumes from the persisted 5, not from scratch.
    assert run(runtime.client.run("bump")) == 10
