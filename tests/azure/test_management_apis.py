"""Tests for custom status, instance listing, purge, and provisioned
concurrency (the AWS-side warm-capacity symmetric)."""

import pytest

from repro.azure import OrchestratorSpec
from repro.azure.durable import OrchestrationFailedError, OrchestrationStatus
from repro.platforms.base import FunctionSpec
from repro.storage.payload import KB


def register_activity(runtime, name, handler):
    runtime.register_activity(FunctionSpec(
        name=name, handler=handler, memory_mb=1536, timeout_s=1800.0))


def slow_step(ctx, event):
    yield from ctx.busy(5.0)
    return event


def test_set_custom_status_visible_mid_flight(runtime, run, env):
    register_activity(runtime, "step", slow_step)

    def orchestrator(context):
        context.set_custom_status({"stage": "step-1"})
        yield context.call_activity("step", 1)
        context.set_custom_status({"stage": "step-2"})
        yield context.call_activity("step", 2)
        return "done"

    runtime.register_orchestrator(OrchestratorSpec("status", orchestrator))

    def scenario(env):
        client = runtime.client
        instance_id = yield from client.start_new("status")
        yield env.timeout(3.0)   # inside step 1
        mid = client.get_status(instance_id).custom_status
        yield from client.wait_for_completion(instance_id)
        final = client.get_status(instance_id).custom_status
        return mid, final

    mid, final = run(scenario(env))
    assert mid == {"stage": "step-1"}
    assert final == {"stage": "step-2"}


def test_custom_status_respects_payload_limit(runtime, run):
    def orchestrator(context):
        context.set_custom_status("x" * (65 * KB))
        yield context.create_timer(1.0)
        return "done"

    runtime.register_orchestrator(OrchestratorSpec("fat", orchestrator))
    with pytest.raises(OrchestrationFailedError):
        run(runtime.client.run("fat"))


def test_list_instances_filters_by_status(runtime, run):
    register_activity(runtime, "step", slow_step)

    def orchestrator(context):
        yield context.call_activity("step", 1)
        return "ok"

    runtime.register_orchestrator(OrchestratorSpec("listme", orchestrator))
    run(runtime.client.run("listme"))
    run(runtime.client.run("listme"))
    completed = runtime.client.list_instances(
        status=OrchestrationStatus.COMPLETED)
    assert len(completed) == 2
    assert runtime.client.list_instances(
        status=OrchestrationStatus.FAILED) == []
    assert len(runtime.client.list_instances()) == 2


def test_purge_removes_history_and_record(runtime, run, meter):
    register_activity(runtime, "step", slow_step)

    def orchestrator(context):
        yield context.call_activity("step", 1)
        return "ok"

    runtime.register_orchestrator(OrchestratorSpec("purgeme", orchestrator))

    def scenario(env):
        client = runtime.client
        instance_id = yield from client.start_new("purgeme")
        yield from client.wait_for_completion(instance_id)
        removed = yield from client.purge_instance_history(instance_id)
        return instance_id, removed

    instance_id, removed = run(scenario(runtime.env))
    assert removed >= 4
    with pytest.raises(KeyError):
        runtime.client.get_status(instance_id)
    assert runtime.taskhub.history_table.partition_size(instance_id) == 0


def test_purge_refuses_running_instances(runtime, run, env):
    register_activity(runtime, "step", slow_step)

    def orchestrator(context):
        yield context.call_activity("step", 1)
        return "ok"

    runtime.register_orchestrator(OrchestratorSpec("live", orchestrator))

    def scenario(env):
        client = runtime.client
        instance_id = yield from client.start_new("live")
        yield env.timeout(1.0)
        yield from client.purge_instance_history(instance_id)

    with pytest.raises(OrchestrationFailedError, match="running"):
        run(scenario(env))


# -- Lambda provisioned concurrency ---------------------------------------------

def test_provisioned_concurrency_skips_cold_start():
    from repro.core import Testbed
    testbed = Testbed(seed=8)

    def echo(ctx, event):
        yield from ctx.busy(0.5)
        return event

    testbed.lambdas.register(FunctionSpec(
        name="hot", handler=echo, memory_mb=1536, timeout_s=60.0))
    testbed.lambdas.set_provisioned_concurrency("hot", 3)
    assert testbed.lambdas.provisioned_concurrency("hot") == 3

    result = testbed.run(testbed.lambdas.invoke("hot", 1))
    assert not result.cold_start

    # Provisioned containers never expire, even across long idle gaps.
    testbed.advance(7 * 24 * 3600.0)
    result = testbed.run(testbed.lambdas.invoke("hot", 2))
    assert not result.cold_start


def test_provisioned_concurrency_validation():
    from repro.core import Testbed
    testbed = Testbed(seed=8)
    with pytest.raises(KeyError):
        testbed.lambdas.set_provisioned_concurrency("ghost", 1)

    def echo(ctx, event):
        yield from ctx.busy(0.1)
        return event

    testbed.lambdas.register(FunctionSpec(
        name="fn", handler=echo, memory_mb=1024, timeout_s=60.0))
    with pytest.raises(ValueError):
        testbed.lambdas.set_provisioned_concurrency("fn", -1)


def test_provisioned_monthly_cost():
    from repro.core import Testbed
    testbed = Testbed(seed=8)

    def echo(ctx, event):
        yield from ctx.busy(0.1)
        return event

    testbed.lambdas.register(FunctionSpec(
        name="fn", handler=echo, memory_mb=2048, timeout_s=60.0))
    testbed.lambdas.set_provisioned_concurrency("fn", 5)
    cost = testbed.lambdas.provisioned_monthly_cost(hours=100.0)
    expected = 5 * 2.0 * testbed.aws_calibration.provisioned_gb_hour_price \
        * 100.0
    assert cost == pytest.approx(expected)
