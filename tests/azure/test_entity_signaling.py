"""Tests for entity-to-entity signaling (§II-B)."""

import pytest

from repro.azure import EntityId, EntitySpec, OrchestratorSpec


def test_entity_signals_another_entity(runtime, run, env):
    """A counter entity forwards every change to an audit-log entity."""

    def add_op(ctx, state, amount):
        new_state = (state or 0) + amount
        yield from ctx.busy(0.05)
        yield from ctx.service("signal_entity")(
            EntityId("AuditLog", "main"), "append",
            {"counter": "c", "value": new_state})
        return new_state, new_state

    def append_op(ctx, state, entry):
        yield from ctx.busy(0.01)
        log = list(state or [])
        log.append(entry)
        return log, len(log)

    runtime.register_entity(EntitySpec(
        name="AuditedCounter", operations={"add": add_op},
        initial_state=lambda: 0))
    runtime.register_entity(EntitySpec(
        name="AuditLog", operations={"append": append_op},
        initial_state=lambda: []))

    def orchestrator(context):
        counter = EntityId("AuditedCounter", "c")
        yield context.call_entity(counter, "add", 5)
        yield context.call_entity(counter, "add", 7)
        return "done"

    runtime.register_orchestrator(OrchestratorSpec("audited", orchestrator))

    def scenario(env):
        yield from runtime.client.run("audited")
        yield env.timeout(60.0)   # let the signals drain
        log = yield from runtime.client.read_entity_state(
            EntityId("AuditLog", "main"))
        return log

    log = run(scenario(env))
    assert [entry["value"] for entry in log] == [5, 12]


def test_entity_signal_respects_payload_limit(runtime, run, env):
    from repro.storage.payload import KB

    def shout_op(ctx, state, _input):
        yield from ctx.busy(0.01)
        yield from ctx.service("signal_entity")(
            EntityId("Target", "t"), "set", "x" * (65 * KB))
        return state, None

    runtime.register_entity(EntitySpec(name="Shouter",
                                       operations={"shout": shout_op}))
    runtime.register_entity(EntitySpec(name="Target", operations={}))

    def orchestrator(context):
        yield context.call_entity(EntityId("Shouter", "s"), "shout")

    runtime.register_orchestrator(OrchestratorSpec("shouty", orchestrator))
    from repro.azure.durable import OrchestrationFailedError
    with pytest.raises(OrchestrationFailedError):
        run(runtime.client.run("shouty"))


def test_signal_chain_terminates(runtime, run, env):
    """A bounded relay across three entities completes."""

    def relay_op(ctx, state, hops):
        yield from ctx.busy(0.01)
        if hops > 0:
            yield from ctx.service("signal_entity")(
                EntityId("Relay", f"hop{hops - 1}"), "relay", hops - 1)
        return (state or 0) + 1, None

    runtime.register_entity(EntitySpec(
        name="Relay", operations={"relay": relay_op},
        initial_state=lambda: 0))

    def scenario(env):
        yield from runtime.client.signal_entity(
            EntityId("Relay", "hop3"), "relay", 3)
        yield env.timeout(120.0)
        visits = []
        for hop in range(4):
            state = yield from runtime.client.read_entity_state(
                EntityId("Relay", f"hop{hop}"))
            visits.append(state)
        return visits

    assert run(scenario(env)) == [1, 1, 1, 1]
