"""Property-based tests: the replay engine is deterministic and complete.

Hypothesis generates random workflow shapes — mixes of sequential
activity calls, fan-outs and timers — and checks the invariants the
event-sourcing design must uphold:

* the orchestration completes with the same result regardless of shape;
* every scheduled task is eventually completed exactly once;
* replay count equals the number of suspension points (+1);
* history is consistent: completions never precede their scheduling.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.azure import DurableFunctionsRuntime, OrchestratorSpec
from repro.azure.durable import history as h
from repro.platforms.base import FunctionSpec
from repro.platforms.billing import BillingMeter
from repro.platforms.calibration import AzureCalibration
from repro.sim import Constant, Environment, RandomStreams
from repro.storage.meter import TransactionMeter
from repro.telemetry import Telemetry

#: A workflow shape: list of steps; each step is ('seq', n) — n chained
#: activities — or ('fan', n) — n parallel activities — or ('timer', s).
STEP = st.one_of(
    st.tuples(st.just("seq"), st.integers(1, 3)),
    st.tuples(st.just("fan"), st.integers(1, 5)),
    st.tuples(st.just("timer"), st.integers(1, 30)),
)
SHAPES = st.lists(STEP, min_size=1, max_size=4)


def build_runtime():
    env = Environment()
    calibration = AzureCalibration()
    calibration.execution_jitter = Constant(1.0)
    calibration.cpu_slowdown = 1.0
    runtime = DurableFunctionsRuntime(
        env, Telemetry(clock=lambda: env.now),
        BillingMeter(clock=lambda: env.now),
        TransactionMeter(clock=lambda: env.now),
        RandomStreams(seed=1), calibration=calibration)

    def add_one(ctx, event):
        yield from ctx.busy(0.2)
        return event + 1

    runtime.register_activity(FunctionSpec(
        name="add_one", handler=add_one, memory_mb=1536, timeout_s=600.0))
    return env, runtime


def run_shape(shape):
    env, runtime = build_runtime()

    def orchestrator(context):
        value = 0
        for kind, size in shape:
            if kind == "seq":
                for _ in range(size):
                    value = yield context.call_activity("add_one", value)
            elif kind == "fan":
                tasks = [context.call_activity("add_one", value)
                         for _ in range(size)]
                results = yield context.task_all(tasks)
                value = max(results)
            else:
                yield context.create_timer(float(size))
        return value

    runtime.register_orchestrator(OrchestratorSpec("shaped", orchestrator))

    def scenario(env):
        output = yield from runtime.client.run("shaped")
        return output

    output = env.run(until=env.process(scenario(env)))
    instance = list(runtime.taskhub.instances.values())[0]
    return output, instance


def expected_value(shape):
    value = 0
    for kind, size in shape:
        if kind == "seq":
            value += size
        elif kind == "fan":
            value += 1   # max of n parallel (value + 1) results
    return value


@given(shape=SHAPES)
@settings(max_examples=40, deadline=None)
def test_random_shapes_complete_with_correct_result(shape):
    output, instance = run_shape(shape)
    assert output == expected_value(shape)
    assert instance.status == "Completed"


@given(shape=SHAPES)
@settings(max_examples=40, deadline=None)
def test_every_scheduled_task_completes_exactly_once(shape):
    _, instance = run_shape(shape)
    scheduled = [event.seq for event in instance.history
                 if isinstance(event, h.SCHEDULING_EVENTS)]
    completed = [event.seq for event in instance.history
                 if isinstance(event, h.SUCCESS_EVENTS)]
    assert sorted(scheduled) == sorted(completed)
    assert len(set(scheduled)) == len(scheduled)


@given(shape=SHAPES)
@settings(max_examples=40, deadline=None)
def test_completions_never_precede_scheduling(shape):
    _, instance = run_shape(shape)
    scheduled_at = {}
    for index, event in enumerate(instance.history):
        if isinstance(event, h.SCHEDULING_EVENTS):
            scheduled_at[event.seq] = index
        elif isinstance(event, h.SUCCESS_EVENTS + h.FAILURE_EVENTS):
            assert event.seq in scheduled_at
            assert index > scheduled_at[event.seq]


@given(shape=SHAPES)
@settings(max_examples=30, deadline=None)
def test_history_starts_and_ends_correctly(shape):
    _, instance = run_shape(shape)
    assert isinstance(instance.history[0], h.ExecutionStarted)
    assert isinstance(instance.history[-1], h.ExecutionCompleted)
    # Exactly one start and one completion.
    starts = [e for e in instance.history
              if isinstance(e, h.ExecutionStarted)]
    ends = [e for e in instance.history
            if isinstance(e, h.ExecutionCompleted)]
    assert len(starts) == 1 and len(ends) == 1


@given(shape=SHAPES, seed=st.integers(0, 2 ** 16))
@settings(max_examples=20, deadline=None)
def test_same_shape_same_seed_is_reproducible(shape, seed):
    """Full simulation determinism: identical worlds evolve identically."""
    def run_once():
        output, instance = run_shape(shape)
        return output, instance.completed_at, len(instance.history)

    assert run_once() == run_once()
