"""Direct tests for scale-controller mechanics and queue wake semantics."""

import pytest

from repro.azure.app import TRIGGER_DURABLE
from repro.platforms.base import FunctionSpec
from repro.sim import Constant


def make_spec(name, busy_s, **kwargs):
    def handler(ctx, event):
        yield from ctx.busy(busy_s)
        return event

    kwargs.setdefault("memory_mb", 1536)
    kwargs.setdefault("timeout_s", 1800.0)
    return FunctionSpec(name=name, handler=handler, **kwargs)


def test_stall_blocks_scale_out(env, telemetry, billing, streams,
                                calibration):
    """During a stall the controller adds no instances despite backlog."""
    from repro.azure import FunctionAppService
    calibration.scale_stall_probability = 1.0   # always stalled
    calibration.scale_stall_duration = Constant(10_000.0)
    app = FunctionAppService(env, telemetry, billing, streams, calibration)
    app.register(make_spec("slow", 50.0))

    def fan_out(env):
        processes = [env.process(_invoke(app, "slow", index))
                     for index in range(10)]
        yield env.all_of(processes)

    env.run(until=env.process(fan_out(env)))
    assert app.controller.stalls >= 1
    assert app.controller.scale_out_events == 0
    # Only the demand-provisioned first instance ever existed.
    assert app.live_instance_count == 1


def _invoke(app, name, payload):
    result = yield from app.invoke(name, payload, trigger=TRIGGER_DURABLE)
    return result


def test_no_stalls_when_probability_zero(env, telemetry, billing, streams,
                                         calibration):
    from repro.azure import FunctionAppService
    calibration.scale_stall_probability = 0.0
    app = FunctionAppService(env, telemetry, billing, streams, calibration)
    app.register(make_spec("slow", 30.0))

    def fan_out(env):
        processes = [env.process(_invoke(app, "slow", index))
                     for index in range(12)]
        yield env.all_of(processes)

    env.run(until=env.process(fan_out(env)))
    assert app.controller.stalls == 0
    assert app.controller.scale_out_events > 0


def test_max_instances_cap_respected(env, telemetry, billing, streams,
                                     calibration):
    from repro.azure import FunctionAppService
    calibration.max_instances = 3
    calibration.scale_stall_probability = 0.0
    app = FunctionAppService(env, telemetry, billing, streams, calibration)
    app.register(make_spec("slow", 60.0))

    def fan_out(env):
        processes = [env.process(_invoke(app, "slow", index))
                     for index in range(30)]
        yield env.all_of(processes)

    env.run(until=env.process(fan_out(env)))
    assert app.live_instance_count <= 3


def test_busy_instances_never_reclaimed(env, telemetry, billing, streams,
                                        calibration):
    from repro.azure import FunctionAppService
    calibration.instance_idle_timeout_s = 1.0   # aggressive reclamation
    app = FunctionAppService(env, telemetry, billing, streams, calibration)
    app.register(make_spec("long", 500.0))

    def scenario(env):
        process = env.process(_invoke(app, "long", 0))
        yield env.timeout(300.0)
        # Long past the idle timeout, the busy instance must survive.
        assert app.live_instance_count >= 1
        yield process

    env.run(until=env.process(scenario(env)))


# -- queue wake-on-enqueue ---------------------------------------------------------

def test_queue_receive_wakes_immediately_on_enqueue(env, meter):
    import numpy as np
    from repro.storage import CloudQueue
    queue = CloudQueue(env, meter, np.random.default_rng(0),
                       min_poll_interval=1.0, max_poll_interval=30.0)

    def consumer(env):
        # First drain a long idle period so backoff is at its maximum.
        message = yield from queue.receive(deadline=100.0)
        assert message is None
        arrival = {}
        message = yield from queue.receive()
        arrival["at"] = env.now
        return arrival["at"]

    def producer(env):
        yield env.timeout(150.0)
        yield from queue.enqueue("wake!")
        return env.now

    consumer_process = env.process(consumer(env))
    producer_process = env.process(producer(env))
    env.run()
    received_at = consumer_process.value
    sent_at = producer_process.value
    # Dispatch happened within a poll round-trip, not a 30 s backoff.
    assert received_at - sent_at < 1.0


def test_idle_polls_continue_despite_wakers(env, meter):
    import numpy as np
    from repro.storage import CloudQueue
    queue = CloudQueue(env, meter, np.random.default_rng(0),
                       min_poll_interval=1.0, max_poll_interval=5.0)

    def consumer(env):
        message = yield from queue.receive(deadline=60.0)
        return message

    env.run(until=env.process(consumer(env)))
    # An idle minute at ≤5 s backoff: at least 12 billable polls.
    assert meter.count(service="queue", operation="poll") >= 12
