"""Tests for the shared platform base: specs, context, limits, billing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.platforms.base import (
    FunctionContext,
    FunctionSpec,
    PayloadLimitExceeded,
    WorkModel,
    enforce_payload_limit,
    round_up,
)
from repro.platforms.billing import BillingMeter
from repro.platforms.calibration import AWSCalibration
from repro.sim import Constant, Environment


def dummy_handler(ctx, event):
    yield from ctx.busy(0.0)
    return event


# -- FunctionSpec ----------------------------------------------------------------

def test_spec_validates_memory_and_timeout():
    with pytest.raises(ValueError):
        FunctionSpec("f", dummy_handler, memory_mb=0)
    with pytest.raises(ValueError):
        FunctionSpec("f", dummy_handler, timeout_s=0)


def test_spec_billing_memory_prefers_measured():
    spec = FunctionSpec("f", dummy_handler, memory_mb=1536,
                        measured_memory_mb=700)
    assert spec.billing_memory_mb == 700
    assert FunctionSpec("g", dummy_handler,
                        memory_mb=1024).billing_memory_mb == 1024
    assert spec.memory_gb == 1.5


# -- round_up / payload limits -----------------------------------------------------

def test_round_up_billing_granularity():
    assert round_up(0.001, 0.1) == pytest.approx(0.1)
    assert round_up(0.100, 0.1) == pytest.approx(0.1)
    assert round_up(0.101, 0.1) == pytest.approx(0.2)
    with pytest.raises(ValueError):
        round_up(1.0, 0.0)


@given(st.floats(0.0001, 10_000), st.sampled_from([0.001, 0.1, 1.0]))
@settings(max_examples=100, deadline=None)
def test_round_up_properties(value, granularity):
    rounded = round_up(value, granularity)
    assert rounded >= value - 1e-9
    assert rounded - value < granularity + 1e-9


def test_enforce_payload_limit():
    assert enforce_payload_limit("abc", 10, "here") == 3
    with pytest.raises(PayloadLimitExceeded) as excinfo:
        enforce_payload_limit("x" * 100, 10, "there")
    assert excinfo.value.limit == 10
    assert "there" in str(excinfo.value)


# -- WorkModel -------------------------------------------------------------------------

def test_work_model_duration_combines_base_and_units():
    model = WorkModel(base=Constant(2.0), per_unit=0.5)
    rng = np.random.default_rng(0)
    assert model.duration(rng, units=4) == pytest.approx(4.0)
    assert model.duration(rng) == pytest.approx(2.5)


def test_work_model_never_negative():
    model = WorkModel(base=Constant(-5.0), per_unit=0.0)
    rng = np.random.default_rng(0)
    assert model.duration(rng) == 0.0


# -- FunctionContext ----------------------------------------------------------------------

@pytest.fixture
def context():
    env = Environment()
    spec = FunctionSpec("f", dummy_handler,
                        work_models={"step": WorkModel(base=Constant(1.0))})
    return env, FunctionContext(env, spec, np.random.default_rng(0),
                                services={"blob": "fake-blob"})


def test_context_busy_accumulates(context):
    env, ctx = context

    def process(env):
        yield from ctx.busy(2.0)
        yield from ctx.busy(3.0)
        return ctx.busy_time

    assert env.run(until=env.process(process(env))) == 5.0
    assert env.now == 5.0


def test_context_busy_rejects_negative(context):
    env, ctx = context

    def process(env):
        yield from ctx.busy(-1.0)

    with pytest.raises(ValueError):
        env.run(until=env.process(process(env)))


def test_context_cpu_factor_scales_busy():
    env = Environment()
    spec = FunctionSpec("f", dummy_handler)
    ctx = FunctionContext(env, spec, np.random.default_rng(0),
                          cpu_factor=2.0)

    def process(env):
        yield from ctx.busy(3.0)

    env.run(until=env.process(process(env)))
    assert env.now == 6.0


def test_context_rejects_nonpositive_cpu_factor():
    env = Environment()
    spec = FunctionSpec("f", dummy_handler)
    with pytest.raises(ValueError):
        FunctionContext(env, spec, np.random.default_rng(0), cpu_factor=0.0)


def test_context_jitter_scales_busy():
    env = Environment()
    spec = FunctionSpec("f", dummy_handler)
    ctx = FunctionContext(env, spec, np.random.default_rng(0),
                          jitter=Constant(1.5))

    def process(env):
        yield from ctx.busy(2.0)

    env.run(until=env.process(process(env)))
    assert env.now == 3.0


def test_context_service_lookup(context):
    _, ctx = context
    assert ctx.blob == "fake-blob"
    assert ctx.service("blob") == "fake-blob"
    with pytest.raises(KeyError):
        ctx.service("queue")


# -- AWS cpu factor ---------------------------------------------------------------------------

def test_aws_cpu_factor_scaling():
    calibration = AWSCalibration()
    assert calibration.cpu_factor(1769) == pytest.approx(1.0, rel=0.01)
    assert calibration.cpu_factor(885) == pytest.approx(2.0, rel=0.01)
    # Clamped at both extremes.
    assert calibration.cpu_factor(128) == 3.0
    assert calibration.cpu_factor(10_240) == 0.5


# -- billing meter ------------------------------------------------------------------------------

def test_billing_meter_aggregation():
    billing = BillingMeter()
    billing.charge_compute("f", raw_duration=1.0, billed_duration=1.0,
                           memory_mb=1024)
    billing.charge_compute("g", raw_duration=0.5, billed_duration=0.5,
                           memory_mb=2048, replay=True)
    billing.charge_request("f")
    assert billing.total_gb_s() == pytest.approx(2.0)
    assert billing.total_gb_s(replay=True) == pytest.approx(1.0)
    assert billing.total_gb_s(replay=False) == pytest.approx(1.0)
    assert billing.total_requests() == 1
    assert billing.gb_s_by_function() == {"f": 1.0, "g": 1.0}
    assert billing.execution_count() == 2
    assert billing.execution_count("f") == 1
    billing.reset()
    assert billing.total_gb_s() == 0.0
