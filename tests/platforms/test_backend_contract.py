"""Backend conformance contract, parametrized over every registered backend.

Any :class:`~repro.platforms.backend.PlatformBackend` in the registry —
the three builtins and any future addition (the ROADMAP's OpenWhisk
item) — must pass this suite unchanged: metadata sanity, a function
deploy/invoke round-trip, billing-span pairing, workflow compilation and
payload-limit enforcement, throttle/shed accounting buckets, audit
observer registration, cost-breakdown shape, and host-crash recovery.
Platform-*specific* behaviour (exact prices, queue models, replay) lives
in the per-platform suites; this file is only the shared surface.
"""

import dataclasses

import pytest

from repro.core import Testbed
from repro.core.costs import CostReport
from repro.core.mitigation import CircuitOpenError, MitigationPolicy
from repro.core.workflow import Workflow, sequence, task
from repro.platforms.faults import ContainerCrash, FaultPlan
from repro.platforms.backend import (
    BillingRules,
    PlatformBackend,
    backend_names,
    get_backend,
    register_backend,
    registered_backends,
    unregister_backend,
)
from repro.platforms.base import FunctionSpec, PayloadLimitExceeded, round_up
from repro.telemetry import SpanKind

BACKENDS = registered_backends()


@pytest.fixture(params=BACKENDS, ids=[backend.name for backend in BACKENDS])
def backend(request):
    return request.param


@pytest.fixture
def testbed(backend):
    """A testbed restricted to the backend under test."""
    return Testbed(seed=7, platforms=[backend.name])


def _echo_handler(ctx, event):
    yield from ctx.busy(0.25)
    return {"doubled": event["x"] * 2}


def _register_echo(backend, testbed, name="contract-echo"):
    spec = FunctionSpec(name=name, handler=_echo_handler,
                        memory_mb=512, timeout_s=60.0)
    return backend.register_function(testbed, spec)


# -- registry ---------------------------------------------------------------------


def test_registry_is_deterministic_and_consistent():
    names = backend_names()
    assert len(names) == len(set(names))
    assert names[:3] == ("aws", "azure", "gcp")
    for name in names:
        assert get_backend(name) is get_backend(name)
        assert get_backend(name).name == name


def test_register_rejects_duplicates_and_unregister_removes():
    class _Dummy(get_backend("aws").__class__):
        name = "contract-dummy"
        variant_prefix = "Dummy"

    dummy = _Dummy()
    register_backend(dummy)
    try:
        assert "contract-dummy" in backend_names()
        with pytest.raises(ValueError, match="already registered"):
            register_backend(_Dummy())
    finally:
        unregister_backend("contract-dummy")
    assert "contract-dummy" not in backend_names()
    with pytest.raises(ValueError, match="registered backends"):
        get_backend("contract-dummy")


def test_metadata_contract(backend):
    assert isinstance(backend, PlatformBackend)
    assert backend.name
    assert backend.variant_prefix
    calibration_type = backend.calibration_type()
    assert dataclasses.is_dataclass(calibration_type)
    calibration = backend.default_calibration()
    assert isinstance(calibration, calibration_type)
    # Fresh object per call: campaigns mutate their own copies.
    assert backend.default_calibration() is not calibration
    assert backend.payload_limit_bytes(calibration) > 0
    rules = backend.billing_rules(calibration)
    assert isinstance(rules, BillingRules)
    assert rules.granularity_s > 0
    assert rules.min_billed_s >= 0


# -- deploy / invoke round-trip -----------------------------------------------------


def test_function_roundtrip(backend, testbed):
    deployed = _register_echo(backend, testbed)
    assert deployed.name == "contract-echo"

    result = testbed.run(
        backend.invoke_function(testbed, "contract-echo", {"x": 21}))
    assert result.value == {"doubled": 42}
    assert result.finished_at > result.started_at
    assert result.function_name == "contract-echo"
    assert result.cold_start_duration >= 0.0


def test_billing_span_pairing(backend, testbed):
    """Every execution span pairs with exactly one compute charge, and
    every charge obeys the backend's published rounding rules."""
    _register_echo(backend, testbed)

    def run_twice():
        for x in (1, 2):
            yield from backend.invoke_function(
                testbed, "contract-echo", {"x": x})
    testbed.run(run_twice())

    stack = testbed.stack(backend.name)
    spans = [span for span in stack.telemetry.spans
             if span.kind == SpanKind.EXECUTION and span.closed]
    charges = stack.billing.compute
    assert len(spans) == 2
    assert len(charges) == len(spans)
    assert stack.billing.total_requests() == 2

    rules = backend.billing_rules(testbed.calibration(backend.name))
    for charge in charges:
        assert charge.raw_duration > 0
        expected = round_up(charge.raw_duration, rules.granularity_s)
        if rules.min_billed_s:
            expected = max(expected, rules.min_billed_s)
        assert charge.billed_duration == pytest.approx(expected)
        assert charge.gb_s == pytest.approx(
            charge.billed_duration * charge.memory_mb / 1024.0)


def test_workflow_roundtrip(backend, testbed):
    _register_echo(backend, testbed)
    workflow = Workflow("contract-wf", sequence(task("contract-echo")))
    name = backend.deploy_workflow(testbed, workflow)
    assert name == "contract-wf"

    status, output = testbed.run(
        backend.invoke_workflow(testbed, name, {"x": 4}))
    assert status == "SUCCEEDED"
    assert output == {"doubled": 8}


def test_workflow_rejects_unknown_function(backend, testbed):
    workflow = Workflow("contract-missing", sequence(task("not-deployed")))
    with pytest.raises(Exception):
        backend.deploy_workflow(testbed, workflow)


def test_payload_limit_enforced(backend, testbed):
    """Oversized data crossing the workflow boundary must not succeed."""
    limit = backend.payload_limit_bytes(testbed.calibration(backend.name))

    def oversize_handler(ctx, event):
        yield from ctx.busy(0.05)
        return {"blob": "x" * (2 * limit)}

    backend.register_function(testbed, FunctionSpec(
        name="contract-oversize", handler=oversize_handler,
        memory_mb=512, timeout_s=60.0))
    workflow = Workflow("contract-big",
                        sequence(task("contract-oversize")))
    backend.deploy_workflow(testbed, workflow)

    try:
        status, output = testbed.run(
            backend.invoke_workflow(testbed, "contract-big", {"x": 1}))
    except PayloadLimitExceeded:
        return   # surfaced synchronously: equally conformant
    assert status == "FAILED"


# -- accounting buckets --------------------------------------------------------------


def test_counters_start_at_zero(backend, testbed):
    assert backend.throttle_count(testbed) == 0
    assert backend.shed_count(testbed) == 0
    assert backend.retry_count(testbed) == 0


#: Tiny admission limits per builtin backend; a new backend passes the
#: rest of the contract without an entry here (and should add one to
#: exercise its throttle path).
THROTTLE_OVERRIDES = {
    "aws": {"concurrency_limit": 1, "burst_concurrency": 1,
            "refill_per_s": 0.01},
    "azure": {"max_instances": 1, "queue_depth_limit": 1},
    "gcp": {"max_instances": 1},
}


def test_throttle_buckets_move_under_pressure(backend):
    if backend.name not in THROTTLE_OVERRIDES:
        pytest.skip(f"no tiny-limit overrides for {backend.name!r}")
    calibration = backend.default_calibration()
    for field_name, value in THROTTLE_OVERRIDES[backend.name].items():
        setattr(calibration, field_name, value)
    testbed = Testbed(seed=7, platforms=[backend.name],
                      calibrations={backend.name: calibration})

    def slow_handler(ctx, event):
        yield from ctx.busy(5.0)
        return event

    backend.register_function(testbed, FunctionSpec(
        name="contract-slow", handler=slow_handler,
        memory_mb=512, timeout_s=60.0))

    rejected = []

    def one(index):
        try:
            yield from backend.invoke_function(
                testbed, "contract-slow", {"i": index})
        except RuntimeError as error:
            rejected.append(str(error))

    def storm():
        procs = [testbed.env.process(one(index)) for index in range(8)]
        yield testbed.env.all_of(procs)

    testbed.run(storm())
    moved = (backend.throttle_count(testbed)
             + backend.shed_count(testbed))
    assert moved >= 1
    assert rejected or backend.shed_count(testbed) >= 1


# -- audit / cost / chaos -------------------------------------------------------------


def test_audit_observer_registration(backend):
    """An audited testbed watches this backend's stack: a clean run
    finalizes with every invariant passing."""
    testbed = Testbed(seed=7, platforms=[backend.name], audit=True)
    assert testbed.auditor is not None
    _register_echo(backend, testbed)
    testbed.run(backend.invoke_function(testbed, "contract-echo", {"x": 3}))
    report = testbed.auditor.finalize()
    assert report.passed, [check.detail for check in report.violations]


def test_cost_breakdown_shape(backend, testbed):
    _register_echo(backend, testbed)
    testbed.run(backend.invoke_function(testbed, "contract-echo", {"x": 1}))
    breakdown = backend.cost_breakdown(testbed)
    assert set(breakdown) == {"gb_s", "compute_cost", "transaction_cost",
                              "transaction_count", "replay_gb_s"}
    assert breakdown["gb_s"] > 0
    assert breakdown["compute_cost"] > 0
    # The keys feed CostReport verbatim — the seam cost_report() uses.
    report = CostReport(deployment="contract", platform=backend.name,
                        **breakdown)
    assert report.total >= breakdown["compute_cost"]


def test_crash_host_recovers(backend, testbed):
    _register_echo(backend, testbed)
    first = testbed.run(
        backend.invoke_function(testbed, "contract-echo", {"x": 1}))
    recovery = backend.crash_host(testbed)
    if recovery is not None:
        testbed.run(recovery)
    second = testbed.run(
        backend.invoke_function(testbed, "contract-echo", {"x": 2}))
    assert second.value == {"doubled": 4}
    assert second.finished_at > first.finished_at


# -- fault-hook conformance -----------------------------------------------------------
#
# Every backend wires the shared FaultInjector through its handler wrap
# and workflow engine the same way: crashed attempts are billed (the
# provider charges for the burned compute), platform-level retries are
# counted in the shared bucket, and a host crash plus recovery does not
# re-bill work that already completed.


@pytest.mark.faults
def test_crashed_attempt_is_billed(backend):
    testbed = Testbed(seed=7, platforms=[backend.name],
                      fault_plan=FaultPlan(crash_probability=1.0))
    _register_echo(backend, testbed)
    with pytest.raises(ContainerCrash):
        testbed.run(
            backend.invoke_function(testbed, "contract-echo", {"x": 1}))
    stack = testbed.stack(backend.name)
    assert len(stack.billing.compute) >= 1
    assert testbed.faults.crashes >= 1
    assert testbed.faults.wasted_gb_s > 0.0


@pytest.mark.faults
def test_platform_retries_share_one_bucket(backend):
    plan = FaultPlan(error_probability=1.0, retry_max_attempts=3,
                     retry_interval_s=0.1)
    testbed = Testbed(seed=7, platforms=[backend.name], fault_plan=plan)
    _register_echo(backend, testbed)
    workflow = Workflow("contract-retry", sequence(task("contract-echo")))
    backend.deploy_workflow(testbed, workflow)

    status, _ = testbed.run(
        backend.invoke_workflow(testbed, "contract-retry", {"x": 1}))
    assert status == "FAILED"
    # retry_max_attempts=3 means two platform-driven re-executions.
    assert testbed.faults.platform_retries >= 2


@pytest.mark.faults
def test_recovery_does_not_rebill_completed_work(backend, testbed):
    _register_echo(backend, testbed)
    testbed.run(backend.invoke_function(testbed, "contract-echo", {"x": 1}))
    recovery = backend.crash_host(testbed)
    if recovery is not None:
        testbed.run(recovery)
    testbed.run(backend.invoke_function(testbed, "contract-echo", {"x": 2}))
    stack = testbed.stack(backend.name)
    # One compute charge per completed invoke; the crash/recovery cycle
    # must not duplicate the first invoke's charge.
    assert len(stack.billing.compute) == 2
    assert stack.billing.total_requests() == 2


# -- mitigated invoke -----------------------------------------------------------------
#
# ``mitigated_invoke`` is concrete on the ABC, so every backend gets the
# client-side mitigation layer (breaker, hedging, adaptive deadlines)
# for free.  The contract: results round-trip unchanged, engines are
# cached on the testbed, and breaker state persists across calls.


def test_mitigated_invoke_roundtrip(backend, testbed):
    _register_echo(backend, testbed)
    result = testbed.run(
        backend.mitigated_invoke(testbed, "contract-echo", {"x": 9}))
    assert result.value == {"doubled": 18}
    engines = testbed._mitigation_engines
    assert len(engines) == 1
    ((key, engine),) = engines.items()
    assert key[0] == backend.name and key[1] == "contract-echo"
    assert engine.requests == 1


def test_mitigated_invoke_hedges_slow_requests(backend, testbed):
    _register_echo(backend, testbed)
    policy = MitigationPolicy(hedge_after_s=0.05, max_hedges=2,
                              request_timeout_s=60.0)
    result = testbed.run(backend.mitigated_invoke(
        testbed, "contract-echo", {"x": 5}, policy=policy))
    assert result.value == {"doubled": 10}
    engine = testbed._mitigation_engines[
        (backend.name, "contract-echo", policy)]
    # The echo handler is busy for 0.25s, so at least one hedge fires.
    assert engine.hedges_launched >= 1


def test_mitigated_invoke_breaker_short_circuits(backend, testbed):
    def failing_handler(ctx, event):
        yield from ctx.busy(0.01)
        raise RuntimeError("contract-induced failure")

    backend.register_function(testbed, FunctionSpec(
        name="contract-failing", handler=failing_handler,
        memory_mb=512, timeout_s=60.0))
    policy = MitigationPolicy(breaker_failure_threshold=1,
                              breaker_recovery_timeout_s=120.0,
                              request_timeout_s=60.0)
    with pytest.raises(RuntimeError, match="contract-induced failure"):
        testbed.run(backend.mitigated_invoke(
            testbed, "contract-failing", {}, policy=policy))
    with pytest.raises(CircuitOpenError):
        testbed.run(backend.mitigated_invoke(
            testbed, "contract-failing", {}, policy=policy))
    engine = testbed._mitigation_engines[
        (backend.name, "contract-failing", policy)]
    assert engine.breaker_opens == 1
    assert engine.short_circuits == 1


def test_cancelled_during_startup_leaves_no_request_charge(backend, testbed):
    """Requests are billed when execution starts, not at admission: an
    invocation cancelled while it waits out its start-up delay (cold
    start, dispatch queue) never ran and must leave no charge behind —
    otherwise the auditor's billed-requests == execution-spans invariant
    trips on every mitigation-timed-out invoke."""
    _register_echo(backend, testbed)
    env = testbed.env

    def invoker():
        yield from backend.invoke_function(testbed, "contract-echo", {"x": 1})

    process = env.process(invoker())
    process.defuse()

    def canceller():
        # 1 microsecond in: safely inside every platform's cold-start
        # window, so execution has not begun anywhere.
        yield env.timeout(1e-6)
        process.interrupt(cause="client gave up")

    env.process(canceller())
    env.run(until=60.0)

    stack = testbed.stack(backend.name)
    assert stack.billing.total_requests() == 0
    assert not any(span.kind == SpanKind.EXECUTION
                   for span in stack.telemetry.spans)
