"""Unit tests for both platforms' price models."""

import pytest

from repro.aws import AWSPriceModel
from repro.azure import AzurePriceModel
from repro.platforms.billing import BillingMeter
from repro.platforms.calibration import AWSCalibration, AzureCalibration
from repro.storage.meter import TransactionMeter


@pytest.fixture
def aws_model():
    return AWSPriceModel(AWSCalibration())


@pytest.fixture
def azure_model():
    return AzurePriceModel(AzureCalibration())


def test_aws_breakdown_components(aws_model):
    billing = BillingMeter()
    billing.charge_compute("f", 1.0, 1.0, memory_mb=1024)  # 1 GB-s
    billing.charge_request("f")
    meter = TransactionMeter()
    for _ in range(4):
        meter.record("stepfunctions", "m", "transition")
    breakdown = aws_model.breakdown(billing, meter)
    assert breakdown.gb_s == pytest.approx(1.0)
    assert breakdown.compute == pytest.approx(1.66667e-5)
    assert breakdown.requests == pytest.approx(2e-7)
    assert breakdown.transitions == pytest.approx(4 * 2.5e-5)
    assert breakdown.stateless == breakdown.compute + breakdown.requests
    assert breakdown.stateful == breakdown.transitions
    assert breakdown.total == breakdown.stateless + breakdown.stateful
    assert 0 < breakdown.stateful_share < 1


def test_aws_empty_meters_cost_nothing(aws_model):
    breakdown = aws_model.breakdown(BillingMeter(), TransactionMeter())
    assert breakdown.total == 0.0
    assert breakdown.stateful_share == 0.0


def test_aws_monthly_is_linear(aws_model):
    billing = BillingMeter()
    billing.charge_compute("f", 1.0, 1.0, memory_mb=1024)
    breakdown = aws_model.breakdown(billing, TransactionMeter())
    assert aws_model.monthly_cost(breakdown, 100) == pytest.approx(
        breakdown.total * 100)


def test_aws_express_charges_counted(aws_model):
    meter = TransactionMeter()
    meter.record("stepfunctions-express", "m", "request")
    meter.record("stepfunctions-express", "m", "duration",
                 size=int(2.0 * 1e6))   # 2 GB-s in micro-GB-s
    breakdown = aws_model.breakdown(BillingMeter(), meter)
    expected = 1e-6 + 2.0 * 1.667e-5
    assert breakdown.express == pytest.approx(expected)
    assert breakdown.stateful == pytest.approx(expected)


def test_azure_breakdown_components(azure_model):
    billing = BillingMeter()
    billing.charge_compute("f", 2.0, 2.0, memory_mb=512)   # 1 GB-s
    billing.charge_request("f")
    meter = TransactionMeter()
    meter.record("queue", "hub", "poll", count=100)
    meter.record("table", "hub", "insert", count=50)
    meter.record("blob", "hub", "lease_renew", count=50)
    breakdown = azure_model.breakdown(billing, meter)
    assert breakdown.gb_s == pytest.approx(1.0)
    assert breakdown.transaction_count == 200
    assert breakdown.transactions == pytest.approx(200 * 4e-8)
    assert breakdown.stateful_share > 0


def test_azure_non_billable_services_excluded(azure_model):
    meter = TransactionMeter()
    meter.record("stepfunctions", "m", "transition")   # not an Azure service
    breakdown = azure_model.breakdown(BillingMeter(), meter)
    assert breakdown.transaction_count == 0


def test_azure_monthly_includes_idle_polling(azure_model):
    billing = BillingMeter()
    billing.charge_compute("f", 1.0, 1.0, memory_mb=1024)
    breakdown = azure_model.breakdown(billing, TransactionMeter())
    with_idle = azure_model.monthly_cost(
        breakdown, runs_per_month=10, idle_transactions_per_month=1_000_000)
    without_idle = azure_model.monthly_cost(breakdown, runs_per_month=10)
    assert with_idle - without_idle == pytest.approx(1_000_000 * 4e-8)


def test_azure_premium_monthly(azure_model):
    cost = azure_model.premium_monthly_cost(hours=100.0)
    calibration = azure_model.calibration
    assert cost == pytest.approx(
        calibration.premium_min_instances
        * calibration.premium_instance_hourly_price * 100.0)
