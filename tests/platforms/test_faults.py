"""Tests for the fault-injection subsystem: plans, injector, accounting.

The load-bearing properties are determinism (every fault decision comes
from a named RNG stream, so ``(seed, plan)`` fixes the chaos) and
honest billing (a crashed invocation spends — and is billed for — the
partial execution time up to the drawn crash point).
"""

import numpy as np
import pytest

from repro.platforms.base import FunctionContext, FunctionSpec
from repro.platforms.faults import (
    ContainerCrash,
    FaultInjector,
    FaultPlan,
    TransientFault,
)
from repro.sim import Environment, RandomStreams
from repro.storage.meter import TransactionMeter
from repro.storage.queue import CloudQueue

pytestmark = pytest.mark.faults


# -- FaultPlan validation ----------------------------------------------------------

def test_plan_rejects_out_of_range_probabilities():
    for name in ("crash_probability", "error_probability",
                 "straggler_probability", "queue_delay_probability",
                 "queue_duplication_probability"):
        with pytest.raises(ValueError):
            FaultPlan(**{name: 1.5})
        with pytest.raises(ValueError):
            FaultPlan(**{name: -0.1})


def test_plan_rejects_bad_shape_parameters():
    with pytest.raises(ValueError):
        FaultPlan(crash_fraction_min=0.8, crash_fraction_max=0.2)
    with pytest.raises(ValueError):
        FaultPlan(crash_fraction_max=1.5)
    with pytest.raises(ValueError):
        FaultPlan(straggler_factor=0.5)
    with pytest.raises(ValueError):
        FaultPlan(queue_delay_s=-1.0)
    with pytest.raises(ValueError):
        FaultPlan(retry_interval_s=0.0)
    with pytest.raises(ValueError):
        FaultPlan(retry_backoff=0.9)
    with pytest.raises(ValueError):
        FaultPlan(host_crash_times=(-5.0,))


def test_plan_sorts_host_crash_times():
    plan = FaultPlan(host_crash_times=(30.0, 10.0, 20.0))
    assert plan.host_crash_times == (10.0, 20.0, 30.0)


def test_plan_rejects_overlapping_host_crash_schedules():
    with pytest.raises(ValueError, match="must not repeat"):
        FaultPlan(host_crash_times=(10.0, 10.0))


def test_plan_validates_correlated_outage_fields():
    with pytest.raises(ValueError, match="non-negative"):
        FaultPlan(outage_windows=[(-5.0, 10.0)])
    with pytest.raises(ValueError, match="positive"):
        FaultPlan(outage_windows=[(5.0, 0.0)])
    with pytest.raises(ValueError, match="overlap"):
        FaultPlan(outage_windows=[(10.0, 20.0), (25.0, 5.0)])
    with pytest.raises(ValueError, match="outage_mode"):
        FaultPlan(outage_windows=[(10.0, 5.0)], outage_mode="purple")
    with pytest.raises(ValueError, match="drawn outages"):
        FaultPlan(outage_count=2)
    with pytest.raises(ValueError):
        FaultPlan(gray_latency_factor=0.5)
    with pytest.raises(ValueError):
        FaultPlan(gray_error_probability=1.5)
    with pytest.raises(ValueError):
        FaultPlan(brownout_delay_s=-1.0)
    with pytest.raises(ValueError):
        FaultPlan(partition_drop_probability=-0.1)


def test_plan_outage_activation_flags():
    plan = FaultPlan(outage_windows=[(60.0, 30.0)])
    assert plan.outage_faults and plan.wraps_handlers and plan.enabled
    assert not plan.handler_faults
    assert not plan.queue_faults
    browned = FaultPlan(outage_windows=[(60.0, 30.0)],
                        brownout_delay_s=2.0)
    assert browned.queue_faults
    # Brownout/partition knobs without a window never activate anything.
    assert not FaultPlan(brownout_delay_s=2.0).enabled


def test_drawn_outage_windows_are_deterministic_and_merged():
    plan = FaultPlan(outage_count=4, outage_horizon_s=100.0,
                     outage_duration_s=30.0)
    first = FaultInjector(plan=plan, streams=RandomStreams(seed=9))
    second = FaultInjector(plan=plan, streams=RandomStreams(seed=9))
    other = FaultInjector(plan=plan, streams=RandomStreams(seed=10))
    assert first.outage_windows == second.outage_windows
    assert first.outage_windows != other.outage_windows
    # 4 windows of 30s in a 100s horizon must overlap: merged windows
    # are disjoint and strictly ordered.
    for (s1, e1), (s2, e2) in zip(first.outage_windows,
                                  first.outage_windows[1:]):
        assert e1 < s2
    assert first.in_outage(first.outage_windows[0][0])
    assert not first.in_outage(first.outage_windows[0][1])


def test_crash_outage_starts_only_in_crash_mode():
    crash = FaultInjector(plan=FaultPlan(outage_windows=[(60.0, 30.0)]),
                          streams=RandomStreams(seed=1))
    gray = FaultInjector(
        plan=FaultPlan(outage_windows=[(60.0, 30.0)], outage_mode="gray",
                       gray_latency_factor=2.0),
        streams=RandomStreams(seed=1))
    assert crash.crash_outage_starts == (60.0,)
    assert gray.crash_outage_starts == ()


def test_plan_activation_flags():
    assert not FaultPlan().enabled
    assert FaultPlan(crash_probability=0.1).handler_faults
    assert FaultPlan(queue_delay_probability=0.1).queue_faults
    assert not FaultPlan(queue_delay_probability=0.1).handler_faults
    assert FaultPlan(host_crash_times=(100.0,)).enabled


def test_plan_targets_filter():
    plan = FaultPlan(crash_probability=0.5, targets=("train", "infer"))
    assert plan.applies_to("train")
    assert not plan.applies_to("upload")
    assert FaultPlan(crash_probability=0.5).applies_to("anything")


# -- spec round-trip ---------------------------------------------------------------

def test_plan_items_round_trip():
    plan = FaultPlan(crash_probability=0.25, straggler_probability=0.1,
                     straggler_factor=8.0, retry_max_attempts=3,
                     host_crash_times=(200.0, 100.0), targets=("f",))
    items = plan.to_items()
    assert items == tuple(sorted(items))       # canonical (hash-stable)
    assert FaultPlan.from_items(items) == plan
    # Default fields are elided from the items.
    assert "queue_delay_s" not in dict(items)


def test_plan_from_items_rejects_unknown_fields():
    with pytest.raises(ValueError, match="unknown FaultPlan field"):
        FaultPlan.from_items([("chaos_level", 11)])


# -- FaultInjector construction ----------------------------------------------------

def test_injector_back_compat_constructor():
    injector = FaultInjector(crash_probability=0.3)
    assert injector.plan.crash_probability == 0.3
    assert injector.crashes == 0 and injector.invocations == 0
    with pytest.raises(ValueError):
        FaultInjector(crash_probability=2.0)


def test_injector_syncs_probability_from_plan():
    plan = FaultPlan(crash_probability=0.7)
    injector = FaultInjector(plan=plan, streams=RandomStreams(seed=1))
    assert injector.crash_probability == 0.7


def test_record_runtime_ignores_nonpositive():
    injector = FaultInjector(crash_probability=0.0)
    injector.record_runtime("f", 0.0)
    injector.record_runtime("f", -1.0)
    assert injector._runtimes == {}
    injector.record_runtime("f", 2.5)
    assert injector._runtimes == {"f": 2.5}


# -- handler wrapping --------------------------------------------------------------

def slow_handler(ctx, event):
    yield from ctx.busy(10.0)
    return "done"


def make_ctx(env, spec, seed=0):
    return FunctionContext(env, spec, np.random.default_rng(seed))


def test_crash_at_fraction_spends_partial_time_and_bills_it():
    """Satellite: the crash point is a seeded fraction of the runtime.

    The first crash has no observed runtime to scale from, so the
    handler completes (its result is discarded); once a duration is
    known, crashes land at ``fraction × runtime`` and only the partial
    time is spent and accounted as wasted GB-s.
    """
    plan = FaultPlan(crash_probability=1.0,
                     crash_fraction_min=0.5, crash_fraction_max=0.5)
    injector = FaultInjector(plan=plan, streams=RandomStreams(seed=9))
    spec = FunctionSpec("slow", slow_handler, memory_mb=1024)
    wrapped = injector.wrap(slow_handler, "slow")
    env = Environment()

    def invoke_once(env):
        yield from wrapped(make_ctx(env, spec), {})

    with pytest.raises(ContainerCrash):
        env.run(until=env.process(invoke_once(env)))
    # First crash: no known runtime, full 10 s spent then the crash.
    assert env.now == pytest.approx(10.0)
    assert injector.wasted_compute_s == pytest.approx(10.0)

    with pytest.raises(ContainerCrash):
        env.run(until=env.process(invoke_once(env)))
    # Second crash lands at 0.5 × the observed 10 s runtime: 5 s spent.
    assert env.now == pytest.approx(15.0)
    assert injector.wasted_compute_s == pytest.approx(15.0)
    # 1024 MB → exactly 1 GB, so wasted GB-s equals wasted seconds.
    assert injector.wasted_gb_s == pytest.approx(15.0)
    assert injector.crashes == 2 and injector.invocations == 2
    assert injector.observed_crash_rate == 1.0


def test_no_faults_passes_result_through_and_records_runtime():
    injector = FaultInjector(plan=FaultPlan(),
                             streams=RandomStreams(seed=3))
    spec = FunctionSpec("slow", slow_handler)
    wrapped = injector.wrap(slow_handler, "slow")
    env = Environment()

    def invoke(env):
        result = yield from wrapped(make_ctx(env, spec), {})
        return result

    assert env.run(until=env.process(invoke(env))) == "done"
    assert injector._runtimes["slow"] == pytest.approx(10.0)
    assert injector.crashes == 0


def test_transient_fault_raises_before_any_work():
    plan = FaultPlan(error_probability=1.0)
    injector = FaultInjector(plan=plan, streams=RandomStreams(seed=2))
    spec = FunctionSpec("slow", slow_handler)
    wrapped = injector.wrap(slow_handler, "slow")
    env = Environment()

    def invoke(env):
        yield from wrapped(make_ctx(env, spec), {})

    with pytest.raises(TransientFault):
        env.run(until=env.process(invoke(env)))
    assert env.now == 0.0                      # no compute was spent
    assert injector.transient_errors == 1


def test_straggler_multiplies_cpu_factor():
    plan = FaultPlan(straggler_probability=1.0, straggler_factor=3.0)
    injector = FaultInjector(plan=plan, streams=RandomStreams(seed=4))

    def quick(ctx, event):
        yield from ctx.busy(2.0)
        return "ok"

    spec = FunctionSpec("quick", quick)
    wrapped = injector.wrap(quick, "quick")
    env = Environment()

    def invoke(env):
        result = yield from wrapped(make_ctx(env, spec), {})
        return result

    assert env.run(until=env.process(invoke(env))) == "ok"
    assert env.now == pytest.approx(6.0)       # 2 s × straggler factor 3
    assert injector.stragglers == 1


def test_fault_decisions_are_deterministic_per_seed():
    plan = FaultPlan(crash_probability=0.5)
    spec = FunctionSpec("h", slow_handler)

    def crash_pattern(seed):
        env = Environment()
        injector = FaultInjector(plan=plan,
                                 streams=RandomStreams(seed=seed))
        wrapped = injector.wrap(slow_handler, "h")
        crashed = []

        def driver(env):
            for index in range(20):
                try:
                    yield from wrapped(make_ctx(env, spec, seed=index), {})
                    crashed.append(False)
                except ContainerCrash:
                    crashed.append(True)

        env.run(until=env.process(driver(env)))
        return crashed, env.now

    assert crash_pattern(41) == crash_pattern(41)
    pattern, _ = crash_pattern(41)
    assert 0 < sum(pattern) < 20               # p=0.5 actually fired


# -- queue faults ------------------------------------------------------------------

def test_draw_queue_faults_requires_streams():
    plan = FaultPlan(queue_delay_probability=1.0)
    injector = FaultInjector(plan=plan)       # no streams → inert
    assert injector.draw_queue_faults("work") == (0.0, False)


def test_draw_queue_faults_delay_and_duplicate():
    plan = FaultPlan(queue_delay_probability=1.0, queue_delay_s=7.0,
                     queue_duplication_probability=1.0)
    injector = FaultInjector(plan=plan, streams=RandomStreams(seed=6))
    assert injector.draw_queue_faults("work") == (7.0, True)
    assert injector.delayed_messages == 1
    assert injector.duplicated_messages == 1


def test_cloud_queue_applies_delay_and_duplication():
    env = Environment()
    meter = TransactionMeter(clock=lambda: env.now)
    plan = FaultPlan(queue_delay_probability=1.0, queue_delay_s=7.0,
                     queue_duplication_probability=1.0)
    injector = FaultInjector(plan=plan, streams=RandomStreams(seed=8))
    queue = CloudQueue(env, meter, np.random.default_rng(0), name="work",
                       faults=injector)

    def producer(env):
        yield from queue.enqueue({"job": 1})

    env.run(until=env.process(producer(env)))
    messages = queue._messages
    assert len(messages) == 2                  # at-least-once delivery
    assert all(m.visible_at == pytest.approx(env.now + 7.0)
               for m in messages)
    # The duplicate is the broker's doing: only one enqueue is metered.
    assert meter.count(service="queue", operation="enqueue") == 1
