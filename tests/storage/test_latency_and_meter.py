"""Tests for storage latency models and the batched transaction meter."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Constant
from repro.storage.latency import (
    StorageLatencyModel,
    default_blob_latency,
    default_queue_latency,
    default_table_latency,
)
from repro.storage.meter import TransactionMeter
from repro.storage.payload import MB


@pytest.fixture
def rng():
    return np.random.default_rng(0)


def test_operation_time_adds_transfer(rng):
    model = StorageLatencyModel(base=Constant(0.01),
                                bandwidth_bytes_per_s=10 * MB)
    assert model.operation_time(rng, size=0) == pytest.approx(0.01)
    assert model.operation_time(rng, size=10 * MB) == pytest.approx(1.01)


def test_operation_time_never_negative(rng):
    model = StorageLatencyModel(base=Constant(-1.0))
    assert model.operation_time(rng) == 0.0


def test_default_models_ordering(rng):
    """Blob ops are slower than queue/table ops at the median."""
    blob = np.median([default_blob_latency().operation_time(rng)
                      for _ in range(500)])
    queue = np.median([default_queue_latency().operation_time(rng)
                       for _ in range(500)])
    table = np.median([default_table_latency().operation_time(rng)
                       for _ in range(500)])
    assert blob > queue
    assert blob > table
    assert 0.001 < queue < 0.1


# -- meter batching --------------------------------------------------------------

def test_meter_count_includes_batches():
    meter = TransactionMeter()
    meter.record("queue", "a", "poll")
    meter.record("queue", "a", "poll", count=99)
    assert meter.count(service="queue") == 100
    assert len(meter) == 100
    assert len(meter.records) == 2


def test_meter_rejects_zero_count():
    with pytest.raises(ValueError):
        TransactionMeter().record("queue", "a", "poll", count=0)


def test_meter_counts_by_respects_batches():
    meter = TransactionMeter()
    meter.record("queue", "a", "poll", count=10)
    meter.record("table", "a", "insert", count=5)
    meter.record("queue", "a", "enqueue")
    assert meter.counts_by("service") == {"queue": 11, "table": 5}
    assert meter.counts_by("operation")["poll"] == 10


def test_meter_bytes_moved_scales_with_count():
    meter = TransactionMeter()
    meter.record("blob", "a", "put", size=100, count=3)
    assert meter.bytes_moved() == 300


def test_meter_window_counts():
    clock = {"now": 0.0}
    meter = TransactionMeter(clock=lambda: clock["now"])
    meter.record("queue", "a", "poll", count=5)
    clock["now"] = 12.0
    meter.record("queue", "a", "poll", count=2)
    windows = meter.window_counts(window=10.0)
    assert windows == [(0.0, 5), (10.0, 2)]
    with pytest.raises(ValueError):
        meter.window_counts(window=0)


def test_meter_between_and_merge():
    clock = {"now": 0.0}
    first = TransactionMeter(clock=lambda: clock["now"])
    second = TransactionMeter(clock=lambda: clock["now"])
    first.record("queue", "a", "poll")
    clock["now"] = 5.0
    second.record("table", "a", "read")
    merged = first.merge([second])
    assert len(merged.records) == 2
    assert [entry.service for entry in merged.records] == ["queue", "table"]
    assert len(merged.between(0.0, 1.0)) == 1


def test_meter_billable_filter():
    meter = TransactionMeter()
    meter.record("queue", "a", "poll", billable=False, count=7)
    assert meter.count(service="queue") == 0
    assert meter.count(service="queue", billable_only=False) == 7


@given(st.lists(st.integers(1, 1000), min_size=1, max_size=20))
@settings(max_examples=50, deadline=None)
def test_meter_count_equals_sum_of_batches(counts):
    meter = TransactionMeter()
    for count in counts:
        meter.record("queue", "a", "poll", count=count)
    assert meter.count(service="queue") == sum(counts)
    assert len(meter) == sum(counts)
