"""Tests for payload size estimation and wrapping."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import Payload, estimate_size
from repro.storage.payload import KB, MB, SizedObject, human_size, total_size


def test_scalar_sizes():
    assert estimate_size(None) == 4
    assert estimate_size(True) == 5
    assert estimate_size(7) == 8
    assert estimate_size(3.14) == 8


def test_string_size_is_utf8_length():
    assert estimate_size("abc") == 3
    assert estimate_size("é") == 2


def test_bytes_size_is_length():
    assert estimate_size(b"\x00" * 100) == 100
    assert estimate_size(bytearray(50)) == 50


def test_numpy_array_counts_buffer():
    array = np.zeros(1000, dtype=np.float64)
    assert estimate_size(array) == 8000 + 96


def test_container_sizes_sum_members():
    assert estimate_size([1, 2, 3]) == 3 * (8 + 1) + 2
    assert estimate_size({"a": 1}) == 1 + 8 + 2 + 2


def test_payload_size_hint_attribute_wins():
    class Model(SizedObject):
        pass

    model = Model(payload_size=5 * MB)
    assert estimate_size(model) == 5 * MB


def test_opaque_object_gets_flat_charge():
    class Opaque:
        pass

    assert estimate_size(Opaque()) == 256


def test_payload_explicit_size_overrides_estimate():
    payload = Payload("tiny", size=10 * KB)
    assert payload.size == 10 * KB


def test_payload_rejects_negative_size():
    with pytest.raises(ValueError):
        Payload("x", size=-1)


def test_payload_wrap_is_idempotent():
    payload = Payload(1)
    assert Payload.wrap(payload) is payload
    assert estimate_size(payload) == payload.size


def test_total_size_sums():
    assert total_size([1, 2.0]) == 16


def test_human_size_formatting():
    assert human_size(512) == "512B"
    assert human_size(2048) == "2.0KB"
    assert human_size(int(5.2 * MB)) == "5.2MB"
    assert human_size(3 * 1024 ** 3) == "3.0GB"


@given(st.recursive(
    st.none() | st.booleans() | st.integers() | st.floats(allow_nan=False)
    | st.text(max_size=20),
    lambda children: st.lists(children, max_size=5)
    | st.dictionaries(st.text(max_size=5), children, max_size=5),
    max_leaves=20))
@settings(max_examples=100, deadline=None)
def test_estimate_size_is_nonnegative_for_json_like_values(value):
    assert estimate_size(value) >= 0
