"""Integration tests for blob, queue and table stores on the sim kernel."""

import numpy as np
import pytest

from repro.sim import Environment
from repro.storage import (
    BlobNotFound,
    BlobStore,
    CloudQueue,
    EntityNotFound,
    TableStore,
    TransactionMeter,
)
from repro.storage.payload import KB, MB
from repro.storage.queue import MessageTooLarge


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def meter(env):
    return TransactionMeter(clock=lambda: env.now)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


def run(env, generator):
    """Drive a storage generator to completion inside a process."""
    def process(env):
        result = yield from generator
        return result
    return env.run(until=env.process(process(env)))


# -- blob ---------------------------------------------------------------------

def test_blob_roundtrip(env, meter, rng):
    blob = BlobStore(env, meter, rng)
    run(env, blob.put("models/best", {"weights": [1, 2, 3]}))
    value = run(env, blob.get("models/best"))
    assert value == {"weights": [1, 2, 3]}
    assert meter.count(service="blob", operation="put") == 1
    assert meter.count(service="blob", operation="get") == 1


def test_blob_get_missing_raises_and_meters(env, meter, rng):
    blob = BlobStore(env, meter, rng)
    with pytest.raises(BlobNotFound):
        run(env, blob.get("absent"))
    assert meter.count(service="blob", operation="get") == 1


def test_blob_transfer_time_scales_with_size(env, meter, rng):
    from repro.sim import Constant
    from repro.storage.latency import StorageLatencyModel
    latency = StorageLatencyModel(base=Constant(0.01),
                                  bandwidth_bytes_per_s=1 * MB)
    blob = BlobStore(env, meter, rng, latency=latency)
    start = env.now
    run(env, blob.put("big", b"\x00" * (2 * MB)))
    # 0.01 base + 2 MB at 1 MB/s = 2.01 seconds.
    assert env.now - start == pytest.approx(2.01, abs=1e-6)


def test_blob_explicit_size_and_size_of(env, meter, rng):
    blob = BlobStore(env, meter, rng)
    run(env, blob.put("model", "opaque", size=5 * MB))
    assert blob.size_of("model") == 5 * MB
    with pytest.raises(BlobNotFound):
        blob.size_of("missing")


def test_blob_delete_and_list(env, meter, rng):
    blob = BlobStore(env, meter, rng)
    run(env, blob.put("a/1", 1))
    run(env, blob.put("a/2", 2))
    run(env, blob.put("b/1", 3))
    assert run(env, blob.list_prefix("a/")) == ["a/1", "a/2"]
    run(env, blob.delete("a/1"))
    assert not blob.exists("a/1")
    run(env, blob.delete("a/1"))  # idempotent


# -- queue --------------------------------------------------------------------

def test_queue_fifo_roundtrip(env, meter, rng):
    queue = CloudQueue(env, meter, rng)
    run(env, queue.enqueue("first"))
    run(env, queue.enqueue("second"))
    message = run(env, queue.poll())
    assert message.value == "first"
    assert message.dequeue_count == 1


def test_queue_empty_poll_is_metered(env, meter, rng):
    queue = CloudQueue(env, meter, rng)
    assert run(env, queue.poll()) is None
    assert meter.count(service="queue", operation="poll") == 1


def test_queue_receive_backs_off_and_meters_idle_polls(env, meter, rng):
    queue = CloudQueue(env, meter, rng, min_poll_interval=0.1,
                       max_poll_interval=1.0)

    def consumer(env):
        message = yield from queue.receive()
        return (env.now, message.value)

    def producer(env):
        yield env.timeout(5.0)
        yield from queue.enqueue("late")

    env.process(producer(env))
    when, value = env.run(until=env.process(consumer(env)))
    assert value == "late"
    assert when >= 5.0
    # Several idle polls must have been billed before the message arrived.
    assert meter.count(service="queue", operation="poll") > 3


def test_queue_receive_deadline_returns_none(env, meter, rng):
    queue = CloudQueue(env, meter, rng)

    def consumer(env):
        message = yield from queue.receive(deadline=2.0)
        return message

    assert env.run(until=env.process(consumer(env))) is None
    assert env.now >= 2.0


def test_queue_visibility_timeout_hides_message(env, meter, rng):
    queue = CloudQueue(env, meter, rng, visibility_timeout=10.0)
    run(env, queue.enqueue("job"))
    first = run(env, queue.poll())
    assert first.value == "job"
    # Invisible until the timeout elapses.
    assert run(env, queue.poll()) is None

    def later(env):
        yield env.timeout(11.0)
        message = yield from queue.poll()
        return message

    redelivered = env.run(until=env.process(later(env)))
    assert redelivered.value == "job"
    assert redelivered.dequeue_count == 2


def test_queue_delete_acknowledges(env, meter, rng):
    queue = CloudQueue(env, meter, rng)
    run(env, queue.enqueue("job"))
    message = run(env, queue.poll())
    run(env, queue.delete(message))

    def later(env):
        yield env.timeout(60.0)
        result = yield from queue.poll()
        return result

    assert env.run(until=env.process(later(env))) is None


def test_queue_payload_limit_enforced(env, meter, rng):
    queue = CloudQueue(env, meter, rng, max_message_size=64 * KB)
    with pytest.raises(MessageTooLarge):
        run(env, queue.enqueue(b"\x00" * (65 * KB)))


def test_queue_len_counts_visible_only(env, meter, rng):
    queue = CloudQueue(env, meter, rng, visibility_timeout=100.0)
    run(env, queue.enqueue(1))
    run(env, queue.enqueue(2))
    assert len(queue) == 2
    run(env, queue.poll())
    assert len(queue) == 1


# -- table --------------------------------------------------------------------

def test_table_insert_and_read(env, meter, rng):
    table = TableStore(env, meter, rng)
    run(env, table.insert("instance-1", "0001", {"event": "started"}))
    value = run(env, table.read("instance-1", "0001"))
    assert value == {"event": "started"}


def test_table_read_missing_raises_and_meters(env, meter, rng):
    table = TableStore(env, meter, rng)
    with pytest.raises(EntityNotFound):
        run(env, table.read("p", "r"))
    assert meter.count(service="table", operation="read") == 1


def test_table_etag_increments_on_replace(env, meter, rng):
    table = TableStore(env, meter, rng)
    assert run(env, table.insert("p", "r", 1)) == 0
    assert run(env, table.insert("p", "r", 2)) == 1


def test_table_read_partition_in_row_order(env, meter, rng):
    table = TableStore(env, meter, rng)
    run(env, table.insert("history", "0002", "second"))
    run(env, table.insert("history", "0001", "first"))
    run(env, table.insert("other", "0001", "noise"))
    events = run(env, table.read_partition("history"))
    assert events == ["first", "second"]
    assert meter.count(service="table", operation="query") == 1


def test_table_delete_partition(env, meter, rng):
    table = TableStore(env, meter, rng)
    run(env, table.insert("history", "0001", "a"))
    run(env, table.insert("history", "0002", "b"))
    run(env, table.insert("keep", "0001", "c"))
    removed = run(env, table.delete_partition("history"))
    assert removed == 2
    assert len(table) == 1
    assert table.contains("keep", "0001")


def test_meter_window_counts_show_idle_polling(env, meter, rng):
    queue = CloudQueue(env, meter, rng, min_poll_interval=1.0,
                       max_poll_interval=1.0)

    def idle_consumer(env):
        message = yield from queue.receive(deadline=10.0)
        return message

    env.run(until=env.process(idle_consumer(env)))
    windows = meter.window_counts(window=5.0)
    # Transactions occur across the whole idle period, not just at the start.
    assert len(windows) >= 2
