"""Storage edge cases: redelivery, conditional updates, overwrites.

The corners the invariant auditor leans on: visibility-timeout
redelivery (at-least-once, spaced by the timeout, never flagged as a
broker duplicate), optimistic-concurrency conflicts on the table store,
and last-writer-wins blob overwrites.
"""

import numpy as np
import pytest

from repro.core.audit import InvariantAuditor
from repro.sim import Environment
from repro.storage import (
    BlobStore,
    CloudQueue,
    EntityNotFound,
    PreconditionFailed,
    TableStore,
    TransactionMeter,
)
from repro.storage.payload import MB


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def meter(env):
    return TransactionMeter(clock=lambda: env.now)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


def run(env, generator):
    def process(env):
        result = yield from generator
        return result
    return env.run(until=env.process(process(env)))


# -- queue: visibility-timeout redelivery under observation ------------------------

def test_redelivery_is_observed_not_flagged_as_duplicate(env, meter, rng):
    """A message abandoned past its visibility timeout is redelivered —
    the auditor's queue record must see one enqueue, two dequeues spaced
    by at least the timeout, and zero broker duplicates."""
    auditor = InvariantAuditor()
    env.monitor = auditor
    queue = CloudQueue(env, meter, rng, name="work",
                       visibility_timeout=10.0)
    run(env, queue.enqueue("job"))
    first = run(env, queue.poll())
    assert first.value == "job"

    def later(env):
        yield env.timeout(10.5)
        message = yield from queue.poll()
        return message

    second = env.run(until=env.process(later(env)))
    assert second.dequeue_count == 2

    (record,) = auditor._queues
    assert record.next_ordinal == 1             # one logical message
    assert record.duplicates == []
    (times,) = record.dequeues.values()
    assert len(times) == 2
    assert times[1] - times[0] >= queue.visibility_timeout
    # And the delivery check agrees.
    check = auditor.finalize().checks[3]
    assert check.invariant == "delivery_semantics" and check.passed


def test_unsanctioned_broker_duplicate_fails_the_delivery_check(env, meter,
                                                                rng):
    """A duplicate enqueue with no fault plan permitting duplication is a
    delivery-semantics violation with the queue named in the evidence."""
    auditor = InvariantAuditor()
    env.monitor = auditor
    queue = CloudQueue(env, meter, rng, name="work")
    run(env, queue.enqueue("job"))
    (record,) = auditor._queues
    twin = run(env, queue.poll())
    record.note_enqueue(twin, duplicate=True)   # broker misbehaves

    check = auditor.finalize().checks[3]
    assert check.invariant == "delivery_semantics" and not check.passed
    assert any("work" in item and "duplicate" in item
               for item in check.evidence)


def test_queues_register_with_monitor_at_construction(env, meter, rng):
    auditor = InvariantAuditor()
    env.monitor = auditor
    CloudQueue(env, meter, rng, name="a")
    CloudQueue(env, meter, rng, name="a")       # same name, distinct record
    labels = [record.label for record in auditor._queues]
    assert labels == ["a#0", "a#1"]


def test_queue_without_monitor_has_no_observer(env, meter, rng):
    queue = CloudQueue(env, meter, rng)
    assert queue._observer is None
    run(env, queue.enqueue("job"))              # hooks stay inert


# -- table: conditional updates ----------------------------------------------------

def test_conditional_update_bumps_etag(env, meter, rng):
    table = TableStore(env, meter, rng)
    etag = run(env, table.insert("lease", "owner", "worker-1"))
    new_etag = run(env, table.update("lease", "owner", "worker-2",
                                     if_match=etag))
    assert new_etag == etag + 1
    assert run(env, table.read("lease", "owner")) == "worker-2"
    assert meter.count(service="table", operation="update") == 1


def test_conditional_update_conflict_raises_and_preserves_row(env, meter,
                                                              rng):
    table = TableStore(env, meter, rng)
    etag = run(env, table.insert("lease", "owner", "worker-1"))
    run(env, table.update("lease", "owner", "worker-2", if_match=etag))
    with pytest.raises(PreconditionFailed) as error:
        run(env, table.update("lease", "owner", "worker-3", if_match=etag))
    assert error.value.key == ("lease", "owner")
    assert error.value.expected == etag
    assert error.value.actual == etag + 1
    # The loser's write never landed, but its round trip was billed.
    assert run(env, table.read("lease", "owner")) == "worker-2"
    assert meter.count(service="table", operation="update") == 2


def test_conditional_update_of_missing_row_raises(env, meter, rng):
    table = TableStore(env, meter, rng)
    with pytest.raises(EntityNotFound):
        run(env, table.update("lease", "gone", "value", if_match=0))
    assert meter.count(service="table", operation="update") == 1


# -- blob: overwrite semantics -----------------------------------------------------

def test_blob_overwrite_replaces_value_and_size(env, meter, rng):
    blob = BlobStore(env, meter, rng)
    run(env, blob.put("model", "v1", size=1 * MB))
    run(env, blob.put("model", "v2", size=3 * MB))
    assert run(env, blob.get("model")) == "v2"
    assert blob.size_of("model") == 3 * MB
    assert run(env, blob.list_prefix("model")) == ["model"]
    assert meter.count(service="blob", operation="put") == 2


def test_blob_overwrite_transfer_billed_at_new_size(env, meter, rng):
    from repro.sim import Constant
    from repro.storage.latency import StorageLatencyModel
    latency = StorageLatencyModel(base=Constant(0.01),
                                  bandwidth_bytes_per_s=1 * MB)
    blob = BlobStore(env, meter, rng, latency=latency)
    run(env, blob.put("model", b"\x00" * (1 * MB)))
    start = env.now
    run(env, blob.put("model", b"\x00" * (2 * MB)))
    # The overwrite pays for its own 2 MB, not the old object's 1 MB.
    assert env.now - start == pytest.approx(2.01, abs=1e-6)
