"""Scalability guards: big simulations stay cheap in wall time.

These bound the event-loop's cost so that performance regressions (e.g.
accidental per-event table scans) show up as test failures rather than
as benchmark suites that silently take an hour.
"""

import time

import pytest

from repro.core import ColdStartCampaign, Testbed, build_ml_training_deployments, \
    build_video_deployments


def test_500_worker_fanout_wall_time():
    testbed = Testbed(seed=44)
    deployment = build_video_deployments(testbed, n_workers=500)["AWS-Step"]
    deployment.deploy()
    started = time.perf_counter()
    run = testbed.run(deployment.invoke(n_workers=500))
    elapsed = time.perf_counter() - started
    assert run.value["n_chunks"] == 500
    assert elapsed < 20.0, f"500-worker AWS fan-out took {elapsed:.1f}s"


def test_200_worker_azure_fanout_wall_time():
    testbed = Testbed(seed=45)
    deployment = build_video_deployments(testbed, n_workers=200)["Az-Dorch"]
    deployment.deploy()
    started = time.perf_counter()
    result = testbed.run(deployment.invoke(n_workers=200))
    elapsed = time.perf_counter() - started
    assert result.value["n_chunks"] == 200
    assert elapsed < 30.0, f"200-worker Azure fan-out took {elapsed:.1f}s"


def test_four_day_cold_start_campaign_wall_time():
    testbed = Testbed(seed=46)
    deployment = build_ml_training_deployments(testbed, "small")["Az-Dorch"]
    campaign = ColdStartCampaign(interval_s=3600.0, days=4.0)
    started = time.perf_counter()
    result = campaign.run(deployment)
    elapsed = time.perf_counter() - started
    assert len(result.runs) == 96
    assert elapsed < 30.0, f"4-day campaign took {elapsed:.1f}s"


def test_week_of_idle_polling_wall_time():
    """Idle time is nearly free thanks to batched metering."""
    testbed = Testbed(seed=47)
    deployment = build_ml_training_deployments(testbed, "small")["Az-Dorch"]
    deployment.deploy()
    testbed.run(deployment.invoke())
    started = time.perf_counter()
    testbed.advance(7 * 24 * 3600.0)
    elapsed = time.perf_counter() - started
    assert elapsed < 15.0, f"idle week took {elapsed:.1f}s"
    # And the idle week was billed.
    assert len(testbed.azure.meter) > 100_000
