"""Tests for the GCP calibration constants and their validation."""

import pytest

from repro.gcp.calibration import GCPCalibration, default_gcp_calibration

pytestmark = pytest.mark.gcp


def test_defaults_are_fresh_and_sane():
    first = default_gcp_calibration()
    second = default_gcp_calibration()
    assert first is not second
    assert first.time_limit_s == 540.0
    assert first.billing_granularity_s == 0.1
    assert first.payload_limit_bytes == 64 * 1024
    assert first.internal_step_price < first.external_step_price


def test_round_to_tier_picks_next_tier():
    calibration = GCPCalibration()
    assert calibration.round_to_tier(128) == 128
    assert calibration.round_to_tier(129) == 256
    assert calibration.round_to_tier(1536) == 2048
    assert calibration.round_to_tier(8192) == 8192
    with pytest.raises(ValueError, match="largest"):
        calibration.round_to_tier(8193)


def test_cpu_factor_scales_with_tier_and_is_bounded():
    calibration = GCPCalibration()
    assert calibration.cpu_factor(2048) == 1.0
    assert calibration.cpu_factor(1024) == 2.0
    # Bounded both ways: tiny tiers don't slow without limit, huge
    # tiers don't speed up below the full-vCPU floor.
    assert calibration.cpu_factor(128) == 3.0
    assert calibration.cpu_factor(8192) == 0.5


def test_validation_rejects_nonsense():
    with pytest.raises(ValueError, match="sorted"):
        GCPCalibration(memory_tiers=(512, 128))
    with pytest.raises(ValueError, match="non-empty"):
        GCPCalibration(memory_tiers=())
    with pytest.raises(ValueError, match="max_instances"):
        GCPCalibration(max_instances=0)
    with pytest.raises(ValueError, match="throttle_retry_max_attempts"):
        GCPCalibration(throttle_retry_max_attempts=0)
    with pytest.raises(ValueError, match="throttle_retry_cap_s"):
        GCPCalibration(throttle_retry_interval_s=4.0,
                       throttle_retry_cap_s=2.0)
