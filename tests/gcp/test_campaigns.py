"""GCP variants through every campaign type, and three-platform identity.

The acceptance bar for the third platform: all campaign types (latency,
cold start, reliability, overload — each under the invariant auditor via
the suite-wide default) run on the GCP variants, and a spec executed
serially, through the :class:`ParallelRunner` worker pool, or replayed
from the on-disk cache is bit-identical on every platform.
"""

import json

import pytest

from repro.core import (
    CampaignSpec,
    ParallelRunner,
    ResultCache,
    execute_spec,
)
from repro.core.persistence import campaign_to_dict, cost_report_to_dict
from repro.platforms.faults import FaultPlan

pytestmark = pytest.mark.gcp


def outcome_blob(outcome) -> str:
    """Every observable of an outcome, as one comparable string."""
    return json.dumps({
        "campaign": campaign_to_dict(outcome.campaign),
        "cost": cost_report_to_dict(outcome.cost),
        "idle": outcome.idle_transactions,
        "reliability": repr(outcome.reliability),
        "overload": repr(outcome.overload),
    }, sort_keys=True, default=repr)


# -- every campaign type on the GCP variants -----------------------------------------


@pytest.mark.parametrize("deployment", ["GCP-Func", "GCP-Flows"])
def test_latency_campaign(deployment):
    spec = CampaignSpec(deployment=deployment, workload="ml-training",
                        scale="small", iterations=3, warmup=1, seed=17)
    outcome = execute_spec(spec)
    assert len(outcome.campaign.latencies) == 3
    assert all(latency > 0 for latency in outcome.campaign.latencies)
    assert outcome.cost.platform == "gcp"
    assert outcome.cost.total > 0
    assert outcome.audit is not None and outcome.audit.passed


def test_inference_campaign():
    spec = CampaignSpec(deployment="GCP-Flows", workload="ml-inference",
                        scale="small", iterations=2, warmup=1, seed=17)
    outcome = execute_spec(spec)
    assert len(outcome.campaign.latencies) == 2
    # Per-step transactions were metered: GCP-Flows is the stateful
    # variant, so the workflow's step charges must show up.
    assert outcome.cost.transaction_count > 0


def test_video_campaign():
    spec = CampaignSpec(deployment="GCP-Flows", workload="video",
                        fanout=4, campaign="latency", iterations=1,
                        warmup=0, think_time_s=0.0, settle_time_s=0.0,
                        seed=17, invoke_kwargs={"n_workers": 4})
    outcome = execute_spec(spec)
    assert len(outcome.campaign.latencies) == 1
    assert outcome.campaign.runs[0].value["n_detections"] == 4


def test_coldstart_campaign():
    spec = CampaignSpec(deployment="GCP-Flows", workload="ml-training",
                        scale="small", campaign="coldstart",
                        interval_s=3600.0, days=0.25, seed=17)
    outcome = execute_spec(spec)
    delays = outcome.campaign.cold_start_delays
    assert delays
    # Hourly arrivals against a 900 s keep-alive: every request pays a
    # gen1 cold start (1.5-4 s), so the median sits well above warm
    # dispatch overheads.
    assert min(delays) >= 1.5


def test_reliability_campaign():
    plan = FaultPlan(crash_probability=0.2, retry_max_attempts=3)
    spec = CampaignSpec(deployment="GCP-Flows", workload="ml-training",
                        scale="small", campaign="reliability",
                        iterations=3, warmup=1, seed=17,
                        fault_plan=plan.to_items())
    outcome = execute_spec(spec)
    summary = outcome.reliability
    assert summary.platform == "gcp"
    assert 0.0 < summary.success_rate <= 1.0
    assert summary.cost_amplification >= 1.0
    assert outcome.audit is not None and outcome.audit.passed


def test_overload_campaign():
    spec = CampaignSpec(deployment="GCP-Func", workload="ml-training",
                        scale="small", campaign="overload",
                        arrival="poisson", arrival_rate_per_s=2.0,
                        horizon_s=40.0, seed=17,
                        calibration_overrides={"gcp.max_instances": 2})
    outcome = execute_spec(spec)
    summary = outcome.overload
    assert summary.platform == "gcp"
    assert summary.offered == (summary.succeeded + summary.throttled
                               + summary.shed + summary.failed)
    # Two gen1 instances against 2 req/s of 14-second work must throttle.
    assert summary.throttled > 0
    assert summary.shed == 0          # GCP has no shedding path
    assert outcome.audit is not None and outcome.audit.passed


def test_overload_workflow_retries_absorb_429s():
    """GCP-Flows overload: the Workflows retry policy re-offers throttled
    calls, so retry amplification exceeds the direct-function variant's."""
    spec = CampaignSpec(deployment="GCP-Flows", workload="ml-training",
                        scale="small", campaign="overload",
                        arrival="poisson", arrival_rate_per_s=1.0,
                        horizon_s=30.0, seed=17,
                        calibration_overrides={"gcp.max_instances": 2})
    outcome = execute_spec(spec)
    assert outcome.overload.retries > 0
    assert outcome.overload.retry_amplification > 1.0


# -- bit-identity: serial / worker pool / cache replay ------------------------------


THREE_PLATFORM_SPECS = [
    CampaignSpec(deployment=name, workload="ml-training", scale="small",
                 iterations=3, warmup=1, seed=23)
    for name in ("AWS-Step", "Az-Dorch", "GCP-Flows")
]


def test_serial_parallel_and_cache_replay_are_bit_identical(tmp_path):
    serial = [execute_spec(spec) for spec in THREE_PLATFORM_SPECS]

    cache = ResultCache(str(tmp_path))
    pooled = ParallelRunner(workers=2, cache=cache).run(
        THREE_PLATFORM_SPECS)
    replayed = ParallelRunner(workers=2, cache=cache).run(
        THREE_PLATFORM_SPECS)

    for reference, worker, replay in zip(serial, pooled, replayed):
        assert not worker.cached
        assert replay.cached
        assert outcome_blob(reference) == outcome_blob(worker)
        assert outcome_blob(reference) == outcome_blob(replay)


def test_reliability_and_overload_specs_are_deterministic():
    plan = FaultPlan(crash_probability=0.15, retry_max_attempts=3)
    specs = [
        CampaignSpec(deployment="GCP-Flows", workload="ml-training",
                     scale="small", campaign="reliability", iterations=2,
                     warmup=1, seed=31, fault_plan=plan.to_items()),
        CampaignSpec(deployment="GCP-Func", workload="ml-training",
                     scale="small", campaign="overload",
                     arrival="poisson", arrival_rate_per_s=1.0,
                     horizon_s=30.0, seed=31,
                     calibration_overrides={"gcp.max_instances": 2}),
    ]
    serial = [execute_spec(spec) for spec in specs]
    pooled = ParallelRunner(workers=2, cache=None).run(specs)
    for reference, worker in zip(serial, pooled):
        assert outcome_blob(reference) == outcome_blob(worker)
