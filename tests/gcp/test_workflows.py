"""Tests for the GCP Workflows step interpreter."""

import pytest

from repro.core import Testbed
from repro.core.workflow import Workflow, map_over, sequence, task
from repro.gcp.calibration import GCPCalibration
from repro.gcp.workflows import WorkflowValidationError
from repro.platforms.base import FunctionSpec

pytestmark = pytest.mark.gcp


@pytest.fixture
def testbed():
    return Testbed(seed=13, platforms=["gcp"])


def _double(ctx, event):
    yield from ctx.busy(0.1)
    return event * 2


def _register_double(testbed, name="double"):
    testbed.cloudfunctions.register(FunctionSpec(
        name=name, handler=_double, memory_mb=256, timeout_s=60.0))


def _execute(testbed, name, argument):
    return testbed.run(testbed.workflows.execute(name, argument))


# -- step ops ---------------------------------------------------------------------


def test_assign_call_and_return(testbed):
    _register_double(testbed)
    testbed.workflows.create_workflow("wf", [
        {"name": "Init", "assign": [["data", 5], ["label", "run"]]},
        {"name": "Double", "call": "double", "args": "$.data",
         "result": "data"},
        {"name": "Done", "return": {"label": "$.label", "value": "$.data"}},
    ])
    record = _execute(testbed, "wf", None)
    assert record.status == "SUCCEEDED"
    assert record.output == {"label": "run", "value": 10}
    assert record.steps_entered == ["Init", "Double", "Done"]
    assert record.internal_steps == 2
    assert record.external_steps == 1
    assert record.duration > 0


def test_default_output_is_final_data(testbed):
    _register_double(testbed)
    testbed.workflows.create_workflow("wf", [
        {"name": "Double", "call": "double", "args": "$.data",
         "result": "data"},
    ])
    record = _execute(testbed, "wf", 3)
    assert record.status == "SUCCEEDED"
    assert record.output == 6


def test_switch_jumps_and_next_jumps(testbed):
    testbed.workflows.create_workflow("wf", [
        {"name": "Route", "switch": [
            {"condition": {"var": "$.data", "op": "gt", "value": 10},
             "next": "Big"},
            {"next": "Small"},
        ]},
        {"name": "Small", "assign": [["data", "small"]], "next": "Done"},
        {"name": "Big", "assign": [["data", "big"]], "next": "Done"},
        {"name": "Done", "return": "$.data"},
    ])
    assert _execute(testbed, "wf", 50).output == "big"
    assert _execute(testbed, "wf", 2).output == "small"


def test_switch_without_match_fails(testbed):
    testbed.workflows.create_workflow("wf", [
        {"name": "Route", "switch": [
            {"condition": {"var": "$.data", "op": "eq", "value": 1},
             "next": "Route"},
        ]},
    ])
    record = _execute(testbed, "wf", 7)
    assert record.status == "FAILED"
    assert "no switch condition matched" in record.error


def test_parallel_branches_run_concurrently(testbed):
    _register_double(testbed)
    testbed.workflows.create_workflow("wf", [
        {"name": "Fan", "parallel": {"branches": [
            [{"name": "A", "call": "double", "args": "$.data",
              "result": "data"}],
            [{"name": "B", "call": "double", "args": 10,
              "result": "data"}],
        ], "result": "data"}},
        {"name": "Done", "return": "$.data"},
    ])
    record = _execute(testbed, "wf", 4)
    assert record.status == "SUCCEEDED"
    assert record.output == [8, 20]
    # Two 0.1 s calls overlapped: well under the serial sum plus
    # per-call overheads run back to back.
    assert record.duration < 4.5  # one cold start, not two in sequence


def test_for_binds_loop_var_and_data(testbed):
    _register_double(testbed)
    testbed.workflows.create_workflow("wf", [
        {"name": "Map", "for": {"value": "item", "in": "$.data.items",
                                "steps": [
            {"name": "Double", "call": "double", "args": "$.item",
             "result": "data"}],
            "concurrency": 2, "result": "data"}},
        {"name": "Done", "return": "$.data"},
    ])
    record = _execute(testbed, "wf", {"items": [1, 2, 3]})
    assert record.status == "SUCCEEDED"
    assert record.output == [2, 4, 6]


def test_for_over_non_list_fails(testbed):
    testbed.workflows.create_workflow("wf", [
        {"name": "Map", "for": {"value": "item", "in": "$.data",
                                "steps": [
            {"name": "Noop", "assign": [["x", 1]]}]}},
    ])
    record = _execute(testbed, "wf", "not-a-list")
    assert record.status == "FAILED"
    assert "did not resolve to a list" in record.error


def test_unresolvable_reference_fails_the_execution(testbed):
    testbed.workflows.create_workflow("wf", [
        {"name": "Bad", "assign": [["x", "$.data.missing.deep"]]},
    ])
    record = _execute(testbed, "wf", {})
    assert record.status == "FAILED"
    assert "failed to resolve" in record.error


# -- validation --------------------------------------------------------------------


def test_validation_rejects_bad_definitions(testbed):
    _register_double(testbed)
    create = testbed.workflows.create_workflow
    with pytest.raises(WorkflowValidationError, match="non-empty"):
        create("w1", [])
    with pytest.raises(WorkflowValidationError, match="needs a 'name'"):
        create("w2", [{"assign": [["x", 1]]}])
    with pytest.raises(WorkflowValidationError, match="exactly one op"):
        create("w3", [{"name": "S", "assign": [], "return": 1}])
    with pytest.raises(WorkflowValidationError, match="duplicate"):
        create("w4", [{"name": "S", "assign": [["x", 1]]},
                      {"name": "S", "assign": [["y", 2]]}])
    with pytest.raises(WorkflowValidationError, match="unknown step"):
        create("w5", [{"name": "S", "assign": [["x", 1]],
                       "next": "Nowhere"}])
    with pytest.raises(WorkflowValidationError, match="top level"):
        create("w6", [{"name": "Fan", "parallel": {"branches": [
            [{"name": "Inner", "return": 1}]]}}])
    with pytest.raises(KeyError, match="no such Cloud Function"):
        create("w7", [{"name": "S", "call": "undeployed"}])
    with pytest.raises(ValueError, match="already exists"):
        create("wf-dup", [{"name": "S", "assign": [["x", 1]]}])
        create("wf-dup", [{"name": "S", "assign": [["x", 1]]}])


# -- payload limits ----------------------------------------------------------------


def test_oversized_call_result_fails(testbed):
    limit = testbed.calibration("gcp").payload_limit_bytes

    def huge(ctx, event):
        yield from ctx.busy(0.05)
        return "x" * (2 * limit)

    testbed.cloudfunctions.register(FunctionSpec(
        name="huge", handler=huge, memory_mb=256, timeout_s=60.0))
    testbed.workflows.create_workflow("wf", [
        {"name": "Huge", "call": "huge", "result": "data"},
    ])
    record = _execute(testbed, "wf", None)
    assert record.status == "FAILED"
    assert "call result" in record.error


def test_oversized_argument_fails(testbed):
    limit = testbed.calibration("gcp").payload_limit_bytes
    testbed.workflows.create_workflow("wf", [
        {"name": "Noop", "assign": [["x", 1]]},
    ])
    record = _execute(testbed, "wf", "x" * (2 * limit))
    assert record.status == "FAILED"
    assert "workflow argument" in record.error


# -- throttle retries ---------------------------------------------------------------


def test_retry_policy_absorbs_429s():
    """With one gen1 instance, a concurrency-3 fan-out 429s; the built-in
    retry policy re-offers the calls and the execution still succeeds."""
    calibration = GCPCalibration(max_instances=1)
    testbed = Testbed(seed=13, platforms=["gcp"],
                      calibrations={"gcp": calibration})

    def slow_double(ctx, event):
        yield from ctx.busy(1.0)
        return event * 2

    testbed.cloudfunctions.register(FunctionSpec(
        name="double", handler=slow_double, memory_mb=256, timeout_s=60.0))
    testbed.workflows.create_workflow("wf", [
        {"name": "Map", "for": {"value": "item", "in": "$.data",
                                "steps": [
            {"name": "Double", "call": "double", "args": "$.item",
             "result": "data"}],
            "result": "data"}},
        {"name": "Done", "return": "$.data"},
    ])
    record = testbed.run(testbed.workflows.execute("wf", [1, 2, 3]))
    assert record.status == "SUCCEEDED"
    assert record.output == [2, 4, 6]
    assert testbed.workflows.throttle_retries >= 1
    assert testbed.cloudfunctions.throttles >= 1


def test_exhausted_retries_fail_the_step():
    calibration = GCPCalibration(max_instances=1,
                                 throttle_retry_max_attempts=1)
    testbed = Testbed(seed=13, platforms=["gcp"],
                      calibrations={"gcp": calibration})

    def slow(ctx, event):
        yield from ctx.busy(5.0)
        return event

    testbed.cloudfunctions.register(FunctionSpec(
        name="slow", handler=slow, memory_mb=256, timeout_s=60.0))
    testbed.workflows.create_workflow("wf", [
        {"name": "Fan", "parallel": {"branches": [
            [{"name": "A", "call": "slow", "args": 1, "result": "data"}],
            [{"name": "B", "call": "slow", "args": 2, "result": "data"}],
        ], "result": "data"}},
    ])
    record = testbed.run(testbed.workflows.execute("wf", None))
    assert record.status == "FAILED"
    assert "429" in record.error
    assert testbed.workflows.throttle_retries == 0


# -- the neutral IR compiles and runs -----------------------------------------------


def test_workflow_ir_compiles_to_gcp_steps(testbed):
    _register_double(testbed)
    workflow = Workflow("ir", sequence(
        task("double"),
        map_over("$.items", task("double")),
    ))
    steps = workflow.to_gcp_steps()
    assert steps[-1]["return"] == "$.data"
    # Map items paths re-anchor onto the data variable.
    for_step = next(step for step in steps if "for" in step)
    assert for_step["for"]["in"] == "$.data.items"


def test_list_executions_filters(testbed):
    _register_double(testbed)
    testbed.workflows.create_workflow("wf", [
        {"name": "Double", "call": "double", "args": "$.data",
         "result": "data"},
    ])
    _execute(testbed, "wf", 1)
    _execute(testbed, "wf", 2)
    records = testbed.workflows.list_executions("wf", status="SUCCEEDED")
    assert len(records) == 2
    assert records[0].execution_id > records[1].execution_id


def test_parallel_failure_cancels_surviving_branches(testbed):
    """Regression: a branch failing after the parallel step already
    failed had no waiter left, so its error escaped the run long after
    the execution record came back FAILED."""
    log = []

    def fail_fast(ctx, event):
        yield from ctx.busy(0.1)
        raise RuntimeError("fast failure")

    def fail_slow(ctx, event):
        yield from ctx.busy(30.0)
        log.append("survivor ran to completion")
        raise RuntimeError("late failure")

    testbed.cloudfunctions.register(FunctionSpec(
        name="fail-fast", handler=fail_fast, memory_mb=256, timeout_s=60.0))
    testbed.cloudfunctions.register(FunctionSpec(
        name="fail-slow", handler=fail_slow, memory_mb=256, timeout_s=60.0))
    testbed.workflows.create_workflow("wf", [
        {"name": "Fan", "parallel": {"branches": [
            [{"name": "A", "call": "fail-fast", "args": 1, "result": "a"}],
            [{"name": "B", "call": "fail-slow", "args": 2, "result": "b"}],
        ], "result": "data"}},
    ])
    record = _execute(testbed, "wf", None)
    assert record.status == "FAILED"
    # Draining the simulation must surface nothing: the surviving branch
    # was cancelled with its parent, not left to fail on its own.
    testbed.env.run()
    assert log == []


def test_for_failure_cancels_surviving_iterations(testbed):
    log = []

    def fail_by_item(ctx, event):
        if event == 0:
            yield from ctx.busy(0.1)
            raise RuntimeError("item 0 blew up")
        yield from ctx.busy(30.0)
        log.append("survivor ran to completion")
        raise RuntimeError("late failure")

    testbed.cloudfunctions.register(FunctionSpec(
        name="fail-by-item", handler=fail_by_item, memory_mb=256,
        timeout_s=60.0))
    testbed.workflows.create_workflow("wf", [
        {"name": "Map", "for": {"value": "item", "in": "$.data",
                                "steps": [
            {"name": "Try", "call": "fail-by-item", "args": "$.item",
             "result": "out"}],
            "concurrency": 2, "result": "data"}},
    ])
    record = _execute(testbed, "wf", [0, 1])
    assert record.status == "FAILED"
    testbed.env.run()
    assert log == []
