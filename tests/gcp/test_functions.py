"""Tests for the Cloud Functions (gen1) runtime simulation."""

import pytest

from repro.core import Testbed
from repro.gcp.calibration import GCPCalibration
from repro.platforms.base import (
    FunctionSpec,
    FunctionTimeout,
    ThrottlingError,
)

pytestmark = pytest.mark.gcp


@pytest.fixture
def testbed():
    return Testbed(seed=11, platforms=["gcp"])


def _echo(ctx, event):
    yield from ctx.busy(0.2)
    return event


def _register(testbed, name="fn", handler=_echo, **kwargs):
    return testbed.cloudfunctions.register(
        FunctionSpec(name=name, handler=handler, **kwargs))


# -- registration ----------------------------------------------------------------


def test_register_rounds_memory_and_clamps_timeout(testbed):
    deployed = _register(testbed, memory_mb=1536, timeout_s=900.0)
    assert deployed.memory_mb == 2048          # next gen1 tier
    assert deployed.timeout_s == 540.0         # gen1 execution cap
    assert testbed.cloudfunctions.get_function("fn") is deployed


def test_register_rejects_duplicates(testbed):
    _register(testbed)
    with pytest.raises(ValueError, match="already registered"):
        _register(testbed)


# -- cold / warm behaviour --------------------------------------------------------


def test_first_invocation_is_cold_then_warm(testbed):
    _register(testbed, memory_mb=2048, timeout_s=60.0)

    def two_runs():
        first = yield from testbed.cloudfunctions.invoke("fn", {"n": 1})
        second = yield from testbed.cloudfunctions.invoke("fn", {"n": 2})
        return first, second

    first, second = testbed.run(two_runs())
    calibration = testbed.calibration("gcp")
    assert first.cold_start
    assert (calibration.cold_start.low <= first.cold_start_duration
            <= calibration.cold_start.high)
    assert not second.cold_start
    assert second.cold_start_duration == 0.0
    assert testbed.cloudfunctions.warm_instance_count("fn") == 1


def test_keep_alive_expiry_forces_new_cold_start(testbed):
    _register(testbed, memory_mb=2048, timeout_s=60.0)
    testbed.run(testbed.cloudfunctions.invoke("fn", {}))
    testbed.advance(testbed.calibration("gcp").keep_alive_s + 1.0)
    assert testbed.cloudfunctions.warm_instance_count("fn") == 0
    result = testbed.run(testbed.cloudfunctions.invoke("fn", {}))
    assert result.cold_start


def test_host_crash_drops_idle_instances(testbed):
    _register(testbed, memory_mb=2048, timeout_s=60.0)
    testbed.run(testbed.cloudfunctions.invoke("fn", {}))
    assert testbed.cloudfunctions.simulate_host_crash() == 1
    result = testbed.run(testbed.cloudfunctions.invoke("fn", {}))
    assert result.cold_start


def test_cpu_factor_stretches_small_tiers():
    """The same handler takes longer on a 128 MB tier than on 2048 MB."""
    def timed(memory_mb):
        testbed = Testbed(seed=5, platforms=["gcp"])
        testbed.cloudfunctions.register(FunctionSpec(
            name="fn", handler=_echo, memory_mb=memory_mb, timeout_s=60.0))
        result = testbed.run(testbed.cloudfunctions.invoke("fn", {}))
        return result.duration

    assert timed(128) > 2.0 * timed(2048)


# -- admission control -------------------------------------------------------------


def test_instance_cap_rejects_429(testbed):
    calibration = GCPCalibration(max_instances=2)
    testbed = Testbed(seed=11, platforms=["gcp"],
                      calibrations={"gcp": calibration})

    def slow(ctx, event):
        yield from ctx.busy(10.0)
        return event

    testbed.cloudfunctions.register(FunctionSpec(
        name="slow", handler=slow, memory_mb=2048, timeout_s=60.0))

    errors = []

    def one(index):
        try:
            yield from testbed.cloudfunctions.invoke("slow", {"i": index})
        except ThrottlingError as error:
            errors.append(str(error))

    def storm():
        procs = [testbed.env.process(one(index)) for index in range(5)]
        yield testbed.env.all_of(procs)

    testbed.run(storm())
    assert testbed.cloudfunctions.throttles == 3
    assert len(errors) == 3
    assert all("RESOURCE_EXHAUSTED" in error and "429" in error
               for error in errors)
    # Rejected requests are not billed.
    assert testbed.gcp.billing.total_requests() == 2


def test_throttle_text_matches_error_classifier():
    """Even once wrapped by a workflow layer (losing the exception
    type), GCP's 429 text still lands in the throttled bucket."""
    from repro.core.overload import classify_error
    wrapped = RuntimeError(
        "call 'fn' failed: instance limit (2) reached: "
        "RESOURCE_EXHAUSTED — 429 TooManyRequests")
    assert classify_error(wrapped) == "throttled"


# -- billing / timeout --------------------------------------------------------------


def test_billing_rounds_to_100ms_on_tier_memory(testbed):
    _register(testbed, memory_mb=1536, timeout_s=60.0)
    testbed.run(testbed.cloudfunctions.invoke("fn", {}))
    (charge,) = testbed.gcp.billing.compute
    assert charge.memory_mb == 2048
    assert charge.billed_duration >= charge.raw_duration
    # 100 ms granularity: billed is a whole number of tenths.
    assert round(charge.billed_duration * 10, 6) == int(
        round(charge.billed_duration * 10, 6))
    assert testbed.gcp.billing.total_requests() == 1


def test_timeout_interrupts_handler(testbed):
    def forever(ctx, event):
        yield from ctx.busy(100.0)
        return event

    testbed.cloudfunctions.register(FunctionSpec(
        name="forever", handler=forever, memory_mb=2048, timeout_s=2.0))

    def run():
        yield from testbed.cloudfunctions.invoke("forever", {})

    with pytest.raises(FunctionTimeout, match="2.0s limit"):
        testbed.run(run())
    # The doomed attempt is still billed (partial executions cost money).
    (charge,) = testbed.gcp.billing.compute
    assert charge.billed_duration >= 2.0
