"""Run the doctest examples embedded in module and class docstrings."""

import doctest

import pytest

import repro.core.arrivals
import repro.core.workflow
import repro.sim
import repro.sim.rng
import repro.storage.payload
import repro.telemetry.spans
import repro.workloads.ml.dataset
import repro.workloads.ml.pca
import repro.workloads.video.video

MODULES = [
    repro.sim,
    repro.sim.rng,
    repro.storage.payload,
    repro.telemetry.spans,
    repro.core.arrivals,
    repro.core.workflow,
    repro.workloads.ml.dataset,
    repro.workloads.ml.pca,
    repro.workloads.video.video,
]


@pytest.mark.parametrize("module", MODULES,
                         ids=[module.__name__ for module in MODULES])
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures"
    assert results.attempted > 0, f"{module.__name__} has no doctests"
