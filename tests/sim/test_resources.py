"""Unit tests for Resource, PriorityResource, Container and Store."""

import pytest

from repro.sim import Container, Environment, PriorityResource, Resource, Store


def test_resource_grants_up_to_capacity():
    env = Environment()
    resource = Resource(env, capacity=2)
    grants = []

    def worker(env, name):
        with resource.request() as request:
            yield request
            grants.append((env.now, name))
            yield env.timeout(5.0)

    for name in ("a", "b", "c"):
        env.process(worker(env, name))
    env.run()
    assert grants == [(0.0, "a"), (0.0, "b"), (5.0, "c")]


def test_resource_rejects_nonpositive_capacity():
    with pytest.raises(ValueError):
        Resource(Environment(), capacity=0)


def test_resource_count_tracks_holders():
    env = Environment()
    resource = Resource(env, capacity=3)
    observed = []

    def worker(env):
        with resource.request() as request:
            yield request
            observed.append(resource.count)
            yield env.timeout(1.0)

    env.process(worker(env))
    env.process(worker(env))
    env.run()
    # Both requests are granted before either process resumes, so each
    # observes both holders; all slots are returned by the end.
    assert observed == [2, 2]
    assert resource.count == 0


def test_release_unqueued_request_is_safe():
    env = Environment()
    resource = Resource(env, capacity=1)
    holder = resource.request()
    waiter = resource.request()
    resource.release(waiter)  # never granted; must just leave the queue
    assert holder.triggered
    assert not waiter.triggered
    assert resource.queue == []


def test_priority_resource_serves_lowest_priority_first():
    env = Environment()
    resource = PriorityResource(env, capacity=1)
    order = []

    def worker(env, name, priority, arrive):
        yield env.timeout(arrive)
        request = resource.request(priority=priority)
        yield request
        order.append(name)
        yield env.timeout(10.0)
        resource.release(request)

    env.process(worker(env, "low", 5, 0.0))
    env.process(worker(env, "mid", 3, 1.0))
    env.process(worker(env, "high", 1, 2.0))
    env.run()
    assert order == ["low", "high", "mid"]


def test_container_get_blocks_until_level_suffices():
    env = Environment()
    container = Container(env, capacity=10, init=0)
    got = []

    def consumer(env):
        yield container.get(4)
        got.append(env.now)

    def producer(env):
        yield env.timeout(2.0)
        yield container.put(3)
        yield env.timeout(2.0)
        yield container.put(3)

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert got == [4.0]
    assert container.level == 2


def test_container_put_blocks_at_capacity():
    env = Environment()
    container = Container(env, capacity=5, init=5)
    done = []

    def producer(env):
        yield container.put(2)
        done.append(env.now)

    def consumer(env):
        yield env.timeout(3.0)
        yield container.get(4)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert done == [3.0]


def test_container_validates_arguments():
    env = Environment()
    with pytest.raises(ValueError):
        Container(env, capacity=0)
    with pytest.raises(ValueError):
        Container(env, capacity=5, init=6)
    container = Container(env, capacity=5)
    with pytest.raises(ValueError):
        container.put(0)
    with pytest.raises(ValueError):
        container.get(-1)


def test_store_is_fifo():
    env = Environment()
    store = Store(env)
    received = []

    def producer(env):
        for item in ("first", "second", "third"):
            yield store.put(item)

    def consumer(env):
        for _ in range(3):
            item = yield store.get()
            received.append(item)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert received == ["first", "second", "third"]


def test_store_get_blocks_until_item_arrives():
    env = Environment()
    store = Store(env)
    log = []

    def consumer(env):
        item = yield store.get()
        log.append((env.now, item))

    def producer(env):
        yield env.timeout(7.0)
        yield store.put("late")

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert log == [(7.0, "late")]


def test_store_capacity_blocks_putters():
    env = Environment()
    store = Store(env, capacity=1)
    log = []

    def producer(env):
        yield store.put(1)
        log.append(("put1", env.now))
        yield store.put(2)
        log.append(("put2", env.now))

    def consumer(env):
        yield env.timeout(5.0)
        yield store.get()

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert log == [("put1", 0.0), ("put2", 5.0)]


def test_store_filtered_get():
    env = Environment()
    store = Store(env)
    received = []

    def producer(env):
        for item in (1, 2, 3, 4):
            yield store.put(item)

    def consumer(env):
        even = yield store.get(lambda item: item % 2 == 0)
        received.append(even)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert received == [2]
    assert store.items == [1, 3, 4]
