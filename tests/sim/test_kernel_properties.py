"""Property-based invariants of the DES kernel and the cloud queue."""

from hypothesis import given, settings
from hypothesis import strategies as st

import numpy as np

from repro.sim import Environment
from repro.storage import CloudQueue, TransactionMeter


@given(delays=st.lists(st.floats(0.0, 1000.0), min_size=1, max_size=50))
@settings(max_examples=60, deadline=None)
def test_timeouts_fire_in_nondecreasing_time_order(delays):
    env = Environment()
    fired = []

    def waiter(env, delay):
        yield env.timeout(delay)
        fired.append(env.now)

    for delay in delays:
        env.process(waiter(env, delay))
    env.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
    assert env.now == max(delays)


@given(delays=st.lists(st.floats(0.1, 100.0), min_size=2, max_size=20))
@settings(max_examples=40, deadline=None)
def test_all_of_completes_at_max_any_of_at_min(delays):
    env = Environment()
    moments = {}

    def waiter(env):
        events = [env.timeout(delay) for delay in delays]
        yield env.any_of(list(events))
        moments["any"] = env.now
        yield env.all_of(list(events))
        moments["all"] = env.now

    env.process(waiter(env))
    env.run()
    assert moments["any"] == min(delays)
    assert moments["all"] == max(delays)


@given(payloads=st.lists(st.integers(0, 10_000), min_size=1, max_size=30),
       seed=st.integers(0, 1000))
@settings(max_examples=40, deadline=None)
def test_queue_is_fifo_under_any_interleaving(payloads, seed):
    """Whatever the producer/consumer timing, delivery order == send order."""
    env = Environment()
    meter = TransactionMeter(clock=lambda: env.now)
    rng = np.random.default_rng(seed)
    queue = CloudQueue(env, meter, rng, min_poll_interval=0.05,
                       max_poll_interval=2.0)
    pacing = np.random.default_rng(seed + 1)

    def producer(env):
        for payload in payloads:
            yield env.timeout(float(pacing.uniform(0, 3.0)))
            yield from queue.enqueue(payload)

    received = []

    def consumer(env):
        for _ in payloads:
            message = yield from queue.receive()
            received.append(message.value)
            yield from queue.delete(message)

    env.process(producer(env))
    consumer_process = env.process(consumer(env))
    env.run(until=consumer_process)
    assert received == payloads


@given(n=st.integers(1, 40), seed=st.integers(0, 100))
@settings(max_examples=30, deadline=None)
def test_queue_conserves_messages(n, seed):
    """No message is lost or duplicated when consumers ack promptly."""
    env = Environment()
    meter = TransactionMeter(clock=lambda: env.now)
    queue = CloudQueue(env, meter, np.random.default_rng(seed),
                       visibility_timeout=10_000.0)

    def producer(env):
        for index in range(n):
            yield from queue.enqueue(index)

    seen = set()

    def consumer(env):
        for _ in range(n):
            message = yield from queue.receive()
            assert message.value not in seen
            seen.add(message.value)
            yield from queue.delete(message)

    env.process(producer(env))
    consumer_process = env.process(consumer(env))
    env.run(until=consumer_process)
    assert seen == set(range(n))
    assert len(queue) == 0
