"""Unit tests for the DES kernel: clock, processes, conditions, interrupts."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Environment,
    Interrupt,
    SimulationError,
    join_all,
)


def test_clock_starts_at_zero():
    assert Environment().now == 0.0


def test_clock_can_start_elsewhere():
    assert Environment(initial_time=42.0).now == 42.0


def test_timeout_advances_clock():
    env = Environment()

    def once(env):
        yield env.timeout(5.0)

    env.process(once(env))
    env.run()
    assert env.now == 5.0


def test_process_rejects_non_generator():
    env = Environment()
    with pytest.raises(TypeError):
        env.process([env.timeout(1.0)])


def test_timeout_rejects_negative_delay():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1.0)


def test_process_return_value():
    env = Environment()

    def worker(env):
        yield env.timeout(1.0)
        return "done"

    result = env.run(until=env.process(worker(env)))
    assert result == "done"


def test_processes_interleave_in_time_order():
    env = Environment()
    log = []

    def ticker(env, name, period, count):
        for _ in range(count):
            yield env.timeout(period)
            log.append((env.now, name))

    env.process(ticker(env, "a", 2.0, 3))
    env.process(ticker(env, "b", 3.0, 2))
    env.run()
    # At t=6 both fire; "b" scheduled its timeout earlier (at t=3 vs t=4),
    # so FIFO-at-equal-times puts it first.
    assert log == [(2.0, "a"), (3.0, "b"), (4.0, "a"), (6.0, "b"), (6.0, "a")]


def test_run_until_time_stops_clock_exactly():
    env = Environment()

    def forever(env):
        while True:
            yield env.timeout(1.0)

    env.process(forever(env))
    env.run(until=3.5)
    assert env.now == 3.5


def test_run_until_past_time_raises():
    env = Environment(initial_time=10.0)
    with pytest.raises(SimulationError):
        env.run(until=5.0)


def test_event_succeed_wakes_waiter():
    env = Environment()
    gate = env.event()
    seen = []

    def waiter(env, gate):
        value = yield gate
        seen.append((env.now, value))

    def opener(env, gate):
        yield env.timeout(4.0)
        gate.succeed("open")

    env.process(waiter(env, gate))
    env.process(opener(env, gate))
    env.run()
    assert seen == [(4.0, "open")]


def test_event_cannot_trigger_twice():
    env = Environment()
    gate = env.event()
    gate.succeed(1)
    with pytest.raises(SimulationError):
        gate.succeed(2)


def test_event_fail_raises_in_waiter():
    env = Environment()
    gate = env.event()

    def waiter(env, gate):
        with pytest.raises(RuntimeError, match="boom"):
            yield gate
        return "handled"

    process = env.process(waiter(env, gate))
    gate.fail(RuntimeError("boom"))
    assert env.run(until=process) == "handled"


def test_unhandled_failure_crashes_run():
    env = Environment()

    def bad(env):
        yield env.timeout(1.0)
        raise ValueError("unhandled")

    env.process(bad(env))
    with pytest.raises(ValueError, match="unhandled"):
        env.run()


def test_yielding_non_event_is_an_error():
    env = Environment()

    def bad(env):
        yield 42

    env.process(bad(env))
    with pytest.raises(SimulationError, match="non-event"):
        env.run()


def test_all_of_waits_for_every_event():
    env = Environment()
    times = []

    def waiter(env):
        yield AllOf(env, [env.timeout(2.0), env.timeout(5.0), env.timeout(1.0)])
        times.append(env.now)

    env.process(waiter(env))
    env.run()
    assert times == [5.0]


def test_any_of_returns_at_first_event():
    env = Environment()
    times = []

    def waiter(env):
        yield AnyOf(env, [env.timeout(2.0), env.timeout(5.0)])
        times.append(env.now)

    env.process(waiter(env))
    env.run()
    assert times == [2.0]


def test_all_of_empty_list_is_immediate():
    env = Environment()
    done = []

    def waiter(env):
        yield AllOf(env, [])
        done.append(env.now)

    env.process(waiter(env))
    env.run()
    assert done == [0.0]


def test_condition_value_exposes_component_values():
    env = Environment()
    collected = {}

    def waiter(env):
        first = env.timeout(1.0, value="one")
        second = env.timeout(2.0, value="two")
        result = yield AllOf(env, [first, second])
        collected["values"] = result.values()

    env.process(waiter(env))
    env.run()
    assert collected["values"] == ["one", "two"]


def test_and_or_operators_compose_events():
    env = Environment()
    times = []

    def waiter(env):
        yield (env.timeout(1.0) | env.timeout(9.0))
        times.append(env.now)
        yield (env.timeout(1.0) & env.timeout(3.0))
        times.append(env.now)

    env.process(waiter(env))
    env.run()
    assert times == [1.0, 4.0]


def test_interrupt_raises_inside_process():
    env = Environment()
    outcomes = []

    def sleeper(env):
        try:
            yield env.timeout(100.0)
            outcomes.append("slept")
        except Interrupt as interrupt:
            outcomes.append(("interrupted", env.now, interrupt.cause))

    def interrupter(env, victim):
        yield env.timeout(3.0)
        victim.interrupt(cause="wake up")

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert outcomes == [("interrupted", 3.0, "wake up")]


def test_cannot_interrupt_finished_process():
    env = Environment()

    def quick(env):
        yield env.timeout(1.0)

    process = env.process(quick(env))
    env.run()
    with pytest.raises(SimulationError):
        process.interrupt()


def test_waiting_on_finished_process_returns_value_immediately():
    env = Environment()

    def quick(env):
        yield env.timeout(1.0)
        return 99

    def waiter(env, target):
        value = yield target
        return (env.now, value)

    target = env.process(quick(env))
    env.run(until=2.0)
    result = env.run(until=env.process(waiter(env, target)))
    assert result == (2.0, 99)


def test_simultaneous_events_fire_in_schedule_order():
    env = Environment()
    log = []

    def worker(env, name):
        yield env.timeout(1.0)
        log.append(name)

    for name in "abc":
        env.process(worker(env, name))
    env.run()
    assert log == ["a", "b", "c"]


def test_peek_reports_next_event_time():
    env = Environment()
    env.timeout(7.0)
    assert env.peek() == 7.0


def test_peek_empty_queue_is_infinite():
    assert Environment().peek() == float("inf")


def test_nested_process_composition():
    env = Environment()

    def child(env, delay, value):
        yield env.timeout(delay)
        return value * 2

    def parent(env):
        first = yield env.process(child(env, 1.0, 10))
        second = yield env.process(child(env, 2.0, first))
        return second

    assert env.run(until=env.process(parent(env))) == 40
    assert env.now == 3.0


# -- structured fan-out join -------------------------------------------------------


def test_join_all_returns_values_in_order():
    env = Environment()

    def worker(env, delay, value):
        yield env.timeout(delay)
        return value

    def joiner(env):
        processes = [env.process(worker(env, delay, value))
                     for delay, value in ((3.0, "a"), (1.0, "b"))]
        results = yield from join_all(env, processes)
        return results

    assert env.run(until=env.process(joiner(env))) == ["a", "b"]
    assert env.now == 3.0


def test_join_all_empty_list_is_immediate():
    env = Environment()

    def joiner(env):
        results = yield from join_all(env, [])
        return results

    assert env.run(until=env.process(joiner(env))) == []
    assert env.now == 0.0


def test_join_all_failure_cancels_surviving_siblings():
    env = Environment()
    log = []

    def failer(env):
        yield env.timeout(1.0)
        raise RuntimeError("branch failed")

    def slow(env):
        try:
            yield env.timeout(10.0)
            log.append("finished")
        except Interrupt:
            log.append("interrupted")

    def joiner(env):
        yield from join_all(
            env, [env.process(failer(env)), env.process(slow(env))])

    with pytest.raises(RuntimeError, match="branch failed"):
        env.run(until=env.process(joiner(env)))
    env.run()
    assert log == ["interrupted"]


def test_join_all_late_second_failure_cannot_escape_the_run():
    """Regression: a sibling failing *after* the join already failed has
    no waiter left, so without pre-defusing its failure would crash
    ``env.run`` long after the joiner reported the first error."""
    env = Environment()

    def failer(env, delay, message):
        yield env.timeout(delay)
        raise RuntimeError(message)

    def stubborn(env):
        # Swallows the cancellation — like a handler with a broad
        # ``except`` around cleanup — and then fails on its own.
        try:
            yield env.timeout(2.0)
        except Interrupt:
            pass
        yield env.timeout(2.0)
        raise RuntimeError("second")

    def joiner(env):
        yield from join_all(
            env, [env.process(failer(env, 1.0, "first")),
                  env.process(stubborn(env))])

    with pytest.raises(RuntimeError, match="first"):
        env.run(until=env.process(joiner(env)))
    env.run()   # the stubborn sibling's own failure must not escape


def test_join_all_simultaneous_failures_report_the_first():
    env = Environment()

    def failer(env, message):
        yield env.timeout(1.0)
        raise RuntimeError(message)

    def joiner(env):
        yield from join_all(
            env, [env.process(failer(env, "alpha")),
                  env.process(failer(env, "beta"))])

    with pytest.raises(RuntimeError, match="alpha"):
        env.run(until=env.process(joiner(env)))
    env.run()


def test_join_all_interrupted_joiner_cancels_children():
    env = Environment()
    log = []

    def slow(env, name):
        try:
            yield env.timeout(10.0)
            log.append((name, "finished"))
        except Interrupt:
            log.append((name, "interrupted"))

    def joiner(env):
        try:
            yield from join_all(
                env, [env.process(slow(env, "a")), env.process(slow(env, "b"))])
        except Interrupt:
            log.append(("joiner", "interrupted"))

    process = env.process(joiner(env))

    def canceller(env):
        yield env.timeout(1.0)
        process.interrupt(cause="shutdown")

    env.process(canceller(env))
    env.run()
    assert sorted(log) == [("a", "interrupted"), ("b", "interrupted"),
                           ("joiner", "interrupted")]
