"""Tests for named random streams: determinism and independence."""

from repro.sim import RandomStreams


def test_same_seed_same_stream_is_reproducible():
    first = RandomStreams(seed=11).get("cold_start").random(5)
    second = RandomStreams(seed=11).get("cold_start").random(5)
    assert (first == second).all()


def test_different_names_give_different_draws():
    streams = RandomStreams(seed=11)
    a = streams.get("alpha").random(5)
    b = streams.get("beta").random(5)
    assert not (a == b).all()


def test_different_seeds_give_different_draws():
    a = RandomStreams(seed=1).get("x").random(5)
    b = RandomStreams(seed=2).get("x").random(5)
    assert not (a == b).all()


def test_stream_is_cached_not_recreated():
    streams = RandomStreams(seed=3)
    generator = streams.get("x")
    generator.random()
    # Same object returned: the stream keeps advancing, not restarting.
    assert streams.get("x") is generator


def test_adding_streams_does_not_perturb_existing_ones():
    solo = RandomStreams(seed=5)
    value_solo = solo.get("main").random()

    crowded = RandomStreams(seed=5)
    crowded.get("other1").random()
    crowded.get("other2").random()
    value_crowded = crowded.get("main").random()
    assert value_solo == value_crowded


def test_fork_is_deterministic_and_distinct():
    base = RandomStreams(seed=9)
    fork_a = base.fork("iter-0")
    fork_b = RandomStreams(seed=9).fork("iter-0")
    fork_c = base.fork("iter-1")
    assert fork_a.get("x").random() == fork_b.get("x").random()
    assert fork_a.seed != fork_c.seed
