"""Tests for latency distributions, including property-based invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import (
    Constant,
    Empirical,
    Exponential,
    LogNormal,
    Mixture,
    Normal,
    Pareto,
    Shifted,
    Uniform,
)


@pytest.fixture
def rng():
    return np.random.default_rng(42)


def test_constant_always_returns_value(rng):
    dist = Constant(3.5)
    assert dist.sample(rng) == 3.5
    assert (dist.sample_many(rng, 10) == 3.5).all()
    assert dist.mean() == 3.5


def test_uniform_bounds_and_mean(rng):
    dist = Uniform(2.0, 4.0)
    draws = dist.sample_many(rng, 2000)
    assert draws.min() >= 2.0 and draws.max() <= 4.0
    assert abs(draws.mean() - 3.0) < 0.1
    assert dist.mean() == 3.0


def test_uniform_rejects_inverted_bounds():
    with pytest.raises(ValueError):
        Uniform(4.0, 2.0)


def test_exponential_mean(rng):
    dist = Exponential(mean=5.0)
    draws = dist.sample_many(rng, 5000)
    assert abs(draws.mean() - 5.0) < 0.3
    assert dist.mean() == 5.0


def test_exponential_rejects_nonpositive_mean():
    with pytest.raises(ValueError):
        Exponential(0.0)


def test_normal_truncates_at_zero(rng):
    dist = Normal(mu=0.1, sigma=2.0)
    draws = dist.sample_many(rng, 1000)
    assert (draws >= 0).all()


def test_lognormal_median_is_linear_space(rng):
    dist = LogNormal(median=40.0, sigma=1.0)
    draws = dist.sample_many(rng, 20000)
    assert abs(np.median(draws) - 40.0) < 2.0


def test_lognormal_percentile_analytic():
    dist = LogNormal(median=40.0, sigma=1.0)
    assert abs(dist.percentile(50) - 40.0) < 1e-9
    assert dist.percentile(95) > dist.percentile(50)


def test_pareto_heavy_tail(rng):
    dist = Pareto(xm=1.0, alpha=1.5)
    draws = dist.sample_many(rng, 10000)
    assert (draws >= 1.0).all()
    # Heavy tail: the max should dwarf the median.
    assert draws.max() > 10 * np.median(draws)


def test_pareto_infinite_mean_for_alpha_below_one():
    assert Pareto(xm=1.0, alpha=0.9).mean() == float("inf")


def test_shifted_adds_offset(rng):
    dist = Shifted(Constant(2.0), offset=3.0)
    assert dist.sample(rng) == 5.0
    assert dist.mean() == 5.0


def test_mixture_mean_is_weighted(rng):
    dist = Mixture([(1.0, Constant(0.0)), (1.0, Constant(10.0))])
    assert dist.mean() == 5.0
    draws = dist.sample_many(rng, 4000)
    assert abs(draws.mean() - 5.0) < 0.5


def test_mixture_normalises_weights():
    dist = Mixture([(2.0, Constant(1.0)), (6.0, Constant(2.0))])
    assert abs(dist.mean() - 1.75) < 1e-12


def test_mixture_rejects_empty_and_zero_weight():
    with pytest.raises(ValueError):
        Mixture([])
    with pytest.raises(ValueError):
        Mixture([(0.0, Constant(1.0))])


def test_empirical_resamples_observed_values(rng):
    dist = Empirical([1.0, 2.0, 3.0])
    draws = set(dist.sample_many(rng, 200).tolist())
    assert draws <= {1.0, 2.0, 3.0}
    assert dist.mean() == 2.0


def test_empirical_rejects_empty():
    with pytest.raises(ValueError):
        Empirical([])


# -- property-based invariants ------------------------------------------------

@given(median=st.floats(0.001, 1000), sigma=st.floats(0.0, 3.0))
@settings(max_examples=50, deadline=None)
def test_lognormal_samples_are_positive(median, sigma):
    dist = LogNormal(median=median, sigma=sigma)
    rng = np.random.default_rng(0)
    assert (dist.sample_many(rng, 50) > 0).all()


@given(low=st.floats(0, 100), width=st.floats(0, 100))
@settings(max_examples=50, deadline=None)
def test_uniform_samples_stay_in_bounds(low, width):
    dist = Uniform(low, low + width)
    rng = np.random.default_rng(0)
    draws = dist.sample_many(rng, 50)
    assert (draws >= low).all() and (draws <= low + width).all()


@given(st.lists(st.tuples(st.floats(0.1, 10), st.floats(0, 50)), min_size=1,
                max_size=5))
@settings(max_examples=50, deadline=None)
def test_mixture_samples_are_nonnegative(components):
    dist = Mixture([(w, Constant(v)) for w, v in components])
    rng = np.random.default_rng(0)
    assert (dist.sample_many(rng, 20) >= 0).all()
