"""Regression tests for the kernel's dispatch fast paths.

The optimized kernel routes zero-delay events through deques instead of
the heap and recycles Timeout instances through a free list.  These
tests pin the observable contracts those fast paths must preserve:
FIFO order among same-timestamp events (whether they live on the heap,
the ready deque, or both) and recycled Timeouts that carry no state over
from their previous life.
"""

from repro.sim import Environment


def test_same_timestamp_heap_events_fire_in_schedule_order():
    env = Environment()
    log = []

    def worker(env, name):
        yield env.timeout(1.0)
        log.append(name)

    for name in "abcde":
        env.process(worker(env, name))
    env.run()
    assert log == list("abcde")


def test_heap_and_ready_deque_ties_respect_schedule_order():
    """A delayed timeout (heap) scheduled before an immediate event
    (ready deque) fires first when both come due at the same instant."""
    env = Environment()
    log = []

    def early(env):
        yield env.timeout(1.0)          # heap, lower sequence
        log.append("early")

    def late(env):
        yield env.timeout(1.0)          # heap
        # Now at t=1.0: create an already-triggered event (ready deque)
        # and wait on it.  The remaining heap entry from ``tail`` also
        # fires at t=1.0 but was scheduled earlier, so it must win.
        gate = env.event()
        gate.succeed(None)
        yield gate
        log.append("late")

    def tail(env):
        yield env.timeout(1.0)          # heap, scheduled after early
        log.append("tail")

    env.process(early(env))
    env.process(late(env))
    env.process(tail(env))
    env.run()
    assert log == ["early", "tail", "late"]


def test_process_creation_preempts_pending_same_time_events():
    """Process initialization is URGENT: a process spawned from a
    callback runs before NORMAL events already queued at the same time."""
    env = Environment()
    log = []

    def child(env):
        log.append("child")
        yield env.timeout(0.0)

    def parent(env):
        yield env.timeout(1.0)
        env.timeout(0.0)                # NORMAL, queued first
        env.process(child(env))         # URGENT, queued second — runs first
        yield env.timeout(0.5)
        log.append("parent")

    env.process(parent(env))
    env.run()
    assert log == ["child", "parent"]


def test_timeouts_are_recycled_through_the_pool():
    env = Environment()

    def worker(env):
        yield env.timeout(1.0, value="stale")
        yield env.timeout(1.0)

    env.process(worker(env))
    env.run()
    assert env._timeout_pool, "dispatched timeout should have been pooled"


def test_recycled_timeout_carries_no_stale_state():
    env = Environment()

    def worker(env):
        yield env.timeout(1.0, value="stale")
        yield env.timeout(1.0)

    env.process(worker(env))
    env.run()
    pooled = env._timeout_pool[-1]
    fresh = env.timeout(2.0)
    assert fresh is pooled              # identity reuse, not a new object
    assert fresh._value is None         # no stale value
    assert fresh.callbacks == []        # no stale callback
    assert fresh.delay == 2.0
    assert fresh._ok is True and fresh._defused is False


def test_recycled_timeout_delivers_fresh_value():
    env = Environment()
    seen = []

    def worker(env):
        first = yield env.timeout(1.0, value="one")
        second = yield env.timeout(1.0, value="two")
        seen.append((first, second))

    env.process(worker(env))
    env.run()
    assert seen == [("one", "two")]


def test_pool_is_bounded():
    from repro.sim.kernel import _TIMEOUT_POOL_LIMIT

    env = Environment()

    def worker(env):
        for _ in range(_TIMEOUT_POOL_LIMIT + 200):
            yield env.timeout(1.0)

    env.process(worker(env))
    env.run()
    assert len(env._timeout_pool) <= _TIMEOUT_POOL_LIMIT
