"""Tests for metric timeseries aggregation."""

import pytest

from repro.sim import Environment
from repro.telemetry import SpanKind, Telemetry
from repro.telemetry.metrics import (
    MetricSeries,
    MetricsRegistry,
    series_from_spans,
)


@pytest.fixture
def clock():
    state = {"now": 0.0}

    def now():
        return state["now"]

    now.state = state
    return now


def test_record_uses_clock(clock):
    series = MetricSeries("lat", clock)
    series.record(1.0)
    clock.state["now"] = 30.0
    series.record(2.0)
    assert series.samples == [(0.0, 1.0), (30.0, 2.0)]
    assert len(series) == 2


def test_aggregate_periods(clock):
    series = MetricSeries("lat", clock)
    for time, value in [(0.0, 1.0), (10.0, 3.0), (65.0, 5.0)]:
        series.record_at(time, value)
    stats = series.aggregate(period_s=60.0)
    assert len(stats) == 2
    first, second = stats
    assert first.count == 2 and first.total == 4.0
    assert first.minimum == 1.0 and first.maximum == 3.0
    assert first.average == 2.0
    assert second.count == 1 and second.total == 5.0


def test_aggregate_includes_empty_gap_periods(clock):
    series = MetricSeries("lat", clock)
    series.record_at(0.0, 1.0)
    series.record_at(150.0, 2.0)
    stats = series.aggregate(period_s=60.0)
    assert len(stats) == 3
    assert stats[1].count == 0
    assert stats[1].average == 0.0


def test_aggregate_window_filter(clock):
    series = MetricSeries("lat", clock)
    for time in (0.0, 100.0, 200.0):
        series.record_at(time, 1.0)
    stats = series.aggregate(period_s=60.0, since=90.0, until=190.0)
    assert sum(stat.count for stat in stats) == 1


def test_aggregate_empty_and_validation(clock):
    series = MetricSeries("lat", clock)
    assert series.aggregate(60.0) == []
    with pytest.raises(ValueError):
        series.aggregate(0.0)


def test_percentile_per_period(clock):
    series = MetricSeries("lat", clock)
    for index in range(100):
        series.record_at(5.0, float(index))
    points = series.percentile_per_period(period_s=60.0, q=99)
    assert len(points) == 1
    assert points[0][1] == pytest.approx(98.01)
    with pytest.raises(ValueError):
        series.percentile_per_period(60.0, 150)


def test_registry_creates_and_caches(clock):
    registry = MetricsRegistry(clock)
    series = registry.series("invocations")
    assert registry.series("invocations") is series
    registry.series("errors")
    assert registry.names() == ["errors", "invocations"]


def test_series_from_spans(clock):
    env = Environment()
    telemetry = Telemetry(clock=lambda: env.now)
    telemetry.record("w", SpanKind.SCHEDULING, 0.0, 4.0)
    telemetry.record("w", SpanKind.SCHEDULING, 70.0, 72.0)
    telemetry.record("x", SpanKind.EXECUTION, 0.0, 1.0)   # other kind
    series = series_from_spans(telemetry, SpanKind.SCHEDULING, clock)
    assert len(series) == 2
    stats = series.aggregate(60.0)
    assert stats[0].maximum == 4.0
    assert stats[1].maximum == 2.0
