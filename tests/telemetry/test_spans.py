"""Tests for the telemetry span collector and timeline."""

import pytest

from repro.sim import Environment
from repro.telemetry import SpanKind, Telemetry, Timeline


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def telemetry(env):
    return Telemetry(clock=lambda: env.now)


def advance(env, seconds):
    def sleeper(env):
        yield env.timeout(seconds)
    env.run(until=env.process(sleeper(env)))


def test_span_lifecycle(env, telemetry):
    span = telemetry.start_span("invoke", SpanKind.EXECUTION, memory=512)
    assert not span.closed
    with pytest.raises(ValueError):
        span.duration
    advance(env, 3.0)
    telemetry.end_span(span, status="ok")
    assert span.closed
    assert span.duration == 3.0
    assert span.attributes == {"memory": 512, "status": "ok"}


def test_span_cannot_close_twice(env, telemetry):
    span = telemetry.start_span("x", SpanKind.EXECUTION)
    telemetry.end_span(span)
    with pytest.raises(ValueError, match="already closed"):
        telemetry.end_span(span)


def test_record_completed_interval(telemetry):
    span = telemetry.record("storage", SpanKind.STORAGE, start=1.0, end=2.5)
    assert span.duration == 1.5


def test_record_rejects_inverted_interval(telemetry):
    with pytest.raises(ValueError, match="before"):
        telemetry.record("x", SpanKind.STORAGE, start=2.0, end=1.0)


def test_find_filters_by_kind_name_attributes(env, telemetry):
    a = telemetry.start_span("f", SpanKind.EXECUTION, cold=True)
    b = telemetry.start_span("f", SpanKind.EXECUTION, cold=False)
    c = telemetry.start_span("g", SpanKind.COLD_START)
    for span in (a, b, c):
        telemetry.end_span(span)
    assert len(telemetry.find(kind=SpanKind.EXECUTION)) == 2
    assert len(telemetry.find(name="f", cold=True)) == 1
    assert len(telemetry.find(kind=SpanKind.COLD_START)) == 1


def test_find_excludes_open_spans(telemetry):
    telemetry.start_span("open", SpanKind.EXECUTION)
    assert telemetry.find(name="open") == []


def test_durations_and_total_time(env, telemetry):
    first = telemetry.start_span("q", SpanKind.QUEUE_WAIT)
    advance(env, 2.0)
    telemetry.end_span(first)
    second = telemetry.start_span("q", SpanKind.QUEUE_WAIT)
    advance(env, 3.0)
    telemetry.end_span(second)
    assert telemetry.durations(kind=SpanKind.QUEUE_WAIT) == [2.0, 3.0]
    assert telemetry.total_time(kind=SpanKind.QUEUE_WAIT) == 5.0


def test_parent_child_links(env, telemetry):
    parent = telemetry.start_span("workflow", SpanKind.WORKFLOW)
    child = telemetry.start_span("task", SpanKind.EXECUTION, parent=parent)
    telemetry.end_span(child)
    telemetry.end_span(parent)
    assert telemetry.children_of(parent) == [child]
    assert child.parent_id == parent.span_id


def test_merge_combines_and_sorts(env, telemetry):
    other = Telemetry(clock=lambda: env.now)
    late = telemetry.record("late", SpanKind.EXECUTION, 5.0, 6.0)
    early = other.record("early", SpanKind.EXECUTION, 1.0, 2.0)
    merged = telemetry.merge([other])
    assert [span.name for span in merged.spans] == ["early", "late"]
    assert len(telemetry) == 1  # originals untouched


def test_reset_clears(telemetry):
    telemetry.record("x", SpanKind.EXECUTION, 0.0, 1.0)
    telemetry.reset()
    assert len(telemetry) == 0


# -- timeline ------------------------------------------------------------------

def test_timeline_logs_with_clock(env):
    timeline = Timeline(clock=lambda: env.now)
    timeline.log("deploy", "registered function", name="f")
    advance(env, 10.0)
    timeline.log("invoke", "started")
    assert len(timeline) == 2
    assert timeline.events[1].time == 10.0


def test_timeline_filter_by_category_and_window(env):
    timeline = Timeline(clock=lambda: env.now)
    timeline.log("a", "first")
    advance(env, 5.0)
    timeline.log("b", "second")
    advance(env, 5.0)
    timeline.log("a", "third")
    assert len(timeline.filter(category="a")) == 2
    assert len(timeline.filter(since=4.0, until=9.0)) == 1
    assert timeline.last(category="a").message == "third"
    assert timeline.last(category="zzz") is None
