"""Tests for Task-state TimeoutSeconds and ResultSelector."""

import pytest

from repro.platforms.base import FunctionSpec


def slow(ctx, event):
    yield from ctx.busy(60.0)
    return {"answer": event, "noise": "lots"}


def quick(ctx, event):
    yield from ctx.busy(0.5)
    return {"answer": event, "noise": "lots", "nested": {"deep": 7}}


@pytest.fixture
def deployed(lambdas):
    lambdas.register(FunctionSpec(name="slow", handler=slow,
                                  memory_mb=1536, timeout_s=600.0))
    lambdas.register(FunctionSpec(name="quick", handler=quick,
                                  memory_mb=1536, timeout_s=600.0))
    return lambdas


def test_timeout_seconds_raises_states_timeout(deployed, stepfunctions, run):
    stepfunctions.create_state_machine("tight", {
        "StartAt": "T",
        "States": {"T": {"Type": "Task", "Resource": "slow",
                         "TimeoutSeconds": 5, "End": True}},
    })
    record = run(stepfunctions.start_execution("tight", 1))
    assert record.status == "FAILED"
    assert record.error == "States.Timeout"
    # The state gave up at its own deadline, not the Lambda's.
    assert record.duration < 20.0


def test_timeout_seconds_catchable(deployed, stepfunctions, run):
    stepfunctions.create_state_machine("tight-caught", {
        "StartAt": "T",
        "States": {
            "T": {"Type": "Task", "Resource": "slow", "TimeoutSeconds": 5,
                  "Catch": [{"ErrorEquals": ["States.Timeout"],
                             "Next": "Fallback"}],
                  "End": True},
            "Fallback": {"Type": "Pass", "Result": "fallback",
                         "End": True},
        },
    })
    record = run(stepfunctions.start_execution("tight-caught", 1))
    assert record.status == "SUCCEEDED"
    assert record.output == "fallback"


def test_generous_timeout_does_not_fire(deployed, stepfunctions, run):
    stepfunctions.create_state_machine("loose", {
        "StartAt": "T",
        "States": {"T": {"Type": "Task", "Resource": "quick",
                         "TimeoutSeconds": 30, "End": True}},
    })
    record = run(stepfunctions.start_execution("loose", 5))
    assert record.status == "SUCCEEDED"
    assert record.output["answer"] == 5


def test_result_selector_projects_output(deployed, stepfunctions, run):
    stepfunctions.create_state_machine("selected", {
        "StartAt": "T",
        "States": {
            "T": {"Type": "Task", "Resource": "quick",
                  "ResultSelector": {"only.$": "$.answer",
                                     "deep.$": "$.nested.deep",
                                     "tag": "fixed"},
                  "End": True},
        },
    })
    record = run(stepfunctions.start_execution("selected", 9))
    assert record.output == {"only": 9, "deep": 7, "tag": "fixed"}


def test_result_selector_composes_with_result_path(deployed, stepfunctions,
                                                   run):
    stepfunctions.create_state_machine("composed", {
        "StartAt": "T",
        "States": {
            "T": {"Type": "Task", "Resource": "quick",
                  "ResultSelector": {"only.$": "$.answer"},
                  "ResultPath": "$.result",
                  "End": True},
        },
    })
    record = run(stepfunctions.start_execution("composed", {"keep": 1}))
    assert record.output == {"keep": 1, "result": {"only": {"keep": 1}}}
