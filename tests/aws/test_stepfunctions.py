"""Integration tests for the Step Functions executor."""

import pytest

from repro.platforms.base import FunctionSpec
from repro.sim import Constant
from repro.storage.payload import KB


def register(lambdas, name, handler, **kwargs):
    lambdas.register(FunctionSpec(name=name, handler=handler, **kwargs))


def adder(ctx, event):
    yield from ctx.busy(0.5)
    return event["a"] + event["b"]


def doubler(ctx, event):
    yield from ctx.busy(0.2)
    return event * 2


def failing(ctx, event):
    yield from ctx.busy(0.1)
    raise RuntimeError("task blew up")


def test_single_task_machine(lambdas, stepfunctions, run):
    register(lambdas, "add", adder)
    stepfunctions.create_state_machine("calc", {
        "StartAt": "Add",
        "States": {"Add": {"Type": "Task", "Resource": "add", "End": True}},
    })
    record = run(stepfunctions.start_execution("calc", {"a": 2, "b": 3}))
    assert record.status == "SUCCEEDED"
    assert record.output == 5
    assert record.transitions == 1


def test_create_rejects_undeployed_resource(lambdas, stepfunctions):
    with pytest.raises(KeyError, match="no such Lambda"):
        stepfunctions.create_state_machine("bad", {
            "StartAt": "T",
            "States": {"T": {"Type": "Task", "Resource": "ghost",
                             "End": True}},
        })


def test_duplicate_machine_name(lambdas, stepfunctions):
    definition = {"StartAt": "S", "States": {"S": {"Type": "Succeed"}}}
    stepfunctions.create_state_machine("m", definition)
    with pytest.raises(ValueError, match="already exists"):
        stepfunctions.create_state_machine("m", definition)


def test_task_chain_threads_data(lambdas, stepfunctions, run):
    register(lambdas, "double", doubler)
    stepfunctions.create_state_machine("chain", {
        "StartAt": "First",
        "States": {
            "First": {"Type": "Task", "Resource": "double", "Next": "Second"},
            "Second": {"Type": "Task", "Resource": "double", "End": True},
        },
    })
    record = run(stepfunctions.start_execution("chain", 3))
    assert record.output == 12
    assert record.transitions == 2
    assert record.states_entered == ["First", "Second"]


def test_input_result_output_paths(lambdas, stepfunctions, run):
    register(lambdas, "add", adder)
    stepfunctions.create_state_machine("paths", {
        "StartAt": "Add",
        "States": {
            "Add": {
                "Type": "Task", "Resource": "add",
                "InputPath": "$.numbers",
                "ResultPath": "$.sum",
                "End": True,
            },
        },
    })
    record = run(stepfunctions.start_execution(
        "paths", {"numbers": {"a": 1, "b": 2}, "keep": "me"}))
    assert record.output == {"numbers": {"a": 1, "b": 2},
                             "keep": "me", "sum": 3}


def test_parameters_template(lambdas, stepfunctions, run):
    register(lambdas, "add", adder)
    stepfunctions.create_state_machine("params", {
        "StartAt": "Add",
        "States": {
            "Add": {
                "Type": "Task", "Resource": "add",
                "Parameters": {"a.$": "$.left", "b": 10},
                "End": True,
            },
        },
    })
    record = run(stepfunctions.start_execution("params", {"left": 5}))
    assert record.output == 15


def test_pass_state_injects_result(lambdas, stepfunctions, run):
    stepfunctions.create_state_machine("passer", {
        "StartAt": "Inject",
        "States": {
            "Inject": {"Type": "Pass", "Result": {"v": 1},
                       "ResultPath": "$.injected", "Next": "Done"},
            "Done": {"Type": "Succeed"},
        },
    })
    record = run(stepfunctions.start_execution("passer", {"x": 0}))
    assert record.output == {"x": 0, "injected": {"v": 1}}
    assert record.transitions == 2


def test_wait_state_delays(env, lambdas, stepfunctions, run):
    stepfunctions.create_state_machine("waiter", {
        "StartAt": "W",
        "States": {
            "W": {"Type": "Wait", "Seconds": 30, "Next": "Done"},
            "Done": {"Type": "Succeed"},
        },
    })
    record = run(stepfunctions.start_execution("waiter", {}))
    assert record.duration >= 30.0


def test_choice_state_routes(lambdas, stepfunctions, run):
    stepfunctions.create_state_machine("chooser", {
        "StartAt": "C",
        "States": {
            "C": {"Type": "Choice",
                  "Choices": [
                      {"Variable": "$.size", "NumericGreaterThan": 100,
                       "Next": "Big"}],
                  "Default": "Small"},
            "Big": {"Type": "Pass", "Result": "big", "End": True},
            "Small": {"Type": "Pass", "Result": "small", "End": True},
        },
    })
    big = run(stepfunctions.start_execution("chooser", {"size": 500}))
    small = run(stepfunctions.start_execution("chooser", {"size": 5}))
    assert big.output == "big"
    assert small.output == "small"


def test_fail_state_fails_execution(lambdas, stepfunctions, run):
    stepfunctions.create_state_machine("failer", {
        "StartAt": "F",
        "States": {"F": {"Type": "Fail", "Error": "Custom.Error",
                         "Cause": "nope"}},
    })
    record = run(stepfunctions.start_execution("failer", {}))
    assert record.status == "FAILED"
    assert record.error == "Custom.Error"


def test_task_failure_without_catch_fails_execution(lambdas, stepfunctions,
                                                    run):
    register(lambdas, "boom", failing)
    stepfunctions.create_state_machine("fragile", {
        "StartAt": "T",
        "States": {"T": {"Type": "Task", "Resource": "boom", "End": True}},
    })
    record = run(stepfunctions.start_execution("fragile", {}))
    assert record.status == "FAILED"
    assert record.error == "States.TaskFailed"


def test_catch_routes_to_recovery_state(lambdas, stepfunctions, run):
    register(lambdas, "boom", failing)
    stepfunctions.create_state_machine("caught", {
        "StartAt": "T",
        "States": {
            "T": {"Type": "Task", "Resource": "boom",
                  "Catch": [{"ErrorEquals": ["States.ALL"],
                             "Next": "Recover", "ResultPath": "$.error"}],
                  "End": True},
            "Recover": {"Type": "Pass", "Result": "recovered", "End": True},
        },
    })
    record = run(stepfunctions.start_execution("caught", {}))
    assert record.status == "SUCCEEDED"
    assert record.output == "recovered"


def test_retry_then_succeed(lambdas, stepfunctions, run):
    attempts = []

    def flaky(ctx, event):
        yield from ctx.busy(0.1)
        attempts.append(1)
        if len(attempts) < 3:
            raise RuntimeError("transient")
        return "finally"

    register(lambdas, "flaky", flaky)
    stepfunctions.create_state_machine("retrier", {
        "StartAt": "T",
        "States": {
            "T": {"Type": "Task", "Resource": "flaky",
                  "Retry": [{"ErrorEquals": ["States.ALL"],
                             "IntervalSeconds": 1, "MaxAttempts": 3}],
                  "End": True},
        },
    })
    record = run(stepfunctions.start_execution("retrier", {}))
    assert record.status == "SUCCEEDED"
    assert record.output == "finally"
    assert len(attempts) == 3
    # Initial entry + two retry re-entries.
    assert record.transitions == 3


def test_retry_exhaustion_fails(lambdas, stepfunctions, run):
    register(lambdas, "boom", failing)
    stepfunctions.create_state_machine("exhausted", {
        "StartAt": "T",
        "States": {
            "T": {"Type": "Task", "Resource": "boom",
                  "Retry": [{"ErrorEquals": ["States.ALL"],
                             "IntervalSeconds": 0.1, "MaxAttempts": 2}],
                  "End": True},
        },
    })
    record = run(stepfunctions.start_execution("exhausted", {}))
    assert record.status == "FAILED"


def test_parallel_branches_run_concurrently(env, lambdas, stepfunctions, run):
    def slow(ctx, event):
        yield from ctx.busy(10.0)
        return event

    lambdas.calibration.execution_jitter = Constant(1.0)
    register(lambdas, "slow", slow)
    branch = {
        "StartAt": "S",
        "States": {"S": {"Type": "Task", "Resource": "slow", "End": True}},
    }
    stepfunctions.create_state_machine("par", {
        "StartAt": "P",
        "States": {
            "P": {"Type": "Parallel", "Branches": [branch, branch, branch],
                  "End": True},
        },
    })
    record = run(stepfunctions.start_execution("par", "x"))
    assert record.output == ["x", "x", "x"]
    # 3 branches of 10 s overlap: well under the 30 s serial time.
    assert record.duration < 20.0


def test_map_state_fans_out(lambdas, stepfunctions, run):
    register(lambdas, "double", doubler)
    stepfunctions.create_state_machine("mapper", {
        "StartAt": "M",
        "States": {
            "M": {"Type": "Map", "ItemsPath": "$.items",
                  "Iterator": {
                      "StartAt": "D",
                      "States": {"D": {"Type": "Task", "Resource": "double",
                                       "End": True}},
                  },
                  "End": True},
        },
    })
    record = run(stepfunctions.start_execution(
        "mapper", {"items": [1, 2, 3, 4]}))
    assert record.output == [2, 4, 6, 8]
    # 1 Map entry + 4 iterator Task entries.
    assert record.transitions == 5


def test_map_max_concurrency_limits_parallelism(env, lambdas, stepfunctions,
                                                run):
    def slow(ctx, event):
        yield from ctx.busy(10.0)
        return event

    lambdas.calibration.execution_jitter = Constant(1.0)
    register(lambdas, "slow", slow)
    stepfunctions.create_state_machine("bounded", {
        "StartAt": "M",
        "States": {
            "M": {"Type": "Map", "ItemsPath": "$.items", "MaxConcurrency": 2,
                  "Iterator": {
                      "StartAt": "S",
                      "States": {"S": {"Type": "Task", "Resource": "slow",
                                       "End": True}},
                  },
                  "End": True},
        },
    })
    record = run(stepfunctions.start_execution(
        "bounded", {"items": [1, 2, 3, 4]}))
    # 4 items at concurrency 2 → at least two sequential waves of 10 s.
    assert record.duration >= 20.0


def test_payload_limit_fails_execution(lambdas, stepfunctions, run):
    def bloater(ctx, event):
        yield from ctx.busy(0.1)
        return "x" * (300 * KB)

    register(lambdas, "bloater", bloater)
    stepfunctions.create_state_machine("bloated", {
        "StartAt": "T",
        "States": {"T": {"Type": "Task", "Resource": "bloater",
                         "End": True}},
    })
    record = run(stepfunctions.start_execution("bloated", {}))
    assert record.status == "FAILED"
    assert record.error == "States.DataLimitExceeded"


def test_transitions_metered_for_pricing(lambdas, stepfunctions, meter, run):
    register(lambdas, "double", doubler)
    stepfunctions.create_state_machine("chain", {
        "StartAt": "A",
        "States": {
            "A": {"Type": "Task", "Resource": "double", "Next": "B"},
            "B": {"Type": "Task", "Resource": "double", "End": True},
        },
    })
    run(stepfunctions.start_execution("chain", 1))
    assert meter.count(service="stepfunctions", operation="transition") == 2


def test_cold_overhead_only_after_idle(env, lambdas, stepfunctions, telemetry,
                                       run):
    register(lambdas, "double", doubler)
    stepfunctions.create_state_machine("m", {
        "StartAt": "T",
        "States": {"T": {"Type": "Task", "Resource": "double", "End": True}},
    })
    run(stepfunctions.start_execution("m", 1))
    run(stepfunctions.start_execution("m", 1))
    cold_spans = telemetry.find(kind="cold_start", name="m",
                                component="stepfunctions")
    assert len(cold_spans) == 1  # only the first execution paid it


def test_workflow_span_has_execution_id(lambdas, stepfunctions, telemetry,
                                        run):
    register(lambdas, "double", doubler)
    stepfunctions.create_state_machine("m", {
        "StartAt": "T",
        "States": {"T": {"Type": "Task", "Resource": "double", "End": True}},
    })
    record = run(stepfunctions.start_execution("m", 1))
    spans = telemetry.find(kind="workflow", name="m")
    assert spans[0].attributes["execution_id"] == record.execution_id


def test_parallel_failure_cancels_surviving_branches(env, lambdas,
                                                     stepfunctions, run):
    """Regression: a branch failing after the Parallel state already
    failed had no waiter left, so its error escaped ``env.run`` long
    after the execution record came back FAILED."""
    log = []

    def fail_slow(ctx, event):
        yield from ctx.busy(30.0)
        log.append("survivor ran to completion")
        raise RuntimeError("late failure")

    register(lambdas, "fail-fast", failing)
    register(lambdas, "fail-slow", fail_slow, timeout_s=60.0)
    branch = lambda name, resource: {
        "StartAt": name,
        "States": {name: {"Type": "Task", "Resource": resource,
                          "End": True}},
    }
    stepfunctions.create_state_machine("m", {
        "StartAt": "P",
        "States": {"P": {"Type": "Parallel",
                         "Branches": [branch("A", "fail-fast"),
                                      branch("B", "fail-slow")],
                         "End": True}},
    })
    record = run(stepfunctions.start_execution("m", {}))
    assert record.status == "FAILED"
    # Draining the simulation must surface nothing: the surviving branch
    # was cancelled with its parent, not left to fail on its own.
    env.run()
    assert log == []


def test_map_failure_cancels_surviving_iterations(env, lambdas,
                                                  stepfunctions, run):
    log = []

    def fail_by_item(ctx, event):
        if event == 0:
            yield from ctx.busy(0.1)
            raise RuntimeError("item 0 blew up")
        yield from ctx.busy(30.0)
        log.append("survivor ran to completion")
        raise RuntimeError("late failure")

    register(lambdas, "fail-by-item", fail_by_item, timeout_s=60.0)
    stepfunctions.create_state_machine("m", {
        "StartAt": "M",
        "States": {"M": {"Type": "Map", "ItemsPath": "$.items",
                         "Iterator": {
                             "StartAt": "S",
                             "States": {"S": {"Type": "Task",
                                              "Resource": "fail-by-item",
                                              "End": True}},
                         },
                         "End": True}},
    })
    record = run(stepfunctions.start_execution("m", {"items": [0, 1]}))
    assert record.status == "FAILED"
    env.run()
    assert log == []
