"""Tests for Express workflows: pricing model, duration cap, semantics."""

import pytest

from repro.aws.stepfunctions import (
    EXPRESS,
    EXPRESS_DURATION_LIMIT_S,
    STANDARD,
)
from repro.platforms.base import FunctionSpec


def quick(ctx, event):
    yield from ctx.busy(0.5)
    return event


def slow(ctx, event):
    yield from ctx.busy(400.0)
    return event


CHAIN = {
    "StartAt": "A",
    "States": {
        "A": {"Type": "Task", "Resource": "quick", "Next": "B"},
        "B": {"Type": "Task", "Resource": "quick", "End": True},
    },
}


@pytest.fixture
def deployed(lambdas, stepfunctions):
    lambdas.register(FunctionSpec(name="quick", handler=quick,
                                  memory_mb=512, timeout_s=60.0))
    lambdas.register(FunctionSpec(name="slow", handler=slow,
                                  memory_mb=1536, timeout_s=600.0))
    return stepfunctions


def test_default_workflow_type_is_standard(deployed):
    deployed.create_state_machine("m", CHAIN)
    assert deployed.workflow_type_of("m") == STANDARD


def test_invalid_workflow_type_rejected(deployed):
    with pytest.raises(ValueError, match="workflow_type"):
        deployed.create_state_machine("m", CHAIN, workflow_type="warp")


def test_express_execution_succeeds_and_meters_duration(deployed, meter,
                                                        run):
    deployed.create_state_machine("m", CHAIN, workflow_type=EXPRESS)
    record = run(deployed.start_execution("m", 1))
    assert record.status == "SUCCEEDED"
    assert record.workflow_type == EXPRESS
    # No per-transition charges...
    assert meter.count(service="stepfunctions", operation="transition") == 0
    # ... but one request plus a duration record.
    assert meter.count(service="stepfunctions-express",
                       operation="request") == 1
    assert meter.count(service="stepfunctions-express",
                       operation="duration") == 1


def test_standard_execution_does_not_meter_express(deployed, meter, run):
    deployed.create_state_machine("m", CHAIN)
    run(deployed.start_execution("m", 1))
    assert meter.count(service="stepfunctions-express") == 0
    assert meter.count(service="stepfunctions", operation="transition") == 2


def test_express_duration_cap_enforced(deployed, run):
    deployed.create_state_machine("m", {
        "StartAt": "S",
        "States": {"S": {"Type": "Task", "Resource": "slow", "End": True}},
    }, workflow_type=EXPRESS)
    record = run(deployed.start_execution("m", 1))
    assert record.status == "FAILED"
    assert record.error == "States.Timeout"
    assert record.duration > EXPRESS_DURATION_LIMIT_S


def test_standard_allows_long_executions(deployed, run):
    deployed.create_state_machine("m", {
        "StartAt": "S",
        "States": {"S": {"Type": "Task", "Resource": "slow", "End": True}},
    })
    record = run(deployed.start_execution("m", 1))
    assert record.status == "SUCCEEDED"


def test_express_pricing_components(deployed, meter, billing, run,
                                    calibration):
    from repro.aws import AWSPriceModel
    deployed.create_state_machine("m", CHAIN, workflow_type=EXPRESS)
    record = run(deployed.start_execution("m", 1))
    breakdown = AWSPriceModel(calibration).breakdown(billing, meter)
    assert breakdown.transitions == 0.0
    assert breakdown.express > 0.0
    expected = (calibration.express_request_price
                + record.duration * 64 / 1024.0
                * calibration.express_gb_s_price)
    assert breakdown.express == pytest.approx(expected, rel=0.01)


def test_express_cheaper_for_chatty_workflows(deployed, meter, billing, run,
                                              calibration):
    """The Express value proposition: many short transitions cost less."""
    from repro.aws import AWSPriceModel
    many_states = {
        "StartAt": "S0",
        "States": {},
    }
    for index in range(10):
        many_states["States"][f"S{index}"] = {
            "Type": "Task", "Resource": "quick",
            **({"Next": f"S{index + 1}"} if index < 9 else {"End": True}),
        }
    deployed.create_state_machine("std", many_states)
    deployed.create_state_machine("exp", many_states,
                                  workflow_type=EXPRESS)
    run(deployed.start_execution("std", 1))
    run(deployed.start_execution("exp", 1))
    breakdown = AWSPriceModel(calibration).breakdown(billing, meter)
    # 10 transitions at $25/M vs 1 request + ~6 s of 64 MB duration.
    assert breakdown.express < breakdown.transitions
