"""Token-bucket admission control and Step Functions throttle retries."""

import pytest

from repro.platforms.base import FunctionSpec, ThrottlingError
from repro.platforms.calibration import AWSCalibration


def echo(ctx, event):
    yield from ctx.busy(1.0)
    return event


def register(lambdas, name="echo", handler=echo, **kwargs):
    lambdas.register(FunctionSpec(name=name, handler=handler, **kwargs))


# -- token bucket ----------------------------------------------------------------


def test_token_bucket_throttles_past_burst(env, lambdas, run):
    lambdas.calibration.burst_concurrency = 2
    lambdas.calibration.refill_per_s = 1.0
    lambdas._tokens = 2.0
    register(lambdas)

    def rapid(env):
        processes = [env.process(_one(env, lambdas)) for _ in range(3)]
        yield env.all_of(processes)

    with pytest.raises(ThrottlingError, match="token bucket empty"):
        env.run(until=env.process(rapid(env)))
    assert lambdas.throttles == 1


def _one(env, lambdas):
    result = yield from lambdas.invoke("echo", 1)
    return result


def test_throttling_error_carries_retry_after(env, lambdas):
    lambdas.calibration.burst_concurrency = 1
    lambdas.calibration.refill_per_s = 2.0
    lambdas._tokens = 1.0
    register(lambdas)

    def rapid(env):
        processes = [env.process(_one(env, lambdas)) for _ in range(2)]
        yield env.all_of(processes)

    with pytest.raises(ThrottlingError) as info:
        env.run(until=env.process(rapid(env)))
    assert info.value.retry_after_s > 0


def test_bucket_refills_over_time(env, lambdas, run):
    lambdas.calibration.burst_concurrency = 1
    lambdas.calibration.refill_per_s = 0.1
    lambdas._tokens = 1.0
    register(lambdas)
    run(lambdas.invoke("echo", 1))
    assert lambdas.available_tokens() < 1.0

    def later(env):
        yield env.timeout(10.0)
        result = yield from lambdas.invoke("echo", 2)
        return result

    result = env.run(until=env.process(later(env)))
    assert result.value == 2
    assert lambdas.throttles == 0


def test_bucket_never_exceeds_burst(env, lambdas, run):
    register(lambdas)

    def much_later(env):
        yield env.timeout(3600.0)
        return lambdas.available_tokens()

    tokens = env.run(until=env.process(much_later(env)))
    assert tokens == float(lambdas.calibration.burst_concurrency)


def test_concurrency_limit_raises_typed_throttle(env, lambdas):
    """The old RuntimeError message survives on the typed 429."""
    lambdas.calibration.concurrency_limit = 2

    def slow(ctx, event):
        yield from ctx.busy(50.0)
        return event

    register(lambdas, handler=slow, timeout_s=600.0)

    def fan_out(env):
        processes = [env.process(_one(env, lambdas)) for _ in range(3)]
        yield env.all_of(processes)

    with pytest.raises(ThrottlingError, match="concurrent execution limit"):
        env.run(until=env.process(fan_out(env)))
    assert isinstance(ThrottlingError("x"), RuntimeError)
    assert lambdas.throttles == 1


def test_throttled_requests_are_not_billed(env, lambdas, billing):
    lambdas.calibration.burst_concurrency = 1
    lambdas.calibration.refill_per_s = 0.5
    lambdas._tokens = 1.0
    register(lambdas)

    def rapid(env):
        processes = [env.process(_one(env, lambdas)) for _ in range(2)]
        yield env.all_of(processes)

    with pytest.raises(ThrottlingError):
        env.run(until=env.process(rapid(env)))
    # The throttled request is never billed; the admitted one bills
    # when its execution starts — drain it to completion first.
    env.run()
    assert billing.total_requests() == 1


# -- Step Functions retry --------------------------------------------------------


def _machine(stepfunctions, resource="echo"):
    stepfunctions.create_state_machine("m", {
        "StartAt": "T",
        "States": {"T": {"Type": "Task", "Resource": resource,
                         "End": True}},
    })


def test_step_retries_absorb_throttles(env, lambdas, stepfunctions):
    lambdas.calibration.burst_concurrency = 2
    lambdas.calibration.refill_per_s = 1.0
    lambdas._tokens = 2.0
    register(lambdas)
    _machine(stepfunctions)

    def start(env):
        processes = [
            env.process(_execution(env, stepfunctions, index))
            for index in range(4)]
        yield env.all_of(processes)
        return [process.value for process in processes]

    records = env.run(until=env.process(start(env)))
    assert all(record.status == "SUCCEEDED" for record in records)
    assert stepfunctions.throttle_retries > 0
    assert lambdas.throttles > 0


def _execution(env, stepfunctions, payload):
    record = yield from stepfunctions.start_execution("m", payload)
    return record


def test_step_exhausts_retries_into_failed_record(env, lambdas,
                                                  stepfunctions):
    lambdas.calibration.burst_concurrency = 1
    lambdas.calibration.refill_per_s = 0.001   # never refills in time
    lambdas.calibration.throttle_retry_max_attempts = 1
    lambdas._tokens = 1.0
    register(lambdas)
    _machine(stepfunctions)

    def start(env):
        processes = [
            env.process(_execution(env, stepfunctions, index))
            for index in range(2)]
        yield env.all_of(processes)
        return [process.value for process in processes]

    records = env.run(until=env.process(start(env)))
    statuses = sorted(record.status for record in records)
    assert statuses == ["FAILED", "SUCCEEDED"]
    failed = next(r for r in records if r.status == "FAILED")
    assert "Lambda.TooManyRequestsException" in str(failed.error)


def test_throttle_backoff_is_deterministic():
    """Backoff jitter draws from a named stream — same seed, same delays."""
    from repro.core import Testbed

    def finish_times():
        calibration = AWSCalibration(burst_concurrency=2, refill_per_s=1.0)
        testbed = Testbed(seed=5, aws_calibration=calibration)
        register(testbed.lambdas)
        _machine(testbed.stepfunctions)
        env = testbed.env

        def start(env):
            processes = [
                env.process(_execution(env, testbed.stepfunctions, index))
                for index in range(5)]
            yield env.all_of(processes)
            return [process.value for process in processes]

        records = env.run(until=env.process(start(env)))
        assert testbed.stepfunctions.throttle_retries > 0
        return [record.finished_at for record in records]

    assert finish_times() == finish_times()


# -- calibration validation ------------------------------------------------------


@pytest.mark.parametrize("field, value", [
    ("concurrency_limit", 0),
    ("burst_concurrency", 0),
    ("burst_concurrency", -5),
    ("refill_per_s", 0.0),
    ("refill_per_s", -1.0),
    ("throttle_retry_max_attempts", 0),
    ("throttle_retry_interval_s", 0.0),
])
def test_calibration_rejects_nonpositive(field, value):
    with pytest.raises(ValueError, match="must be"):
        AWSCalibration(**{field: value})


def test_calibration_rejects_cap_below_interval():
    with pytest.raises(ValueError, match="throttle_retry_cap_s"):
        AWSCalibration(throttle_retry_interval_s=4.0,
                       throttle_retry_cap_s=1.0)
