"""Tests for ASL parsing and static validation."""

import pytest

from repro.aws import AslValidationError, parse_state_machine
from repro.aws.states import MapState, ParallelState, TaskState


def minimal(states=None, start="Only"):
    return {
        "StartAt": start,
        "States": states or {"Only": {"Type": "Succeed"}},
    }


def test_minimal_machine_parses():
    machine = parse_state_machine(minimal())
    assert machine.start_at == "Only"
    assert machine.state_count() == 1


def test_missing_start_at():
    with pytest.raises(AslValidationError, match="StartAt"):
        parse_state_machine({"States": {"A": {"Type": "Succeed"}}})


def test_missing_states():
    with pytest.raises(AslValidationError, match="States"):
        parse_state_machine({"StartAt": "A"})


def test_empty_states():
    with pytest.raises(AslValidationError, match="not be empty"):
        parse_state_machine({"StartAt": "A", "States": {}})


def test_start_at_unknown_state():
    with pytest.raises(AslValidationError, match="not a defined state"):
        parse_state_machine(minimal(start="Ghost"))


def test_dangling_next_target():
    with pytest.raises(AslValidationError, match="unknown state"):
        parse_state_machine(minimal(states={
            "Only": {"Type": "Pass", "Next": "Ghost"},
        }))


def test_unreachable_state_detected():
    with pytest.raises(AslValidationError, match="unreachable"):
        parse_state_machine(minimal(states={
            "Only": {"Type": "Succeed"},
            "Island": {"Type": "Succeed"},
        }))


def test_state_without_next_or_end():
    with pytest.raises(AslValidationError, match="neither 'Next' nor 'End'"):
        parse_state_machine(minimal(states={"Only": {"Type": "Pass"}}))


def test_no_terminal_state():
    with pytest.raises(AslValidationError, match="no terminal state"):
        parse_state_machine(minimal(states={
            "A": {"Type": "Pass", "Next": "B"},
            "B": {"Type": "Pass", "Next": "A"},
        }, start="A"))


def test_task_requires_resource():
    with pytest.raises(AslValidationError, match="Resource"):
        parse_state_machine(minimal(states={
            "Only": {"Type": "Task", "End": True}}))


def test_unknown_state_type():
    with pytest.raises(AslValidationError, match="unknown Type"):
        parse_state_machine(minimal(states={"Only": {"Type": "Quantum"}}))


def test_task_state_fields_parsed():
    machine = parse_state_machine(minimal(states={
        "Only": {
            "Type": "Task", "Resource": "fn", "End": True,
            "InputPath": "$.in", "ResultPath": "$.out",
            "TimeoutSeconds": 30,
            "Retry": [{"ErrorEquals": ["States.ALL"], "MaxAttempts": 2}],
            "Catch": [{"ErrorEquals": ["States.Timeout"], "Next": "Only"}],
        }}))
    state = machine.state("Only")
    assert isinstance(state, TaskState)
    assert state.resource == "fn"
    assert state.input_path == "$.in"
    assert state.retry[0]["max_attempts"] == 2
    assert state.catch[0]["next"] == "Only"


def test_retry_requires_error_equals():
    with pytest.raises(AslValidationError, match="ErrorEquals"):
        parse_state_machine(minimal(states={
            "Only": {"Type": "Task", "Resource": "fn", "End": True,
                     "Retry": [{"MaxAttempts": 2}]}}))


def test_parallel_parses_branches_recursively():
    machine = parse_state_machine(minimal(states={
        "Only": {
            "Type": "Parallel", "End": True,
            "Branches": [minimal(), minimal()],
        }}))
    state = machine.state("Only")
    assert isinstance(state, ParallelState)
    assert len(state.branches) == 2
    assert machine.state_count() == 3


def test_parallel_requires_branches():
    with pytest.raises(AslValidationError, match="branch"):
        parse_state_machine(minimal(states={
            "Only": {"Type": "Parallel", "End": True, "Branches": []}}))


def test_map_parses_iterator():
    machine = parse_state_machine(minimal(states={
        "Only": {
            "Type": "Map", "End": True, "ItemsPath": "$.chunks",
            "MaxConcurrency": 5, "Iterator": minimal(),
        }}))
    state = machine.state("Only")
    assert isinstance(state, MapState)
    assert state.items_path == "$.chunks"
    assert state.max_concurrency == 5


def test_map_requires_iterator():
    with pytest.raises(AslValidationError, match="Iterator"):
        parse_state_machine(minimal(states={
            "Only": {"Type": "Map", "End": True}}))


def test_invalid_branch_fails_at_parse_time():
    with pytest.raises(AslValidationError):
        parse_state_machine(minimal(states={
            "Only": {"Type": "Parallel", "End": True,
                     "Branches": [{"StartAt": "Ghost",
                                   "States": {"A": {"Type": "Succeed"}}}]}}))


def test_choice_requires_rules_and_comparator():
    with pytest.raises(AslValidationError, match="choice rule"):
        parse_state_machine(minimal(states={
            "Only": {"Type": "Choice", "Choices": []},
        }))
    with pytest.raises(AslValidationError, match="comparator"):
        parse_state_machine(minimal(states={
            "C": {"Type": "Choice",
                  "Choices": [{"Variable": "$.x", "Next": "Done"}]},
            "Done": {"Type": "Succeed"},
        }, start="C"))


def test_choice_targets_are_validated():
    with pytest.raises(AslValidationError, match="unknown state"):
        parse_state_machine(minimal(states={
            "C": {"Type": "Choice",
                  "Choices": [{"Variable": "$.x", "NumericEquals": 1,
                               "Next": "Ghost"}],
                  "Default": "Done"},
            "Done": {"Type": "Succeed"},
        }, start="C"))


def test_wait_requires_seconds():
    with pytest.raises(AslValidationError, match="Seconds"):
        parse_state_machine(minimal(states={
            "Only": {"Type": "Wait", "End": True}}))


def test_state_count_recurses_into_map():
    machine = parse_state_machine(minimal(states={
        "M": {"Type": "Map", "End": True, "Iterator": minimal(states={
            "A": {"Type": "Pass", "Next": "B"},
            "B": {"Type": "Succeed"},
        }, start="A")},
    }, start="M"))
    assert machine.state_count() == 3
    assert machine.state_count(recursive=False) == 1
