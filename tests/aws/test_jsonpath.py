"""Tests for the ASL reference-path subset."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aws.jsonpath import (
    PathError,
    apply_parameters,
    get_path,
    parse_path,
    set_path,
)


def test_parse_root():
    assert parse_path("$") == []


def test_parse_fields_and_indices():
    assert parse_path("$.a.b[2].c") == ["a", "b", 2, "c"]


def test_parse_rejects_missing_dollar():
    with pytest.raises(PathError):
        parse_path("a.b")


def test_parse_rejects_garbage():
    with pytest.raises(PathError):
        parse_path("$.a..b")
    with pytest.raises(PathError):
        parse_path("$[x]")


def test_get_root_returns_whole_document():
    data = {"a": 1}
    assert get_path(data, "$") is data


def test_get_nested():
    data = {"a": {"b": [10, 20, 30]}}
    assert get_path(data, "$.a.b[1]") == 20


def test_get_missing_field_raises():
    with pytest.raises(PathError, match="not found"):
        get_path({"a": 1}, "$.b")


def test_get_index_out_of_range_raises():
    with pytest.raises(PathError):
        get_path({"a": [1]}, "$.a[5]")


def test_set_root_replaces_document():
    assert set_path({"a": 1}, "$", "new") == "new"


def test_set_creates_intermediate_objects():
    result = set_path({"x": 1}, "$.a.b", 42)
    assert result == {"x": 1, "a": {"b": 42}}


def test_set_does_not_mutate_original():
    original = {"a": {"b": 1}}
    result = set_path(original, "$.a.c", 2)
    assert original == {"a": {"b": 1}}
    assert result["a"] == {"b": 1, "c": 2}


def test_set_on_non_dict_input_builds_object():
    assert set_path([1, 2], "$.result", "ok") == {"result": "ok"}


def test_set_rejects_array_indexing():
    with pytest.raises(PathError):
        set_path({}, "$.a[0]", 1)


def test_apply_parameters_literal_and_path():
    template = {"static": 1, "dynamic.$": "$.x", "nested": {"deep.$": "$.y.z"}}
    data = {"x": "ex", "y": {"z": "zee"}}
    assert apply_parameters(template, data) == {
        "static": 1, "dynamic": "ex", "nested": {"deep": "zee"}}


def test_apply_parameters_list():
    assert apply_parameters([{"v.$": "$.a"}], {"a": 7}) == [{"v": 7}]


def test_apply_parameters_bad_path_value():
    with pytest.raises(PathError):
        apply_parameters({"v.$": 42}, {})


@given(st.dictionaries(
    st.from_regex(r"[A-Za-z_][A-Za-z0-9_]{0,5}", fullmatch=True),
    st.integers(), min_size=1, max_size=5))
@settings(max_examples=50, deadline=None)
def test_get_after_set_roundtrip(data):
    key = sorted(data)[0]
    updated = set_path(data, f"$.{key}", "sentinel")
    assert get_path(updated, f"$.{key}") == "sentinel"
