"""Tests for the simulated AWS Lambda runtime."""

import pytest

from repro.platforms.base import (
    FunctionSpec,
    FunctionTimeout,
    WorkModel,
)
from repro.sim import Constant


def echo_handler(ctx, event):
    yield from ctx.busy(1.0)
    return {"echo": event}


def make_spec(name="echo", handler=echo_handler, **kwargs):
    return FunctionSpec(name=name, handler=handler, **kwargs)


def test_register_and_invoke(lambdas, run):
    lambdas.register(make_spec())
    result = run(lambdas.invoke("echo", {"x": 1}))
    assert result.value == {"echo": {"x": 1}}
    assert result.function_name == "echo"


def test_register_rejects_duplicates(lambdas):
    lambdas.register(make_spec())
    with pytest.raises(ValueError, match="already registered"):
        lambdas.register(make_spec())


def test_register_rejects_bad_memory(lambdas):
    with pytest.raises(ValueError, match="multiple of 128"):
        lambdas.register(make_spec(memory_mb=1000))


def test_register_rejects_excessive_timeout(lambdas):
    with pytest.raises(ValueError, match="exceeds the Lambda limit"):
        lambdas.register(make_spec(timeout_s=1000.0))


def test_invoke_unknown_function(lambdas, run):
    with pytest.raises(KeyError, match="no such Lambda function"):
        run(lambdas.invoke("ghost", {}))


def test_first_invocation_is_cold(lambdas, run):
    lambdas.register(make_spec())
    result = run(lambdas.invoke("echo", {}))
    assert result.cold_start
    assert 1.0 <= result.cold_start_duration <= 2.0


def test_second_invocation_reuses_warm_container(lambdas, run):
    lambdas.register(make_spec())
    run(lambdas.invoke("echo", {}))
    result = run(lambdas.invoke("echo", {}))
    assert not result.cold_start
    assert lambdas.warm_container_count("echo") == 1


def test_container_expires_after_keep_alive(env, lambdas, run):
    lambdas.register(make_spec())
    run(lambdas.invoke("echo", {}))

    def later(env):
        yield env.timeout(lambdas.calibration.keep_alive_s + 1)
        result = yield from lambdas.invoke("echo", {})
        return result

    result = env.run(until=env.process(later(env)))
    assert result.cold_start


def test_parallel_invocations_cold_start_in_parallel(env, lambdas, run):
    """Per-request provisioning: N cold starts overlap, not queue."""
    lambdas.register(make_spec())

    def fan_out(env):
        processes = [env.process(_invoke(lambdas, "echo", i))
                     for i in range(20)]
        yield env.all_of(processes)
        return [process.value for process in processes]

    results = env.run(until=env.process(fan_out(env)))
    assert all(result.cold_start for result in results)
    # Total time ~ max(cold) + exec, nowhere near the serial sum.
    assert env.now < 2.0 + 1.5
    assert lambdas.warm_container_count("echo") == 20


def _invoke(lambdas, name, payload):
    result = yield from lambdas.invoke(name, payload)
    return result


def test_billing_rounds_up_to_100ms(lambdas, billing, run):
    def quick(ctx, event):
        yield from ctx.busy(0.0)
        return None

    # Disable jitter noise by busying an exact amount.
    lambdas.calibration.execution_jitter = Constant(1.0)

    def handler(ctx, event):
        yield from ctx.busy(0.234)
        return None

    lambdas.register(make_spec(name="timed", handler=handler))
    run(lambdas.invoke("timed", {}))
    charge = billing.compute[-1]
    assert charge.raw_duration == pytest.approx(0.234, abs=1e-9)
    assert charge.billed_duration == pytest.approx(0.3)
    assert charge.gb_s == pytest.approx(0.3 * 1.5)


def test_billing_uses_configured_memory(lambdas, billing, run):
    lambdas.calibration.execution_jitter = Constant(1.0)

    def handler(ctx, event):
        yield from ctx.busy(1.0)
        return None

    lambdas.register(make_spec(name="fat", handler=handler, memory_mb=3072))
    run(lambdas.invoke("fat", {}))
    charge = billing.compute[-1]
    assert charge.memory_mb == 3072
    # More memory = more CPU share: the 1 s of work finishes in 0.5 s
    # (fixture pins full CPU at 1536 MB), billed at the configured 3 GB.
    assert charge.gb_s == pytest.approx(charge.billed_duration * 3.0)
    assert charge.raw_duration == pytest.approx(0.5)


def test_request_charge_recorded(lambdas, billing, run):
    lambdas.register(make_spec())
    run(lambdas.invoke("echo", {}))
    run(lambdas.invoke("echo", {}))
    assert billing.total_requests() == 2


def test_timeout_enforced(lambdas, run):
    def slow(ctx, event):
        yield from ctx.busy(10.0)
        return None

    lambdas.register(make_spec(name="slow", handler=slow, timeout_s=2.0))
    with pytest.raises(FunctionTimeout):
        run(lambdas.invoke("slow", {}))


def test_timeout_still_bills_partial_execution(lambdas, billing, run):
    def slow(ctx, event):
        yield from ctx.busy(10.0)
        return None

    lambdas.register(make_spec(name="slow", handler=slow, timeout_s=2.0))
    with pytest.raises(FunctionTimeout):
        run(lambdas.invoke("slow", {}))
    assert billing.compute[-1].raw_duration == pytest.approx(2.0)


def test_handler_exception_propagates(lambdas, run):
    def broken(ctx, event):
        yield from ctx.busy(0.1)
        raise ValueError("boom")

    lambdas.register(make_spec(name="broken", handler=broken))
    with pytest.raises(ValueError, match="boom"):
        run(lambdas.invoke("broken", {}))


def test_execution_span_emitted(lambdas, telemetry, run):
    lambdas.register(make_spec())
    run(lambdas.invoke("echo", {}))
    spans = telemetry.find(kind="execution", name="echo")
    assert len(spans) == 1
    assert spans[0].attributes["platform"] == "aws"
    assert spans[0].attributes["cold"] is True


def test_work_model_lookup(lambdas, run):
    spec = make_spec(
        name="modeled",
        handler=lambda ctx, event: _modeled_handler(ctx, event),
        work_models={"train": WorkModel(base=Constant(0.5), per_unit=0.01)})
    lambdas.calibration.execution_jitter = Constant(1.0)
    lambdas.register(spec)
    result = run(lambdas.invoke("modeled", {"rows": 100}))
    assert result.duration == pytest.approx(0.5 + 0.01 * 100)


def _modeled_handler(ctx, event):
    yield from ctx.work("train", units=event["rows"])
    return None


def test_unknown_work_model_raises(lambdas, run):
    def handler(ctx, event):
        yield from ctx.work("missing")
        return None

    lambdas.register(make_spec(name="nomodel", handler=handler))
    with pytest.raises(KeyError, match="no work model"):
        run(lambdas.invoke("nomodel", {}))
