"""ASL error-handling semantics: Retry policies, Catch fallbacks, timeouts.

These are the recovery mechanisms a reliability campaign leans on, so
their billing and timing semantics are pinned down here: every retry
re-enters the state (a billable transition), retry delays follow
``IntervalSeconds × BackoffRate^attempt``, and ``TimeoutSeconds`` races
the task and surfaces as ``States.Timeout``.
"""

import pytest

from repro.aws import StepFunctionsService
from repro.platforms.base import FunctionSpec
from repro.platforms.faults import FaultInjector, FaultPlan
from repro.sim import Constant

pytestmark = pytest.mark.faults


def register(lambdas, name, handler, **kwargs):
    lambdas.register(FunctionSpec(name=name, handler=handler, **kwargs))


def pin_latencies(calibration):
    """Zero every stochastic overhead so delay assertions are exact."""
    calibration.cold_start = Constant(0.0)
    calibration.warm_start = Constant(0.0)
    calibration.execution_jitter = Constant(1.0)
    calibration.transition_latency = Constant(0.0)
    calibration.step_cold_overhead = Constant(0.0)


def make_flaky(failures_before_success):
    attempts = []

    def flaky(ctx, event):
        yield from ctx.busy(0.1)
        attempts.append(ctx.env.now - 0.1)     # when this attempt started
        if len(attempts) <= failures_before_success:
            raise RuntimeError("transient")
        return "recovered"

    return flaky, attempts


def always_failing(ctx, event):
    yield from ctx.busy(0.1)
    raise RuntimeError("permanent")


# -- MaxAttempts exhaustion --------------------------------------------------------

def test_max_attempts_exhaustion_fails_with_task_error(lambdas, stepfunctions,
                                                       run):
    flaky, attempts = make_flaky(failures_before_success=99)
    register(lambdas, "flaky", flaky)
    stepfunctions.create_state_machine("exhausted", {
        "StartAt": "T",
        "States": {
            "T": {"Type": "Task", "Resource": "flaky",
                  "Retry": [{"ErrorEquals": ["States.ALL"],
                             "IntervalSeconds": 0.5, "MaxAttempts": 2}],
                  "End": True},
        },
    })
    record = run(stepfunctions.start_execution("exhausted", {}))
    assert record.status == "FAILED"
    assert record.error == "States.TaskFailed"
    assert len(attempts) == 3                  # initial + MaxAttempts retries
    assert record.transitions == 3             # every retry re-enters T


# -- BackoffRate delay sequence ----------------------------------------------------

def test_backoff_rate_spaces_retry_attempts(lambdas, stepfunctions,
                                            calibration, run):
    pin_latencies(calibration)
    flaky, attempts = make_flaky(failures_before_success=3)
    register(lambdas, "flaky", flaky)
    stepfunctions.create_state_machine("backoff", {
        "StartAt": "T",
        "States": {
            "T": {"Type": "Task", "Resource": "flaky",
                  "Retry": [{"ErrorEquals": ["States.ALL"],
                             "IntervalSeconds": 1.0, "MaxAttempts": 3,
                             "BackoffRate": 2.0}],
                  "End": True},
        },
    })
    record = run(stepfunctions.start_execution("backoff", {}))
    assert record.status == "SUCCEEDED"
    assert len(attempts) == 4
    gaps = [b - a for a, b in zip(attempts, attempts[1:])]
    # Delays grow as 1.0, 2.0, 4.0 (plus the constant 0.1 s execution),
    # so consecutive gaps differ by interval × backoff^n increments.
    assert gaps[0] >= 1.0
    assert gaps[1] - gaps[0] == pytest.approx(1.0)
    assert gaps[2] - gaps[1] == pytest.approx(2.0)


# -- retries are billable transitions ----------------------------------------------

def test_retries_are_metered_as_transitions(lambdas, stepfunctions, meter,
                                            run):
    flaky, attempts = make_flaky(failures_before_success=2)
    register(lambdas, "flaky", flaky)
    stepfunctions.create_state_machine("billed", {
        "StartAt": "T",
        "States": {
            "T": {"Type": "Task", "Resource": "flaky",
                  "Retry": [{"ErrorEquals": ["States.ALL"],
                             "IntervalSeconds": 0.1, "MaxAttempts": 3}],
                  "End": True},
        },
    })
    record = run(stepfunctions.start_execution("billed", {}))
    assert record.status == "SUCCEEDED"
    assert len(attempts) == 3
    # Standard workflows bill per state entry: 1 initial + 2 retries.
    assert meter.count(service="stepfunctions", operation="transition") == 3


# -- Catch fallback ----------------------------------------------------------------

def test_catch_captures_error_info_at_result_path(lambdas, stepfunctions,
                                                  run):
    register(lambdas, "boom", always_failing)
    stepfunctions.create_state_machine("caught", {
        "StartAt": "T",
        "States": {
            "T": {"Type": "Task", "Resource": "boom",
                  "Catch": [{"ErrorEquals": ["States.TaskFailed"],
                             "Next": "Cleanup", "ResultPath": "$.fault"}],
                  "End": True},
            "Cleanup": {"Type": "Pass", "End": True},
        },
    })
    record = run(stepfunctions.start_execution("caught", {"job": 42}))
    assert record.status == "SUCCEEDED"
    # The original input survives; the error lands under ResultPath.
    assert record.output["job"] == 42
    assert record.output["fault"]["Error"] == "States.TaskFailed"
    assert "permanent" in record.output["fault"]["Cause"]
    assert record.states_entered == ["T", "Cleanup"]


def test_retry_exhaustion_then_catch_fallback(lambdas, stepfunctions, run):
    register(lambdas, "boom", always_failing)
    stepfunctions.create_state_machine("belt-and-braces", {
        "StartAt": "T",
        "States": {
            "T": {"Type": "Task", "Resource": "boom",
                  "Retry": [{"ErrorEquals": ["States.ALL"],
                             "IntervalSeconds": 0.1, "MaxAttempts": 1}],
                  "Catch": [{"ErrorEquals": ["States.ALL"],
                             "Next": "Fallback"}],
                  "End": True},
            "Fallback": {"Type": "Pass", "Result": "fallback", "End": True},
        },
    })
    record = run(stepfunctions.start_execution("belt-and-braces", {}))
    assert record.status == "SUCCEEDED"
    assert record.output == "fallback"
    assert record.transitions == 3             # T, retried T, Fallback


# -- TimeoutSeconds ----------------------------------------------------------------

def test_timeout_seconds_races_slow_task(env, lambdas, stepfunctions,
                                         calibration, run):
    pin_latencies(calibration)

    def glacial(ctx, event):
        yield from ctx.busy(50.0)
        return "too late"

    register(lambdas, "glacial", glacial)
    stepfunctions.create_state_machine("timed", {
        "StartAt": "T",
        "States": {"T": {"Type": "Task", "Resource": "glacial",
                         "TimeoutSeconds": 5.0, "End": True}},
    })
    record = run(stepfunctions.start_execution("timed", {}))
    assert record.status == "FAILED"
    assert record.error == "States.Timeout"
    # The timeout fired at 5 s — the execution did not wait out the task.
    assert record.duration < 50.0
    assert record.duration == pytest.approx(5.0, abs=1.0)


def test_timeout_is_catchable(lambdas, stepfunctions, calibration, run):
    pin_latencies(calibration)

    def glacial(ctx, event):
        yield from ctx.busy(50.0)
        return "too late"

    register(lambdas, "glacial", glacial)
    stepfunctions.create_state_machine("timed-caught", {
        "StartAt": "T",
        "States": {
            "T": {"Type": "Task", "Resource": "glacial",
                  "TimeoutSeconds": 5.0,
                  "Catch": [{"ErrorEquals": ["States.Timeout"],
                             "Next": "Degrade"}],
                  "End": True},
            "Degrade": {"Type": "Pass", "Result": "degraded", "End": True},
        },
    })
    record = run(stepfunctions.start_execution("timed-caught", {}))
    assert record.status == "SUCCEEDED"
    assert record.output == "degraded"


# -- fault-plan synthesized retriers -----------------------------------------------

def test_fault_plan_synthesizes_default_retrier(env, lambdas, telemetry,
                                                meter, run):
    plan = FaultPlan(retry_max_attempts=3, retry_interval_s=0.5)
    injector = FaultInjector(plan=plan, streams=lambdas.streams)
    stepfunctions = StepFunctionsService(env, lambdas, telemetry, meter,
                                         faults=injector)
    flaky, attempts = make_flaky(failures_before_success=2)
    register(lambdas, "flaky", flaky)
    stepfunctions.create_state_machine("synthesized", {
        "StartAt": "T",
        "States": {"T": {"Type": "Task", "Resource": "flaky", "End": True}},
    })
    record = run(stepfunctions.start_execution("synthesized", {}))
    # No Retry block in the ASL — the plan's default policy absorbed
    # both transient failures, and the injector accounted the retries.
    assert record.status == "SUCCEEDED"
    assert record.output == "recovered"
    assert len(attempts) == 3
    assert injector.platform_retries == 2
