"""Edge cases of the ASL executor: comparators, paths, catch routing."""

import pytest

from repro.platforms.base import FunctionSpec


def echo(ctx, event):
    yield from ctx.busy(0.1)
    return event


@pytest.fixture
def deployed(lambdas):
    lambdas.register(FunctionSpec(name="echo", handler=echo,
                                  memory_mb=512, timeout_s=60.0))
    return lambdas


def run_choice(stepfunctions, run, rule, data, default="No"):
    name = f"choice-{run_choice.counter}"
    run_choice.counter += 1
    stepfunctions.create_state_machine(name, {
        "StartAt": "C",
        "States": {
            "C": {"Type": "Choice", "Choices": [dict(rule, Next="Yes")],
                  "Default": default},
            "Yes": {"Type": "Pass", "Result": "yes", "End": True},
            "No": {"Type": "Pass", "Result": "no", "End": True},
        },
    })
    return run(stepfunctions.start_execution(name, data)).output


run_choice.counter = 0


@pytest.mark.parametrize("rule,data,expected", [
    ({"Variable": "$.x", "StringEquals": "a"}, {"x": "a"}, "yes"),
    ({"Variable": "$.x", "StringEquals": "a"}, {"x": "b"}, "no"),
    ({"Variable": "$.n", "NumericEquals": 5}, {"n": 5}, "yes"),
    ({"Variable": "$.n", "NumericGreaterThanEquals": 5}, {"n": 5}, "yes"),
    ({"Variable": "$.n", "NumericLessThan": 5}, {"n": 4}, "yes"),
    ({"Variable": "$.n", "NumericLessThanEquals": 5}, {"n": 6}, "no"),
    ({"Variable": "$.b", "BooleanEquals": True}, {"b": True}, "yes"),
    ({"Variable": "$.b", "BooleanEquals": True}, {"b": False}, "no"),
    ({"Variable": "$.maybe", "IsPresent": True}, {"maybe": 1}, "yes"),
    ({"Variable": "$.maybe", "IsPresent": True}, {"other": 1}, "no"),
])
def test_choice_comparators(deployed, stepfunctions, run, rule, data,
                            expected):
    assert run_choice(stepfunctions, run, rule, data) == expected


def test_choice_missing_variable_falls_through(deployed, stepfunctions, run):
    assert run_choice(stepfunctions, run,
                      {"Variable": "$.gone", "NumericEquals": 1},
                      {"x": 1}) == "no"


def test_choice_no_default_no_match_fails(deployed, stepfunctions, run):
    stepfunctions.create_state_machine("strict", {
        "StartAt": "C",
        "States": {
            "C": {"Type": "Choice",
                  "Choices": [{"Variable": "$.x", "NumericEquals": 1,
                               "Next": "Done"}]},
            "Done": {"Type": "Succeed"},
        },
    })
    record = run(stepfunctions.start_execution("strict", {"x": 2}))
    assert record.status == "FAILED"
    assert record.error == "States.NoChoiceMatched"


def test_wait_seconds_path(deployed, stepfunctions, run, env):
    stepfunctions.create_state_machine("waiter", {
        "StartAt": "W",
        "States": {
            "W": {"Type": "Wait", "SecondsPath": "$.delay", "Next": "Done"},
            "Done": {"Type": "Succeed"},
        },
    })
    record = run(stepfunctions.start_execution("waiter", {"delay": 42}))
    assert record.duration >= 42.0


def test_catch_result_path_preserves_input(deployed, lambdas, stepfunctions,
                                           run):
    def boom(ctx, event):
        yield from ctx.busy(0.1)
        raise RuntimeError("pow")

    lambdas.register(FunctionSpec(name="boom", handler=boom,
                                  memory_mb=512, timeout_s=60.0))
    stepfunctions.create_state_machine("keeper", {
        "StartAt": "T",
        "States": {
            "T": {"Type": "Task", "Resource": "boom",
                  "Catch": [{"ErrorEquals": ["States.TaskFailed"],
                             "Next": "Inspect", "ResultPath": "$.error"}],
                  "End": True},
            "Inspect": {"Type": "Pass", "End": True},
        },
    })
    record = run(stepfunctions.start_execution("keeper", {"keep": "me"}))
    assert record.status == "SUCCEEDED"
    assert record.output["keep"] == "me"
    assert record.output["error"]["Error"] == "States.TaskFailed"
    assert "pow" in record.output["error"]["Cause"]


def test_catch_specific_error_name_does_not_match_others(deployed, lambdas,
                                                         stepfunctions, run):
    def boom(ctx, event):
        yield from ctx.busy(0.1)
        raise RuntimeError("pow")

    lambdas.register(FunctionSpec(name="boom2", handler=boom,
                                  memory_mb=512, timeout_s=60.0))
    stepfunctions.create_state_machine("selective", {
        "StartAt": "T",
        "States": {
            "T": {"Type": "Task", "Resource": "boom2",
                  "Catch": [{"ErrorEquals": ["States.Timeout"],
                             "Next": "Recover"}],
                  "End": True},
            "Recover": {"Type": "Pass", "End": True},
        },
    })
    record = run(stepfunctions.start_execution("selective", {}))
    assert record.status == "FAILED"
    assert record.error == "States.TaskFailed"


def test_map_with_parameters_template(deployed, lambdas, stepfunctions, run):
    def combine(ctx, event):
        yield from ctx.busy(0.1)
        return f"{event['tag']}:{event['item']}"

    lambdas.register(FunctionSpec(name="combine", handler=combine,
                                  memory_mb=512, timeout_s=60.0))
    stepfunctions.create_state_machine("tagger", {
        "StartAt": "M",
        "States": {
            "M": {"Type": "Map", "ItemsPath": "$.items",
                  "Parameters": {"item.$": "$.value", "tag": "t"},
                  "Iterator": {
                      "StartAt": "C",
                      "States": {"C": {"Type": "Task",
                                       "Resource": "combine",
                                       "End": True}},
                  },
                  "End": True},
        },
    })
    record = run(stepfunctions.start_execution(
        "tagger", {"items": [{"value": 1}, {"value": 2}]}))
    assert record.output == ["t:1", "t:2"]


def test_map_over_empty_list(deployed, stepfunctions, run):
    stepfunctions.create_state_machine("emptymap", {
        "StartAt": "M",
        "States": {
            "M": {"Type": "Map", "ItemsPath": "$.items",
                  "Iterator": {
                      "StartAt": "E",
                      "States": {"E": {"Type": "Task", "Resource": "echo",
                                       "End": True}},
                  },
                  "End": True},
        },
    })
    record = run(stepfunctions.start_execution("emptymap", {"items": []}))
    assert record.status == "SUCCEEDED"
    assert record.output == []


def test_map_items_path_not_a_list_fails(deployed, stepfunctions, run):
    stepfunctions.create_state_machine("badmap", {
        "StartAt": "M",
        "States": {
            "M": {"Type": "Map", "ItemsPath": "$.items",
                  "Iterator": {
                      "StartAt": "E",
                      "States": {"E": {"Type": "Task", "Resource": "echo",
                                       "End": True}},
                  },
                  "End": True},
        },
    })
    record = run(stepfunctions.start_execution("badmap", {"items": 7}))
    assert record.status == "FAILED"
    assert record.error == "States.Runtime"


def test_execution_record_duration_requires_finish(deployed, stepfunctions):
    from repro.aws.stepfunctions import ExecutionRecord
    record = ExecutionRecord(execution_id=1, machine_name="m",
                             started_at=0.0)
    with pytest.raises(ValueError):
        record.duration


def test_list_and_describe_executions(deployed, stepfunctions, run):
    stepfunctions.create_state_machine("inventory", {
        "StartAt": "E",
        "States": {"E": {"Type": "Task", "Resource": "echo", "End": True}},
    })
    first = run(stepfunctions.start_execution("inventory", 1))
    second = run(stepfunctions.start_execution("inventory", 2))
    executions = stepfunctions.list_executions(name="inventory")
    assert [record.execution_id for record in executions] == [
        second.execution_id, first.execution_id]
    assert stepfunctions.list_executions(status="FAILED") == []
    assert (stepfunctions.describe_execution(first.execution_id)
            is first)
    import pytest as _pytest
    with _pytest.raises(KeyError):
        stepfunctions.describe_execution(999_999)
