"""Shared fixtures for AWS platform tests."""

import pytest

from repro.aws import LambdaService, StepFunctionsService
from repro.platforms.billing import BillingMeter
from repro.platforms.calibration import AWSCalibration
from repro.sim import Environment, RandomStreams
from repro.storage.meter import TransactionMeter
from repro.telemetry import Telemetry


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def telemetry(env):
    return Telemetry(clock=lambda: env.now)


@pytest.fixture
def billing(env):
    return BillingMeter(clock=lambda: env.now)


@pytest.fixture
def meter(env):
    return TransactionMeter(clock=lambda: env.now)


@pytest.fixture
def streams():
    return RandomStreams(seed=1234)


@pytest.fixture
def calibration():
    calibration = AWSCalibration()
    # Unit tests assert exact durations: pin the CPU share to 1.0.
    calibration.full_cpu_memory_mb = 1536.0
    return calibration


@pytest.fixture
def lambdas(env, telemetry, billing, streams, calibration):
    return LambdaService(env, telemetry, billing, streams, calibration)


@pytest.fixture
def stepfunctions(env, lambdas, telemetry, meter):
    return StepFunctionsService(env, lambdas, telemetry, meter)


@pytest.fixture
def run(env):
    """Drive a generator to completion inside the simulation."""
    def runner(generator):
        def process(env):
            result = yield from generator
            return result
        return env.run(until=env.process(process(env)))
    return runner
