"""Tests for the end-to-end ML pipeline and model selection."""

import numpy as np
import pytest

from repro.workloads.ml import (
    default_candidates,
    make_car_pricing_dataset,
    r2_score,
    select_best,
    train_test_split,
)
from repro.workloads.ml.pipeline import (
    MLPipeline,
    apply_preparation,
    prepare_data,
    reduce_dimensions,
    run_inference,
    run_training_pipeline,
)
from repro.workloads.ml.selection import (
    BestFitCollector,
    CandidateResult,
    ModelCandidate,
)


@pytest.fixture(scope="module")
def dataset():
    return make_car_pricing_dataset(600, seed=11)


@pytest.fixture(scope="module")
def split(dataset):
    return train_test_split(dataset, test_fraction=0.25, seed=1)


def test_prepare_data_concatenates_scaled_and_encoded(dataset):
    prepared = prepare_data(dataset)
    n_categories = prepared.encoder.n_output_features
    assert prepared.matrix.shape == (600, 14 + n_categories)
    assert prepared.matrix.min() >= 0.0
    assert prepared.matrix.max() <= 1.0 + 1e-12


def test_reduce_dimensions_caps_components(dataset):
    prepared = prepare_data(dataset)
    reduced = reduce_dimensions(prepared.matrix, n_components=40)
    assert reduced.matrix.shape == (600, 40)


def test_training_pipeline_produces_useful_model(split):
    train, test = split
    trained = run_training_pipeline(train, seed=0)
    assert len(trained.results) == 3
    assert trained.best in trained.results
    predictions = run_inference(test, trained)
    assert r2_score(test.prices, predictions) > 0.5


def test_best_model_has_lowest_error(split):
    train, _ = split
    trained = run_training_pipeline(train, seed=0)
    errors = [result.error for result in trained.results]
    assert trained.best.error == min(errors)


def test_apply_preparation_matches_training_path(dataset):
    prepared = prepare_data(dataset)
    reapplied = apply_preparation(dataset, prepared.encoder, prepared.scaler)
    assert np.allclose(prepared.matrix, reapplied)


def test_model_candidate_build_unknown_algorithm():
    with pytest.raises(ValueError, match="unknown algorithm"):
        ModelCandidate("x", "svm").build()


def test_default_candidates_cover_all_three_algorithms():
    algorithms = {candidate.algorithm for candidate in default_candidates()}
    assert algorithms == {"random_forest", "kneighbors", "lasso"}
    heavy = [candidate for candidate in default_candidates()
             if candidate.heavy]
    assert all(candidate.algorithm == "random_forest" for candidate in heavy)


def test_select_best_empty_raises():
    with pytest.raises(ValueError):
        select_best([])


def test_best_fit_collector_keeps_minimum():
    collector = BestFitCollector()
    first = CandidateResult(ModelCandidate("a", "lasso"), None, 10.0)
    better = CandidateResult(ModelCandidate("b", "lasso"), None, 5.0)
    worse = CandidateResult(ModelCandidate("c", "lasso"), None, 7.0)
    assert collector.report(first) is True
    assert collector.report(better) is True
    assert collector.report(worse) is False
    assert collector.best is better
    assert collector.reports == 3


def test_pipeline_memoizes_training(split):
    train, test = split
    pipeline = MLPipeline(seed=0)
    first = pipeline.train(train)
    second = pipeline.train(train)
    assert first is second  # cache hit, same object


def test_pipeline_memoizes_inference(split):
    train, test = split
    pipeline = MLPipeline(seed=0)
    first = pipeline.infer(train, test)
    second = pipeline.infer(train, test)
    assert first is second


def test_pipeline_distinct_datasets_are_distinct_entries(split):
    train, _ = split
    other = make_car_pricing_dataset(80, seed=99)
    pipeline = MLPipeline(seed=0)
    assert pipeline.train(train) is not pipeline.train(other)


def test_trained_model_payload_sizes_span_paper_range(split):
    """Model sizes should span ~100 KB (linear) to multi-MB (KNN/forest)."""
    train, _ = split
    trained = run_training_pipeline(train, seed=0)
    sizes = {result.candidate.algorithm: result.payload_size
             for result in trained.results}
    assert sizes["lasso"] < 10_000
    assert sizes["kneighbors"] > 30_000
    assert sizes["random_forest"] > 10_000
