"""Tests for the synthetic video, chunker and face detector."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.payload import KB
from repro.workloads.video import (
    DetectionModel,
    FaceDetector,
    SyntheticVideo,
    VideoPipeline,
    chunk_video,
    merge_chunks,
)


@pytest.fixture(scope="module")
def video():
    return SyntheticVideo(n_frames=24, height=72, width=128, seed=3,
                          faces_per_frame=1.0)


def test_video_validates_arguments():
    with pytest.raises(ValueError):
        SyntheticVideo(n_frames=0)
    with pytest.raises(ValueError):
        SyntheticVideo(n_frames=5, height=10, width=10)


def test_frames_are_deterministic(video):
    assert np.array_equal(video.frame(3), video.frame(3))
    other = SyntheticVideo(n_frames=24, height=72, width=128, seed=3)
    assert np.array_equal(video.frame(3), other.frame(3))


def test_frame_values_in_unit_range(video):
    frame = video.frame(0)
    assert frame.min() >= 0.0 and frame.max() <= 1.0


def test_frame_index_bounds(video):
    with pytest.raises(IndexError):
        video.frame(24)
    with pytest.raises(IndexError):
        video.frame(-1)


def test_total_bytes_models_frame_count():
    video = SyntheticVideo(n_frames=100, height=72, width=128,
                           bytes_per_frame=50 * KB)
    assert video.total_bytes == 100 * 50 * KB


def test_chunking_covers_all_frames(video):
    chunks = chunk_video(video, 5)
    assert chunks[0].start_frame == 0
    assert chunks[-1].stop_frame == video.n_frames
    covered = sum(chunk.n_frames for chunk in chunks)
    assert covered == video.n_frames
    for previous, current in zip(chunks, chunks[1:]):
        assert previous.stop_frame == current.start_frame


def test_chunk_count_capped_by_frames(video):
    chunks = chunk_video(video, 1000)
    assert len(chunks) == video.n_frames


def test_payload_limit_forces_more_chunks():
    video = SyntheticVideo(n_frames=100, height=72, width=128,
                           bytes_per_frame=50 * KB)
    chunks = chunk_video(video, 2, max_chunk_bytes=256 * KB)
    # At most 5 frames (250 KB) per chunk → at least 20 chunks.
    assert len(chunks) >= 20
    assert all(chunk.payload_size <= 256 * KB for chunk in chunks)


def test_chunk_rejects_nonpositive_count(video):
    with pytest.raises(ValueError):
        chunk_video(video, 0)


def test_detector_finds_planted_faces(video):
    detector = FaceDetector(DetectionModel())
    found_frames = set()
    truth_frames = {face.frame_index for face in video.ground_truth}
    for index in range(video.n_frames):
        if detector.detect_frame(video.frame(index)):
            found_frames.add(index)
    # Recall over frames: the detector finds faces in most frames that
    # actually contain them.
    if truth_frames:
        recall = len(found_frames & truth_frames) / len(truth_frames)
        assert recall > 0.6


def test_detector_rejects_empty_frames():
    empty = SyntheticVideo(n_frames=8, height=72, width=128, seed=5,
                           faces_per_frame=0.0)
    detector = FaceDetector(DetectionModel())
    false_positives = sum(
        len(detector.detect_frame(empty.frame(index))) for index in range(8))
    assert false_positives == 0


def test_detection_positions_near_ground_truth(video):
    detector = FaceDetector(DetectionModel())
    for face in video.ground_truth[:5]:
        hits = detector.detect_frame(video.frame(face.frame_index))
        if not hits:
            continue
        nearest = min(hits, key=lambda hit: (hit[0] - face.row) ** 2
                      + (hit[1] - face.col) ** 2)
        assert abs(nearest[0] - face.row) <= face.size
        assert abs(nearest[1] - face.col) <= face.size


def test_merge_orders_and_flattens():
    merged = merge_chunks([
        (1, [(5, 0, 0)]),
        (0, [(1, 2, 3), (0, 1, 1)]),
    ])
    assert merged.n_chunks == 2
    assert merged.detections == [(0, 1, 1), (1, 2, 3), (5, 0, 0)]


def test_pipeline_end_to_end(video):
    pipeline = VideoPipeline(video)
    result = pipeline.run(n_workers=4)
    assert result.n_workers == 4
    assert len(result.detections) > 0
    # Same detections regardless of worker count (correctness invariant).
    serial = pipeline.run(n_workers=1)
    assert result.detections == serial.detections


def test_detection_model_payload_is_1mb():
    assert DetectionModel().payload_size == 1024 * 1024


@given(n_workers=st.integers(1, 30))
@settings(max_examples=15, deadline=None)
def test_chunking_partition_invariant(n_workers):
    video = SyntheticVideo(n_frames=60, seed=0, faces_per_frame=0.0)
    chunks = chunk_video(video, n_workers)
    assert sum(chunk.n_frames for chunk in chunks) == 60
    assert len(chunks) == min(n_workers, 60)
