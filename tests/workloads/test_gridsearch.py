"""Tests for the hyper-parameter grid search."""

import numpy as np
import pytest

from repro.workloads.ml.gridsearch import (
    GridSearch,
    ParameterGrid,
    grid_candidates,
)


@pytest.fixture(scope="module")
def problem():
    rng = np.random.default_rng(3)
    features = rng.normal(size=(240, 5))
    targets = features @ np.array([2.0, -1.0, 0.5, 0.0, 3.0]) \
        + rng.normal(0, 0.1, 240)
    return (features[:180], targets[:180], features[180:], targets[180:])


def test_parameter_grid_product():
    grid = ParameterGrid({"a": [1, 2, 3], "b": [True, False]})
    assert len(grid) == 6
    points = list(grid)
    assert len(points) == 6
    assert {frozenset(point.items()) for point in points} == {
        frozenset({"a": a, "b": b}.items())
        for a in (1, 2, 3) for b in (True, False)}


def test_parameter_grid_validation():
    with pytest.raises(ValueError):
        ParameterGrid({})
    with pytest.raises(ValueError):
        ParameterGrid({"a": []})
    with pytest.raises(ValueError):
        ParameterGrid({"a": 5})


def test_grid_candidates_naming_and_heaviness():
    candidates = grid_candidates("random_forest",
                                 {"n_estimators": [5, 10]})
    assert len(candidates) == 2
    assert all(candidate.heavy for candidate in candidates)
    assert candidates[0].name.startswith("random_forest[")
    light = grid_candidates("lasso", {"alpha": [0.1]})
    assert not light[0].heavy


def test_grid_search_fits_and_ranks(problem):
    train_x, train_y, val_x, val_y = problem
    search = GridSearch({
        "lasso": {"alpha": [0.01, 10_000.0]},
        "kneighbors": {"n_neighbors": [3]},
    }).fit(train_x, train_y, val_x, val_y)
    assert len(search.results_) == 3
    board = search.leaderboard()
    assert board[0].error <= board[-1].error
    assert search.best_ is board[0]
    # On a linear problem, the barely-regularised lasso must win, and the
    # absurdly-regularised one must come last.
    assert search.best_.candidate.params == {"alpha": 0.01}
    assert board[-1].candidate.params == {"alpha": 10_000.0}


def test_grid_search_requires_fit_before_leaderboard():
    search = GridSearch({"lasso": {"alpha": [0.1]}})
    with pytest.raises(RuntimeError):
        search.leaderboard()


def test_grid_search_validates_input():
    with pytest.raises(ValueError):
        GridSearch({})
