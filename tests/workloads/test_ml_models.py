"""Tests for preprocessing, PCA and the from-scratch regressors."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.ml import (
    KNeighborsRegressor,
    LassoRegressor,
    MinMaxScaler,
    OneHotEncoder,
    PCA,
    RandomForestRegressor,
    make_car_pricing_dataset,
    mean_squared_error,
    r2_score,
)
from repro.workloads.ml.models import DecisionTreeRegressor, NotFittedError
from repro.workloads.ml.preprocess import NotFittedError as PrepNotFitted


@pytest.fixture(scope="module")
def dataset():
    return make_car_pricing_dataset(400, seed=7)


@pytest.fixture(scope="module")
def regression_problem():
    """A well-conditioned synthetic regression task."""
    rng = np.random.default_rng(0)
    features = rng.normal(size=(300, 6))
    coefficients = np.array([3.0, -2.0, 0.0, 1.5, 0.0, 4.0])
    targets = features @ coefficients + rng.normal(0, 0.1, 300)
    return features, targets


# -- preprocessing ------------------------------------------------------------

def test_one_hot_encoder_shapes(dataset):
    encoder = OneHotEncoder().fit(dataset.features)
    encoded = encoder.transform(dataset.features)
    assert encoded.shape == (400, encoder.n_output_features)
    assert set(np.unique(encoded)) <= {0.0, 1.0}
    # Each categorical column contributes exactly one 1 per row.
    assert (encoded.sum(axis=1) == 12).all()


def test_one_hot_unknown_category_maps_to_zeros(dataset):
    encoder = OneHotEncoder().fit(dataset.features)
    from repro.workloads.ml.dataset import Frame
    weird = Frame({name: np.array(["__unseen__"], dtype=object)
                   if name in dataset.features.categorical_columns
                   else np.array([0.0])
                   for name in dataset.features.column_names})
    encoded = encoder.transform(weird)
    assert encoded.sum() == 0.0


def test_one_hot_requires_fit(dataset):
    with pytest.raises(PrepNotFitted):
        OneHotEncoder().transform(dataset.features)


def test_minmax_scaler_range(dataset):
    matrix = dataset.features.numeric_matrix()
    scaled = MinMaxScaler().fit_transform(matrix)
    assert scaled.min() >= 0.0
    assert scaled.max() <= 1.0 + 1e-12
    assert np.isclose(scaled.min(axis=0), 0.0).all()


def test_minmax_scaler_constant_column():
    matrix = np.column_stack([np.ones(10), np.arange(10.0)])
    scaled = MinMaxScaler().fit_transform(matrix)
    assert (scaled[:, 0] == 0.0).all()


def test_minmax_scaler_column_mismatch():
    scaler = MinMaxScaler().fit(np.zeros((5, 3)))
    with pytest.raises(ValueError, match="columns"):
        scaler.transform(np.zeros((5, 4)))


# -- PCA ------------------------------------------------------------------------

def test_pca_reduces_dimensions():
    rng = np.random.default_rng(0)
    data = rng.normal(size=(200, 10))
    reduced = PCA(n_components=3).fit_transform(data)
    assert reduced.shape == (200, 3)


def test_pca_captures_dominant_direction():
    rng = np.random.default_rng(0)
    direction = np.array([1.0, 1.0, 0.0]) / np.sqrt(2)
    data = (rng.normal(size=(500, 1)) * 10) @ direction[None, :]
    data += rng.normal(0, 0.1, size=(500, 3))
    pca = PCA(n_components=1).fit(data)
    assert pca.explained_variance_ratio_[0] > 0.98


def test_pca_transform_is_centered():
    rng = np.random.default_rng(1)
    data = rng.normal(loc=100.0, size=(100, 4))
    pca = PCA(n_components=2).fit(data)
    reduced = pca.transform(data)
    assert np.allclose(reduced.mean(axis=0), 0.0, atol=1e-8)


def test_pca_rejects_too_many_components():
    with pytest.raises(ValueError, match="n_components"):
        PCA(n_components=10).fit(np.zeros((5, 3)))


# -- metrics ----------------------------------------------------------------------

def test_mse_and_r2_perfect_prediction():
    y = np.array([1.0, 2.0, 3.0])
    assert mean_squared_error(y, y) == 0.0
    assert r2_score(y, y) == 1.0


def test_r2_of_mean_predictor_is_zero():
    y = np.array([1.0, 2.0, 3.0])
    assert r2_score(y, np.full(3, 2.0)) == pytest.approx(0.0)


def test_mse_shape_mismatch():
    with pytest.raises(ValueError):
        mean_squared_error(np.zeros(3), np.zeros(4))


# -- models --------------------------------------------------------------------------

def test_decision_tree_fits_signal(regression_problem):
    features, targets = regression_problem
    tree = DecisionTreeRegressor(max_depth=8, seed=0).fit(features, targets)
    predictions = tree.predict(features)
    assert r2_score(targets, predictions) > 0.7


def test_decision_tree_predict_before_fit():
    with pytest.raises(NotFittedError):
        DecisionTreeRegressor().predict(np.zeros((2, 2)))


def test_decision_tree_constant_target_is_single_leaf():
    tree = DecisionTreeRegressor().fit(np.random.rand(20, 3), np.ones(20))
    assert tree.node_count_ == 1
    assert np.allclose(tree.predict(np.random.rand(5, 3)), 1.0)


def test_random_forest_beats_single_shallow_tree(regression_problem):
    features, targets = regression_problem
    rng = np.random.default_rng(9)
    test_idx = rng.choice(len(features), 60, replace=False)
    train_mask = np.ones(len(features), dtype=bool)
    train_mask[test_idx] = False

    forest = RandomForestRegressor(n_estimators=15, max_depth=6, seed=0)
    forest.fit(features[train_mask], targets[train_mask])
    tree = DecisionTreeRegressor(max_depth=2, seed=0)
    tree.fit(features[train_mask], targets[train_mask])

    forest_error = mean_squared_error(
        targets[test_idx], forest.predict(features[test_idx]))
    tree_error = mean_squared_error(
        targets[test_idx], tree.predict(features[test_idx]))
    assert forest_error < tree_error


def test_random_forest_payload_grows_with_estimators(regression_problem):
    features, targets = regression_problem
    small = RandomForestRegressor(n_estimators=2, seed=0).fit(
        features, targets)
    large = RandomForestRegressor(n_estimators=10, seed=0).fit(
        features, targets)
    assert large.payload_size > small.payload_size


def test_knn_exact_on_memorised_points():
    features = np.array([[0.0], [1.0], [10.0], [11.0]])
    targets = np.array([0.0, 1.0, 10.0, 11.0])
    knn = KNeighborsRegressor(n_neighbors=1).fit(features, targets)
    assert np.allclose(knn.predict(features), targets)


def test_knn_neighbourhood_averaging():
    features = np.array([[0.0], [1.0], [100.0], [101.0]])
    targets = np.array([0.0, 2.0, 100.0, 102.0])
    knn = KNeighborsRegressor(n_neighbors=2).fit(features, targets)
    assert knn.predict(np.array([[0.5]]))[0] == pytest.approx(1.0)
    assert knn.predict(np.array([[100.5]]))[0] == pytest.approx(101.0)


def test_knn_payload_is_training_set_sized():
    rng = np.random.default_rng(0)
    features = rng.normal(size=(1000, 20))
    knn = KNeighborsRegressor().fit(features, rng.normal(size=1000))
    assert knn.payload_size > 1000 * 20 * 8


def test_knn_chunked_predict_matches_unchunked(regression_problem):
    features, targets = regression_problem
    small_chunks = KNeighborsRegressor(n_neighbors=3, chunk_size=7)
    one_chunk = KNeighborsRegressor(n_neighbors=3, chunk_size=10_000)
    small_chunks.fit(features, targets)
    one_chunk.fit(features, targets)
    assert np.allclose(small_chunks.predict(features[:50]),
                       one_chunk.predict(features[:50]))


def test_lasso_recovers_sparse_coefficients(regression_problem):
    features, targets = regression_problem
    lasso = LassoRegressor(alpha=0.05).fit(features, targets)
    # True zero coefficients (indices 2, 4) should be (near) zero.
    assert abs(lasso.coef_[2]) < 0.2
    assert abs(lasso.coef_[4]) < 0.2
    assert r2_score(targets, lasso.predict(features)) > 0.95


def test_lasso_large_alpha_kills_all_coefficients(regression_problem):
    features, targets = regression_problem
    lasso = LassoRegressor(alpha=1e6).fit(features, targets)
    assert np.allclose(lasso.coef_, 0.0)
    # Prediction degenerates to the mean.
    assert np.allclose(lasso.predict(features), targets.mean(), atol=1.0)


def test_lasso_rejects_negative_alpha():
    with pytest.raises(ValueError):
        LassoRegressor(alpha=-1.0)


def test_models_validate_inputs():
    with pytest.raises(ValueError):
        RandomForestRegressor().fit(np.zeros((5, 2)), np.zeros(4))
    with pytest.raises(ValueError):
        KNeighborsRegressor().fit(np.zeros(5), np.zeros(5))
    with pytest.raises(ValueError):
        LassoRegressor().fit(np.zeros((0, 2)), np.zeros(0))


@given(st.integers(1, 50))
@settings(max_examples=20, deadline=None)
def test_knn_predictions_within_target_range(k):
    rng = np.random.default_rng(0)
    features = rng.normal(size=(60, 4))
    targets = rng.uniform(10.0, 20.0, 60)
    knn = KNeighborsRegressor(n_neighbors=k).fit(features, targets)
    predictions = knn.predict(rng.normal(size=(10, 4)))
    assert (predictions >= 10.0).all() and (predictions <= 20.0).all()
