"""Tests for the synthetic car-pricing dataset and Frame."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.ml import Frame, make_car_pricing_dataset, train_test_split


def test_dataset_shape_matches_paper():
    dataset = make_car_pricing_dataset(200, seed=0)
    assert dataset.n_rows == 200
    assert len(dataset.features.numeric_columns) == 14
    assert len(dataset.features.categorical_columns) == 12
    assert len(dataset.features.column_names) == 26


def test_dataset_is_deterministic_per_seed():
    first = make_car_pricing_dataset(100, seed=5)
    second = make_car_pricing_dataset(100, seed=5)
    assert np.array_equal(first.prices, second.prices)
    assert np.array_equal(first.features["mileage_km"],
                          second.features["mileage_km"])


def test_different_seeds_differ():
    first = make_car_pricing_dataset(100, seed=1)
    second = make_car_pricing_dataset(100, seed=2)
    assert not np.array_equal(first.prices, second.prices)


def test_prices_are_positive_and_signal_bearing():
    dataset = make_car_pricing_dataset(2000, seed=3)
    assert (dataset.prices > 0).all()
    # Newer cars should be pricier on average (signal, not noise).
    year = dataset.features["year"]
    newer = dataset.prices[year >= 2015].mean()
    older = dataset.prices[year <= 2005].mean()
    assert newer > older


def test_rejects_nonpositive_rows():
    with pytest.raises(ValueError):
        make_car_pricing_dataset(0)


def test_frame_rejects_ragged_columns():
    with pytest.raises(ValueError, match="ragged"):
        Frame({"a": np.zeros(3), "b": np.zeros(4)})


def test_frame_take_subsets_rows():
    dataset = make_car_pricing_dataset(50, seed=0)
    subset = dataset.features.take(np.array([0, 5, 10]))
    assert subset.n_rows == 3
    assert subset["year"][1] == dataset.features["year"][5]


def test_frame_numeric_matrix_shape():
    dataset = make_car_pricing_dataset(30, seed=0)
    assert dataset.features.numeric_matrix().shape == (30, 14)


def test_frame_payload_size_scales_with_rows():
    small = make_car_pricing_dataset(200, seed=0).features
    large = make_car_pricing_dataset(2000, seed=0).features
    assert large.payload_size > 5 * small.payload_size


def test_train_test_split_partitions():
    dataset = make_car_pricing_dataset(100, seed=0)
    train, test = train_test_split(dataset, test_fraction=0.2, seed=1)
    assert train.n_rows + test.n_rows == 100
    assert test.n_rows == 20
    assert train.name.endswith("-train")
    assert test.name.endswith("-test")


def test_train_test_split_validates_fraction():
    dataset = make_car_pricing_dataset(10, seed=0)
    with pytest.raises(ValueError):
        train_test_split(dataset, test_fraction=0.0)
    with pytest.raises(ValueError):
        train_test_split(dataset, test_fraction=1.0)


@given(n_rows=st.integers(1, 300))
@settings(max_examples=20, deadline=None)
def test_any_size_dataset_is_consistent(n_rows):
    dataset = make_car_pricing_dataset(n_rows, seed=0)
    assert dataset.n_rows == n_rows
    assert len(dataset.prices) == n_rows
    assert np.isfinite(dataset.prices).all()
