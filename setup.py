"""Thin setup.py shim.

All metadata lives in pyproject.toml; this file exists so that
``python setup.py develop`` works on machines without the ``wheel``
package (pip's editable path needs wheel; setuptools' develop does not).
"""

from setuptools import setup

setup()
