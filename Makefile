# Convenience targets for the stateful serverless workbench.

.PHONY: install test test-fast test-faults test-overload test-audit test-gcp test-resilience test-supervise test-fuzz fuzz audit-sweep resilience-sweep resume-demo bench bench-kernel bench-campaign examples takeaways paper clean

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/ -q

# Parallel test run; falls back to the serial suite when pytest-xdist
# (the `dev` extra) is not installed.
test-fast:
	pytest tests/ -q -n auto || pytest tests/ -q

# Fault-injection and reliability tests only.
test-faults:
	pytest tests/ -q -m faults

# Overload, throttling and backpressure tests only.
test-overload:
	pytest tests/ -q -m overload

# Runtime invariant-auditor tests only.
test-audit:
	pytest tests/ -q -m audit

# GCP backend tests only (Cloud Functions, Workflows, campaigns).
test-gcp:
	pytest tests/ -q -m gcp

# Correlated-outage, mitigation-policy and SLO-campaign tests only.
test-resilience:
	pytest tests/ -q -m resilience

# Crash-safe supervision: chaos-kill, timeout, journal and resume tests.
test-supervise:
	pytest tests/ -q -m supervise

# Campaign-fuzzer tests: generation, differential oracle, shrinking,
# planted-bug acceptance demo and corpus replay.
test-fuzz:
	pytest tests/ -q -m fuzz

# A bounded fuzz session plus a regression-corpus replay; exit 1 on any
# cross-path divergence or a corpus bug coming back.
fuzz:
	python -m repro fuzz run --budget 50 --seed 0 --no-cache
	python -m repro fuzz replay corpus

# Audited chaos + overload sweeps; exit 1 on any invariant violation.
audit-sweep:
	python -m repro audit

# Audited outage-window sweep with client-side mitigation across all
# registered backends; prints availability/MTTR/SLO verdicts.
resilience-sweep:
	python -m repro resilience --audit

# Crash-safety demo: journal a sweep, interrupt it mid-flight, then
# finish it with `repro resume` — bit-identical to an uninterrupted run.
resume-demo:
	rm -rf /tmp/repro-resume-demo
	-timeout -s INT 3 python -m repro latency --iterations 200 \
		--journal /tmp/repro-resume-demo --no-cache -j 2
	python -m repro resume /tmp/repro-resume-demo

bench:
	pytest benchmarks/ --benchmark-only -s

# Kernel hot-path microbenchmark: seed vs optimized events/sec, written
# to BENCH_kernel.json at the repo root.
bench-kernel:
	PYTHONPATH=src python benchmarks/test_kernel_throughput.py

# Macro benchmark: an audited idle-heavy campaign end to end, seed
# kernel + sampled polling vs live kernel + idle-poll elision, written
# to BENCH_campaign.json at the repo root.
bench-campaign:
	PYTHONPATH=src python benchmarks/test_macro_campaign.py

examples:
	@for script in examples/*.py; do \
		echo "== $$script"; python $$script || exit 1; done

takeaways:
	python -m repro takeaways

paper:
	python -m repro paper

clean:
	find . -name __pycache__ -type d -exec rm -rf {} + 2>/dev/null; true
	rm -rf .pytest_cache .benchmarks src/repro.egg-info
