# Convenience targets for the stateful serverless workbench.

.PHONY: install test bench examples takeaways paper clean

install:
	pip install -e . || python setup.py develop

test:
	pytest tests/ -q

bench:
	pytest benchmarks/ --benchmark-only -s

examples:
	@for script in examples/*.py; do \
		echo "== $$script"; python $$script || exit 1; done

takeaways:
	python -m repro takeaways

paper:
	python -m repro paper

clean:
	find . -name __pycache__ -type d -exec rm -rf {} + 2>/dev/null; true
	rm -rf .pytest_cache .benchmarks src/repro.egg-info
