"""Ablation — event-sourced replay cost on vs off (DESIGN.md decision 1).

The paper attributes Az-Dorch/Az-Dent GB-s inflation to orchestrator
replay.  Setting the replay CPU constants to zero isolates that
mechanism: with replay free, the durable variants' GB-s should collapse
toward the stateless baseline.
"""

from conftest import fresh_testbed, once

from repro.core import ExperimentRunner, build_ml_training_deployments, \
    cost_report
from repro.core.report import render_table

ITERATIONS = 15


def _gb_s(replay_enabled: bool):
    testbed = fresh_testbed(seed=61)
    if not replay_enabled:
        testbed.azure_calibration.episode_base_cpu_s = 0.0
        testbed.azure_calibration.replay_event_cpu_s = 0.0
    results = {}
    runner = ExperimentRunner(think_time_s=30.0, settle_time_s=5.0)
    for name in ("Az-Func", "Az-Dorch"):
        deployment = build_ml_training_deployments(testbed, "small")[name]
        deployment.deploy()
        if not replay_enabled:
            # The inline body cost is re-paid on every replay too.
            for spec in testbed.durable.taskhub.orchestrators.values():
                spec.inline_cpu_s = 0.0
        runner.run_campaign(deployment, iterations=ITERATIONS, warmup=1)
        results[name] = cost_report(deployment).gb_s
        # Meters are shared per platform: snapshot then reset.
        testbed.azure.billing.reset()
        testbed.azure.meter.reset()
    return results


def test_ablation_replay_cost(benchmark):
    def run_both():
        return {"replay on": _gb_s(True), "replay off": _gb_s(False)}

    data = once(benchmark, run_both)
    inflation = {
        mode: values["Az-Dorch"] / values["Az-Func"] - 1
        for mode, values in data.items()}
    print()
    print(render_table(
        ["mode", "Az-Func GB-s", "Az-Dorch GB-s", "inflation"],
        [[mode, values["Az-Func"], values["Az-Dorch"],
          f"{inflation[mode]:+.0%}"]
         for mode, values in data.items()],
        title="Ablation: orchestrator replay CPU on/off (small dataset)"))

    # Replay is the inflation mechanism: disabling it removes most of
    # the durable GB-s premium.
    assert inflation["replay on"] > 0.05
    assert inflation["replay off"] < inflation["replay on"] * 0.6
