"""Kernel dispatch throughput — events/sec, optimized vs seed kernel.

The simulation kernel is the hot path under every campaign, so its
dispatch rate bounds the whole bench suite.  This microbenchmark drives
an identical workload (timeout ticking, immediate-event ping-pong and
AllOf fan-outs — the three dispatch shapes campaigns exercise) through

* ``repro.sim.kernel`` — the live, optimized kernel, and
* ``benchmarks/_seed_kernel.py`` — a frozen copy of the pre-optimization
  kernel,

and reports the events/sec ratio.  ``make bench-kernel`` runs it in
script mode and records the numbers in ``BENCH_kernel.json``.
"""

from __future__ import annotations

import gc
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import _seed_kernel

from repro.sim import kernel as live_kernel

#: The optimization budget: the live kernel must dispatch at least this
#: many times more events/sec than the seed kernel.  Quiet-machine
#: best-of runs land at 1.6-1.73x; the floor leaves headroom for noise
#: since this assert is in tier-1.
SPEEDUP_FLOOR = 1.5


def _workload(kernel, n_processes: int, n_steps: int) -> float:
    """Events/sec over a mixed dispatch workload on ``kernel``."""
    env = kernel.Environment()

    def ticker(env, steps):
        # Pure timeout dispatch: the cold-start campaign shape.
        for _ in range(steps):
            yield env.timeout(1.0)

    def pingpong(env, steps):
        # Already-triggered events resumed on the next dispatch: the
        # storage/queue completion shape.
        for _ in range(steps):
            event = env.event()
            event.succeed(None)
            yield event
            yield env.timeout(0.5)

    def fanout(env, steps):
        # AllOf over timeout batches: the fan-out workflow shape.
        for _ in range(steps // 4):
            yield env.all_of([env.timeout(0.25) for _ in range(4)])

    processes = []
    for _ in range(n_processes):
        processes.append(env.process(ticker(env, n_steps)))
        processes.append(env.process(pingpong(env, n_steps)))
        processes.append(env.process(fanout(env, n_steps)))

    # Drive through run(until=event) — the way Testbed.run drives every
    # campaign — so the stop-event dispatch loop is what gets measured.
    # GC pauses are noise, not dispatch cost: hold collection during the
    # timed window.
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        start = time.perf_counter()
        env.run(until=env.all_of(processes))
        env.run()
        elapsed = time.perf_counter() - start
    finally:
        if gc_was_enabled:
            gc.enable()
    return env._sequence / elapsed


def measure(n_processes: int = 50, n_steps: int = 400,
            rounds: int = 9) -> dict:
    """Best-of-``rounds`` events/sec for both kernels, plus the ratio.

    Rounds are interleaved (seed, optimized, seed, ...) and each side's
    throughput is the max over its rounds: on a machine with bursty
    background load, the max is the round that dodged the noise, so with
    enough rounds both kernels are compared at quiet-machine speed.
    Per-round ratios are reported for diagnostics but deliberately not
    aggregated — load flipping mid-round makes individual ratios swing
    both ways.
    """
    rounds = int(os.environ.get("REPRO_BENCH_ROUNDS") or rounds)
    seeds = []
    lives = []
    for _ in range(rounds):
        seeds.append(_workload(_seed_kernel, n_processes, n_steps))
        lives.append(_workload(live_kernel, n_processes, n_steps))
    return {
        "workload": {"processes": n_processes * 3, "steps": n_steps,
                     "rounds": rounds},
        "seed_events_per_sec": round(max(seeds)),
        "optimized_events_per_sec": round(max(lives)),
        "speedup": round(max(lives) / max(seeds), 3),
        "round_speedups": [
            round(live / seed, 3) for live, seed in zip(lives, seeds)],
        "speedup_floor": SPEEDUP_FLOOR,
    }


def test_kernel_throughput(benchmark):
    from conftest import once

    numbers = once(benchmark, lambda: measure(n_processes=30, n_steps=250))
    print()
    print(f"seed kernel:      {numbers['seed_events_per_sec']:>12,} events/s")
    print(f"optimized kernel: "
          f"{numbers['optimized_events_per_sec']:>12,} events/s")
    print(f"speedup:          {numbers['speedup']:.2f}x "
          f"(floor {SPEEDUP_FLOOR}x)")
    assert numbers["speedup"] >= SPEEDUP_FLOOR


def main() -> int:
    numbers = measure()
    out = Path(__file__).resolve().parent.parent / "BENCH_kernel.json"
    out.write_text(json.dumps(numbers, indent=2) + "\n")
    print(json.dumps(numbers, indent=2))
    print(f"written to {out}")
    return 0 if numbers["speedup"] >= SPEEDUP_FLOOR else 1


if __name__ == "__main__":
    raise SystemExit(main())
