"""Extension experiments — the offerings the paper points at but doesn't run.

The paper's §V-C/§VI suggest remedies for the inefficiencies it measures:
Express-style pricing on AWS, pre-warmed (premium) capacity on Azure, and
the Netherite backend redesign.  These benches quantify each on the same
workloads, answering "what would the paper's charts look like on the
alternative offering?".
"""

import numpy as np
from conftest import fresh_testbed, once

from repro.azure import AzurePriceModel, DurableFunctionsRuntime, \
    OrchestratorSpec
from repro.azure.app import FunctionAppService
from repro.aws.stepfunctions import EXPRESS
from repro.core import Testbed, build_ml_training_deployments, cost_report
from repro.core.report import render_table
from repro.platforms.base import FunctionSpec
from repro.platforms.billing import BillingMeter
from repro.sim import Environment, RandomStreams
from repro.storage.meter import TransactionMeter
from repro.telemetry import Telemetry


# -- Express workflows ---------------------------------------------------------------

def test_extension_express_vs_standard_pricing(benchmark):
    """Express turns the paper's ~20 % small-dataset transition share
    into a near-zero stateful cost for short workflows."""

    def run_both():
        def stage(ctx, event):
            yield from ctx.busy(2.0)
            return event

        definition = {
            "StartAt": "S0",
            "States": {
                "S0": {"Type": "Task", "Resource": "stage", "Next": "S1"},
                "S1": {"Type": "Task", "Resource": "stage", "Next": "S2"},
                "S2": {"Type": "Task", "Resource": "stage", "Next": "S3"},
                "S3": {"Type": "Task", "Resource": "stage", "End": True},
            },
        }
        results = {}
        for workflow_type in ("standard", "express"):
            testbed = fresh_testbed(seed=5)
            testbed.lambdas.register(FunctionSpec(
                name="stage", handler=stage, memory_mb=1536,
                timeout_s=60.0))
            testbed.stepfunctions.create_state_machine(
                "wf", definition, workflow_type=workflow_type)
            for _ in range(20):
                record = testbed.run(
                    testbed.stepfunctions.start_execution("wf", 1))
                assert record.status == "SUCCEEDED"
                testbed.advance(10.0)
            breakdown = testbed.aws_prices.breakdown(
                testbed.aws.billing, testbed.aws.meter)
            results[workflow_type] = breakdown
        return results

    results = once(benchmark, run_both)
    print()
    print(render_table(
        ["workflow type", "compute $", "stateful $", "stateful share"],
        [[name, b.stateless, b.stateful, f"{b.stateful_share:.1%}"]
         for name, b in results.items()],
        title="Extension: Standard vs Express pricing, 20 runs of a "
              "4-state workflow"))

    standard = results["standard"]
    express = results["express"]
    assert standard.transitions > 0 and standard.express == 0
    assert express.transitions == 0 and express.express > 0
    # Express's stateful cost undercuts Standard's for this shape.
    assert express.stateful < standard.stateful * 0.5
    # Compute (the Lambdas) is identical either way.
    assert abs(express.stateless - standard.stateless) \
        < standard.stateless * 0.05


# -- Premium plan ------------------------------------------------------------------------

def test_extension_premium_plan_trade_off(benchmark):
    """Pre-warmed capacity kills the durable cold start; the bill becomes
    a fixed monthly line item instead."""

    def run_both():
        def double(ctx, event):
            yield from ctx.busy(0.5)
            return event * 2

        def orchestrator(context):
            result = yield context.call_activity("double", context.input)
            return result

        outcomes = {}
        for plan in (FunctionAppService.CONSUMPTION,
                     FunctionAppService.PREMIUM):
            env = Environment()
            telemetry = Telemetry(clock=lambda: env.now)
            billing = BillingMeter(clock=lambda: env.now)
            meter = TransactionMeter(clock=lambda: env.now)
            runtime = DurableFunctionsRuntime(
                env, telemetry, billing, meter, RandomStreams(3), plan=plan)
            runtime.register_activity(FunctionSpec(
                name="double", handler=double, memory_mb=1536,
                timeout_s=60.0))
            runtime.register_orchestrator(OrchestratorSpec(
                "wf", orchestrator))

            delays = []
            for index in range(24):    # one request per hour, one day
                def scenario(env):
                    instance_id = yield from runtime.client.start_new(
                        "wf", index)
                    yield from runtime.client.wait_for_completion(
                        instance_id)
                    return runtime.client.get_status(instance_id)

                instance = env.run(until=env.process(scenario(env)))
                delays.append(instance.cold_start_delay)
                env.run(until=env.now + 3600.0)
            outcomes[plan] = {
                "median_cold": float(np.median(delays)),
                "monthly_fixed": (AzurePriceModel(
                    runtime.app.calibration).premium_monthly_cost()
                    if plan == FunctionAppService.PREMIUM else 0.0),
            }
        return outcomes

    outcomes = once(benchmark, run_both)
    print()
    print(render_table(
        ["plan", "median start delay (s)", "fixed $/month"],
        [[plan, data["median_cold"], data["monthly_fixed"]]
         for plan, data in outcomes.items()],
        title="Extension: consumption vs premium plan, hourly durable "
              "requests"))

    consumption = outcomes[FunctionAppService.CONSUMPTION]
    premium = outcomes[FunctionAppService.PREMIUM]
    # Premium erases the cold start...
    assert premium["median_cold"] < consumption["median_cold"] * 0.5
    assert premium["median_cold"] < 0.5
    # ... at a fixed price that dwarfs the consumption bill for this load.
    assert premium["monthly_fixed"] > 100.0


# -- Netherite ------------------------------------------------------------------------------

def test_extension_netherite_backend(benchmark):
    """Netherite-style batching/caching removes most of the durable tax
    the paper measured: replay GB-s and storage transactions collapse."""

    def run_both():
        outcomes = {}
        for netherite in (False, True):
            testbed = Testbed(seed=37)
            testbed.azure_calibration.netherite_mode = netherite
            deployment = build_ml_training_deployments(
                testbed, "small")["Az-Dorch"]
            deployment.deploy()
            latencies = []
            for _ in range(10):
                run = testbed.run(deployment.invoke())
                latencies.append(run.latency)
                testbed.advance(30.0)
            report = cost_report(deployment, per_runs=10)
            outcomes["netherite" if netherite else "classic"] = {
                "median_latency": float(np.median(latencies)),
                "gb_s": report.gb_s,
                "replay_gb_s": report.replay_gb_s,
                "table_tx": testbed.azure.meter.count(service="table"),
            }
        return outcomes

    outcomes = once(benchmark, run_both)
    print()
    print(render_table(
        ["backend", "median latency (s)", "GB-s/run", "replay GB-s/run",
         "table tx"],
        [[name, data["median_latency"], data["gb_s"],
          data["replay_gb_s"], data["table_tx"]]
         for name, data in outcomes.items()],
        title="Extension: classic Durable backend vs Netherite mode "
              "(Az-Dorch ML training, small)"))

    classic = outcomes["classic"]
    netherite = outcomes["netherite"]
    assert netherite["replay_gb_s"] < classic["replay_gb_s"] * 0.5
    assert netherite["table_tx"] < classic["table_tx"] * 0.6
    assert netherite["median_latency"] < classic["median_latency"]
