"""Fig 15 — estimated monthly cost of the video workflow, 20 workers.

Paper claims:

* Az-Dorch's computation cost is comparable to Az-Func's, but "the
  constant queue and event polling adds 70 % transition cost";
* AWS-Step and AWS-Lambda show *higher computation cost* (they need a
  2 GB memory configuration to deliver the same latency);
* AWS's transition cost is ~5 % of its total — "83 % less than Azure".
"""

from conftest import fresh_testbed, once

from repro.core import build_video_deployments, cost_report
from repro.core.costs import monthly_projection
from repro.core.report import render_table

RUNS_PER_MONTH = 30   # one video-processing run per day
WORKERS = 20
MEASURED_RUNS = 5


def _idle_polling_transactions(seed: int) -> int:
    """Measure one idle hour of durable polling, scale to a month."""
    testbed = fresh_testbed(seed=seed)
    deployment = build_video_deployments(testbed, n_workers=WORKERS)[
        "Az-Dorch"]
    deployment.deploy()
    testbed.run(deployment.invoke())       # wake the pumps
    before = len(testbed.azure.meter)
    testbed.advance(3600.0)
    per_hour = len(testbed.azure.meter) - before
    return per_hour * 24 * 30


def test_fig15_video_monthly_cost(benchmark):
    def run_all():
        reports = {}
        for name in ("AWS-Lambda", "AWS-Step", "Az-Func", "Az-Dorch"):
            testbed = fresh_testbed(seed=71)
            deployment = build_video_deployments(
                testbed, n_workers=WORKERS)[name]
            deployment.deploy()
            for _ in range(MEASURED_RUNS):
                testbed.run(deployment.invoke())
                testbed.advance(30.0)
            per_run = cost_report(deployment, per_runs=MEASURED_RUNS)
            idle = (_idle_polling_transactions(seed=72)
                    if name == "Az-Dorch" else 0)
            reports[name] = monthly_projection(
                per_run, RUNS_PER_MONTH,
                idle_transactions_per_month=idle)
        return reports

    reports = once(benchmark, run_all)
    print()
    print(render_table(
        ["variant", "compute $/mo", "transaction $/mo", "total $/mo",
         "tx share"],
        [[name, report.compute_cost, report.transaction_cost, report.total,
          f"{report.transaction_share:.0%}"]
         for name, report in reports.items()],
        title=f"Fig 15: monthly cost, video processing, {WORKERS} workers, "
              f"{RUNS_PER_MONTH} runs/month"))

    # Azure durable compute ≈ Azure stateless compute.
    ratio = (reports["Az-Dorch"].compute_cost
             / reports["Az-Func"].compute_cost)
    assert 0.8 < ratio < 1.4

    # AWS computation cost exceeds Azure's (2 GB memory configuration).
    assert (reports["AWS-Lambda"].compute_cost
            > reports["Az-Func"].compute_cost)
    assert (reports["AWS-Step"].compute_cost
            > reports["Az-Dorch"].compute_cost)

    # Azure durable pays a large transaction share; AWS pays a small one.
    azure_share = reports["Az-Dorch"].transaction_share
    aws_share = reports["AWS-Step"].transaction_share
    print(f"transaction share: Az-Dorch={azure_share:.0%} (paper: ~70% "
          f"of cost added), AWS-Step={aws_share:.0%} (paper: ~5%)")
    assert azure_share > 0.10
    assert aws_share < 0.10
    # AWS transition cost is far below Azure's transaction cost
    # (paper: "83 % less than the Azure").
    assert (reports["AWS-Step"].transaction_cost
            < 0.5 * reports["Az-Dorch"].transaction_cost)
