"""Fig 7 — CDF of ML-training end-to-end latency (large dataset).

Paper: "a sharp CDF graph for AWS-Step, whereas a long tail latency is
observed on Azure Durable implementations", attributed to unpredictable
entity-state access latency and Azure function scheduling queues.
"""

from conftest import ml_training_campaign, once

from repro.core.metrics import cdf_points, percentile
from repro.core.report import render_cdf

VARIANTS = ["AWS-Step", "Az-Dorch", "Az-Dent"]


def test_fig7_latency_cdf_large_dataset(benchmark):
    def run_all():
        return {name: ml_training_campaign(name, "large")[0]
                for name in VARIANTS}

    campaigns = once(benchmark, run_all)
    series = {name: cdf_points(campaign.latencies)
              for name, campaign in campaigns.items()}
    print()
    print(render_cdf(series,
                     title="Fig 7: CDF of ML training latency (large), "
                           "seconds at each cumulative fraction"))

    # Sharpness = relative spread between the 10th and 99th percentile.
    spreads = {}
    for name, campaign in campaigns.items():
        latencies = campaign.latencies
        spreads[name] = (percentile(latencies, 99)
                         / percentile(latencies, 10))
    print({name: round(value, 3) for name, value in spreads.items()})

    # AWS-Step's CDF is the sharpest of the three.
    assert spreads["AWS-Step"] < spreads["Az-Dorch"]
    assert spreads["AWS-Step"] < spreads["Az-Dent"]
    # And Azure's durable tails stretch visibly (≥8 % p10→p99 spread).
    assert max(spreads["Az-Dorch"], spreads["Az-Dent"]) > 1.08
