"""Fig 11 — cost comparison for the ML training workflow.

Paper claims:

* (11a) Azure durable variants inflate GB-s over the stateless function:
  Az-Dorch +44 %, Az-Dent +88 % on the large dataset (orchestrator/entity
  replays); Az-Queue matches Az-Func.
* (11b) AWS-Step shows the same GB-s as AWS-Lambda (same computation).
* (11c/11d) the stateful (transaction) share is ~20 % for AWS on the
  small dataset, ~2 % on the large; Azure's transaction share is in the
  few-to-15 % range; and Azure's GB-s is lower than AWS's computation.
"""

from conftest import ML_VARIANTS, ml_training_campaign, once

import pytest

from repro.core.report import render_grouped_bars, render_table


@pytest.mark.parametrize("scale", ["small", "large"])
def test_fig11_ml_training_cost(benchmark, scale):
    def run_all():
        return {name: ml_training_campaign(name, scale)[1]
                for name in ML_VARIANTS}

    reports = once(benchmark, run_all)

    gb_s = {name: report.gb_s for name, report in reports.items()}
    shares = {name: report.transaction_share * 100
              for name, report in reports.items()}
    print()
    print(render_grouped_bars(
        {"GB-s per run (11a/11b)": gb_s,
         "transaction share %% of total (11c/11d)": shares},
        title=f"Fig 11 ({scale} dataset): ML training cost"))
    print(render_table(
        ["variant", "GB-s", "compute $", "transaction $", "tx count",
         "replay GB-s"],
        [[name, report.gb_s, report.compute_cost, report.transaction_cost,
          report.transaction_count, report.replay_gb_s]
         for name, report in reports.items()]))

    # 11b: AWS-Step computes exactly what AWS-Lambda computes.
    assert gb_s["AWS-Step"] == pytest.approx(gb_s["AWS-Lambda"], rel=0.10)

    # 11a: durable replay inflates Azure GB-s; the queue chain does not.
    assert gb_s["Az-Dorch"] > gb_s["Az-Func"] * 1.05
    assert gb_s["Az-Dent"] > gb_s["Az-Dorch"]
    assert gb_s["Az-Queue"] == pytest.approx(gb_s["Az-Func"], rel=0.15)
    dorch_inflation = gb_s["Az-Dorch"] / gb_s["Az-Func"] - 1
    dent_inflation = gb_s["Az-Dent"] / gb_s["Az-Func"] - 1
    print(f"GB-s inflation vs Az-Func: Dorch +{dorch_inflation:.0%} "
          f"(paper +44%), Dent +{dent_inflation:.0%} (paper +88%)")
    # Az-Dent inflates roughly twice as much as Az-Dorch (paper's ratio).
    assert dent_inflation > dorch_inflation * 1.25

    # Azure bills measured memory: its GB-s sits below AWS's.
    assert gb_s["Az-Func"] < gb_s["AWS-Lambda"]
    assert gb_s["Az-Dorch"] < gb_s["AWS-Step"] * 1.2

    # 11c/11d: the AWS transaction share shrinks with scale ("AWS step
    # functions have to be used only for long running functions").
    if scale == "small":
        assert 0.10 < reports["AWS-Step"].transaction_share < 0.30
    else:
        assert reports["AWS-Step"].transaction_share < 0.05
    # Stateless variants carry no stateful cost at all on AWS.
    assert reports["AWS-Lambda"].transaction_cost == 0.0
    # Azure durable variants do pay a visible transaction share (the
    # paper reports up to 10-15 %; our pump model is less chatty than the
    # real framework, so the measured share is lower — see EXPERIMENTS.md).
    assert reports["Az-Dorch"].transaction_share > 0.002
    assert reports["Az-Dent"].transaction_share > 0.002
    # Azure's transaction share stays in the paper's ≤15 % band.
    assert reports["Az-Dorch"].transaction_share < 0.15
    assert reports["Az-Dent"].transaction_share < 0.15
