"""Macro campaign benchmark — whole-campaign wall-clock, pre- vs post-PR.

The kernel microbenchmark (``test_kernel_throughput``) measures dispatch
in isolation; this bench measures what a user actually waits for: an
audited Az-Dorch overload campaign, end to end, under two configurations

* **baseline** — the frozen seed kernel (``benchmarks/_seed_kernel.py``)
  with idle-poll elision disabled: the simulator as it stood before the
  optimization pass, and
* **optimized** — the live kernel with idle-poll elision on (the
  default calibration).

The workload is deliberately idle-heavy: sparse Poisson arrivals
(0.02 req/s over a two-hour horizon) against the Durable Functions
stand-in, whose task-hub queues poll throughout.  That is the regime the
paper's cost analysis highlights — idle polling dominates both the bill
and, before this pass, the simulation's wall-clock.  Two effects
compound here: the optimized kernel dispatches each event faster, and
elision removes ~40% of the events outright (recorded as
``event_reduction``; that ratio is deterministic, unlike timing).

Campaign *outcomes* must not drift: both configurations complete the
same number of requests and pass the runtime audit, which the bench
asserts before reporting any timing.

``make bench-campaign`` runs it in script mode and records the numbers
in ``BENCH_campaign.json``.  ``REPRO_BENCH_ROUNDS`` overrides the round
count (CI smoke runs use 1).
"""

from __future__ import annotations

import gc
import json
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

import _seed_kernel

import repro.core.testbed as testbed_mod
from repro.core.overload import execute_overload_spec
from repro.core.parallel import CampaignSpec
from repro.sim import kernel as live_kernel

#: The whole-campaign budget: the optimized configuration must finish
#: the campaign at least this many times faster than the baseline.
#: Quiet-machine measurements land at 1.45-2.1x; the floor leaves
#: headroom for shared-runner noise since this assert is in tier-1.
CAMPAIGN_SPEEDUP_FLOOR = 1.25

#: Sparse, idle-heavy, audited: the shape where queue polling dominates.
WORKLOAD = dict(deployment="Az-Dorch", workload="ml-training",
                scale="small", campaign="overload", arrival="poisson",
                arrival_rate_per_s=0.02, horizon_s=7200.0, seed=31,
                audit=True)


def _run_campaign(env_cls, elision: bool) -> dict:
    """One audited campaign on ``env_cls``; returns timing and outcome.

    ``repro.core.testbed.Environment`` is the sole construction site for
    campaign environments, so swapping it swaps the kernel under the
    entire stack.  A probe subclass captures the created environment so
    the dispatch count (``_sequence``) can be reported.
    """
    created = []

    class Probe(env_cls):
        def __init__(self, *args, **kwargs):
            super().__init__(*args, **kwargs)
            created.append(self)

    spec = CampaignSpec(
        calibration_overrides={"azure.idle_poll_elision": elision},
        **WORKLOAD)
    original = testbed_mod.Environment
    testbed_mod.Environment = Probe
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        start = time.perf_counter()
        outcome = execute_overload_spec(spec)
        elapsed = time.perf_counter() - start
    finally:
        if gc_was_enabled:
            gc.enable()
        testbed_mod.Environment = original
    return {
        "elapsed_s": elapsed,
        "events": created[-1]._sequence,
        "succeeded": outcome.overload.succeeded,
        "audit_passed": outcome.audit.passed,
    }


def measure(rounds: int = 5) -> dict:
    """Best-of-``rounds`` campaign wall-clock for both configurations.

    Rounds are interleaved and each side is scored by its *fastest*
    round — the same noise-dodging estimator as the kernel bench: on a
    machine with bursty background load, the min-elapsed round is the
    one that ran at quiet-machine speed.  Per-round ratios are reported
    for diagnostics but not aggregated.
    """
    rounds = int(os.environ.get("REPRO_BENCH_ROUNDS") or rounds)
    baseline = []
    optimized = []
    for _ in range(rounds):
        baseline.append(_run_campaign(_seed_kernel.Environment,
                                      elision=False))
        optimized.append(_run_campaign(live_kernel.Environment,
                                       elision=True))
    for side in (baseline, optimized):
        assert all(run["audit_passed"] for run in side)
        assert len({run["succeeded"] for run in side}) == 1
        assert len({run["events"] for run in side}) == 1
    # Same requests completed under both configurations — elision and
    # kernel changes alter simulator effort, never campaign outcomes.
    assert baseline[0]["succeeded"] == optimized[0]["succeeded"]
    best_base = min(run["elapsed_s"] for run in baseline)
    best_opt = min(run["elapsed_s"] for run in optimized)
    return {
        "workload": dict(WORKLOAD, rounds=rounds),
        "baseline": {
            "kernel": "seed", "idle_poll_elision": False,
            "events": baseline[0]["events"],
            "best_elapsed_s": round(best_base, 3),
            "elapsed_s": [round(run["elapsed_s"], 3) for run in baseline],
        },
        "optimized": {
            "kernel": "live", "idle_poll_elision": True,
            "events": optimized[0]["events"],
            "best_elapsed_s": round(best_opt, 3),
            "elapsed_s": [round(run["elapsed_s"], 3) for run in optimized],
        },
        "succeeded": baseline[0]["succeeded"],
        "audit_passed": True,
        "event_reduction": round(
            baseline[0]["events"] / optimized[0]["events"], 3),
        "speedup": round(best_base / best_opt, 3),
        "round_speedups": [
            round(base["elapsed_s"] / opt["elapsed_s"], 3)
            for base, opt in zip(baseline, optimized)],
        "speedup_floor": CAMPAIGN_SPEEDUP_FLOOR,
    }


def test_macro_campaign(benchmark):
    from conftest import once

    numbers = once(benchmark, lambda: measure(rounds=3))
    print()
    print(f"baseline campaign:  {numbers['baseline']['best_elapsed_s']:>8.3f} s"
          f"  ({numbers['baseline']['events']:,} events)")
    print(f"optimized campaign: {numbers['optimized']['best_elapsed_s']:>8.3f} s"
          f"  ({numbers['optimized']['events']:,} events)")
    print(f"event reduction:    {numbers['event_reduction']:.2f}x")
    print(f"speedup:            {numbers['speedup']:.2f}x "
          f"(floor {CAMPAIGN_SPEEDUP_FLOOR}x)")
    assert numbers["event_reduction"] > 1.3
    assert numbers["speedup"] >= CAMPAIGN_SPEEDUP_FLOOR


def main() -> int:
    numbers = measure()
    out = Path(__file__).resolve().parent.parent / "BENCH_campaign.json"
    out.write_text(json.dumps(numbers, indent=2) + "\n")
    print(json.dumps(numbers, indent=2))
    print(f"written to {out}")
    return 0 if numbers["speedup"] >= CAMPAIGN_SPEEDUP_FLOOR else 1


if __name__ == "__main__":
    raise SystemExit(main())
