"""Extension — reliability campaigns through the cached campaign engine.

Sweeps the container-crash probability through ``campaign="reliability"``
specs on both platforms, exercising the same
:class:`~repro.core.ParallelRunner` + on-disk cache path the figure
benchmarks use: the first run simulates, every later ``make bench``
replays the cached chaos bill bit-identically.

The qualitative claim matches the paper's framing: both retry models
absorb a 20 % crash rate (success rate stays high), but the absorption
is billed — cost amplification and tail inflation grow with the crash
probability.
"""

from conftest import _bench_runner, once

from repro.core import CampaignSpec, FaultPlan
from repro.core.report import render_table

CRASH_RATES = [0.0, 0.1, 0.2]
VARIANTS = ["AWS-Step", "Az-Dorch"]
ITERATIONS = 5


def _specs():
    specs = []
    for rate in CRASH_RATES:
        plan = FaultPlan(crash_probability=rate, retry_max_attempts=4,
                         retry_interval_s=1.0)
        for variant in VARIANTS:
            specs.append(CampaignSpec(
                deployment=variant, workload="ml-training", scale="small",
                campaign="reliability", iterations=ITERATIONS, warmup=1,
                seed=53, fault_plan=plan.to_items()))
    return specs


def test_extension_reliability_price_sweep(benchmark):
    specs = _specs()

    def run_all():
        outcomes = _bench_runner().run(specs)
        return {(spec.deployment, spec.fault_plan_obj().crash_probability
                 if spec.fault_plan_obj() else 0.0): outcome.reliability
                for spec, outcome in zip(specs, outcomes)}

    reports = once(benchmark, run_all)
    print()
    print(render_table(
        ["variant", "crash p", "success", "retries", "wasted GB-s",
         "cost amp", "tail infl"],
        [[variant, f"{rate:.0%}", f"{summary.success_rate:.0%}",
          summary.retries, f"{summary.wasted_gb_s:.2f}",
          f"{summary.cost_amplification:.3f}",
          f"{summary.tail_inflation:.3f}"]
         for (variant, rate), summary in sorted(reports.items())],
        title=f"Extension: price of reliability, ml-training small, "
              f"{ITERATIONS} iterations per cell"))

    for variant in VARIANTS:
        clean = reports[(variant, 0.0)]
        chaotic = reports[(variant, CRASH_RATES[-1])]
        # Fault-free reliability runs are their own baseline.
        assert clean.cost_amplification == 1.0
        assert clean.failures == 0
        # Chaos was injected and absorbed at a price.
        assert chaotic.injected_crashes > 0
        assert chaotic.wasted_gb_s > 0
        assert chaotic.cost_amplification > 1.0
