"""Extension — the workloads under open-loop load.

The paper's protocol is closed-loop (one request at a time).  Driving the
ML inference workflow with Poisson arrivals shows what that protocol
hides: as the offered rate rises, Azure's shared instance pool saturates
and queues (p99 explodes), while AWS's per-request containers keep p99
roughly flat until the account concurrency limit.
"""

import numpy as np
from conftest import fresh_testbed, once

from repro.core import build_ml_inference_deployments
from repro.core.arrivals import LoadGenerator, PoissonArrivals
from repro.core.report import render_table

RATES = [0.02, 0.1, 0.3]    # requests per second
HORIZON_S = 600.0


def _p99(name: str, rate: float) -> float:
    testbed = fresh_testbed(seed=int(rate * 1000) + 3)
    deployment = build_ml_inference_deployments(testbed, "small")[name]
    generator = LoadGenerator(PoissonArrivals(rate), horizon_s=HORIZON_S)
    campaign = generator.run(deployment)
    return float(np.percentile(campaign.latencies, 99))


def test_extension_inference_under_open_loop_load(benchmark):
    def run_all():
        return {name: {rate: _p99(name, rate) for rate in RATES}
                for name in ("AWS-Step", "Az-Dorch")}

    data = once(benchmark, run_all)
    rows = [[rate, data["AWS-Step"][rate], data["Az-Dorch"][rate]]
            for rate in RATES]
    print()
    print(render_table(
        ["arrivals/s", "AWS-Step p99 (s)", "Az-Dorch p99 (s)"],
        rows, title="Extension: ML inference p99 latency under Poisson "
                    f"load ({HORIZON_S:.0f}s horizon)"))

    aws = data["AWS-Step"]
    azure = data["Az-Dorch"]
    # AWS p99 stays roughly flat across a 15x rate increase.
    assert aws[RATES[-1]] < aws[RATES[0]] * 1.6
    # Azure's p99 degrades visibly as the pool saturates.
    assert azure[RATES[-1]] > azure[RATES[0]] * 1.5
    # At the highest rate the platforms have clearly diverged.
    assert azure[RATES[-1]] > aws[RATES[-1]] * 1.5
