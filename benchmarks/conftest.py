"""Shared fixtures and helpers for the benchmark (figure/table) harness.

Every module in this directory regenerates one table or figure from the
paper.  Run them with::

    pytest benchmarks/ --benchmark-only -s

``-s`` shows the rendered tables.  Each benchmark prints the paper's
reported numbers next to the measured ones and asserts the qualitative
claim (who wins, roughly by how much, where the crossover is).
"""

from __future__ import annotations

import pytest

from repro.core import ExperimentRunner, Testbed


@pytest.fixture
def runner():
    return ExperimentRunner(think_time_s=30.0, settle_time_s=5.0)


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    The interesting output of these benches is the simulation's *virtual*
    measurements; wall-clock timing is recorded for bookkeeping only, so
    one round is enough.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


def fresh_testbed(seed: int = 0) -> Testbed:
    return Testbed(seed=seed)


#: The paper collects "over one hundred iterations"; 40 keeps the bench
#: suite brisk while stabilising medians and 99iles.
CAMPAIGN_ITERATIONS = 40

_ML_CAMPAIGNS = {}


def ml_training_campaign(name: str, scale: str,
                         iterations: int = CAMPAIGN_ITERATIONS):
    """Session-cached latency campaign for one ML-training variant.

    Fig 6, Fig 7, Fig 8 and Fig 11 all read the same campaigns; caching
    keeps the benchmark suite's runtime linear in the variant count.
    Returns ``(campaign, deployment)``.
    """
    from repro.core import build_ml_training_deployments

    key = (name, scale, iterations)
    if key not in _ML_CAMPAIGNS:
        testbed = Testbed(seed=29)
        deployment = build_ml_training_deployments(testbed, scale)[name]
        runner = ExperimentRunner(think_time_s=30.0, settle_time_s=5.0)
        campaign = runner.run_campaign(deployment, iterations=iterations,
                                       warmup=1)
        _ML_CAMPAIGNS[key] = (campaign, deployment)
    return _ML_CAMPAIGNS[key]


ML_VARIANTS = ["AWS-Lambda", "AWS-Step", "Az-Func", "Az-Queue", "Az-Dorch",
               "Az-Dent"]
AZURE_VARIANTS = ["Az-Func", "Az-Queue", "Az-Dorch", "Az-Dent"]
AWS_VARIANTS = ["AWS-Lambda", "AWS-Step"]
