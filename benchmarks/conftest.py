"""Shared fixtures and helpers for the benchmark (figure/table) harness.

Every module in this directory regenerates one table or figure from the
paper.  Run them with::

    pytest benchmarks/ --benchmark-only -s

``-s`` shows the rendered tables.  Each benchmark prints the paper's
reported numbers next to the measured ones and asserts the qualitative
claim (who wins, roughly by how much, where the crossover is).

The shared ML-training campaigns run through
:class:`repro.core.ParallelRunner` with an on-disk result cache under
``.benchmarks/campaign_cache`` (``make clean`` drops it), so the figure
suite pays for each 100-iteration campaign once per calibration, not
once per invocation.  ``REPRO_BENCH_WORKERS`` caps the worker-process
fan-out (default: the machine's CPU count).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.core import ExperimentRunner, ParallelRunner, Testbed
from repro.core.cache import ResultCache
from repro.core.parallel import ml_training_specs


@pytest.fixture
def runner():
    return ExperimentRunner(think_time_s=30.0, settle_time_s=5.0)


def once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    The interesting output of these benches is the simulation's *virtual*
    measurements; wall-clock timing is recorded for bookkeeping only, so
    one round is enough.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


def fresh_testbed(seed: int = 0) -> Testbed:
    return Testbed(seed=seed)


#: The paper collects "over one hundred iterations"; with the campaign
#: cache amortizing reruns we match it instead of sampling it.
CAMPAIGN_ITERATIONS = 100

ML_VARIANTS = ["AWS-Lambda", "AWS-Step", "Az-Func", "Az-Queue", "Az-Dorch",
               "Az-Dent"]
AZURE_VARIANTS = ["Az-Func", "Az-Queue", "Az-Dorch", "Az-Dent"]
AWS_VARIANTS = ["AWS-Lambda", "AWS-Step"]

_ML_CAMPAIGNS = {}


def _bench_runner() -> ParallelRunner:
    workers = int(os.environ.get("REPRO_BENCH_WORKERS")
                  or os.cpu_count() or 1)
    cache_root = (os.environ.get("REPRO_CACHE_DIR")
                  or Path(__file__).resolve().parent.parent
                  / ".benchmarks" / "campaign_cache")
    return ParallelRunner(workers=workers, cache=ResultCache(cache_root))


def ml_training_campaign(name: str, scale: str,
                         iterations: int = CAMPAIGN_ITERATIONS):
    """Cached latency campaign for one ML-training variant.

    Fig 6, Fig 7, Fig 8 and Fig 11 all read the same campaigns, so the
    first request for a ``(scale, iterations)`` runs every variant in one
    :class:`ParallelRunner` batch (one pool spin-up, shared workload
    prewarm) and later requests hit the in-process memo or the on-disk
    cache.  Returns ``(campaign, cost)`` where ``cost`` is the variant's
    :class:`~repro.core.costs.CostReport` amortized over the campaign's
    ``warmup + iterations`` runs.
    """
    key = (name, scale, iterations)
    if key not in _ML_CAMPAIGNS:
        batch = ML_VARIANTS if name in ML_VARIANTS else [name]
        specs = ml_training_specs(batch, scale, iterations, seed=29)
        for spec, outcome in zip(specs, _bench_runner().run(specs)):
            _ML_CAMPAIGNS[(spec.deployment, scale, iterations)] = (
                outcome.campaign, outcome.cost)
    return _ML_CAMPAIGNS[key]
