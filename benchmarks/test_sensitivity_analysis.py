"""Sensitivity analysis — are the reproduced shapes robust to calibration?

Sweeps the calibration constants the Azure fan-out conclusions hinge on
and checks that the paper's *qualitative* claim (Azure durable fan-outs
stall behind the scale controller; AWS does not) holds across the whole
plausible range — i.e. the reproduction is not an artifact of one lucky
constant.
"""

from conftest import fresh_testbed, once

from repro.core import build_video_deployments
from repro.core.report import render_table
from repro.core.sweep import CalibrationSweep, tabulate

WORKERS = 40


def _fanout_latency(testbed) -> float:
    deployment = build_video_deployments(testbed, n_workers=WORKERS)[
        "Az-Dorch"]
    deployment.deploy()
    return round(testbed.run(deployment.invoke(n_workers=WORKERS)).latency,
                 1)


def _aws_latency(testbed) -> float:
    deployment = build_video_deployments(testbed, n_workers=WORKERS)[
        "AWS-Step"]
    deployment.deploy()
    return round(testbed.run(deployment.invoke(n_workers=WORKERS)).latency,
                 1)


def test_sensitivity_of_azure_fanout_conclusion(benchmark):
    def run_all():
        results = {}
        for parameter, values in [
                ("scale_interval_s", [5.0, 10.0, 20.0]),
                ("instances_per_decision", [1, 2, 4]),
                ("instance_concurrency", [1, 2, 4])]:
            sweep = CalibrationSweep("azure", parameter, values, seed=6)
            results[parameter] = sweep.run(_fanout_latency)
        aws = _aws_latency(fresh_testbed(seed=6))
        return results, aws

    results, aws_latency = once(benchmark, run_all)
    print()
    for parameter, points in results.items():
        print(render_table(
            [parameter, f"Az-Dorch latency @ {WORKERS} workers (s)"],
            tabulate(points),
            title=f"Sensitivity: {parameter}"))
        print()
    print(f"AWS-Step reference @ {WORKERS} workers: {aws_latency}s")

    # The qualitative conclusion must hold at EVERY grid point: Azure's
    # fan-out stays well behind AWS's.
    for parameter, points in results.items():
        for point in points:
            assert point.value > 1.5 * aws_latency, (
                f"Azure beat 1.5x AWS at {parameter}="
                f"{point.overrides[parameter]}")

    # And the knobs act in the expected direction (monotone trends).
    interval = [point.value for point in results["scale_interval_s"]]
    assert interval[0] < interval[-1]   # slower controller → slower fan-out
    births = [point.value for point in results["instances_per_decision"]]
    assert births[0] > births[-1]       # more births → faster fan-out
