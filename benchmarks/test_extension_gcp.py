"""Extension — the ML-training comparison on a third platform (GCP).

The paper measures AWS and Azure only.  With the pluggable backend
registry the same campaign engine drives a simulated GCP Workflows +
Cloud Functions gen1 stack, so this benchmark extends Fig 6/Fig 11 to a
three-platform contrast: the function baseline and the orchestrated
variant of each platform, through the shared ``ParallelRunner`` +
on-disk campaign cache (first ``make bench`` simulates, later runs
replay bit-identically).

Qualitative claims checked:

* GCP Workflows, like Step Functions, re-executes nothing: the
  orchestrated variant's GB-s matches the plain-function baseline and
  its replay share is exactly zero (Azure's durable replay is the odd
  one out).
* Orchestration is pure overhead on latency: GCP-Flows sits above
  GCP-Func, but below Az-Dorch whose queue-pump dispatch is slower than
  Workflows' direct calls.
* Only the orchestrated variant pays per-step (transaction) charges;
  the direct function variant's stateful cost is zero.
"""

from conftest import ml_training_campaign, once

import pytest

from repro.core.report import render_table

FUNCTION_BASELINES = ["AWS-Lambda", "Az-Func", "GCP-Func"]
ORCHESTRATORS = ["AWS-Step", "Az-Dorch", "GCP-Flows"]
VARIANTS = FUNCTION_BASELINES + ORCHESTRATORS


def test_extension_gcp_three_platform_ml_training(benchmark):
    def run_all():
        return {name: ml_training_campaign(name, "small")
                for name in VARIANTS}

    results = once(benchmark, run_all)
    stats = {name: campaign.stats() for name, (campaign, _) in
             results.items()}
    costs = {name: cost for name, (_, cost) in results.items()}

    print()
    print(render_table(
        ["variant", "median s", "p95 s", "GB-s", "compute $",
         "transaction $", "tx count", "replay GB-s"],
        [[name, f"{stats[name].median:.2f}", f"{stats[name].p95:.2f}",
          f"{costs[name].gb_s:.2f}", f"{costs[name].compute_cost:.6f}",
          f"{costs[name].transaction_cost:.6f}",
          costs[name].transaction_count,
          f"{costs[name].replay_gb_s:.2f}"]
         for name in VARIANTS],
        title="Extension: ML training (small) across three platforms"))

    # Workflows, like Step Functions, re-executes nothing: the
    # orchestrated run computes exactly what the bare function computes,
    # and there is no replay share at all.
    assert costs["GCP-Flows"].gb_s == pytest.approx(
        costs["GCP-Func"].gb_s, rel=0.10)
    assert costs["GCP-Flows"].replay_gb_s == 0.0
    assert costs["GCP-Func"].replay_gb_s == 0.0
    # Azure's durable orchestrator remains the only replayer.
    assert costs["Az-Dorch"].replay_gb_s > 0.0

    # Orchestration adds latency but Workflows' direct HTTP dispatch is
    # cheaper than the storage-queue pump behind Az-Dorch.
    assert stats["GCP-Flows"].median > stats["GCP-Func"].median
    assert stats["GCP-Flows"].median < stats["Az-Dorch"].median

    # Per-step metering: only the orchestrated variant pays stateful
    # (transaction) charges, and every iteration entered steps.
    assert costs["GCP-Func"].transaction_cost == 0.0
    assert costs["GCP-Flows"].transaction_cost > 0.0
    assert costs["GCP-Flows"].transaction_count > 0
    assert 0.0 < costs["GCP-Flows"].transaction_share < 0.5

    # All three platforms produced live, audited campaigns with spend.
    for name in VARIANTS:
        assert stats[name].count > 0
        assert costs[name].total > 0.0
