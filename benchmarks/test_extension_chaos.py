"""Extension — the price of unreliability.

Injects container crashes into a five-stage workflow on both platforms
(AWS Retry clauses, Azure ``call_activity_with_retry``) and sweeps the
crash probability.  Both platforms absorb the chaos — completion rate
stays 100 % — but latency and billed compute grow with the crash rate,
quantifying what flaky infrastructure costs under each retry model.
"""

import numpy as np
from conftest import fresh_testbed, once

from repro.azure import OrchestratorSpec, RetryOptions
from repro.core.report import render_table
from repro.platforms.base import FunctionSpec
from repro.platforms.faults import FaultInjector

CRASH_RATES = [0.0, 0.2, 0.4]
RUNS = 15
STAGES = 5


def _stage(ctx, event):
    yield from ctx.busy(1.0)
    return event + 1


def _aws_run(crash_rate: float):
    testbed = fresh_testbed(seed=int(crash_rate * 100) + 11)
    injector = FaultInjector(crash_probability=crash_rate)
    testbed.lambdas.register(FunctionSpec(
        name="stage", handler=injector.wrap(_stage), memory_mb=1536,
        timeout_s=60.0))
    states = {}
    for index in range(STAGES):
        states[f"S{index}"] = {
            "Type": "Task", "Resource": "stage",
            "Retry": [{"ErrorEquals": ["States.ALL"],
                       "IntervalSeconds": 2, "MaxAttempts": 8,
                       "BackoffRate": 2.0}],
            **({"Next": f"S{index + 1}"} if index < STAGES - 1
               else {"End": True}),
        }
    testbed.stepfunctions.create_state_machine(
        "chaos", {"StartAt": "S0", "States": states})
    latencies = []
    for _ in range(RUNS):
        record = testbed.run(testbed.stepfunctions.start_execution(
            "chaos", 0))
        assert record.status == "SUCCEEDED"
        assert record.output == STAGES
        latencies.append(record.duration)
        testbed.advance(30.0)
    gb_s = testbed.aws.billing.total_gb_s() / RUNS
    return float(np.median(latencies)), gb_s


def _azure_run(crash_rate: float):
    testbed = fresh_testbed(seed=int(crash_rate * 100) + 11)
    injector = FaultInjector(crash_probability=crash_rate)
    testbed.app.register(FunctionSpec(
        name="stage", handler=injector.wrap(_stage), memory_mb=1536,
        timeout_s=60.0, measured_memory_mb=512))

    def orchestrator(context):
        value = context.input
        for _ in range(STAGES):
            value = yield context.call_activity_with_retry(
                "stage", RetryOptions(first_retry_interval_s=2.0,
                                      max_number_of_attempts=8), value)
        return value

    testbed.durable.register_orchestrator(OrchestratorSpec(
        "chaos", orchestrator))
    latencies = []
    for _ in range(RUNS):
        instance = None

        def scenario(env):
            client = testbed.durable.client
            instance_id = yield from client.start_new("chaos", 0)
            output = yield from client.wait_for_completion(instance_id)
            assert output == STAGES
            return client.get_status(instance_id)

        instance = testbed.run(scenario(testbed.env))
        latencies.append(instance.end_to_end_latency)
        testbed.advance(30.0)
    gb_s = testbed.azure.billing.total_gb_s() / RUNS
    return float(np.median(latencies)), gb_s


def test_extension_chaos_resilience_cost(benchmark):
    def run_all():
        rows = {}
        for rate in CRASH_RATES:
            aws_latency, aws_gb_s = _aws_run(rate)
            azure_latency, azure_gb_s = _azure_run(rate)
            rows[rate] = (aws_latency, aws_gb_s, azure_latency, azure_gb_s)
        return rows

    rows = once(benchmark, run_all)
    print()
    print(render_table(
        ["crash rate", "AWS median s", "AWS GB-s/run", "Azure median s",
         "Azure GB-s/run"],
        [[f"{rate:.0%}", *values] for rate, values in rows.items()],
        title=f"Extension: {STAGES}-stage workflow under container "
              f"crashes, {RUNS} runs each (all completed)"))

    clean = rows[0.0]
    chaotic = rows[CRASH_RATES[-1]]
    # Retries keep everything completing, but chaos costs latency...
    assert chaotic[0] > clean[0] * 1.3
    assert chaotic[2] > clean[2] * 1.3
    # ... and billed compute (crashed attempts are billed too).
    assert chaotic[1] > clean[1] * 1.2
    assert chaotic[3] > clean[3] * 1.2
