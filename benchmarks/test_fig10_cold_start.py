"""Fig 10 — ML training cold-start delay (4 days, one request per hour).

Paper: "Azure Durable extensions (Orchestrators and Entities) often lead
to less than 2 seconds of start time, whereas AWS-Step start time is
3-5 seconds, and the Az-Queue implementation experiences 10-20 seconds".
"""

from conftest import fresh_testbed, once

from repro.core import ColdStartCampaign, build_ml_training_deployments
from repro.core.metrics import percentile
from repro.core.report import render_bars

VARIANTS = ["Az-Queue", "AWS-Step", "Az-Dorch", "Az-Dent"]


def test_fig10_cold_start_four_day_campaign(benchmark):
    def run_all():
        results = {}
        campaign = ColdStartCampaign(interval_s=3600.0, days=4.0)
        for name in VARIANTS:
            testbed = fresh_testbed(seed=17)
            deployment = build_ml_training_deployments(
                testbed, "small")[name]
            results[name] = campaign.run(deployment).cold_start_delays
        return results

    delays = once(benchmark, run_all)
    medians = {name: percentile(values, 50)
               for name, values in delays.items()}
    print()
    print(render_bars(medians,
                      title="Fig 10: ML training cold start delay, "
                            "median of 96 hourly requests", unit="s"))
    for name, values in delays.items():
        print(f"  {name}: min={min(values):.2f}s max={max(values):.2f}s "
              f"n={len(values)}")

    # Every hourly request went cold (96 samples per variant).
    assert all(len(values) == 96 for values in delays.values())

    # Paper's ranking, highest to lowest: Az-Queue ≫ AWS-Step > durable.
    assert medians["Az-Queue"] > medians["AWS-Step"] > medians["Az-Dorch"]
    assert medians["AWS-Step"] > medians["Az-Dent"]

    # Paper's magnitudes.
    assert medians["Az-Dorch"] < 2.5
    assert medians["Az-Dent"] < 2.5
    assert 2.5 <= medians["AWS-Step"] <= 6.0
    assert 10.0 <= medians["Az-Queue"] <= 21.0
