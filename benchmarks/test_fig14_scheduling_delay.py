"""Fig 14 — scheduling delay of Azure face-detection workers.

Paper: "Figure 14 shows the scheduling delay collected from more than
50,000 workers.  It is evident that almost half of the workers experience
40 seconds of scheduling delay, and 5 % experience 270 s (4.5 minutes) to
start the function."

We collect worker scheduling spans from repeated 80-worker fan-outs until
a large sample accumulates, then check both anchor points of the CDF.
"""

import numpy as np
from conftest import fresh_testbed, once

from repro.core import build_video_deployments
from repro.core.metrics import cdf_points, fraction_above
from repro.core.report import render_cdf

WORKERS = 80
RUNS = 40   # 40 × 80 = 3200 worker samples


def test_fig14_worker_scheduling_delay_distribution(benchmark):
    def run_all():
        delays = []
        for index in range(RUNS):
            testbed = fresh_testbed(seed=500 + index)
            deployment = build_video_deployments(
                testbed, n_workers=WORKERS)["Az-Dorch"]
            deployment.deploy()
            testbed.run(deployment.invoke(n_workers=WORKERS))
            for span in testbed.azure.telemetry.spans:
                if (span.kind == "scheduling" and span.closed
                        and span.name == "az-video-detect"):
                    delays.append(span.duration)
        return np.asarray(delays)

    delays = once(benchmark, run_all)
    print()
    print(render_cdf({"Az-Dorch workers": cdf_points(delays.tolist())},
                     title=f"Fig 14: scheduling delay of {len(delays)} "
                           "face-detection workers (s)"))
    at_40 = fraction_above(delays, 40.0)
    at_270 = fraction_above(delays, 270.0)
    print(f"fraction waiting >=40s: {at_40:.2f} (paper: ~0.5); "
          f">=270s: {at_270:.3f} (paper: ~0.05)")

    # The paper's two anchor points, within generous bands.
    assert 0.35 <= at_40 <= 0.85
    assert 0.02 <= at_270 <= 0.12

    # The distribution is long-tailed: p99 is many times the median.
    median = float(np.percentile(delays, 50))
    p99 = float(np.percentile(delays, 99))
    assert p99 > 3 * median
