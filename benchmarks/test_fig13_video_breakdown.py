"""Fig 13 — video-processing latency breakdown, AWS-Step vs Az-Dorch.

Paper claims: "the AWS cold start delay for this application remains in
the range of 1-2 seconds, both for AWS Lambda and AWS Steps.  Azure
Orchestrators however exhibit a wide range of delays to start the
orchestrators, with an average being around 10 seconds which is 4-5×
higher than AWS."

The cold-start component here is the mean container/instance provisioning
time observed during each run: per-request Firecracker starts on AWS,
scale-controller instance births on Azure.
"""

import numpy as np
from conftest import fresh_testbed, once

from repro.core import build_video_deployments
from repro.core.metrics import breakdown_from_spans
from repro.core.report import render_breakdown
from repro.telemetry import SpanKind

RUNS = 15
WORKERS = 20


def _cold_span_durations(telemetry, since, until, platform):
    durations = []
    for span in telemetry.spans:
        if (span.kind == SpanKind.COLD_START and span.closed
                and since <= span.start < until
                and span.attributes.get("component") != "stepfunctions"):
            durations.append(span.duration)
    return durations


def _campaign(name):
    colds = []
    queues = []
    executions = []
    for index in range(RUNS):
        testbed = fresh_testbed(seed=300 + index)
        deployment = build_video_deployments(
            testbed, n_workers=WORKERS)[name]
        deployment.deploy()
        window_start = testbed.now
        testbed.run(deployment.invoke(n_workers=WORKERS))
        telemetry = deployment.stack.telemetry
        breakdown = breakdown_from_spans(telemetry, window_start,
                                         testbed.now)
        colds.extend(_cold_span_durations(
            telemetry, window_start, testbed.now, deployment.platform))
        queues.append(breakdown.queue_time)
        executions.append(breakdown.execution_time)
    return colds, queues, executions


def test_fig13_video_latency_breakdown(benchmark):
    def run_all():
        return {name: _campaign(name)
                for name in ("AWS-Step", "Az-Dorch")}

    data = once(benchmark, run_all)
    print()
    print(render_breakdown(
        {name: (float(np.mean(queues)), float(np.mean(executions)))
         for name, (colds, queues, executions) in data.items()},
        title=f"Fig 13: video breakdown, {WORKERS} workers "
              f"(mean of {RUNS} cold runs)"))
    aws_cold = float(np.mean(data["AWS-Step"][0]))
    azure_cold = float(np.mean(data["Az-Dorch"][0]))
    print(f"cold start per container/instance: AWS-Step={aws_cold:.1f}s "
          f"(paper: 1-2s), Az-Dorch={azure_cold:.1f}s (paper: ~10s avg)")

    # AWS cold starts are small and tight: 1-2 s per container.
    assert 0.8 <= aws_cold <= 2.5

    # Azure instance starts average far higher, 4-5x AWS in the paper.
    ratio = azure_cold / aws_cold
    print(f"Azure/AWS cold-start ratio: {ratio:.1f}x (paper: 4-5x)")
    assert ratio > 3.0

    # Azure's start delays have a wide range; AWS's do not.
    azure_spread = float(np.percentile(data["Az-Dorch"][0], 95)
                         - np.percentile(data["Az-Dorch"][0], 5))
    aws_spread = float(np.percentile(data["AWS-Step"][0], 95)
                       - np.percentile(data["AWS-Step"][0], 5))
    assert azure_spread > 4 * aws_spread
