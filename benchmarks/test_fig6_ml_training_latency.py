"""Fig 6 — end-to-end latency of the ML training workflow, all variants.

Paper claims reproduced here:

* (6a) Azure: the pure stateless function (Az-Func) has the best overall
  latency; Az-Queue adds 30 %/24 % (small/large); the durable variants
  sit in between, with Az-Dorch only 5-7 % over Az-Func.
* (6b) AWS: AWS-Step adds latency over AWS-Lambda (6 % small, 32 % large
  in the paper — the overhead grows with dataset scale).
* (6c/6d) the same orderings hold at the 99th percentile, and AWS shows
  tighter tails than Azure.
"""

import pytest
from conftest import AWS_VARIANTS, AZURE_VARIANTS, ML_VARIANTS, once, \
    ml_training_campaign

from repro.core.report import render_grouped_bars


@pytest.mark.parametrize("scale", ["small", "large"])
def test_fig6_ml_training_latency(benchmark, scale):
    def run_all():
        return {name: ml_training_campaign(name, scale)[0]
                for name in ML_VARIANTS}

    campaigns = once(benchmark, run_all)
    medians = {name: campaign.stats().median
               for name, campaign in campaigns.items()}
    p99s = {name: campaign.stats().p99
            for name, campaign in campaigns.items()}

    print()
    print(render_grouped_bars(
        {"median": medians, "99ile": p99s},
        title=f"Fig 6 ({scale} dataset): ML training end-to-end latency",
        unit="s"))

    azure_medians = {name: medians[name] for name in AZURE_VARIANTS}
    aws_medians = {name: medians[name] for name in AWS_VARIANTS}

    # 6a: Az-Func is the fastest Azure implementation...
    assert min(azure_medians, key=azure_medians.get) == "Az-Func"
    # ... Az-Queue adds tens of percent (the paper reports +30 % small /
    # +24 % large; the queue-trigger overhead is roughly constant, so its
    # relative weight shrinks with scale).  Az-Dent lands within noise of
    # Az-Queue at large scale.
    queue_margin = {"small": 1.25, "large": 1.10}[scale]
    assert azure_medians["Az-Queue"] > azure_medians["Az-Func"] * queue_margin
    assert azure_medians["Az-Queue"] > azure_medians["Az-Dorch"]
    # ... and the durable variants sit in between, Az-Dorch within ~15 %.
    assert (azure_medians["Az-Func"] < azure_medians["Az-Dorch"]
            <= azure_medians["Az-Queue"])
    assert azure_medians["Az-Dorch"] < azure_medians["Az-Func"] * 1.15
    assert (azure_medians["Az-Func"] < azure_medians["Az-Dent"]
            <= azure_medians["Az-Queue"] * 1.05)

    # 6b: the step-function chain adds overhead over the single Lambda.
    assert aws_medians["AWS-Step"] > aws_medians["AWS-Lambda"]

    # 6c/6d: orderings hold at the 99th percentile too.
    assert p99s["Az-Queue"] > p99s["Az-Func"]
    assert p99s["AWS-Step"] >= p99s["AWS-Lambda"] * 0.98

    # AWS tails are tighter than Azure durable tails (Fig 6d vs 6c).
    aws_spread = p99s["AWS-Step"] / medians["AWS-Step"]
    azure_spread = p99s["Az-Dorch"] / medians["Az-Dorch"]
    assert aws_spread < azure_spread * 1.05
