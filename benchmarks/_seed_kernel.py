"""Frozen copy of the pre-optimization simulation kernel.

This is the seed revision of ``repro/sim/kernel.py``, kept verbatim as
the *baseline* side of ``test_kernel_throughput.py``: the microbenchmark
drives the same workload through this module and through the live kernel
and reports the events/sec ratio.  Do not optimize this file.
"""


from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

#: Event scheduling priorities.  Lower sorts earlier at equal times.
URGENT = 0
NORMAL = 1


class SimulationError(Exception):
    """Raised for kernel misuse (e.g. running a finished environment)."""


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it.

    The interrupt cause is available as :attr:`cause`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """An event that may be waited on by processes.

    Events have three observable states: *pending* (created, not yet
    triggered), *triggered* (scheduled on the event queue with a value),
    and *processed* (callbacks have run).  A process that yields a
    triggered-or-processed event resumes immediately on the next dispatch.
    """

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list] = []
        self._value: Any = None
        self._ok: Optional[bool] = None
        #: set when a failure value has been retrieved or defused
        self._defused = False

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled with a value."""
        return self._ok is not None

    @property
    def processed(self) -> bool:
        """True once callbacks have been invoked."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception for failed events)."""
        if self._ok is None:
            raise SimulationError("event value not yet available")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._ok is not None:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception is re-raised inside every waiting process.
        """
        if self._ok is not None:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another event (chaining)."""
        self._ok = event._ok
        self._value = event._value
        self.env.schedule(self)

    def defuse(self) -> None:
        """Mark a failed event as handled so it does not crash the run."""
        self._defused = True

    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.env, [self, other])

    def __repr__(self) -> str:
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers after ``delay`` units of simulated time."""

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, delay=delay)


class Initialize(Event):
    """Internal event that starts a newly created process."""

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self.callbacks.append(process._resume)
        self._ok = True
        env.schedule(self, priority=URGENT)


class Process(Event):
    """A running simulation process wrapping a generator.

    A process is itself an event that triggers when the generator returns
    (successfully, with the ``StopIteration`` value) or raises.
    """

    def __init__(self, env: "Environment", generator: Generator):
        if not hasattr(generator, "send"):
            raise TypeError(f"process requires a generator, got {generator!r}")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        Initialize(env, self)

    @property
    def name(self) -> str:
        """The wrapped generator function's name (for diagnostics)."""
        return getattr(self._generator, "__name__", repr(self._generator))

    @property
    def is_alive(self) -> bool:
        """True while the generator has not terminated."""
        return self._ok is None

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt finished process {self.name}")
        if self is self.env.active_process:
            raise SimulationError("a process cannot interrupt itself")
        event = Event(self.env)
        event._ok = False
        event._value = Interrupt(cause)
        event._defused = True
        event.callbacks.append(self._resume)
        self.env.schedule(event, priority=URGENT)
        # Detach from the event the process was waiting on, if any.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
            self._target = None

    def _resume(self, event: Event) -> None:
        """Advance the generator with the value of the triggered event."""
        env = self.env
        env._active_process = self
        while True:
            try:
                if event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    event._defused = True
                    next_event = self._generator.throw(event._value)
            except StopIteration as stop:
                self._ok = True
                self._value = stop.value
                env.schedule(self)
                break
            except BaseException as error:
                self._ok = False
                self._value = error
                env.schedule(self)
                break

            if not isinstance(next_event, Event):
                error = SimulationError(
                    f"process {self.name} yielded a non-event: {next_event!r}")
                self._ok = False
                self._value = error
                env.schedule(self)
                break

            if next_event.callbacks is not None:
                # Event is pending or triggered-but-unprocessed: wait for it.
                next_event.callbacks.append(self._resume)
                self._target = next_event
                break
            # Event already processed: resume immediately with its value.
            event = next_event

        env._active_process = None


class ConditionValue:
    """Mapping from events to values for :class:`AllOf`/:class:`AnyOf`."""

    def __init__(self, events: Iterable[Event]):
        self.events = list(events)

    def __getitem__(self, event: Event) -> Any:
        if event not in self.events:
            raise KeyError(event)
        return event._value

    def __contains__(self, event: Event) -> bool:
        return event in self.events

    def __len__(self) -> int:
        return len(self.events)

    def values(self) -> list:
        return [event._value for event in self.events]

    def __repr__(self) -> str:
        return f"<ConditionValue {len(self.events)} events>"


class Condition(Event):
    """Composite event over a set of sub-events.

    Triggers when ``evaluate(events, done_count)`` returns True.  Failed
    sub-events propagate their exception to the condition.
    """

    def __init__(self, env: "Environment",
                 evaluate: Callable[[list, int], bool],
                 events: Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        self._evaluate = evaluate
        self._done = 0
        for event in self._events:
            if event.env is not env:
                raise SimulationError("events from different environments")

        if not self._events:
            self.succeed(ConditionValue([]))
            return

        for event in self._events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _check(self, event: Event) -> None:
        if self._ok is not None:
            return
        self._done += 1
        if not event._ok:
            event._defused = True
            self.fail(event._value)
        elif self._evaluate(self._events, self._done):
            done = [e for e in self._events if e._ok is not None and e._ok]
            self.succeed(ConditionValue(done))


class AllOf(Condition):
    """Condition that triggers once *all* sub-events have triggered."""

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, lambda events, done: done == len(events), events)


class AnyOf(Condition):
    """Condition that triggers once *any* sub-event has triggered."""

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, lambda events, done: done >= 1, events)


class Environment:
    """The simulation environment: virtual clock plus event queue."""

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list = []
        self._sequence = 0
        self._active_process: Optional[Process] = None

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    def schedule(self, event: Event, priority: int = NORMAL,
                 delay: float = 0.0) -> None:
        """Place ``event`` on the queue ``delay`` time units from now."""
        heapq.heappush(
            self._queue, (self._now + delay, priority, self._sequence, event))
        self._sequence += 1

    def process(self, generator: Generator) -> Process:
        """Start a new process from ``generator`` and return it."""
        return Process(self, generator)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Return an event that triggers ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def event(self) -> Event:
        """Return a fresh, untriggered event."""
        return Event(self)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Return an event that triggers when all of ``events`` have."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Return an event that triggers when any of ``events`` has."""
        return AnyOf(self, events)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the next scheduled event."""
        if not self._queue:
            raise SimulationError("no scheduled events")
        self._now, _, _, event = heapq.heappop(self._queue)
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if event._ok is False and not event._defused:
            # An unhandled failure crashes the simulation, loudly.
            raise event._value

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run to queue exhaustion), a number (run
        until that simulated time), or an :class:`Event` (run until the
        event triggers, returning its value).
        """
        stop_event: Optional[Event] = None
        stop_time = float("inf")
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise SimulationError(
                    f"until ({stop_time}) lies in the past (now={self._now})")

        while self._queue:
            if stop_event is not None and stop_event.triggered:
                if not stop_event._ok:
                    stop_event._defused = True
                    raise stop_event._value
                return stop_event._value
            if self.peek() > stop_time:
                self._now = stop_time
                return None
            self.step()

        if stop_event is not None:
            if stop_event.triggered:
                if not stop_event._ok:
                    stop_event._defused = True
                    raise stop_event._value
                return stop_event._value
            raise SimulationError(
                "run(until=event) finished but the event never triggered")
        if stop_time != float("inf"):
            self._now = stop_time
        return None
