"""Table III — finish times for the 80-worker fan-out in Azure.

Paper values (seconds):

|             | 50%ile | 95%ile | 99%ile |
| One worker  |  244   |  476   |  744   |
| All workers |  774   |  798   |  822   |

Our substrate's detection kernel is ~4× faster per chunk than the
authors' OpenCV deployment, so absolute numbers sit lower; the
*structure* is what reproduces: individual workers have a long-tailed
finish distribution, and the whole fan-out completes only after the
slowest worker — the all-workers median lands at or beyond the one-worker
99ile.
"""

import numpy as np
from conftest import fresh_testbed, once

from repro.core import build_video_deployments
from repro.core.report import render_table

WORKERS = 80
RUNS = 30


def test_table3_fanout_finish_times(benchmark):
    def run_all():
        worker_finish = []
        all_finish = []
        for index in range(RUNS):
            testbed = fresh_testbed(seed=900 + index)
            deployment = build_video_deployments(
                testbed, n_workers=WORKERS)["Az-Dorch"]
            deployment.deploy()
            start = testbed.now
            run = testbed.run(deployment.invoke(n_workers=WORKERS))
            all_finish.append(run.latency)
            for span in testbed.azure.telemetry.spans:
                if (span.kind == "execution" and span.closed
                        and span.name == "az-video-detect"
                        and span.start >= start):
                    # Worker finish = trigger-to-completion: find the
                    # matching scheduling span's start.
                    worker_finish.append(span.end - start)
        return np.asarray(worker_finish), np.asarray(all_finish)

    worker_finish, all_finish = once(benchmark, run_all)

    def row(label, values):
        return [label,
                float(np.percentile(values, 50)),
                float(np.percentile(values, 95)),
                float(np.percentile(values, 99))]

    print()
    print(render_table(
        ["", "50%ile (s)", "95%ile (s)", "99%ile (s)"],
        [row("One worker", worker_finish), row("All workers", all_finish)],
        title=f"Table III: finish times, {WORKERS}-worker Azure fan-out "
              f"({RUNS} runs; paper one-worker row: 244/476/744, "
              "all-workers row: 774/798/822)"))

    one_p50 = float(np.percentile(worker_finish, 50))
    one_p99 = float(np.percentile(worker_finish, 99))
    all_p50 = float(np.percentile(all_finish, 50))
    all_p99 = float(np.percentile(all_finish, 99))

    # Long per-worker tail: p99 well beyond the median (paper: 3x).
    assert one_p99 > 2 * one_p50
    # The fan-out completes with the stragglers: the all-workers median
    # sits well beyond the typical worker's finish (paper: 774 vs 244).
    assert all_p50 > one_p50 * 1.2
    # And the all-workers distribution is much tighter than one worker's
    # (paper: 774→822 vs 244→744).
    assert (all_p99 / all_p50) < (one_p99 / one_p50)
