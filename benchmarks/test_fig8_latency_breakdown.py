"""Fig 8 — 99ile latency breakdown: queue time vs execution time (large).

Paper claims:

* the Az-Queue chain accumulates ~30 s of queue waiting, "significantly
  higher compared to the queue waiting time in Azure durable
  implementations, which is often less than 1 second" *per hop* (we
  compare total queue share);
* durable implementations show *higher execution time* for the same
  function logic, because the orchestrator replays;
* Az-Dent executes ~8 % longer than Az-Dorch (entities are slower than
  activities for the same operation).
"""

from conftest import ml_training_campaign, once

from repro.core.report import render_breakdown

VARIANTS = ["Az-Func", "Az-Queue", "Az-Dorch", "Az-Dent"]


def test_fig8_latency_breakdown_large(benchmark):
    def run_all():
        return {name: ml_training_campaign(name, "large")[0]
                for name in VARIANTS}

    campaigns = once(benchmark, run_all)
    breakdowns = {name: campaign.p99_breakdown()
                  for name, campaign in campaigns.items()}
    print()
    print(render_breakdown(
        {name: (b.queue_time, b.execution_time)
         for name, b in breakdowns.items()},
        title="Fig 8: ML training 99ile latency breakdown (large)"))

    # Az-Queue's queue time dwarfs the durable implementations'.
    assert (breakdowns["Az-Queue"].queue_time
            > 4 * breakdowns["Az-Dorch"].queue_time)
    assert (breakdowns["Az-Queue"].queue_time
            > 4 * breakdowns["Az-Dent"].queue_time)
    # Paper magnitude: the chain waits on queues for tens of seconds.
    assert breakdowns["Az-Queue"].queue_time > 8.0

    # Durable implementations execute longer than the stateless function
    # (replay inflates execution), for identical workload logic.
    assert (breakdowns["Az-Dorch"].execution_time
            > breakdowns["Az-Func"].execution_time)
    assert (breakdowns["Az-Dent"].execution_time
            > breakdowns["Az-Dorch"].execution_time)

    # Az-Dent's execution exceeds Az-Dorch's by a margin in the paper's
    # ballpark (reported: 8 %).
    ratio = (breakdowns["Az-Dent"].execution_time
             / breakdowns["Az-Dorch"].execution_time)
    print(f"Az-Dent / Az-Dorch execution-time ratio: {ratio:.3f} "
          f"(paper: 1.08)")
    assert 1.01 < ratio < 1.35
