"""The paper's two headline numbers (abstract / conclusion).

* "AWS is 89 % more expensive than Azure for machine learning training"
  — comparing the stateful implementations (AWS-Step vs Az-Dorch) per
  run, large dataset.
* "Azure is 2× faster than AWS for the machine learning inference
  application" — Az-Dorch vs AWS-Step median latency, large dataset.
"""

from conftest import fresh_testbed, ml_training_campaign, once

from repro.core import (
    ExperimentRunner,
    build_ml_inference_deployments,
)


def test_headline_training_cost_gap(benchmark):
    def run_both():
        return {name: ml_training_campaign(name, "large")[1]
                for name in ("AWS-Step", "Az-Dorch")}

    reports = once(benchmark, run_both)
    gap = reports["AWS-Step"].total / reports["Az-Dorch"].total - 1
    print(f"\nML training cost per run: AWS-Step=${reports['AWS-Step'].total:.6f}, "
          f"Az-Dorch=${reports['Az-Dorch'].total:.6f} → AWS +{gap:.0%} "
          f"(paper: +89%)")
    # AWS is substantially more expensive for the training workflow.
    assert gap > 0.20


def test_headline_inference_speed_gap(benchmark):
    def run_both():
        runner = ExperimentRunner(think_time_s=30.0, settle_time_s=5.0)
        medians = {}
        for name in ("AWS-Step", "Az-Dorch"):
            testbed = fresh_testbed(seed=47)
            deployment = build_ml_inference_deployments(
                testbed, "large")[name]
            campaign = runner.run_campaign(deployment, iterations=20,
                                           warmup=1)
            medians[name] = campaign.stats().median
        return medians

    medians = once(benchmark, run_both)
    speedup = medians["AWS-Step"] / medians["Az-Dorch"]
    print(f"\nML inference median latency: AWS-Step={medians['AWS-Step']:.1f}s, "
          f"Az-Dorch={medians['Az-Dorch']:.1f}s → Azure {speedup:.2f}x "
          f"faster (paper: 2x)")
    # Azure durable inference is decisively faster than AWS-Step.
    assert speedup > 1.3
