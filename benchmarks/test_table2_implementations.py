"""Table II — the implementation inventory for both workloads.

Function counts are measured from the deployments we actually register;
code sizes are the paper's reported package sizes (deployment bundles are
not meaningful in simulation — see DESIGN.md "Known deviations").
"""

from conftest import fresh_testbed, once

from repro.core import build_ml_training_deployments, build_video_deployments
from repro.core.report import render_table

#: The paper's Table II rows: (# functions, code size MB) per workload.
PAPER_TABLE2 = {
    "AWS-Lambda": {"stateful": False, "ml": (1, 63.1), "video": (1, 70.8)},
    "AWS-Step": {"stateful": True, "ml": (4, 271.2), "video": (3, 214.8)},
    "Az-Func": {"stateful": False, "ml": (1, 304.0), "video": (1, 204.0)},
    "Az-Queue": {"stateful": False, "ml": (4, 304.0), "video": None},
    "Az-Dorch": {"stateful": True, "ml": (6, 304.0), "video": (3, 219.0)},
    "Az-Dent": {"stateful": True, "ml": (7, 304.0), "video": None},
}


def test_table2_implementation_inventory(benchmark):
    def build():
        testbed = fresh_testbed(seed=0)
        ml = build_ml_training_deployments(testbed, "small")
        video = build_video_deployments(fresh_testbed(seed=0), n_workers=4)
        return ml, video

    ml, video = once(benchmark, build)

    rows = []
    for name, paper in PAPER_TABLE2.items():
        ml_dep = ml.get(name)
        video_dep = video.get(name)
        rows.append([
            name,
            "Yes" if paper["stateful"] else "No",
            f"{ml_dep.function_count} f - {ml_dep.code_size_mb} MB"
            if ml_dep else "-",
            f"{video_dep.function_count} f - {video_dep.code_size_mb} MB"
            if video_dep else "-",
        ])
    print()
    print(render_table(
        ["Graph Reference", "Stateful", "ML Training", "Video Processing"],
        rows, title="Table II: Different implementations of the workloads"))

    # Statefulness and per-variant function counts match the paper.
    for name, paper in PAPER_TABLE2.items():
        if name in ml:
            assert ml[name].stateful == paper["stateful"], name
            assert (ml[name].function_count,
                    ml[name].code_size_mb) == paper["ml"], name
        if paper["video"] is not None and name in video:
            assert (video[name].function_count,
                    video[name].code_size_mb) == paper["video"], name
    # The paper evaluates no Az-Queue / Az-Dent video implementation.
    assert "Az-Queue" not in video
    assert "Az-Dent" not in video
