"""Extension — overload sweeps through the cached campaign engine.

Sweeps open-loop arrival rates past saturation through
``campaign="overload"`` specs on both platforms, exercising the same
:class:`~repro.core.ParallelRunner` + on-disk cache path the figure
benchmarks use: the first run simulates, every later ``make bench``
replays the cached sweep bit-identically.

The qualitative claim extends the paper's platform contrast to overload:
AWS rejects excess load at admission (429s that Step Functions pays for
in retry traffic), Azure pushes back at its queues (trigger 429s plus
deadline shedding) — and at twice the saturating rate both stay live.
"""

from conftest import _bench_runner, once

from repro.core import CampaignSpec
from repro.core.report import render_table

RATES = [0.25, 0.5, 1.0, 2.0]
VARIANTS = ["AWS-Step", "Az-Func"]
HORIZON_S = 120.0

OVERRIDES = {
    "aws.concurrency_limit": 24,
    "aws.burst_concurrency": 24,
    "aws.refill_per_s": 4.0,
    "azure.max_instances": 4,
    "azure.queue_depth_limit": 48,
    "azure.shed_deadline_s": 45.0,
}


def _specs():
    return [CampaignSpec(
        deployment=variant, workload="ml-training", scale="small",
        campaign="overload", arrival="poisson", arrival_rate_per_s=rate,
        horizon_s=HORIZON_S, seed=53, calibration_overrides=OVERRIDES)
        for rate in RATES for variant in VARIANTS]


def test_extension_overload_rate_sweep(benchmark):
    specs = _specs()

    def run_all():
        outcomes = _bench_runner().run(specs)
        return {(spec.deployment, spec.arrival_rate_per_s): outcome.overload
                for spec, outcome in zip(specs, outcomes)}

    reports = once(benchmark, run_all)
    print()
    print(render_table(
        ["variant", "rate/s", "offered", "ok", "429", "shed",
         "goodput/s", "retry amp", "p99 s"],
        [[variant, rate, summary.offered, summary.succeeded,
          summary.throttled, summary.shed,
          f"{summary.goodput_per_s:.3f}",
          f"{summary.retry_amplification:.2f}",
          f"{summary.p99_latency_s:.1f}"]
         for (variant, rate), summary in sorted(reports.items())],
        title=f"Extension: overload sweep, ml-training small, "
              f"{HORIZON_S:.0f}s horizon per cell"))

    top = RATES[-1]
    for variant in VARIANTS:
        light = reports[(variant, RATES[0])]
        heavy = reports[(variant, top)]
        # Light load is (almost) all delivered — the protection layer
        # stays out of the way below saturation.
        assert light.failed == 0
        assert light.succeeded >= 0.9 * light.offered
        # Past saturation the platform is saturated but live.
        assert heavy.succeeded > 0
        assert heavy.failed == 0
        assert (heavy.succeeded + heavy.throttled + heavy.shed
                == heavy.offered)

    aws, azure = reports[("AWS-Step", top)], reports[("Az-Func", top)]
    # AWS sheds load via 429 + backoff: admission rejects, retries amplify.
    assert aws.throttled > 0
    assert aws.retry_amplification > 1.0
    # Azure sheds via bounded queues and deadline drops, retry-free.
    assert azure.throttled + azure.shed > 0
    assert azure.retries == 0
