"""Table I — serverless platform configuration.

Paper values: AWS (Py 3.7, West US 2, 1.5 GB, 15 min, 256 KB) and Azure
(Py 3.7, US East, 1.5 GB, 30 min, 64 KB).
"""

from conftest import once

from repro.core.report import render_table
from repro.platforms.calibration import (
    default_aws_calibration,
    default_azure_calibration,
)
from repro.storage.payload import KB


def test_table1_platform_configuration(benchmark):
    def build():
        return default_aws_calibration(), default_azure_calibration()

    aws, azure = once(benchmark, build)

    rows = [
        ["AWS", aws.runtime, aws.region, f"{aws.default_memory_mb / 1024:.1f}GB",
         f"{aws.time_limit_s / 60:.0f}min", f"{aws.payload_limit_bytes // KB}KB"],
        ["Azure", azure.runtime, azure.region,
         f"{azure.max_memory_mb / 1024:.1f}GB",
         f"{azure.time_limit_s / 60:.0f}min",
         f"{azure.durable_payload_limit_bytes // KB}KB"],
    ]
    print()
    print(render_table(
        ["Platform", "Run Time", "Region", "Memory", "Time Limit",
         "Payload Size"],
        rows, title="Table I: Serverless platform configuration"))

    # Paper Table I, verbatim.
    assert aws.runtime == "Python 3.7"
    assert aws.default_memory_mb == 1536
    assert aws.time_limit_s == 15 * 60
    assert aws.payload_limit_bytes == 256 * KB
    assert azure.runtime == "Python 3.7"
    assert azure.max_memory_mb == 1536
    assert azure.time_limit_s == 30 * 60
    assert azure.durable_payload_limit_bytes == 64 * KB
