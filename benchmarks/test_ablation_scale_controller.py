"""Ablation — scale-controller aggressiveness (DESIGN.md decision 2).

Fig 12/14's Azure fan-out pathology is produced by the bounded-birth-rate
scale controller, not hard-coded: giving the controller a faster cycle
and more births per decision (and no allocation stalls) should restore
most of the parallel speedup.
"""

import numpy as np
from conftest import fresh_testbed, once

from repro.core import build_video_deployments
from repro.core.report import render_table

WORKERS = 40
REPEATS = 4


def _median_latency(configure) -> float:
    latencies = []
    for index in range(REPEATS):
        testbed = fresh_testbed(seed=81 + index)
        configure(testbed.azure_calibration)
        deployment = build_video_deployments(
            testbed, n_workers=WORKERS)["Az-Dorch"]
        deployment.deploy()
        latencies.append(
            testbed.run(deployment.invoke(n_workers=WORKERS)).latency)
    return float(np.median(latencies))


def test_ablation_scale_controller(benchmark):
    def run_all():
        def default(calibration):
            pass

        def aggressive(calibration):
            calibration.scale_interval_s = 2.0
            calibration.instances_per_decision = 10
            calibration.scale_stall_probability = 0.0

        def glacial(calibration):
            calibration.scale_interval_s = 30.0
            calibration.instances_per_decision = 1

        return {
            "default controller": _median_latency(default),
            "aggressive controller": _median_latency(aggressive),
            "glacial controller": _median_latency(glacial),
        }

    data = once(benchmark, run_all)
    print()
    print(render_table(
        ["controller", f"median latency, {WORKERS} workers (s)"],
        [[mode, value] for mode, value in data.items()],
        title="Ablation: Azure scale controller vs video fan-out latency"))

    # The controller is the bottleneck mechanism: making it aggressive
    # recovers a large share of the parallel speedup, throttling it
    # further makes the fan-out slower still.
    assert data["aggressive controller"] < data["default controller"] * 0.75
    assert data["glacial controller"] > data["default controller"] * 1.15
