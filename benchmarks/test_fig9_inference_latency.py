"""Fig 9 — end-to-end latency of the ML inference workflow (large).

Paper claims:

* Az-Dent shows ~24 % more end-to-end latency than Az-Dorch (operations
  serialized inside entities vs stateless activities);
* AWS-Step reports ~2× the latency of the Azure durable implementations
  — "the benefit on latency is due to the fact that Azure implementations
  allow the objects to be read from other entities, rather than accessing
  remote slow storage".
"""

from conftest import fresh_testbed, once

from repro.core import ExperimentRunner, build_ml_inference_deployments
from repro.core.report import render_bars

VARIANTS = ["AWS-Step", "Az-Dorch", "Az-Dent"]
ITERATIONS = 30


def test_fig9_inference_latency_large(benchmark):
    def run_all():
        campaigns = {}
        runner = ExperimentRunner(think_time_s=30.0, settle_time_s=5.0)
        for name in VARIANTS:
            testbed = fresh_testbed(seed=31)
            deployment = build_ml_inference_deployments(
                testbed, "large")[name]
            campaigns[name] = runner.run_campaign(
                deployment, iterations=ITERATIONS, warmup=1)
        return campaigns

    campaigns = once(benchmark, run_all)
    medians = {name: campaign.stats().median
               for name, campaign in campaigns.items()}
    print()
    print(render_bars(medians,
                      title="Fig 9: ML inference end-to-end latency (large)",
                      unit="s"))

    # Azure durable beats AWS-Step decisively (paper: 2×; the driver is
    # model re-hydration from remote storage on every AWS run).
    assert medians["Az-Dorch"] < medians["AWS-Step"]
    ratio_aws = medians["AWS-Step"] / medians["Az-Dorch"]
    print(f"AWS-Step / Az-Dorch: {ratio_aws:.2f}x (paper: 2x)")
    assert ratio_aws > 1.3

    # Entities-as-operators run slower than the activity pattern
    # (paper: +24 %).
    ratio_dent = medians["Az-Dent"] / medians["Az-Dorch"]
    print(f"Az-Dent / Az-Dorch: {ratio_dent:.2f}x (paper: 1.24x)")
    assert 1.02 < ratio_dent < 1.5
