"""Fig 12 — video-processing latency vs number of parallel workers.

Paper claims:

* AWS-Step's Map fan-out speeds the parallel part up with worker count,
  reaching >80 % improvement over the single AWS-Lambda function;
* Azure durable orchestrators do *not* keep improving: gains stop around
  40 workers, and 80 workers can be slower than 40 ("in some cases, the
  overall latency increases by up to 25 %");
* Az-Func and AWS-Lambda (single-function baselines) report high,
  worker-independent latency.
"""

from conftest import fresh_testbed, once

from repro.core import build_video_deployments
from repro.core.metrics import percentile
from repro.core.report import render_table

WORKER_COUNTS = [1, 5, 10, 20, 40, 80]
REPEATS = 5


def _median_latency(name, n_workers, seeds):
    latencies = []
    for seed in seeds:
        testbed = fresh_testbed(seed=seed)
        deployment = build_video_deployments(
            testbed, n_workers=n_workers)[name]
        deployment.deploy()
        latencies.append(testbed.run(
            deployment.invoke(n_workers=n_workers)).latency)
    return percentile(latencies, 50)


def test_fig12_video_latency_vs_workers(benchmark):
    def run_all():
        seeds = list(range(41, 41 + REPEATS))
        series = {}
        for name in ("AWS-Step", "Az-Dorch"):
            series[name] = {workers: _median_latency(name, workers, seeds)
                            for workers in WORKER_COUNTS}
        for name in ("AWS-Lambda", "Az-Func"):
            series[name] = {1: _median_latency(name, 1, seeds)}
        return series

    series = once(benchmark, run_all)
    rows = []
    for workers in WORKER_COUNTS:
        rows.append([workers,
                     series["AWS-Step"][workers],
                     series["Az-Dorch"][workers]])
    print()
    print(render_table(["workers", "AWS-Step (s)", "Az-Dorch (s)"], rows,
                       title="Fig 12: video processing latency vs workers"))
    print(f"baselines: AWS-Lambda={series['AWS-Lambda'][1]:.0f}s, "
          f"Az-Func={series['Az-Func'][1]:.0f}s")

    aws = series["AWS-Step"]
    azure = series["Az-Dorch"]

    # AWS keeps improving with parallelism, monotonically through 40.
    assert aws[5] < aws[1]
    assert aws[10] < aws[5]
    assert aws[20] < aws[10]
    assert aws[40] < aws[20]
    # >80 % improvement over the single-Lambda baseline (paper claim).
    improvement = 1 - aws[80] / series["AWS-Lambda"][1]
    print(f"AWS-Step@80 improvement over AWS-Lambda: {improvement:.0%} "
          f"(paper: >80%)")
    assert improvement > 0.80

    # Azure improves early but the trend dies: 80 workers is NOT faster
    # than 40 by any meaningful margin (paper: improvement stops at 40).
    assert azure[5] < azure[1]
    assert azure[80] > azure[40] * 0.9
    # And Azure at scale is far slower than AWS at scale.
    assert azure[80] > 2 * aws[80]
