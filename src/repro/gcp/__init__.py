"""GCP platform simulation: Workflows + Cloud Functions (gen1).

The third simulated platform, built entirely on the
:mod:`repro.platforms.backend` registry — no testbed, campaign or CLI
code names it.  The model captures what the cross-provider measurement
literature reports as Google's distinguishing mechanisms:

* **step-based synchronous workflows**: a list of assign/call/switch/
  parallel/for steps executed against named variables, chained over
  synchronous HTTP round-trips — no queue hops, no history replay —
  billed **per step** (internal vs external-call rates),
* **one request per instance** (gen1): the instance cap is the
  concurrency cap, excess requests are 429 ``RESOURCE_EXHAUSTED``,
* **memory tiers** with CPU clock coupled to the tier, ~1.5-4 s Python
  cold starts and a long keep-alive,
* tight **64 KB payload limits** on values crossing step boundaries,
* a default retry-on-429 policy with capped exponential backoff.
"""

from repro.gcp.calibration import GCPCalibration, default_gcp_calibration
from repro.gcp.functions import CloudFunctionsService, FunctionInstance
from repro.gcp.pricing import GCPCostBreakdown, GCPPriceModel
from repro.gcp.workflows import (
    GCPWorkflowsService,
    WorkflowExecutionRecord,
    WorkflowValidationError,
)

__all__ = [
    "CloudFunctionsService",
    "FunctionInstance",
    "GCPCalibration",
    "GCPCostBreakdown",
    "GCPPriceModel",
    "GCPWorkflowsService",
    "WorkflowExecutionRecord",
    "WorkflowValidationError",
    "default_gcp_calibration",
]
