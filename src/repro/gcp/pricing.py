"""GCP price model: Cloud Functions GB-s + Workflows per-step charges.

GCP's stateful cost component is neither AWS's per-transition price nor
Azure's storage transactions: Workflows bills every executed *step*, at
a higher rate for steps making external calls.  Idle workflows bill
nothing (like AWS, unlike Azure's constant polling).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gcp.calibration import GCPCalibration
from repro.platforms.billing import BillingMeter
from repro.storage.meter import TransactionMeter


@dataclass
class GCPCostBreakdown:
    """Dollar cost split into the paper's two components."""

    compute: float            # Cloud Functions GB-s ("computation cost")
    requests: float           # per-invocation charge
    steps: float              # Workflows step charges ("transaction cost")
    gb_s: float
    internal_steps: int
    external_steps: int

    @property
    def stateless(self) -> float:
        """The paper's 'computation cost' component."""
        return self.compute + self.requests

    @property
    def stateful(self) -> float:
        """The paper's 'transaction cost' component."""
        return self.steps

    @property
    def total(self) -> float:
        return self.stateless + self.stateful

    @property
    def step_count(self) -> int:
        return self.internal_steps + self.external_steps

    @property
    def stateful_share(self) -> float:
        """Step cost as a fraction of the total."""
        return self.stateful / self.total if self.total else 0.0


class GCPPriceModel:
    """Prices a deployment's billing and transaction meters."""

    def __init__(self, calibration: GCPCalibration):
        self.calibration = calibration

    def breakdown(self, billing: BillingMeter,
                  meter: TransactionMeter) -> GCPCostBreakdown:
        """Cost of everything recorded so far."""
        gb_s = billing.total_gb_s()
        internal = meter.count(service="workflows",
                               operation="internal_step")
        external = meter.count(service="workflows",
                               operation="external_step")
        return GCPCostBreakdown(
            compute=gb_s * self.calibration.gb_s_price,
            requests=(billing.total_requests()
                      * self.calibration.request_price),
            steps=(internal * self.calibration.internal_step_price
                   + external * self.calibration.external_step_price),
            gb_s=gb_s,
            internal_steps=internal,
            external_steps=external)

    def monthly_cost(self, breakdown_per_run: GCPCostBreakdown,
                     runs_per_month: int) -> float:
        """Project a single run's cost to a monthly bill.

        Workflows charges nothing while idle, so the projection is
        linear in the number of runs (the AWS-like end of the paper's
        idle-cost spectrum).
        """
        return breakdown_per_run.total * runs_per_month
