"""GCP Cloud Functions (gen1) runtime simulation.

Structurally a sibling of :class:`~repro.aws.lambda_service.LambdaService`
— per-request instances, keep-alive pools, 100 ms billing granularity —
with the gen1 differences that make GCP a distinct data point:

* **one request per instance**: gen1 has no per-instance concurrency, so
  the instance cap is also the in-flight cap and excess requests are
  rejected ``429 RESOURCE_EXHAUSTED``;
* **memory tiers**: configurations round up to the next power-of-two
  tier, and CPU clock scales with the tier;
* **slower cold starts** (~1.5-4 s for Python) with a longer keep-alive;
* timeouts are clamped to the 540 s gen1 cap rather than rejected, so
  workload function specs shared across platforms stay portable.
"""

from __future__ import annotations

import dataclasses
import itertools
from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional

from repro.gcp.calibration import GCPCalibration
from repro.platforms.base import (
    FunctionContext,
    FunctionSpec,
    FunctionTimeout,
    InvocationResult,
    ThrottlingError,
    round_up,
)
from repro.platforms.billing import BillingMeter
from repro.sim.kernel import Environment
from repro.sim.rng import RandomStreams
from repro.telemetry import SpanKind, Telemetry


@dataclass
class FunctionInstance:
    """One warm gen1 instance, bound to a function, one request at a time."""

    instance_id: int
    function_name: str
    created_at: float
    expires_at: float
    busy: bool = False
    invocations: int = 0


class CloudFunctionsService:
    """The Cloud Functions control plane: registry plus instance pools."""

    _instance_ids = itertools.count(1)

    def __init__(self, env: Environment, telemetry: Telemetry,
                 billing: BillingMeter, streams: RandomStreams,
                 calibration: Optional[GCPCalibration] = None,
                 services: Optional[Dict[str, Any]] = None,
                 faults: Optional[Any] = None):
        self.env = env
        self.telemetry = telemetry
        self.billing = billing
        self.streams = streams
        self.faults = faults
        self.calibration = calibration or GCPCalibration()
        self.services = dict(services or {})
        self._functions: Dict[str, FunctionSpec] = {}
        self._warm: Dict[str, List[FunctionInstance]] = {}
        self._in_flight = 0
        #: requests rejected 429 RESOURCE_EXHAUSTED (instance cap)
        self.throttles = 0

    # -- registry ---------------------------------------------------------------

    def register(self, spec: FunctionSpec) -> FunctionSpec:
        """Deploy a function; its name becomes invokable.

        The configured memory rounds up to the next gen1 tier and the
        timeout clamps to the 540 s cap, so specs written for the other
        platforms deploy unchanged.
        """
        if spec.name in self._functions:
            raise ValueError(f"function {spec.name!r} already registered")
        calibration = self.calibration
        tier = calibration.round_to_tier(spec.memory_mb)
        timeout = min(spec.timeout_s, calibration.time_limit_s)
        if tier != spec.memory_mb or timeout != spec.timeout_s:
            spec = dataclasses.replace(spec, memory_mb=tier,
                                       timeout_s=timeout)
        if (self.faults is not None and self.faults.plan.wraps_handlers
                and self.faults.plan.applies_to(spec.name)):
            spec = dataclasses.replace(
                spec, handler=self.faults.wrap(spec.handler, spec.name))
        self._functions[spec.name] = spec
        self._warm.setdefault(spec.name, [])
        return spec

    def get_function(self, name: str) -> FunctionSpec:
        try:
            return self._functions[name]
        except KeyError:
            raise KeyError(
                f"no such Cloud Function: {name!r}") from None

    @property
    def function_names(self) -> List[str]:
        return sorted(self._functions)

    def warm_instance_count(self, name: str) -> int:
        """Idle warm instances available for ``name`` right now."""
        self._prune(name)
        return sum(1 for instance in self._warm.get(name, [])
                   if not instance.busy)

    # -- invocation ---------------------------------------------------------------

    def invoke(self, name: str, event: Any,
               parent_span=None) -> Generator:
        """Invoke a function; drive with ``yield from``.

        Returns an :class:`InvocationResult`.  Raises whatever the handler
        raises, or :class:`FunctionTimeout` past the configured limit.
        """
        spec = self.get_function(name)
        rng = self.streams.get(f"gcp.fn.{name}")
        calibration = self.calibration
        self._admit()
        self._in_flight += 1
        try:
            invoked_at = self.env.now
            instance, cold = self._claim_instance(name)
            cold_duration = 0.0
            # A mitigation layer may interrupt (cancel) this invocation
            # while it waits out the start-up delay; release the claimed
            # instance so cancellation cannot leak busy capacity.
            try:
                if cold:
                    cold_duration = calibration.cold_start.sample(rng)
                    span = self.telemetry.start_span(
                        name, SpanKind.COLD_START, parent=parent_span,
                        platform="gcp")
                    try:
                        yield self.env.timeout(cold_duration)
                    finally:
                        self.telemetry.end_span(span)
                else:
                    yield self.env.timeout(
                        calibration.warm_start.sample(rng))
            except BaseException:
                self._release_instance(instance)
                raise

            # Requests are billed when execution starts, not at
            # admission: an invocation cancelled while it waits out the
            # start-up delay never ran, so it must leave no request
            # charge behind (billed requests must equal execution spans).
            self.billing.charge_request(name)
            started_at = self.env.now
            span = self.telemetry.start_span(
                name, SpanKind.EXECUTION, parent=parent_span,
                platform="gcp", cold=cold, memory_mb=spec.memory_mb)
            ctx = FunctionContext(
                self.env, spec, rng, services=self.services,
                telemetry=self.telemetry, span=span,
                jitter=calibration.execution_jitter,
                cpu_factor=calibration.cpu_factor(spec.memory_mb))
            try:
                value = yield from self._run_with_timeout(ctx, spec, event)
            finally:
                finished_at = self.env.now
                self.telemetry.end_span(span,
                                        duration=finished_at - started_at)
                self._release_instance(instance)
                raw = finished_at - started_at
                billed = round_up(max(raw, 1e-9),
                                  calibration.billing_granularity_s)
                self.billing.charge_compute(
                    name, raw_duration=raw, billed_duration=billed,
                    memory_mb=spec.memory_mb)

            return InvocationResult(
                value=value, started_at=started_at, finished_at=finished_at,
                cold_start=cold, cold_start_duration=cold_duration,
                queue_wait=started_at - invoked_at - cold_duration,
                billed_gb_s=billed * spec.memory_gb, function_name=name)
        finally:
            self._in_flight -= 1

    # -- admission control ---------------------------------------------------------

    def _admit(self) -> None:
        """One request per instance: past the instance cap, reject 429.

        Rejected requests are not billed (no request charge, no compute).
        """
        calibration = self.calibration
        if self._in_flight >= calibration.max_instances:
            self.throttles += 1
            raise ThrottlingError(
                f"instance limit ({calibration.max_instances}) reached: "
                "RESOURCE_EXHAUSTED — 429 TooManyRequests",
                retry_after_s=calibration.throttle_retry_interval_s)

    # -- internals -----------------------------------------------------------------

    def _run_with_timeout(self, ctx: FunctionContext, spec: FunctionSpec,
                          event: Any) -> Generator:
        handler_process = self.env.process(spec.handler(ctx, event))
        deadline = self.env.timeout(spec.timeout_s)
        race = handler_process | deadline
        try:
            result = yield race
        except BaseException:
            # Interrupted from outside (hedge cancellation, deadline
            # abandonment): reap the orphaned handler so a later failure
            # of it cannot crash the dispatch loop.  The race condition
            # must be defused too: this process no longer waits on it,
            # and the abandoned handler's failure chains into it — an
            # undefused, waiterless condition would crash the run.
            if handler_process.is_alive:
                handler_process.interrupt(cause="abandoned")
            handler_process.defuse()
            race.defuse()
            raise
        if handler_process in result:
            return handler_process.value
        handler_process.interrupt(cause="timeout")
        # The interrupt will surface as the process's failure value; mark
        # it handled so the unwound process cannot crash the simulation.
        handler_process.defuse()
        yield self.env.timeout(0)
        raise FunctionTimeout(
            f"function {spec.name!r} exceeded its {spec.timeout_s}s limit")

    def _claim_instance(self, name: str) -> tuple:
        """Return ``(instance, cold)`` — reuse warm or provision new."""
        self._prune(name)
        for instance in self._warm[name]:
            if not instance.busy:
                instance.busy = True
                instance.invocations += 1
                return instance, False
        instance = FunctionInstance(
            instance_id=next(self._instance_ids), function_name=name,
            created_at=self.env.now,
            expires_at=self.env.now + self.calibration.keep_alive_s,
            busy=True, invocations=1)
        self._warm[name].append(instance)
        return instance, True

    def _release_instance(self, instance: FunctionInstance) -> None:
        instance.busy = False
        instance.expires_at = self.env.now + self.calibration.keep_alive_s

    def simulate_host_crash(self) -> int:
        """Kill every idle warm instance (busy ones finish their run).

        Returns how many instances were dropped; the next invocations pay
        cold starts again.
        """
        dropped = 0
        for name, instances in self._warm.items():
            keep = [instance for instance in instances if instance.busy]
            dropped += len(instances) - len(keep)
            self._warm[name] = keep
        return dropped

    def _prune(self, name: str) -> None:
        now = self.env.now
        self._warm[name] = [
            instance for instance in self._warm.get(name, [])
            if instance.busy or instance.expires_at > now]
