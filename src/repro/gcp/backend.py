"""The GCP platform backend: Workflows + Cloud Functions in the registry.

The third data point: step-based synchronous workflows over
one-request-per-instance functions.  This module is also the template
the DESIGN.md "Adding a platform backend" walkthrough points at — a
fourth platform (the ROADMAP's OpenWhisk item) is this file's shape plus
its service modules, and nothing else.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.platforms.backend import (
    BillingRules,
    PlatformBackend,
    register_backend,
)


class GCPBackend(PlatformBackend):
    """GCP Cloud Functions (gen1) + Workflows."""

    name = "gcp"
    variant_prefix = "GCP"

    # -- calibration -----------------------------------------------------------

    def calibration_type(self) -> type:
        from repro.gcp.calibration import GCPCalibration
        return GCPCalibration

    def default_calibration(self) -> Any:
        from repro.gcp.calibration import default_gcp_calibration
        return default_gcp_calibration()

    def fuzz_calibration_space(self) -> Dict[str, Tuple[Any, ...]]:
        # Instance-cap, memory-tier and client-retry knobs; memory
        # values are existing tiers so round_to_tier stays exact, and
        # the retry cap stays >= the default 1.0 s interval.
        return {
            "max_instances": (4, 100, 1000),
            "default_memory_mb": (256, 2048, 4096),
            "keep_alive_s": (120.0, 900.0),
            "throttle_retry_max_attempts": (1, 2, 5),
            "throttle_retry_cap_s": (1.0, 16.0),
        }

    # -- stack construction ----------------------------------------------------

    def build(self, testbed: Any, calibration: Any) -> Any:
        from repro.core.testbed import PlatformStack
        from repro.gcp.functions import CloudFunctionsService
        from repro.gcp.workflows import GCPWorkflowsService
        from repro.platforms.billing import BillingMeter
        from repro.storage import BlobStore, TransactionMeter
        from repro.telemetry import Telemetry

        clock = lambda: testbed.env.now  # noqa: E731 - tiny clock closure
        telemetry = Telemetry(clock, enabled=calibration.telemetry_spans)
        billing = BillingMeter(clock)
        meter = TransactionMeter(clock)
        blob = BlobStore(testbed.env, meter, testbed.streams.get("gcp.blob"),
                         account="gcs")
        stack = PlatformStack(telemetry, billing, meter, blob)
        testbed.cloudfunctions = CloudFunctionsService(
            testbed.env, telemetry, billing, testbed.streams,
            calibration=calibration, services={"blob": blob},
            faults=testbed.faults)
        testbed.workflows = GCPWorkflowsService(
            testbed.env, testbed.cloudfunctions, telemetry, meter,
            faults=testbed.faults)
        return stack

    def price_model(self, calibration: Any) -> Any:
        from repro.gcp.pricing import GCPPriceModel
        return GCPPriceModel(calibration)

    # -- deploy / invoke -------------------------------------------------------

    def register_function(self, testbed: Any, spec: Any) -> Any:
        return testbed.cloudfunctions.register(spec)

    def invoke_function(self, testbed: Any, name: str,
                        event: Any) -> Generator:
        result = yield from testbed.cloudfunctions.invoke(name, event)
        return result

    def deploy_workflow(self, testbed: Any, workflow: Any) -> str:
        return workflow.deploy_gcp(testbed)

    def invoke_workflow(self, testbed: Any, name: str,
                        payload: Any) -> Generator:
        record = yield from testbed.workflows.execute(name, payload)
        if record.status == "SUCCEEDED":
            return "SUCCEEDED", record.output
        return "FAILED", record.error

    # -- limits ----------------------------------------------------------------

    def payload_limit_bytes(self, calibration: Any) -> int:
        return calibration.payload_limit_bytes

    # -- billing / accounting --------------------------------------------------

    def billing_rules(self, calibration: Any) -> BillingRules:
        # gen1 bills the configured tier exactly (tier rounding happens
        # at registration, so spans already record tier memory); 429s
        # are rejected before the request charge.
        return BillingRules(
            granularity_s=calibration.billing_granularity_s)

    def throttle_count(self, testbed: Any) -> int:
        return testbed.cloudfunctions.throttles

    def retry_count(self, testbed: Any) -> int:
        return testbed.workflows.throttle_retries

    # -- cost reporting --------------------------------------------------------

    def cost_breakdown(self, testbed: Any) -> Dict[str, Any]:
        stack = testbed.stack(self.name)
        breakdown = testbed.gcp_prices.breakdown(stack.billing, stack.meter)
        return {"gb_s": breakdown.gb_s,
                "compute_cost": breakdown.stateless,
                "transaction_cost": breakdown.stateful,
                "transaction_count": breakdown.step_count,
                "replay_gb_s": 0.0}

    # -- audit evidence --------------------------------------------------------

    def leak_evidence(self, testbed: Any) -> List[str]:
        evidence: List[str] = []
        functions = testbed.cloudfunctions
        if functions._in_flight != 0:
            evidence.append(
                f"gcp: {functions._in_flight} function invocations still "
                "in flight at quiesce")
        busy = sum(1 for instances in functions._warm.values()
                   for instance in instances if instance.busy)
        if busy:
            evidence.append(f"gcp: {busy} function instances still busy")
        running = [record.execution_id for record
                   in testbed.workflows.executions
                   if record.status == "RUNNING"]
        if running:
            evidence.append(
                f"gcp: workflow executions still running: {running}")
        return evidence

    # -- chaos -----------------------------------------------------------------

    def crash_host(self, testbed: Any) -> Optional[Generator]:
        testbed.cloudfunctions.simulate_host_crash()
        return None


register_backend(GCPBackend())
