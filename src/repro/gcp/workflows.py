"""GCP Workflows execution engine: a step-based workflow interpreter.

Google Cloud Workflows executes a YAML-defined list of *steps* against
named variables — a genuinely different model from both Step Functions'
state machine (data document threaded through states) and Durable
Functions' replayed code (event sourcing).  The differences this module
captures, from Google's documentation and the cross-provider measurement
literature (Wen et al.; SeBS-Flow):

* **synchronous HTTP-style chaining**: call steps invoke Cloud Functions
  over a synchronous round-trip — no queue hop, no history replay — so
  latency is tight but every call pays an HTTP overhead;
* **per-step billing**: every executed step is billable, at a higher
  rate for steps making external calls (our function invocations);
* **tight payload limits**: 64 KB on values crossing step boundaries;
* a **default retry policy** absorbing 429s from called functions with
  capped exponential backoff.

The simulated step dialect (a Python-literal rendering of the YAML):
each step is a dict ``{"name": ..., <op>}`` with exactly one op —

``{"assign": [[var, value], ...]}``
    Bind variables.  Values may be literals, ``"$.var.path"`` reference
    strings (resolved against the variable scope via the shared jsonpath
    subset), or dict/list templates resolved recursively.
``{"call": fn, "args": value, "result": var, "retry": {...}}``
    Invoke a deployed Cloud Function with the resolved ``args``; bind
    the result.  ``retry`` (``max_attempts``/``interval_s``/``backoff``)
    re-attempts application errors.
``{"switch": [{"condition": {"var", "op", "value"}, "next": step}, ...]}``
    Jump to the first matching rule (ops: eq/ne/lt/lte/gt/gte); an entry
    without a condition is the default.
``{"parallel": {"branches": [[steps], ...], "result": var}}``
    Run branch step-lists concurrently in copied scopes; each branch's
    value is its final ``data`` variable; bind the list.
``{"for": {"value": var, "in": ref, "steps": [...], "result": var,
"concurrency": n}}``
    Parallel iteration over a list; each iteration runs in a copied
    scope with the loop variable *and* ``data`` bound to the item; bind
    the list of per-item ``data`` values.
``{"return": value}``
    End the execution with the resolved value (top level only).

Any step may carry ``"next"`` to jump within its step list.  Execution
starts with the scope ``{"data": argument}`` — the convention
:meth:`repro.core.workflow.Workflow.to_gcp_steps` compiles against.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional

from repro.aws.jsonpath import PathError, get_path
from repro.gcp.functions import CloudFunctionsService
from repro.platforms.base import ThrottlingError, enforce_payload_limit
from repro.sim.kernel import Environment, join_all
from repro.sim.resources import Resource
from repro.storage.meter import TransactionMeter
from repro.telemetry import SpanKind, Telemetry

#: Step ops a workflow step may carry (exactly one per step).
STEP_OPS = ("assign", "call", "switch", "parallel", "for", "return")

_SWITCH_OPS = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "lt": lambda a, b: a < b,
    "lte": lambda a, b: a <= b,
    "gt": lambda a, b: a > b,
    "gte": lambda a, b: a >= b,
}


class WorkflowValidationError(ValueError):
    """A workflow definition failed validation at creation time."""


class _StepError(Exception):
    """Internal: a step failed; carries the error text for the record."""


class _WorkflowReturn(Exception):
    """Internal: a return step ended the execution with a value."""

    def __init__(self, value: Any):
        super().__init__("workflow returned")
        self.value = value


@dataclass
class WorkflowExecutionRecord:
    """Everything observable about one workflow execution."""

    execution_id: int
    workflow_name: str
    started_at: float
    finished_at: Optional[float] = None
    status: str = "RUNNING"       # RUNNING / SUCCEEDED / FAILED
    output: Any = None
    error: Optional[str] = None
    internal_steps: int = 0
    external_steps: int = 0
    steps_entered: List[str] = field(default_factory=list)

    @property
    def duration(self) -> float:
        if self.finished_at is None:
            raise ValueError("execution still running")
        return self.finished_at - self.started_at


class GCPWorkflowsService:
    """Registry and executor for step-based workflows."""

    _execution_ids = itertools.count(1)

    def __init__(self, env: Environment, functions: CloudFunctionsService,
                 telemetry: Telemetry, meter: TransactionMeter,
                 faults: Optional[Any] = None):
        self.env = env
        self.functions = functions
        self.telemetry = telemetry
        self.meter = meter
        self.faults = faults
        self.calibration = functions.calibration
        self._workflows: Dict[str, List[dict]] = {}
        self.executions: List[WorkflowExecutionRecord] = []
        #: call-step invocations re-attempted after a function 429
        self.throttle_retries = 0

    # -- registry -----------------------------------------------------------------

    def create_workflow(self, name: str, steps: List[dict]) -> List[dict]:
        """Validate and register a step list under ``name``."""
        if name in self._workflows:
            raise ValueError(f"workflow {name!r} already exists")
        self._validate_steps(steps, top_level=True)
        self._workflows[name] = steps
        return steps

    def get_workflow(self, name: str) -> List[dict]:
        try:
            return self._workflows[name]
        except KeyError:
            raise KeyError(f"no such workflow: {name!r}") from None

    def list_executions(self, name: Optional[str] = None,
                        status: Optional[str] = None
                        ) -> List[WorkflowExecutionRecord]:
        """Executions, newest first, optionally filtered."""
        records = [record for record in self.executions
                   if (name is None or record.workflow_name == name)
                   and (status is None or record.status == status)]
        return sorted(records, key=lambda record: -record.execution_id)

    def _validate_steps(self, steps: Any, top_level: bool) -> None:
        if not isinstance(steps, list) or not steps:
            raise WorkflowValidationError(
                "a workflow needs a non-empty step list")
        names = []
        for step in steps:
            if not isinstance(step, dict) or "name" not in step:
                raise WorkflowValidationError(
                    f"every step needs a 'name': {step!r}")
            ops = [op for op in STEP_OPS if op in step]
            if len(ops) != 1:
                raise WorkflowValidationError(
                    f"step {step['name']!r} needs exactly one op from "
                    f"{STEP_OPS}, found {ops}")
            names.append(step["name"])
            op = ops[0]
            if op == "return" and not top_level:
                raise WorkflowValidationError(
                    f"step {step['name']!r}: 'return' is only allowed at "
                    "the top level (branches yield their 'data' variable)")
            if op == "call":
                # Fail at creation time if a call target is undeployed.
                self.functions.get_function(step["call"])
            elif op == "parallel":
                for branch in step["parallel"]["branches"]:
                    self._validate_steps(branch, top_level=False)
            elif op == "for":
                self._validate_steps(step["for"]["steps"], top_level=False)
        if len(set(names)) != len(names):
            raise WorkflowValidationError(
                f"duplicate step names in {names}")
        for step in steps:
            target = step.get("next")
            if target is not None and target not in names:
                raise WorkflowValidationError(
                    f"step {step['name']!r} jumps to unknown step "
                    f"{target!r}")
            for rule in step.get("switch", []):
                if rule["next"] not in names:
                    raise WorkflowValidationError(
                        f"switch in {step['name']!r} jumps to unknown "
                        f"step {rule['next']!r}")

    # -- execution -----------------------------------------------------------------

    def execute(self, name: str, argument: Any) -> Generator:
        """Run one execution to completion; drive with ``yield from``.

        Returns the :class:`WorkflowExecutionRecord`.  A failed execution
        returns a record with ``status='FAILED'`` rather than raising,
        matching the service API (and the Step Functions simulation).
        """
        steps = self.get_workflow(name)
        record = WorkflowExecutionRecord(
            execution_id=next(self._execution_ids), workflow_name=name,
            started_at=self.env.now)
        self.executions.append(record)
        span = self.telemetry.start_span(
            name, SpanKind.WORKFLOW, platform="gcp",
            execution_id=record.execution_id)
        try:
            self._check_payload(argument, "workflow argument")
            scope = {"data": argument}
            yield from self._run_steps(steps, scope, record, span, name)
            output = scope.get("data")
        except _WorkflowReturn as outcome:
            output = outcome.value
        except _StepError as error:
            record.status = "FAILED"
            record.error = str(error)
            record.finished_at = self.env.now
            self.telemetry.end_span(span, status="FAILED",
                                    error=record.error)
            return record
        record.status = "SUCCEEDED"
        record.output = output
        record.finished_at = self.env.now
        self.telemetry.end_span(span, status="SUCCEEDED")
        return record

    # -- step interpreter -------------------------------------------------------------

    def _run_steps(self, steps: List[dict], scope: Dict[str, Any],
                   record: WorkflowExecutionRecord, parent_span,
                   workflow_name: str) -> Generator:
        """Run one step list against ``scope``; returns its final
        ``data`` variable (the branch/iteration value convention)."""
        index = {step["name"]: position
                 for position, step in enumerate(steps)}
        position = 0
        while position < len(steps):
            step = steps[position]
            jump = yield from self._run_step(
                step, scope, record, parent_span, workflow_name)
            if jump is None:
                jump = step.get("next")
            position = index[jump] if jump is not None else position + 1
        return scope.get("data")

    def _run_step(self, step: dict, scope: Dict[str, Any],
                  record: WorkflowExecutionRecord, parent_span,
                  workflow_name: str) -> Generator:
        """Execute one step; returns an explicit jump target or None."""
        external = "call" in step
        yield from self._transition(step, record, workflow_name, external)

        if "assign" in step:
            for variable, value in step["assign"]:
                resolved = self._resolve(value, scope)
                self._check_payload(
                    resolved, f"assign of {variable!r} in {step['name']!r}")
                scope[variable] = resolved
            return None
        if "call" in step:
            args = self._resolve(step.get("args"), scope)
            self._check_payload(args, f"call args of {step['name']!r}")
            value = yield from self._call_function(
                step["call"], args, step.get("retry"), parent_span,
                workflow_name)
            self._check_payload(value, f"call result of {step['name']!r}")
            if "result" in step:
                scope[step["result"]] = value
            return None
        if "switch" in step:
            for rule in step["switch"]:
                condition = rule.get("condition")
                if condition is None or self._matches(condition, scope):
                    return rule["next"]
            raise _StepError(
                f"no switch condition matched in step {step['name']!r}")
        if "parallel" in step:
            spec = step["parallel"]
            processes = [
                self.env.process(self._branch_runner(
                    branch, dict(scope), record, parent_span,
                    workflow_name))
                for branch in spec["branches"]]
            results = yield from join_all(self.env, processes)
            if "result" in spec:
                scope[spec["result"]] = results
            return None
        if "for" in step:
            spec = step["for"]
            items = self._resolve(spec["in"], scope)
            if not isinstance(items, list):
                raise _StepError(
                    f"'in' of step {step['name']!r} did not resolve to "
                    "a list")
            gate = None
            if spec.get("concurrency", 0) > 0:
                gate = Resource(self.env, capacity=spec["concurrency"])
            processes = []
            for item in items:
                iteration_scope = dict(scope)
                iteration_scope[spec["value"]] = item
                iteration_scope["data"] = item
                processes.append(self.env.process(self._iteration_runner(
                    spec["steps"], iteration_scope, gate, record,
                    parent_span, workflow_name)))
            results = yield from join_all(self.env, processes)
            if "result" in spec:
                scope[spec["result"]] = results
            return None
        if "return" in step:
            value = self._resolve(step["return"], scope)
            self._check_payload(value, f"return of {step['name']!r}")
            raise _WorkflowReturn(value)
        raise _StepError(f"step {step['name']!r} has no recognized op")

    def _branch_runner(self, steps: List[dict], scope: Dict[str, Any],
                       record: WorkflowExecutionRecord, parent_span,
                       workflow_name: str) -> Generator:
        value = yield from self._run_steps(
            steps, scope, record, parent_span, workflow_name)
        return value

    def _iteration_runner(self, steps: List[dict], scope: Dict[str, Any],
                          gate, record: WorkflowExecutionRecord,
                          parent_span, workflow_name: str) -> Generator:
        if gate is None:
            value = yield from self._run_steps(
                steps, scope, record, parent_span, workflow_name)
            return value
        with gate.request() as slot:
            yield slot
            value = yield from self._run_steps(
                steps, scope, record, parent_span, workflow_name)
            return value

    # -- step mechanics ---------------------------------------------------------------

    def _transition(self, step: dict, record: WorkflowExecutionRecord,
                    workflow_name: str, external: bool) -> Generator:
        """Enter a step: bill it, meter it, pay the scheduler latency."""
        record.steps_entered.append(step["name"])
        if external:
            record.external_steps += 1
            self.meter.record("workflows", workflow_name, "external_step")
        else:
            record.internal_steps += 1
            self.meter.record("workflows", workflow_name, "internal_step")
        rng = self.functions.streams.get(f"gcp.flow.{workflow_name}")
        latency = self.calibration.transition_latency.sample(rng)
        span = self.telemetry.start_span(
            step["name"], SpanKind.TRANSITION, platform="gcp",
            step_op=[op for op in STEP_OPS if op in step][0])
        yield self.env.timeout(latency)
        self.telemetry.end_span(span)
        return None

    def _call_function(self, function: str, args: Any,
                       retry: Optional[dict], parent_span,
                       workflow_name: str) -> Generator:
        """Invoke a Cloud Function from a call step.

        Two retry layers, mirroring the real service: the built-in
        policy absorbs 429s with capped exponential backoff (counted in
        :attr:`throttle_retries`); application errors re-attempt per the
        step's ``retry`` config, or per the fault plan's synthesized
        default retrier during reliability campaigns (counted in
        ``faults.platform_retries``).  Retry delays run on the simulated
        clock.  The synchronous HTTP hop costs ``http_call_overhead``
        per attempt.
        """
        calibration = self.calibration
        if (retry is None and self.faults is not None
                and self.faults.plan.retry_max_attempts > 1):
            plan = self.faults.plan
            retry = {"max_attempts": plan.retry_max_attempts - 1,
                     "interval_s": plan.retry_interval_s,
                     "backoff": plan.retry_backoff}
        rng = self.functions.streams.get(
            f"gcp.flow.throttle.{function}")
        throttle_attempt = 0
        app_attempt = 0
        while True:
            yield self.env.timeout(
                calibration.http_call_overhead.sample(rng))
            try:
                result = yield from self.functions.invoke(
                    function, args, parent_span=parent_span)
                return result.value
            except ThrottlingError as error:
                throttle_attempt += 1
                if (throttle_attempt
                        >= calibration.throttle_retry_max_attempts):
                    raise _StepError(
                        f"call {function!r} failed: {error}") from error
                self.throttle_retries += 1
                ceiling = min(
                    calibration.throttle_retry_cap_s,
                    calibration.throttle_retry_interval_s
                    * 2.0 ** (throttle_attempt - 1))
                delay = max(error.retry_after_s,
                            ceiling * float(rng.uniform(0.5, 1.0)))
                yield self.env.timeout(delay)
            except _StepError:
                raise
            except Exception as error:  # noqa: BLE001 - the step outcome
                if retry is not None and app_attempt < retry["max_attempts"]:
                    delay = (retry["interval_s"]
                             * retry.get("backoff", 2.0) ** app_attempt)
                    app_attempt += 1
                    if self.faults is not None:
                        self.faults.platform_retries += 1
                    yield self.env.timeout(delay)
                    continue
                raise _StepError(
                    f"call {function!r} failed: {error}") from error

    def _resolve(self, value: Any, scope: Dict[str, Any]) -> Any:
        """Resolve refs/templates against the variable scope."""
        if isinstance(value, str) and (value == "$"
                                       or value.startswith("$.")):
            try:
                return get_path(scope, value)
            except (PathError, KeyError, IndexError, TypeError) as error:
                raise _StepError(
                    f"reference {value!r} failed to resolve: "
                    f"{error}") from error
        if isinstance(value, dict):
            return {key: self._resolve(item, scope)
                    for key, item in value.items()}
        if isinstance(value, list):
            return [self._resolve(item, scope) for item in value]
        return value

    def _matches(self, condition: dict, scope: Dict[str, Any]) -> bool:
        left = self._resolve(condition["var"], scope)
        op = condition.get("op", "eq")
        if op not in _SWITCH_OPS:
            raise _StepError(
                f"unknown switch op {op!r}; choose from "
                f"{sorted(_SWITCH_OPS)}")
        return _SWITCH_OPS[op](left, condition["value"])

    def _check_payload(self, value: Any, where: str) -> None:
        try:
            enforce_payload_limit(
                value, self.calibration.payload_limit_bytes, where)
        except Exception as error:
            raise _StepError(str(error)) from error
