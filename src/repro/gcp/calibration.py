"""Calibration constants for the GCP Workflows + Cloud Functions simulation.

Like :mod:`repro.platforms.calibration`, mechanisms live in the service
modules; the constants below only set their magnitudes.  The values are
drawn from Google's public documentation and price sheets plus the
cross-provider measurement literature (SeBS-Flow; Wen et al.'s empirical
study of serverless workflow services), not from the source paper — GCP
is the *extension* platform, the third data point the paper could not
produce.

All times are seconds, all prices USD, all memory MB.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.sim.distributions import Distribution, Normal, Uniform
from repro.storage.payload import KB


@dataclass
class GCPCalibration:
    """GCP Cloud Functions (gen1) + Workflows constants."""

    # -- execution environment ---------------------------------------------------
    region: str = "us-central1"
    runtime: str = "Python 3.7"
    default_memory_mb: int = 2048
    #: Cloud Functions gen1 memory tiers; registrations round up to the
    #: next tier so workload function specs stay portable across
    #: platforms (a shared 1536 MB spec lands on the 2048 MB tier).
    memory_tiers: Tuple[int, ...] = (128, 256, 512, 1024, 2048, 4096, 8192)
    #: gen1 execution cap (9 minutes); longer spec timeouts are clamped.
    time_limit_s: float = 540.0
    #: Workflows caps data crossing any step boundary tightly (64 KB
    #: arguments/results — the same order as Azure's durable limit, far
    #: below Step Functions' 256 KB).
    payload_limit_bytes: int = 64 * KB

    # -- Cloud Functions runtime behaviour ----------------------------------------
    #: Cold-start provisioning per new instance.  Measurement studies
    #: place gen1 Python cold starts well above AWS's: ~1.5-4 s.
    cold_start: Distribution = field(
        default_factory=lambda: Uniform(1.5, 4.0))
    #: Warm invocation dispatch overhead.
    warm_start: Distribution = field(
        default_factory=lambda: Uniform(0.008, 0.030))
    #: Idle instance keep-alive before reclamation (gen1 keeps instances
    #: warm noticeably longer than Lambda).
    keep_alive_s: float = 900.0
    #: Instance cap.  gen1 serves **one request per instance** — there is
    #: no per-instance concurrency — so this bounds in-flight requests;
    #: excess requests are rejected 429 RESOURCE_EXHAUSTED.
    max_instances: int = 1000
    #: Execution-time jitter applied multiplicatively to handler busy time.
    execution_jitter: Distribution = field(
        default_factory=lambda: Normal(mu=1.0, sigma=0.05))

    # -- Workflows behaviour --------------------------------------------------------
    #: Scheduler latency per step transition (assign/switch/return and
    #: the non-HTTP part of call steps).
    transition_latency: Distribution = field(
        default_factory=lambda: Uniform(0.010, 0.030))
    #: Extra synchronous HTTP round-trip a call step pays invoking a
    #: Cloud Function (Workflows chains steps over HTTP, not a queue).
    http_call_overhead: Distribution = field(
        default_factory=lambda: Uniform(0.020, 0.080))
    #: Workflows' default retry policy absorbs 429s from called
    #: functions: attempts before the error surfaces to the execution.
    throttle_retry_max_attempts: int = 5
    #: Base delay of the throttle-retry exponential backoff.
    throttle_retry_interval_s: float = 1.0
    #: Ceiling of the throttle-retry backoff (capped exponential).
    throttle_retry_cap_s: float = 16.0

    # -- billing (2021 public price sheets) -------------------------------------------
    #: Cloud Functions compute.  GCP bills GB-s and GHz-s separately;
    #: since CPU scales with the memory tier the two are proportional,
    #: and this constant is the combined effective $/GB-s.
    gb_s_price: float = 1.65e-5
    request_price: float = 4.0e-7          # $0.40 per 1M invocations
    #: Workflows bills per executed *step*: internal steps $0.01 per 1K,
    #: steps making external calls (our function invocations) $0.025
    #: per 1K.
    internal_step_price: float = 1.0e-5
    external_step_price: float = 2.5e-5
    billing_granularity_s: float = 0.100   # gen1 rounds up to 100 ms

    #: Memory tier at which a function gets a full vCPU (2.4 GHz).
    full_cpu_memory_mb: float = 2048.0

    #: Collect telemetry spans (see
    #: :attr:`repro.platforms.calibration.AWSCalibration.telemetry_spans`).
    telemetry_spans: bool = True

    def cpu_factor(self, memory_mb: int) -> float:
        """Execution-time multiplier for a given memory tier."""
        factor = self.full_cpu_memory_mb / float(memory_mb)
        return min(3.0, max(0.5, factor))

    def round_to_tier(self, memory_mb: int) -> int:
        """The smallest memory tier holding ``memory_mb``."""
        for tier in self.memory_tiers:
            if memory_mb <= tier:
                return tier
        raise ValueError(
            f"memory {memory_mb} MB exceeds the largest Cloud Functions "
            f"tier ({self.memory_tiers[-1]} MB)")

    def __post_init__(self):
        self.validate()

    def validate(self) -> None:
        """Reject nonsensical settings (mirrors the AWS/Azure pattern;
        re-run after :meth:`CampaignSpec.calibrations` applies overrides)."""
        if not self.memory_tiers:
            raise ValueError("memory_tiers must be non-empty")
        if tuple(sorted(self.memory_tiers)) != tuple(self.memory_tiers):
            raise ValueError("memory_tiers must be sorted ascending")
        if self.max_instances <= 0:
            raise ValueError("max_instances must be positive")
        if self.throttle_retry_max_attempts < 1:
            raise ValueError("throttle_retry_max_attempts must be >= 1")
        if self.throttle_retry_interval_s <= 0:
            raise ValueError("throttle_retry_interval_s must be positive")
        if self.throttle_retry_cap_s < self.throttle_retry_interval_s:
            raise ValueError(
                "throttle_retry_cap_s must be >= throttle_retry_interval_s")


def default_gcp_calibration() -> GCPCalibration:
    """A fresh GCP calibration with the documented defaults."""
    return GCPCalibration()
