"""Azure price model: consumption-plan GB-s + storage transactions.

The paper's framing (§II-B, §V-A): Azure charges GB-s on *measured*
memory, and the stateful component is the number of queue and table
transactions performed by the Durable Task Framework — "the queue polling
continues even when the function is not active.  This adds to the user
cost when the workflow is idle."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.platforms.billing import BillingMeter
from repro.platforms.calibration import AzureCalibration
from repro.storage.meter import TransactionMeter

#: Storage services whose operations Azure bills as transactions.
BILLABLE_SERVICES = ("queue", "table", "blob")


@dataclass
class AzureCostBreakdown:
    """Dollar cost split into the paper's two components."""

    compute: float            # GB-s ("computation cost")
    executions: float         # per-execution charge
    transactions: float       # storage transactions ("transaction cost")
    gb_s: float
    transaction_count: int

    @property
    def stateless(self) -> float:
        """The paper's 'computation cost' component."""
        return self.compute + self.executions

    @property
    def stateful(self) -> float:
        """The paper's 'transaction cost' component."""
        return self.transactions

    @property
    def total(self) -> float:
        return self.stateless + self.stateful

    @property
    def stateful_share(self) -> float:
        """Transaction cost as a fraction of the total (Fig 11c)."""
        return self.stateful / self.total if self.total else 0.0


class AzurePriceModel:
    """Prices a deployment's billing and transaction meters."""

    def __init__(self, calibration: AzureCalibration):
        self.calibration = calibration

    def breakdown(self, billing: BillingMeter,
                  meter: TransactionMeter) -> AzureCostBreakdown:
        """Cost of everything recorded so far."""
        gb_s = billing.total_gb_s()
        transaction_count = sum(
            meter.count(service=service) for service in BILLABLE_SERVICES)
        return AzureCostBreakdown(
            compute=gb_s * self.calibration.gb_s_price,
            executions=(billing.total_requests()
                        * self.calibration.execution_price),
            transactions=(transaction_count
                          * self.calibration.storage_transaction_price),
            gb_s=gb_s,
            transaction_count=transaction_count)

    def monthly_cost(self, breakdown_per_run: AzureCostBreakdown,
                     runs_per_month: int,
                     idle_transactions_per_month: int = 0) -> float:
        """Project to a monthly bill, *including idle-time polling*.

        Unlike AWS, the Durable framework keeps polling its queues while
        the workflow is idle, so the monthly bill has a constant term
        (§V-A cost discussion, Fig 15).
        """
        idle = (idle_transactions_per_month
                * self.calibration.storage_transaction_price)
        return breakdown_per_run.total * runs_per_month + idle

    def premium_monthly_cost(self, hours: float = 730.0) -> float:
        """Fixed monthly bill for the premium plan's pre-warmed pool."""
        return (self.calibration.premium_min_instances
                * self.calibration.premium_instance_hourly_price * hours)
