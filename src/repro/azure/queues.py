"""Queue-chained Azure functions — the paper's *Az-Queue* implementation.

"Isolated functions connecting through Azure queues" (Table II): each
stage of the workflow is a queue-triggered function; stage N's result is
enqueued for stage N+1.  Every hop pays queue-trigger polling latency —
the dominant cost in Fig 8, where the Az-Queue chain accumulates ~30 s of
99ile queue time — and the chain's cold start is the worst of all
implementations (10-20 s, Fig 10), reflecting request queueing on a
static container pool.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional

from repro.azure.app import TRIGGER_QUEUE, FunctionAppService
from repro.sim.kernel import Event
from repro.storage.meter import TransactionMeter
from repro.storage.queue import CloudQueue
from repro.telemetry import SpanKind


@dataclass
class ChainRun:
    """Outcome of one message's trip through the whole chain."""

    run_id: int
    submitted_at: float
    finished_at: float
    value: Any
    queue_time: float        # total trigger-polling + queue latency
    execution_time: float    # total handler execution time

    @property
    def latency(self) -> float:
        return self.finished_at - self.submitted_at


class QueueChain:
    """A pipeline of queue-triggered functions."""

    _run_ids = itertools.count(1)

    def __init__(self, app: FunctionAppService, meter: TransactionMeter,
                 stages: List[str], name: str = "chain"):
        if not stages:
            raise ValueError("a queue chain needs at least one stage")
        for stage in stages:
            app.get_function(stage)   # fail fast on unknown functions
        self.app = app
        self.meter = meter
        self.stages = list(stages)
        self.name = name
        self.env = app.env
        rng = app.streams.get(f"azure.queuechain.{name}")
        self.queues = [
            CloudQueue(self.env, meter, rng, name=f"{name}-q{index}",
                       account=f"{name}-storage",
                       max_message_size=app.calibration
                       .queue_payload_limit_bytes,
                       faults=getattr(app, "faults", None),
                       idle_poll_elision=getattr(
                           app.calibration, "idle_poll_elision", False))
            for index in range(len(stages))]
        self._rng = rng

    def run(self, input_value: Any) -> Generator:
        """Push a message through every stage; returns a :class:`ChainRun`.

        Stage hops model the queue-trigger listener: the message is
        enqueued, waits for the trigger's polling cycle, then executes on
        the shared app pool.
        """
        run_id = next(self._run_ids)
        submitted_at = self.env.now
        telemetry = self.app.telemetry
        workflow_span = telemetry.start_span(
            self.name, SpanKind.WORKFLOW, platform="azure",
            implementation="az-queue", run_id=run_id)

        calibration = self.app.calibration
        queue_time = 0.0
        execution_time = 0.0
        value = input_value
        for index, stage in enumerate(self.stages):
            queue = self.queues[index]
            yield from queue.enqueue(value)
            # Queue-trigger listener polling delay before pickup.
            poll_delay = calibration.queue_trigger_poll.sample(self._rng)
            wait_span = telemetry.start_span(
                stage, SpanKind.QUEUE_WAIT, parent=workflow_span,
                platform="azure", implementation="az-queue")
            yield self.env.timeout(poll_delay)
            # receive() keeps polling past delivery-delay faults; without
            # faults its first poll succeeds immediately, identical to a
            # single poll() call.
            message = yield from queue.receive()
            if message is None:
                raise RuntimeError(
                    f"queue chain {self.name!r} lost its own message")
            telemetry.end_span(wait_span)
            queue_time += self.env.now - wait_span.start

            result = yield from self.app.invoke(
                stage, message.value, trigger=TRIGGER_QUEUE,
                parent_span=workflow_span)
            yield from queue.delete(message)
            queue_time += result.queue_wait
            execution_time += result.duration
            value = result.value

        finished_at = self.env.now
        telemetry.end_span(workflow_span)
        return ChainRun(
            run_id=run_id, submitted_at=submitted_at,
            finished_at=finished_at, value=value,
            queue_time=queue_time, execution_time=execution_time)
