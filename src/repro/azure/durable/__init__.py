"""Azure Durable Functions: orchestrators, entities, task hub.

A faithful implementation of the Durable Task Framework's execution model
(§II-B of the paper):

* Orchestrator functions are deterministic generators.  Each time a
  message arrives for an orchestration, the framework *replays* the
  generator from the top against the instance's event history, feeding
  completed results instantly and suspending ("unloading") at the first
  unfinished task.  Replay consumes billable execution time.
* Every scheduling decision and completion is persisted to a history
  table; orchestrator/entity messages travel over storage queues; all of
  it is metered as billable storage transactions — including the
  constant queue polling that continues while the application is idle.
* Durable entities are addressable, persistent, class-like state holders
  whose operations are serialized per entity key.
"""

from repro.azure.durable.entities import EntityId, EntitySpec
from repro.azure.durable.context import (
    ActivityFailedError,
    OrchestrationContext,
    OrchestratorSpec,
    RetryOptions,
)
from repro.azure.durable.taskhub import (
    DurableClient,
    DurableFunctionsRuntime,
    OrchestrationFailedError,
    OrchestrationInstance,
    OrchestrationStatus,
    TaskHub,
)

__all__ = [
    "ActivityFailedError",
    "DurableClient",
    "DurableFunctionsRuntime",
    "EntityId",
    "EntitySpec",
    "OrchestrationContext",
    "OrchestrationFailedError",
    "OrchestrationInstance",
    "OrchestrationStatus",
    "OrchestratorSpec",
    "TaskHub",
]
