"""The orchestration context and the replay resolution engine.

``OrchestrationContext`` is the API surface orchestrator generators see —
the simulation counterpart of ``DurableOrchestrationContext`` in the
paper's Figure 4 (``call_activity``, ``call_entity``, ``task_all``...).

It also implements the deterministic-replay bookkeeping: every task
created gets a sequence number from a counter that advances identically
on every replay (hence the determinism requirement on orchestrator code,
§II-B), and resolution against the history decides whether a yielded task
is already complete, still in flight, or not yet scheduled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional, Sequence, Tuple

from repro.azure.durable import history as h
from repro.azure.durable.entities import EntityId
from repro.azure.durable.tasks import (
    ACTIVITY,
    ENTITY,
    SUB_ORCHESTRATION,
    TIMER,
    AtomicTask,
    DurableTask,
    ExternalEventTask,
    WhenAll,
    WhenAny,
)
from repro.platforms.base import enforce_payload_limit

PENDING = "pending"
DONE = "done"
FAILED = "failed"


class ActivityFailedError(RuntimeError):
    """Raised inside an orchestrator when an awaited task failed."""


class NonDeterminismError(RuntimeError):
    """Replay diverged from history — the orchestrator is not deterministic."""


@dataclass
class OrchestratorSpec:
    """A registered orchestrator function."""

    name: str
    fn: Callable[["OrchestrationContext"], Generator]
    #: memory billed for each episode execution (measured, Azure-style)
    measured_memory_mb: int = 256
    #: extra CPU seconds of *original* (non-replay) work per episode, for
    #: orchestrators that do inline computation (Figure 4 reads a CSV).
    inline_cpu_s: float = 0.0


@dataclass(frozen=True)
class RetryOptions:
    """Retry policy for ``call_activity_with_retry`` (Azure SDK shape)."""

    first_retry_interval_s: float = 5.0
    max_number_of_attempts: int = 3
    backoff_coefficient: float = 2.0
    #: exponential backoff is capped at this delay (None = uncapped)
    max_retry_interval_s: Optional[float] = None
    #: give up retrying once this much time has passed (None = no limit)
    retry_timeout_s: Optional[float] = None

    def __post_init__(self):
        if self.first_retry_interval_s <= 0:
            raise ValueError("first_retry_interval_s must be positive")
        if self.max_number_of_attempts < 1:
            raise ValueError("max_number_of_attempts must be at least 1")
        if self.backoff_coefficient < 1.0:
            raise ValueError("backoff_coefficient must be >= 1")
        if self.max_retry_interval_s is not None:
            if self.max_retry_interval_s < self.first_retry_interval_s:
                raise ValueError(
                    "max_retry_interval_s must be >= first_retry_interval_s")
        if self.retry_timeout_s is not None and self.retry_timeout_s <= 0:
            raise ValueError("retry_timeout_s must be positive")

    def delay_before_attempt(self, attempt: int) -> float:
        """Backoff delay before retry ``attempt`` (1-based), capped at
        ``max_retry_interval_s`` when set."""
        delay = (self.first_retry_interval_s
                 * self.backoff_coefficient ** (attempt - 1))
        if self.max_retry_interval_s is not None:
            delay = min(delay, self.max_retry_interval_s)
        return delay


@dataclass
class Action:
    """A side effect the framework must perform after an episode."""

    kind: str                 # one of the task kinds
    seq: int
    target: str = ""
    operation: str = ""
    input: Any = None
    fire_at: float = 0.0
    signal: bool = False
    child_id: str = ""
    retry: Optional[RetryOptions] = None


class OrchestrationContext:
    """Per-episode view of one orchestration instance."""

    def __init__(self, instance_id: str, input_value: Any,
                 events: Sequence[h.HistoryEvent],
                 payload_limit: int, now: float):
        self.instance_id = instance_id
        self._input = input_value
        self._payload_limit = payload_limit
        self._now = now
        self._seq = 0
        self.actions: List[Action] = []
        self.is_replaying = True
        self._continued_with: Optional[Any] = None
        self._continue_requested = False
        self.custom_status: Optional[Any] = None
        self._external_waits: Dict[str, int] = {}
        self._external_events: Dict[str, List[Any]] = {}

        # Index the history for O(1) resolution.
        self._scheduled: Dict[int, h.HistoryEvent] = {}
        self._completions: Dict[int, Tuple[str, Any]] = {}
        self._completion_order: List[int] = []
        for event in events:
            if isinstance(event, h.ExternalEventReceived):
                bucket = self._external_events.setdefault(event.name, [])
                self._completion_order.append(
                    ("ext", event.name, len(bucket)))
                bucket.append(event.value)
                continue
            if isinstance(event, h.SCHEDULING_EVENTS):
                self._scheduled[event.seq] = event
            elif isinstance(event, h.SUCCESS_EVENTS):
                result = getattr(event, "result", None)
                self._completions[event.seq] = (DONE, result)
                self._completion_order.append(("seq", event.seq))
            elif isinstance(event, h.FAILURE_EVENTS):
                self._completions[event.seq] = (FAILED, event.error)
                self._completion_order.append(("seq", event.seq))
        self._unconsumed = set(self._completions)

    # -- public API (mirrors DurableOrchestrationContext) ------------------------

    @property
    def input(self) -> Any:
        """The orchestration input (``get_input()`` in the Azure SDK)."""
        return self._input

    def get_input(self) -> Any:
        return self._input

    @property
    def current_time(self) -> float:
        """Deterministic 'now': the episode's start time."""
        return self._now

    def call_activity(self, name: str, input_value: Any = None) -> AtomicTask:
        """Schedule a stateless activity function."""
        enforce_payload_limit(input_value, self._payload_limit,
                              f"call_activity({name!r}) input")
        return self._create(ACTIVITY, target=name, input_value=input_value)

    def call_sub_orchestrator(self, name: str,
                              input_value: Any = None) -> AtomicTask:
        """Schedule a child orchestration."""
        enforce_payload_limit(input_value, self._payload_limit,
                              f"call_sub_orchestrator({name!r}) input")
        return self._create(SUB_ORCHESTRATION, target=name,
                            input_value=input_value)

    def call_entity(self, entity: EntityId, operation: str,
                    input_value: Any = None) -> AtomicTask:
        """Invoke an entity operation and await its result."""
        enforce_payload_limit(input_value, self._payload_limit,
                              f"call_entity({entity}) input")
        return self._create(ENTITY, target=str(entity), operation=operation,
                            input_value=input_value)

    def signal_entity(self, entity: EntityId, operation: str,
                      input_value: Any = None) -> AtomicTask:
        """Fire-and-forget entity operation (completes immediately)."""
        enforce_payload_limit(input_value, self._payload_limit,
                              f"signal_entity({entity}) input")
        return self._create(ENTITY, target=str(entity), operation=operation,
                            input_value=input_value, signal=True)

    def call_activity_with_retry(self, name: str, retry: RetryOptions,
                                 input_value: Any = None) -> AtomicTask:
        """Schedule an activity with a framework-managed retry policy."""
        enforce_payload_limit(input_value, self._payload_limit,
                              f"call_activity_with_retry({name!r}) input")
        return self._create(ACTIVITY, target=name, input_value=input_value,
                            retry=retry)

    def wait_for_external_event(self, name: str) -> ExternalEventTask:
        """Await an event raised by a client (``raise_event``).

        The k-th wait on a name completes with the k-th event raised
        under that name — deterministic across replays.
        """
        ordinal = self._external_waits.get(name, 0)
        self._external_waits[name] = ordinal + 1
        return ExternalEventTask(name=name, ordinal=ordinal)

    def set_custom_status(self, status: Any) -> None:
        """Publish a small progress payload visible via ``get_status``."""
        enforce_payload_limit(status, self._payload_limit,
                              "set_custom_status value")
        self.custom_status = status

    def continue_as_new(self, new_input: Any) -> None:
        """Restart this orchestration with ``new_input`` and fresh history.

        The orchestrator should ``return`` right after calling this —
        the eternal-orchestration pattern.
        """
        enforce_payload_limit(new_input, self._payload_limit,
                              "continue_as_new input")
        self._continue_requested = True
        self._continued_with = new_input

    @property
    def continued_as_new(self) -> bool:
        return self._continue_requested

    @property
    def continue_input(self) -> Any:
        return self._continued_with

    def create_timer(self, delay: float) -> AtomicTask:
        """A durable timer that fires ``delay`` seconds from 'now'."""
        if delay < 0:
            raise ValueError(f"negative timer delay: {delay}")
        return self._create(TIMER, fire_at=self._now + delay)

    def task_all(self, tasks: Sequence[DurableTask]) -> WhenAll:
        """Fan-in: completes when every task has (``context.task_all``)."""
        return WhenAll(tasks)

    def task_any(self, tasks: Sequence[DurableTask]) -> WhenAny:
        """Completes at the first finished task."""
        return WhenAny(tasks)

    # -- replay machinery ---------------------------------------------------------

    def _create(self, kind: str, target: str = "", operation: str = "",
                input_value: Any = None, fire_at: float = 0.0,
                signal: bool = False,
                retry: Optional[RetryOptions] = None) -> AtomicTask:
        seq = self._seq
        self._seq += 1
        task = AtomicTask(seq=seq, kind=kind, target=target,
                          operation=operation, input=input_value,
                          fire_at=fire_at)
        if seq in self._scheduled:
            # Replaying a decision history already knows: check determinism.
            past = self._scheduled[seq]
            expected_kind = _event_kind(past)
            if expected_kind != kind:
                raise NonDeterminismError(
                    f"replay diverged at seq {seq}: history has "
                    f"{expected_kind}, code produced {kind}")
        else:
            self._scheduled[seq] = None  # locally scheduled this episode
            self.actions.append(Action(
                kind=kind, seq=seq, target=target, operation=operation,
                input=input_value, fire_at=fire_at, signal=signal,
                retry=retry))
        if signal:
            # Signals complete instantly from the caller's point of view.
            self._completions.setdefault(seq, (DONE, None))
        return task

    def resolve(self, task: DurableTask) -> Tuple[str, Any]:
        """Resolve a yielded task against the indexed history.

        Returns ``(status, value)`` where status is pending/done/failed.
        Resolving a composite schedules all its unscheduled children —
        that is what makes ``yield context.task_all([...])`` dispatch the
        whole fan-out in one episode.
        """
        if isinstance(task, AtomicTask):
            if task.seq in self._completions:
                status, value = self._completions[task.seq]
                if self._unconsumed:
                    self._unconsumed.discard(task.seq)
                    if not self._unconsumed:
                        self.is_replaying = False
                return status, value
            return PENDING, None
        if isinstance(task, ExternalEventTask):
            received = self._external_events.get(task.name, [])
            if task.ordinal < len(received):
                return DONE, received[task.ordinal]
            return PENDING, None
        if isinstance(task, WhenAll):
            statuses = [self.resolve(child) for child in task.children]
            for status, value in statuses:
                if status == FAILED:
                    return FAILED, value
            if all(status == DONE for status, _ in statuses):
                return DONE, [value for _, value in statuses]
            return PENDING, None
        if isinstance(task, WhenAny):
            resolved = {}
            for child in task.children:
                resolved[self._leaf_key(child)] = (child,
                                                   self.resolve(child))
            for key in self._completion_order:
                if key in resolved:
                    child, (status, value) = resolved[key]
                    if status == FAILED:
                        return FAILED, value
                    return DONE, (child, value)
            return PENDING, None
        raise TypeError(f"orchestrator yielded a non-durable task: {task!r}")

    @staticmethod
    def _leaf_key(task: DurableTask):
        if isinstance(task, AtomicTask):
            return ("seq", task.seq)
        if isinstance(task, ExternalEventTask):
            return ("ext", task.name, task.ordinal)
        raise TypeError("task_any over composite tasks is not supported")


def _event_kind(event: Optional[h.HistoryEvent]) -> str:
    if isinstance(event, h.TaskScheduled):
        return ACTIVITY
    if isinstance(event, h.SubOrchestrationScheduled):
        return SUB_ORCHESTRATION
    if isinstance(event, h.EntityCalled):
        return ENTITY
    if isinstance(event, h.TimerCreated):
        return TIMER
    return "unknown"


def run_orchestrator_turn(spec: OrchestratorSpec,
                          ctx: OrchestrationContext) -> Tuple[str, Any]:
    """Replay the orchestrator generator against ``ctx``.

    Returns ``('awaiting', None)``, ``('completed', output)`` or
    ``('failed', error_message)``.  Scheduling side effects accumulate in
    ``ctx.actions``.
    """
    generator = spec.fn(ctx)
    try:
        yielded = next(generator)
        while True:
            if not isinstance(yielded, DurableTask):
                raise TypeError(
                    f"orchestrator {spec.name!r} yielded {yielded!r}; "
                    "orchestrators may only yield durable tasks")
            status, value = ctx.resolve(yielded)
            if status == PENDING:
                generator.close()
                return "awaiting", None
            if status == DONE:
                yielded = generator.send(value)
            else:
                yielded = generator.throw(ActivityFailedError(value))
    except StopIteration as stop:
        if ctx.continued_as_new:
            return "continue_as_new", ctx.continue_input
        return "completed", stop.value
    except ActivityFailedError as error:
        return "failed", str(error)
    except Exception as error:  # noqa: BLE001 - user code failure path
        return "failed", f"{type(error).__name__}: {error}"
