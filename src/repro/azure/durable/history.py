"""History events — the event-sourcing vocabulary of the Durable framework.

An orchestration instance's state *is* its history: an append-only log of
the events below, persisted to the task hub's history table.  Replay
rebuilds orchestrator progress purely from this log.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional


@dataclass(frozen=True)
class HistoryEvent:
    """Base class; ``time`` is when the event was appended."""

    time: float


@dataclass(frozen=True)
class ExecutionStarted(HistoryEvent):
    """The orchestration was created with this input."""

    input: Any = None


@dataclass(frozen=True)
class TaskScheduled(HistoryEvent):
    """An activity call was dispatched to the work-item queue."""

    seq: int = 0
    name: str = ""
    input: Any = None


@dataclass(frozen=True)
class TaskCompleted(HistoryEvent):
    """An activity finished successfully."""

    seq: int = 0
    result: Any = None


@dataclass(frozen=True)
class TaskFailed(HistoryEvent):
    """An activity raised."""

    seq: int = 0
    error: str = ""


@dataclass(frozen=True)
class SubOrchestrationScheduled(HistoryEvent):
    """A child orchestration was started."""

    seq: int = 0
    name: str = ""
    input: Any = None
    child_id: str = ""


@dataclass(frozen=True)
class SubOrchestrationCompleted(HistoryEvent):
    seq: int = 0
    result: Any = None


@dataclass(frozen=True)
class SubOrchestrationFailed(HistoryEvent):
    seq: int = 0
    error: str = ""


@dataclass(frozen=True)
class EntityCalled(HistoryEvent):
    """An entity operation was dispatched (two-way unless ``signal``)."""

    seq: int = 0
    entity: str = ""
    operation: str = ""
    input: Any = None
    signal: bool = False


@dataclass(frozen=True)
class EntityResponded(HistoryEvent):
    seq: int = 0
    result: Any = None


@dataclass(frozen=True)
class EntityFailed(HistoryEvent):
    seq: int = 0
    error: str = ""


@dataclass(frozen=True)
class ExternalEventReceived(HistoryEvent):
    """A client raised a named event against this instance."""

    name: str = ""
    value: Any = None


@dataclass(frozen=True)
class TimerCreated(HistoryEvent):
    seq: int = 0
    fire_at: float = 0.0


@dataclass(frozen=True)
class TimerFired(HistoryEvent):
    seq: int = 0


@dataclass(frozen=True)
class ExecutionCompleted(HistoryEvent):
    output: Any = None


@dataclass(frozen=True)
class ExecutionFailedEvent(HistoryEvent):
    error: str = ""


#: Events that mark a task as scheduled, keyed by their class.
SCHEDULING_EVENTS = (TaskScheduled, SubOrchestrationScheduled, EntityCalled,
                     TimerCreated)

#: Events that complete a task successfully.
SUCCESS_EVENTS = (TaskCompleted, SubOrchestrationCompleted, EntityResponded,
                  TimerFired)

#: Events that complete a task with a failure.
FAILURE_EVENTS = (TaskFailed, SubOrchestrationFailed, EntityFailed)


def event_payload_size(event: HistoryEvent) -> int:
    """Approximate serialized size of a history event row."""
    from repro.storage.payload import estimate_size
    return 64 + estimate_size(getattr(event, "input", None)) + \
        estimate_size(getattr(event, "result", None)) + \
        estimate_size(getattr(event, "output", None))
