"""Durable task objects yielded by orchestrator generators."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Sequence

#: Atomic task kinds.
ACTIVITY = "activity"
SUB_ORCHESTRATION = "sub_orchestration"
ENTITY = "entity"
TIMER = "timer"
EXTERNAL = "external_event"


class DurableTask:
    """Base class for everything an orchestrator can ``yield``."""


@dataclass
class AtomicTask(DurableTask):
    """One schedulable unit identified by its deterministic sequence number."""

    seq: int
    kind: str
    target: str = ""          # activity/orchestrator name or entity key
    operation: str = ""       # entity operation name
    input: Any = None
    fire_at: float = 0.0      # timers only

    def __repr__(self) -> str:
        return f"AtomicTask(seq={self.seq}, kind={self.kind}, target={self.target!r})"


@dataclass
class ExternalEventTask(DurableTask):
    """Awaits a named event raised by a client (``wait_for_external_event``).

    Matching is by name and arrival order: the k-th wait on a name
    completes with the k-th event raised under that name.
    """

    name: str = ""
    ordinal: int = 0


@dataclass
class WhenAll(DurableTask):
    """Completes when every child task has completed (``task_all``)."""

    children: List[DurableTask] = field(default_factory=list)

    def __init__(self, children: Sequence[DurableTask]):
        self.children = list(children)
        for child in self.children:
            if not isinstance(child, DurableTask):
                raise TypeError(
                    f"task_all expects durable tasks, got {child!r}")


@dataclass
class WhenAny(DurableTask):
    """Completes when the first child task completes (``task_any``)."""

    children: List[DurableTask] = field(default_factory=list)

    def __init__(self, children: Sequence[DurableTask]):
        if not children:
            raise ValueError("task_any needs at least one task")
        self.children = list(children)
        for child in self.children:
            if not isinstance(child, DurableTask):
                raise TypeError(
                    f"task_any expects durable tasks, got {child!r}")


def atomic_tasks(task: DurableTask) -> List[AtomicTask]:
    """Flatten a task tree into its atomic leaves."""
    if isinstance(task, AtomicTask):
        return [task]
    if isinstance(task, ExternalEventTask):
        return []
    if isinstance(task, (WhenAll, WhenAny)):
        leaves: List[AtomicTask] = []
        for child in task.children:
            leaves.extend(atomic_tasks(child))
        return leaves
    raise TypeError(f"not a durable task: {task!r}")
