"""Durable entities: addressable, persistent, serialized state holders.

An entity is identified by an :class:`EntityId` (name + key) — the
``df.EntityId("Encoding", "OneHot")`` of the paper's Figure 4.  Its
behaviour is an :class:`EntitySpec`: a set of named operations over a
persisted state.  Operations are generator functions so they can consume
simulated compute time::

    def train(ctx, state, data):
        model = fit(data)                      # real compute
        yield from ctx.busy(2.0)               # simulated service time
        return model, model.score              # (new_state, result)

The framework guarantees the paper's §II-B semantics: operations on one
entity key are **serialized** (processed one at a time), and every
operation brackets the user code with a state read and a state write
against the task hub's entity table — which is why the paper finds
"running an operation with Azure Entities is slower than running the same
operation in the stateless Azure activities" (§V-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, Optional


@dataclass(frozen=True)
class EntityId:
    """Addressable identity of one entity instance."""

    name: str
    key: str

    def __str__(self) -> str:
        return f"@{self.name}@{self.key}"

    @classmethod
    def parse(cls, text: str) -> "EntityId":
        """Inverse of ``str(entity_id)``."""
        if not text.startswith("@"):
            raise ValueError(f"not an entity id: {text!r}")
        name, _, key = text[1:].partition("@")
        if not name or not key:
            raise ValueError(f"not an entity id: {text!r}")
        return cls(name=name, key=key)


#: Operation signature: (ctx, state, input) -> generator returning
#: (new_state, result).
EntityOperation = Callable[..., Generator]


@dataclass
class EntitySpec:
    """A registered entity type."""

    name: str
    operations: Dict[str, EntityOperation]
    #: produces the state for a key on first access
    initial_state: Callable[[], Any] = lambda: None
    #: memory billed for each operation execution (measured, Azure-style)
    measured_memory_mb: int = 256
    timeout_s: float = 1800.0

    def operation(self, name: str) -> EntityOperation:
        try:
            return self.operations[name]
        except KeyError:
            raise KeyError(
                f"entity {self.name!r} has no operation {name!r}; "
                f"available: {sorted(self.operations)}") from None


def get_operation(spec: EntitySpec, name: str) -> EntityOperation:
    """Module-level convenience mirroring :meth:`EntitySpec.operation`."""
    return spec.operation(name)


def builtin_get(ctx, state, _input) -> Generator:
    """The universal ``get`` operation: return the state unchanged.

    Registered automatically for every entity, matching the paper's
    pattern of fetching state out of an entity and running heavy
    read-only work in a scalable stateless activity (§IV-A Workloads).
    """
    yield from ctx.busy(0.0)
    return state, state


def builtin_set(ctx, _state, new_value) -> Generator:
    """The universal ``set`` operation: replace the state."""
    yield from ctx.busy(0.0)
    return new_value, None


def with_builtin_operations(spec: EntitySpec) -> EntitySpec:
    """Return ``spec`` with ``get``/``set`` added when not user-defined."""
    operations = dict(spec.operations)
    operations.setdefault("get", builtin_get)
    operations.setdefault("set", builtin_set)
    spec.operations = operations
    return spec
