"""The Task Hub: queues, history table, message pumps and episode engine.

The paper (§II-B): *"Entities are implemented on top of logical containers
called Task Hubs, which allow the entities and orchestrators to communicate
freely with each other.  Task hub enables this messaging via control queues
and history tables."*

Concretely, this module implements:

* ``partition_count`` **control queues** carrying orchestrator lifecycle
  messages and entity operations, plus one **work-item queue** carrying
  activity invocations — all real :class:`~repro.storage.queue.CloudQueue`
  instances whose polls are billable transactions, including while idle;
* a **history table** where every scheduling/completion event of every
  orchestration is persisted (event sourcing), read back in full before
  each replay episode;
* the **episode engine**: when messages arrive for an instance, they are
  appended to its history and the orchestrator function is *re-executed
  from the top* on an app instance (billable, replay time proportional to
  history length), producing the next batch of scheduling actions;
* the **entity executor**: per-key serialized operation processing with a
  state read/write bracket per operation;
* per-partition **lease renewals** (the blob heartbeats of the real
  framework), another component of the tenant's idle transaction bill.
"""

from __future__ import annotations

import itertools
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Set, Tuple

from repro.azure.app import TRIGGER_DURABLE, FunctionAppService
from repro.azure.durable import history as h
from repro.azure.durable.context import (
    Action,
    OrchestrationContext,
    OrchestratorSpec,
    RetryOptions,
    run_orchestrator_turn,
)
from repro.azure.durable.entities import (
    EntityId,
    EntitySpec,
    with_builtin_operations,
)
from repro.azure.durable.tasks import ACTIVITY, ENTITY, SUB_ORCHESTRATION, TIMER
from repro.platforms.base import FunctionSpec, enforce_payload_limit
from repro.sim.kernel import Environment, Event
from repro.storage.meter import TransactionMeter
from repro.storage.queue import CloudQueue
from repro.storage.table import EntityNotFound, TableStore
from repro.telemetry import SpanKind, Telemetry


class OrchestrationStatus:
    """Lifecycle states, matching the portal's status strings."""

    PENDING = "Pending"
    RUNNING = "Running"
    COMPLETED = "Completed"
    FAILED = "Failed"


class OrchestrationFailedError(RuntimeError):
    """Awaited orchestration ended in the Failed state."""


# -- queue message types ---------------------------------------------------------

@dataclass
class StartMsg:
    instance_id: str


@dataclass
class CompletionMsg:
    """An awaited task finished (activity / timer / entity / sub-orch)."""

    instance_id: str
    seq: int
    kind: str          # ACTIVITY / TIMER / ENTITY / SUB_ORCHESTRATION
    ok: bool = True
    value: Any = None


@dataclass
class RaiseEventMsg:
    """A client raised a named external event against an instance."""

    instance_id: str
    name: str
    value: Any = None


@dataclass
class EntityOpMsg:
    entity_key: str    # str(EntityId)
    operation: str
    input: Any = None
    reply_to: Optional[Tuple[str, int]] = None   # (instance_id, seq)


@dataclass
class ActivityWorkMsg:
    instance_id: str
    seq: int
    activity: str
    input: Any = None
    retry: Any = None   # Optional[RetryOptions]


# -- orchestration instance -------------------------------------------------------

@dataclass
class OrchestrationInstance:
    """Runtime record of one orchestration."""

    instance_id: str
    orchestrator: str
    input: Any
    created_at: float
    completion_event: Event
    status: str = OrchestrationStatus.PENDING
    running_at: Optional[float] = None
    completed_at: Optional[float] = None
    output: Any = None
    error: Optional[str] = None
    history: List[h.HistoryEvent] = field(default_factory=list)
    inbox: List[Any] = field(default_factory=list)
    episode_active: bool = False
    episode_count: int = 0
    parent: Optional[Tuple[str, int]] = None
    custom_status: Any = None

    @property
    def cold_start_delay(self) -> float:
        """Pending→Running delay — the paper's cold-start metric (§IV-A)."""
        if self.running_at is None:
            raise ValueError(f"instance {self.instance_id} never ran")
        return self.running_at - self.created_at

    @property
    def end_to_end_latency(self) -> float:
        """Running→Completed — the paper's end-to-end latency metric."""
        if self.completed_at is None or self.running_at is None:
            raise ValueError(f"instance {self.instance_id} not finished")
        return self.completed_at - self.running_at

    @property
    def is_finished(self) -> bool:
        return self.status in (OrchestrationStatus.COMPLETED,
                               OrchestrationStatus.FAILED)


def _partition_of(instance_id: str, partition_count: int) -> int:
    return zlib.crc32(instance_id.encode("utf-8")) % partition_count


class TaskHub:
    """Wires queues, tables, pumps, orchestrators and entities together."""

    def __init__(self, env: Environment, app: FunctionAppService,
                 telemetry: Telemetry, meter: TransactionMeter,
                 account: str = "taskhub", faults: Optional[Any] = None):
        self.env = env
        self.app = app
        self.telemetry = telemetry
        self.meter = meter
        self.account = account
        self.faults = faults
        self.calibration = app.calibration
        streams = app.streams
        rng = streams.get(f"azure.taskhub.{account}")
        partition_count = getattr(self.calibration, "partition_count", 4)
        self.partition_count = partition_count
        queue_kwargs = dict(
            env=env, meter=meter, rng=rng, account=account,
            min_poll_interval=self.calibration.min_poll_interval_s,
            max_poll_interval=self.calibration.max_poll_interval_s,
            visibility_timeout=600.0, faults=faults,
            idle_poll_elision=self.calibration.idle_poll_elision)
        self.control_queues = [
            CloudQueue(name=f"{account}-control-{index:02d}", **queue_kwargs)
            for index in range(partition_count)]
        # The work-item (activity dispatch) queue enforces the
        # calibration's depth bound: orchestrator episodes scheduling
        # activities onto a full queue block until workers drain it —
        # storage backpressure, the durable face of overload protection.
        # Control queues stay unbounded (bounding them could deadlock the
        # pumps that both consume and produce control messages).
        self.work_item_queue = CloudQueue(
            name=f"{account}-workitems",
            max_depth=self.calibration.queue_depth_limit, **queue_kwargs)
        self.history_table = TableStore(
            env, meter, rng, name=f"{account}History", account=account)
        self.entity_table = TableStore(
            env, meter, rng, name=f"{account}Entities", account=account)

        self.orchestrators: Dict[str, OrchestratorSpec] = {}
        self.entities: Dict[str, EntitySpec] = {}
        self.instances: Dict[str, OrchestrationInstance] = {}
        self._entity_inboxes: Dict[str, List[EntityOpMsg]] = {}
        self._entity_busy: Set[str] = set()
        # Completion keys already applied to history; consulted only when
        # queue duplication faults are active (the framework's effectively-
        # once guarantee on top of at-least-once queues).  Survives host
        # crashes — the real framework derives it from the history table.
        self._seen_completions: Set[Tuple[str, int, str]] = set()
        self._started = False
        # Per-hub counter: instance ids (and hence control-queue partition
        # assignment) must not depend on other hubs in the process.
        self._instance_counter = itertools.count(1)

    # -- registration ---------------------------------------------------------------

    def register_orchestrator(self, spec: OrchestratorSpec) -> OrchestratorSpec:
        """Register an orchestrator function and its episode executor."""
        if spec.name in self.orchestrators:
            raise ValueError(f"orchestrator {spec.name!r} already registered")
        self.orchestrators[spec.name] = spec
        self.app.register(FunctionSpec(
            name=self._orchestrator_fn(spec.name),
            handler=self._make_episode_handler(spec),
            memory_mb=self.calibration.max_memory_mb,
            measured_memory_mb=spec.measured_memory_mb,
            timeout_s=self.calibration.time_limit_s))
        return spec

    def register_entity(self, spec: EntitySpec) -> EntitySpec:
        """Register an entity type (``get``/``set`` added automatically)."""
        if spec.name in self.entities:
            raise ValueError(f"entity {spec.name!r} already registered")
        spec = with_builtin_operations(spec)
        self.entities[spec.name] = spec
        self.app.register(FunctionSpec(
            name=self._entity_fn(spec.name),
            handler=self._make_entity_handler(spec),
            memory_mb=self.calibration.max_memory_mb,
            measured_memory_mb=spec.measured_memory_mb,
            timeout_s=spec.timeout_s))
        return spec

    @staticmethod
    def _orchestrator_fn(name: str) -> str:
        return f"orchestrator::{name}"

    @staticmethod
    def _entity_fn(name: str) -> str:
        return f"entity::{name}"

    # -- lifecycle --------------------------------------------------------------------

    def start(self) -> None:
        """Start the message pumps and lease renewals (idempotent)."""
        if self._started:
            return
        self._started = True
        for queue in self.control_queues:
            self.env.process(self._control_pump(queue))
        self.env.process(self._work_item_pump())
        self.env.process(self._lease_renewal_loop())
        self.env.process(self._controller_poll_loop())

    # -- client-facing operations ---------------------------------------------------------

    def create_instance(self, orchestrator: str, input_value: Any,
                        instance_id: Optional[str] = None,
                        parent: Optional[Tuple[str, int]] = None
                        ) -> OrchestrationInstance:
        """Create the bookkeeping record for a new orchestration."""
        if orchestrator not in self.orchestrators:
            raise KeyError(f"no such orchestrator: {orchestrator!r}")
        if instance_id is None:
            instance_id = f"{orchestrator}-{next(self._instance_counter):06d}"
        if instance_id in self.instances:
            raise ValueError(f"instance {instance_id!r} already exists")
        instance = OrchestrationInstance(
            instance_id=instance_id, orchestrator=orchestrator,
            input=input_value, created_at=self.env.now,
            completion_event=self.env.event())
        self.instances[instance_id] = instance
        return instance

    def control_queue_for(self, instance_id: str) -> CloudQueue:
        return self.control_queues[
            _partition_of(instance_id, self.partition_count)]

    def get_instance(self, instance_id: str) -> OrchestrationInstance:
        try:
            return self.instances[instance_id]
        except KeyError:
            raise KeyError(f"no such instance: {instance_id!r}") from None

    # -- message pumps -------------------------------------------------------------------

    def _control_pump(self, queue: CloudQueue) -> Generator:
        """Poll one control queue forever, routing messages as they arrive."""
        while True:
            message = yield from queue.receive()
            yield from queue.delete(message)
            self._route_control(message.value)

    def _work_item_pump(self) -> Generator:
        """Poll the work-item queue forever, launching activities."""
        while True:
            message = yield from self.work_item_queue.receive()
            yield from self.work_item_queue.delete(message)
            self.env.process(self._run_activity(message.value))

    def _lease_renewal_loop(self) -> Generator:
        """Per-partition blob lease heartbeats — idle cost, like polling.

        Metered in one-minute batches (behaviourally inert, purely cost)
        so multi-day campaigns stay cheap to simulate.
        """
        interval = self.calibration.lease_renewal_interval_s
        batch_window = max(60.0, interval)
        per_batch = max(1, int(batch_window / interval)) * self.partition_count
        while True:
            yield self.env.timeout(batch_window)
            self.meter.record("blob", self.account, "lease_renew",
                              count=per_batch)

    def _controller_poll_loop(self) -> Generator:
        """The platform scale controller's own queue polling.

        Azure's scale controller watches every task-hub queue on the
        tenant's storage account around the clock; these reads are billed
        to the tenant even while the app is scaled to zero.  Metered in
        one-minute batches.
        """
        interval = self.calibration.controller_poll_interval_s
        batch_window = max(60.0, interval)
        queues = self.partition_count + 1   # control queues + work items
        per_batch = max(1, int(batch_window / interval)) * queues
        while True:
            yield self.env.timeout(batch_window)
            self.meter.record("queue", self.account, "controller_poll",
                              count=per_batch)

    def _route_control(self, message: Any) -> None:
        if isinstance(message, EntityOpMsg):
            self._submit_entity_op(message)
            return
        if isinstance(message, (StartMsg, CompletionMsg, RaiseEventMsg)):
            instance = self.get_instance(message.instance_id)
            if (isinstance(message, CompletionMsg) and self.faults is not None
                    and self.faults.plan.queue_duplication_probability > 0
                    and self.faults.plan.completion_dedupe):
                # Applying the same completion twice would corrupt the
                # replay indexing, so the framework dedupes against the
                # history before appending.  Only needed (and only active)
                # under at-least-once duplication faults: continue-as-new
                # legitimately reuses sequence numbers after truncation.
                key = (message.instance_id, message.seq, message.kind)
                if key in self._seen_completions:
                    return
                self._seen_completions.add(key)
            instance.inbox.append(message)
            if not instance.episode_active and not instance.is_finished:
                instance.episode_active = True
                self.env.process(self._episode_loop(instance))
            return
        raise TypeError(f"unroutable control message: {message!r}")

    # -- episode engine ----------------------------------------------------------------------

    def _episode_loop(self, instance: OrchestrationInstance) -> Generator:
        """Process inbox batches until drained or the instance finishes."""
        spec = self.orchestrators[instance.orchestrator]
        while True:
            while instance.inbox and not instance.is_finished:
                batch = instance.inbox[:]
                instance.inbox.clear()
                yield from self._apply_messages(instance, batch)
                yield from self._run_episode(instance, spec)
            instance.episode_active = False
            if instance.inbox and not instance.is_finished:
                instance.episode_active = True
                continue
            return

    def _apply_messages(self, instance: OrchestrationInstance,
                        batch: List[Any]) -> Generator:
        for message in batch:
            if isinstance(message, StartMsg):
                event = h.ExecutionStarted(time=self.env.now,
                                           input=instance.input)
            elif isinstance(message, RaiseEventMsg):
                event = h.ExternalEventReceived(
                    time=self.env.now, name=message.name,
                    value=message.value)
            elif isinstance(message, CompletionMsg):
                event = _completion_event(message, self.env.now)
            else:
                raise TypeError(f"unexpected inbox message: {message!r}")
            yield from self._append_event(instance, event)

    def _append_event(self, instance: OrchestrationInstance,
                      event: h.HistoryEvent) -> Generator:
        row_key = f"{len(instance.history):06d}"
        instance.history.append(event)
        if self.calibration.netherite_mode:
            # Netherite: events land in an in-memory partition state and
            # are committed in batches (see _run_episode), not row by row.
            return None
        yield from self.history_table.insert(
            instance.instance_id, row_key, event,
            size=h.event_payload_size(event))

    def _run_episode(self, instance: OrchestrationInstance,
                     spec: OrchestratorSpec) -> Generator:
        """One replay episode: read history, re-execute, dispatch actions."""
        instance.episode_count += 1
        if self.calibration.netherite_mode:
            # Netherite: the partition state is cached in memory; one
            # batched commit per episode replaces per-event writes and the
            # full-history read.
            events = list(instance.history)
            yield from self.history_table.insert(
                instance.instance_id, f"commit-{instance.episode_count:06d}",
                {"batched_events": len(events)})
        else:
            # The framework reads the full history back before replaying.
            events = yield from self.history_table.read_partition(
                instance.instance_id)
        result = yield from self.app.invoke(
            self._orchestrator_fn(spec.name),
            {"instance": instance, "events": events},
            trigger=TRIGGER_DURABLE)
        if instance.running_at is None:
            instance.running_at = result.started_at
            instance.status = OrchestrationStatus.RUNNING
        state = result.value["state"]
        value = result.value["value"]
        actions = result.value["actions"]
        if result.value.get("custom_status") is not None:
            instance.custom_status = result.value["custom_status"]

        for action in actions:
            yield from self._dispatch_action(instance, action)

        if state == "completed":
            yield from self._finish(instance, OrchestrationStatus.COMPLETED,
                                    output=value)
        elif state == "failed":
            yield from self._finish(instance, OrchestrationStatus.FAILED,
                                    error=value)
        elif state == "continue_as_new":
            yield from self._continue_as_new(instance, value)

    def _make_episode_handler(self, spec: OrchestratorSpec):
        """Billable function body executing one replay episode."""
        calibration = self.calibration
        taskhub = self

        def handler(ctx, event) -> Generator:
            instance: OrchestrationInstance = event["instance"]
            events: List[h.HistoryEvent] = event["events"]
            completed = sum(
                1 for entry in events
                if isinstance(entry, h.SUCCESS_EVENTS + h.FAILURE_EVENTS))
            if calibration.netherite_mode:
                # Cached instances resume where they left off: no replay
                # of past events, no re-run of the orchestrator body.
                replay_cpu = calibration.episode_base_cpu_s
            else:
                replay_cpu = (calibration.episode_base_cpu_s
                              + calibration.replay_event_cpu_s * completed
                              + spec.inline_cpu_s)
            span = ctx.telemetry.start_span(
                spec.name, SpanKind.REPLAY, parent=ctx.span,
                platform="azure", instance_id=instance.instance_id,
                episode=instance.episode_count, history_events=len(events))
            yield from ctx.busy(replay_cpu)
            orchestration_ctx = OrchestrationContext(
                instance.instance_id, instance.input, events,
                payload_limit=calibration.durable_payload_limit_bytes,
                now=ctx.now)
            state, value = run_orchestrator_turn(spec, orchestration_ctx)
            ctx.telemetry.end_span(span, state=state)
            return {"state": state, "value": value,
                    "actions": orchestration_ctx.actions,
                    "custom_status": orchestration_ctx.custom_status}

        handler.__name__ = f"episode_{spec.name}"
        return handler

    def _dispatch_action(self, instance: OrchestrationInstance,
                         action: Action) -> Generator:
        """Persist a scheduling event and send the matching message."""
        now = self.env.now
        if action.kind == ACTIVITY:
            event = h.TaskScheduled(time=now, seq=action.seq,
                                    name=action.target, input=action.input)
            yield from self._append_event(instance, event)
            yield from self.work_item_queue.enqueue(ActivityWorkMsg(
                instance_id=instance.instance_id, seq=action.seq,
                activity=action.target, input=action.input,
                retry=action.retry))
        elif action.kind == ENTITY:
            event = h.EntityCalled(time=now, seq=action.seq,
                                   entity=action.target,
                                   operation=action.operation,
                                   input=action.input, signal=action.signal)
            yield from self._append_event(instance, event)
            reply_to = None if action.signal else (instance.instance_id,
                                                   action.seq)
            queue = self.control_queue_for(action.target)
            yield from queue.enqueue(EntityOpMsg(
                entity_key=action.target, operation=action.operation,
                input=action.input, reply_to=reply_to))
        elif action.kind == TIMER:
            event = h.TimerCreated(time=now, seq=action.seq,
                                   fire_at=action.fire_at)
            yield from self._append_event(instance, event)
            self.env.process(self._timer(instance.instance_id, action.seq,
                                         action.fire_at))
        elif action.kind == SUB_ORCHESTRATION:
            child_id = f"{instance.instance_id}:{action.seq}"
            event = h.SubOrchestrationScheduled(
                time=now, seq=action.seq, name=action.target,
                input=action.input, child_id=child_id)
            yield from self._append_event(instance, event)
            child = self.create_instance(
                action.target, action.input, instance_id=child_id,
                parent=(instance.instance_id, action.seq))
            child.parent = (instance.instance_id, action.seq)
            queue = self.control_queue_for(child_id)
            yield from queue.enqueue(StartMsg(instance_id=child_id))
        else:
            raise ValueError(f"unknown action kind: {action.kind!r}")

    def _continue_as_new(self, instance: OrchestrationInstance,
                         new_input: Any) -> Generator:
        """Restart the instance with fresh history and a new input.

        The eternal-orchestration pattern: history is truncated (so replay
        cost does not grow without bound) and the orchestrator re-enters
        from the top.
        """
        yield from self.history_table.delete_partition(instance.instance_id)
        instance.history.clear()
        self._seen_completions = {
            key for key in self._seen_completions
            if key[0] != instance.instance_id}
        instance.input = new_input
        queue = self.control_queue_for(instance.instance_id)
        yield from queue.enqueue(StartMsg(instance_id=instance.instance_id))

    def _timer(self, instance_id: str, seq: int, fire_at: float) -> Generator:
        delay = max(0.0, fire_at - self.env.now)
        yield self.env.timeout(delay)
        queue = self.control_queue_for(instance_id)
        yield from queue.enqueue(CompletionMsg(
            instance_id=instance_id, seq=seq, kind=TIMER, ok=True))

    def _finish(self, instance: OrchestrationInstance, status: str,
                output: Any = None, error: Optional[str] = None) -> Generator:
        if status == OrchestrationStatus.COMPLETED:
            event: h.HistoryEvent = h.ExecutionCompleted(
                time=self.env.now, output=output)
        else:
            event = h.ExecutionFailedEvent(time=self.env.now, error=error or "")
        yield from self._append_event(instance, event)
        instance.status = status
        instance.output = output
        instance.error = error
        instance.completed_at = self.env.now
        instance.completion_event.succeed(instance)
        if instance.parent is not None:
            parent_id, seq = instance.parent
            queue = self.control_queue_for(parent_id)
            ok = status == OrchestrationStatus.COMPLETED
            yield from queue.enqueue(CompletionMsg(
                instance_id=parent_id, seq=seq, kind=SUB_ORCHESTRATION,
                ok=ok, value=output if ok else error))

    # -- activities --------------------------------------------------------------------------

    def _run_activity(self, message: ActivityWorkMsg) -> Generator:
        """Execute one activity (with optional framework-managed retries)
        and report completion to the control queue."""
        limit = self.calibration.durable_payload_limit_bytes
        retry = message.retry
        if (retry is None and self.faults is not None
                and self.faults.plan.retry_max_attempts > 1):
            # The fault plan synthesizes a default retry policy for
            # activities that configured none, so reliability campaigns
            # measure what absorbing the chaos costs.
            plan = self.faults.plan
            retry = RetryOptions(
                first_retry_interval_s=plan.retry_interval_s,
                max_number_of_attempts=plan.retry_max_attempts,
                backoff_coefficient=plan.retry_backoff)
        max_attempts = (retry.max_number_of_attempts
                        if retry is not None else 1)
        started_at = self.env.now
        retry_deadline = (started_at + retry.retry_timeout_s
                          if retry is not None
                          and retry.retry_timeout_s is not None
                          else None)
        ok = True
        value: Any = None
        for attempt in range(1, max_attempts + 1):
            ok = True
            try:
                result = yield from self.app.invoke(
                    message.activity, message.input, trigger=TRIGGER_DURABLE)
                value = result.value
                enforce_payload_limit(
                    value, limit,
                    f"result of activity {message.activity!r}")
            except Exception as error:  # noqa: BLE001 - reported upstream
                ok = False
                value = f"{type(error).__name__}: {error}"
            if ok or attempt == max_attempts:
                break
            delay = retry.delay_before_attempt(attempt)
            if (retry_deadline is not None
                    and self.env.now + delay >= retry_deadline):
                break
            if self.faults is not None:
                self.faults.platform_retries += 1
            yield self.env.timeout(delay)
        queue = self.control_queue_for(message.instance_id)
        yield from queue.enqueue(CompletionMsg(
            instance_id=message.instance_id, seq=message.seq, kind=ACTIVITY,
            ok=ok, value=value))

    # -- entities -----------------------------------------------------------------------------

    def _submit_entity_op(self, message: EntityOpMsg) -> None:
        inbox = self._entity_inboxes.setdefault(message.entity_key, [])
        inbox.append(message)
        if message.entity_key not in self._entity_busy:
            self._entity_busy.add(message.entity_key)
            self.env.process(self._drain_entity(message.entity_key))

    def _drain_entity(self, entity_key: str) -> Generator:
        """Serialized processing of one entity key's operation queue."""
        inbox = self._entity_inboxes[entity_key]
        try:
            while inbox:
                message = inbox.pop(0)
                yield from self._execute_entity_op(message)
        finally:
            self._entity_busy.discard(entity_key)

    def _execute_entity_op(self, message: EntityOpMsg) -> Generator:
        entity_id = EntityId.parse(message.entity_key)
        spec = self.entities.get(entity_id.name)
        ok = True
        value: Any = None
        if spec is None:
            ok = False
            value = f"KeyError: no such entity type {entity_id.name!r}"
        else:
            try:
                result = yield from self.app.invoke(
                    self._entity_fn(entity_id.name),
                    {"entity": message.entity_key,
                     "operation": message.operation,
                     "input": message.input},
                    trigger=TRIGGER_DURABLE)
                value = result.value
                enforce_payload_limit(
                    value, self.calibration.durable_payload_limit_bytes,
                    f"result of entity op {message.operation!r}")
            except Exception as error:  # noqa: BLE001
                ok = False
                value = f"{type(error).__name__}: {error}"
        if message.reply_to is not None:
            instance_id, seq = message.reply_to
            queue = self.control_queue_for(instance_id)
            yield from queue.enqueue(CompletionMsg(
                instance_id=instance_id, seq=seq, kind=ENTITY,
                ok=ok, value=value))

    def _make_entity_handler(self, spec: EntitySpec):
        """Billable function body executing one entity operation."""
        taskhub = self
        calibration = self.calibration

        def handler(ctx, event) -> Generator:
            entity_id = EntityId.parse(event["entity"])
            operation = spec.operation(event["operation"])
            # Entities may invoke operations on other entities (§II-B:
            # "one entity can invoke an operation on another entity") —
            # as one-way signals, which is how the real framework keeps
            # entity-to-entity calls deadlock-free.
            ctx.services["signal_entity"] = taskhub._signal_from_entity
            span = ctx.telemetry.start_span(
                f"{spec.name}.{event['operation']}", SpanKind.ENTITY_OP,
                parent=ctx.span, platform="azure", entity=event["entity"])
            yield from ctx.busy(
                calibration.entity_op_overhead.sample(ctx.rng))
            # User logic runs slower inside an entity than in a stateless
            # activity (serialized, state-bracketed execution).
            ctx.cpu_factor *= calibration.entity_execution_slowdown
            partition = f"entity:{entity_id.name}"
            try:
                state = yield from taskhub.entity_table.read(
                    partition, entity_id.key)
            except EntityNotFound:
                state = spec.initial_state()
            new_state, result = yield from operation(
                ctx, state, event["input"])
            yield from taskhub.entity_table.insert(
                partition, entity_id.key, new_state)
            ctx.telemetry.end_span(span)
            return result

        handler.__name__ = f"entity_{spec.name}"
        return handler

    def recover_instance(self, instance_id: str) -> Generator:
        """Rebuild an instance's in-memory state from the history table.

        This is event sourcing's recovery path: a host crash loses every
        in-memory structure, but the persisted history is the
        authoritative record — replaying it reconstructs exactly where
        the orchestration stood.
        """
        instance = self.get_instance(instance_id)
        events = yield from self.history_table.read_partition(instance_id)
        instance.history = list(events)
        instance.episode_active = False
        # Reconstruct terminal status from the log.
        for event in events:
            if isinstance(event, h.ExecutionCompleted):
                instance.status = OrchestrationStatus.COMPLETED
                instance.output = event.output
            elif isinstance(event, h.ExecutionFailedEvent):
                instance.status = OrchestrationStatus.FAILED
                instance.error = event.error
        return instance

    def simulate_host_crash(self) -> List[str]:
        """Drop every in-memory orchestration structure (not the storage).

        Queues and tables survive a host crash; the hub's caches do not.
        Follow with :meth:`recover_instance` per live instance (the
        affected ids are returned), after which pending completion
        messages resume the orchestrations.
        """
        for instance in self.instances.values():
            instance.history = []
            instance.inbox.clear()
            instance.episode_active = False
        self._entity_inboxes.clear()
        self._entity_busy.clear()
        return list(self.instances)

    def _signal_from_entity(self, entity_id: EntityId, operation: str,
                            input_value: Any = None) -> Generator:
        """One-way entity-to-entity signal (used inside entity ops)."""
        enforce_payload_limit(
            input_value, self.calibration.durable_payload_limit_bytes,
            f"entity signal to {entity_id}")
        queue = self.control_queue_for(str(entity_id))
        yield from queue.enqueue(EntityOpMsg(
            entity_key=str(entity_id), operation=operation,
            input=input_value, reply_to=None))
        return None

    def read_entity_state(self, entity_id: EntityId) -> Generator:
        """Read an entity's persisted state directly (client-side)."""
        partition = f"entity:{entity_id.name}"
        try:
            state = yield from self.entity_table.read(partition, entity_id.key)
        except EntityNotFound:
            spec = self.entities.get(entity_id.name)
            state = spec.initial_state() if spec else None
        return state


def _completion_event(message: CompletionMsg, now: float) -> h.HistoryEvent:
    if message.kind == ACTIVITY:
        if message.ok:
            return h.TaskCompleted(time=now, seq=message.seq,
                                   result=message.value)
        return h.TaskFailed(time=now, seq=message.seq, error=message.value)
    if message.kind == TIMER:
        return h.TimerFired(time=now, seq=message.seq)
    if message.kind == ENTITY:
        if message.ok:
            return h.EntityResponded(time=now, seq=message.seq,
                                     result=message.value)
        return h.EntityFailed(time=now, seq=message.seq, error=message.value)
    if message.kind == SUB_ORCHESTRATION:
        if message.ok:
            return h.SubOrchestrationCompleted(time=now, seq=message.seq,
                                               result=message.value)
        return h.SubOrchestrationFailed(time=now, seq=message.seq,
                                        error=message.value)
    raise ValueError(f"unknown completion kind: {message.kind!r}")


class DurableClient:
    """The HTTP-client-facing API used to trigger and await orchestrations."""

    def __init__(self, taskhub: TaskHub):
        self.taskhub = taskhub

    def start_new(self, orchestrator: str, input_value: Any = None,
                  instance_id: Optional[str] = None) -> Generator:
        """Start an orchestration; returns its instance id."""
        self.taskhub.start()
        instance = self.taskhub.create_instance(
            orchestrator, input_value, instance_id=instance_id)
        queue = self.taskhub.control_queue_for(instance.instance_id)
        yield from queue.enqueue(StartMsg(instance_id=instance.instance_id))
        return instance.instance_id

    def get_status(self, instance_id: str) -> OrchestrationInstance:
        """Current status record (no simulated time consumed)."""
        return self.taskhub.get_instance(instance_id)

    def wait_for_completion(self, instance_id: str) -> Generator:
        """Await the orchestration; returns its output or raises."""
        instance = self.taskhub.get_instance(instance_id)
        if not instance.is_finished:
            yield instance.completion_event
        if instance.status == OrchestrationStatus.FAILED:
            raise OrchestrationFailedError(
                f"orchestration {instance_id} failed: {instance.error}")
        return instance.output

    def list_instances(self, status: Optional[str] = None
                       ) -> List[OrchestrationInstance]:
        """All known instances, optionally filtered by status."""
        instances = list(self.taskhub.instances.values())
        if status is not None:
            instances = [instance for instance in instances
                         if instance.status == status]
        return instances

    def purge_instance_history(self, instance_id: str) -> Generator:
        """Delete a finished instance's history (storage hygiene).

        Mirrors the management API; refuses to purge live instances.
        """
        instance = self.taskhub.get_instance(instance_id)
        if not instance.is_finished:
            raise OrchestrationFailedError(
                f"cannot purge running instance {instance_id}")
        removed = yield from self.taskhub.history_table.delete_partition(
            instance_id)
        del self.taskhub.instances[instance_id]
        return removed

    def run(self, orchestrator: str, input_value: Any = None) -> Generator:
        """Convenience: start and await in one call."""
        instance_id = yield from self.start_new(orchestrator, input_value)
        output = yield from self.wait_for_completion(instance_id)
        return output

    def raise_event(self, instance_id: str, name: str,
                    value: Any = None) -> Generator:
        """Deliver a named external event to a running orchestration."""
        enforce_payload_limit(
            value, self.taskhub.calibration.durable_payload_limit_bytes,
            f"raise_event({name!r}) value")
        instance = self.taskhub.get_instance(instance_id)
        if instance.is_finished:
            raise OrchestrationFailedError(
                f"cannot raise event on finished instance {instance_id}")
        queue = self.taskhub.control_queue_for(instance_id)
        yield from queue.enqueue(RaiseEventMsg(
            instance_id=instance_id, name=name, value=value))
        return None

    def signal_entity(self, entity_id: EntityId, operation: str,
                      input_value: Any = None) -> Generator:
        """One-way entity signal from client code."""
        self.taskhub.start()
        queue = self.taskhub.control_queue_for(str(entity_id))
        yield from queue.enqueue(EntityOpMsg(
            entity_key=str(entity_id), operation=operation,
            input=input_value, reply_to=None))
        return None

    def recover_instance(self, instance_id: str) -> Generator:
        """Rebuild an instance from the history table (event sourcing).

        Delegates to :meth:`TaskHub.recover_instance` — the hub owns the
        history table and the instance records.
        """
        instance = yield from self.taskhub.recover_instance(instance_id)
        return instance

    def simulate_host_crash(self) -> List[str]:
        """Drop the hub's in-memory state; see
        :meth:`TaskHub.simulate_host_crash`."""
        return self.taskhub.simulate_host_crash()

    def read_entity_state(self, entity_id: EntityId) -> Generator:
        """Read entity state directly from the entity table."""
        state = yield from self.taskhub.read_entity_state(entity_id)
        return state


class DurableFunctionsRuntime:
    """Facade wiring a function app and a task hub into one deployment."""

    def __init__(self, env: Environment, telemetry: Telemetry,
                 billing, meter: TransactionMeter, streams,
                 calibration=None, services: Optional[Dict[str, Any]] = None,
                 app_name: str = "durable-app",
                 plan: str = FunctionAppService.CONSUMPTION,
                 faults: Optional[Any] = None):
        self.env = env
        self.app = FunctionAppService(
            env, telemetry, billing, streams, calibration=calibration,
            services=services, app_name=app_name, plan=plan, faults=faults)
        self.taskhub = TaskHub(env, self.app, telemetry, meter,
                               account=f"{app_name}-hub", faults=faults)
        self.client = DurableClient(self.taskhub)

    def register_activity(self, spec: FunctionSpec) -> FunctionSpec:
        """Register a stateless activity function."""
        return self.app.register(spec)

    def register_orchestrator(self, spec: OrchestratorSpec) -> OrchestratorSpec:
        return self.taskhub.register_orchestrator(spec)

    def register_entity(self, spec: EntitySpec) -> EntitySpec:
        return self.taskhub.register_entity(spec)
