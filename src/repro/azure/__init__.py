"""Azure platform simulation: Functions (Consumption plan) + Durable extension.

The model captures the mechanisms the paper attributes Azure behaviour to:

* a **scale controller** that grows a shared instance pool gradually, so
  large fan-outs queue behind instance births (Fig 12, Fig 14, Table III),
* **event-sourced orchestrators** that are replayed against a history
  table on every resume, inflating GB-s (Fig 11a: Az-Dorch +44 %,
  Az-Dent +88 %) and history-table transactions,
* **durable entities** whose operations are serialized and bracketed by
  state reads/writes, making them slower than the same logic in a
  stateless activity (§V-A key takeaway),
* **constant queue polling** billed to the tenant even while idle
  (Fig 15: +70 % transaction cost for Az-Dorch),
* fixed 1.5 GB memory billed on *measured* consumption (§IV-A),
* the 64 KB durable payload limit (Table I).
"""

from repro.azure.app import AppInstance, FunctionAppService, ScaleController
from repro.azure.durable import (
    DurableClient,
    RetryOptions,
    DurableFunctionsRuntime,
    EntityId,
    EntitySpec,
    OrchestrationContext,
    OrchestrationStatus,
    OrchestratorSpec,
)
from repro.azure.queues import QueueChain
from repro.azure.pricing import AzureCostBreakdown, AzurePriceModel

__all__ = [
    "AppInstance",
    "AzureCostBreakdown",
    "AzurePriceModel",
    "DurableClient",
    "DurableFunctionsRuntime",
    "EntityId",
    "EntitySpec",
    "FunctionAppService",
    "OrchestrationContext",
    "OrchestrationStatus",
    "OrchestratorSpec",
    "QueueChain",
    "RetryOptions",
    "ScaleController",
]
