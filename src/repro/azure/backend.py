"""The Azure platform backend: Functions + Durable behind the registry.

Adapts the existing Azure services to the
:class:`~repro.platforms.backend.PlatformBackend` interface.  Azure owns
the richest audit surface of the three builtin backends: measured-memory
billing with 128 MB rounding, deadline shedding billed at the request
level, orchestration-history replay determinism, and completion-dedupe
delivery evidence.  Registered at import by the registry's lazy builtin
loader.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.platforms.backend import (
    BillingRules,
    PlatformBackend,
    register_backend,
)


class AzureBackend(PlatformBackend):
    """Azure Functions (Consumption) + Durable Functions."""

    name = "azure"
    variant_prefix = "Az"

    # -- calibration -----------------------------------------------------------

    def calibration_type(self) -> type:
        from repro.platforms.calibration import AzureCalibration
        return AzureCalibration

    def default_calibration(self) -> Any:
        from repro.platforms.calibration import default_azure_calibration
        return default_azure_calibration()

    def fuzz_calibration_space(self) -> Dict[str, Tuple[Any, ...]]:
        # Scale-controller and overload-protection knobs; the optional
        # bounds stay positive (None = platform default, also valid).
        return {
            "max_instances": (2, 20, 200),
            "instance_concurrency": (1, 2, 4),
            "instances_per_decision": (1, 2, 4),
            "scale_interval_s": (5.0, 10.0, 30.0),
            "queue_depth_limit": (None, 8, 64),
            "shed_deadline_s": (None, 5.0, 30.0),
        }

    # -- stack construction ----------------------------------------------------

    def build(self, testbed: Any, calibration: Any) -> Any:
        from repro.azure import DurableFunctionsRuntime
        from repro.core.testbed import PlatformStack
        from repro.platforms.billing import BillingMeter
        from repro.storage import BlobStore, TransactionMeter
        from repro.telemetry import Telemetry

        clock = lambda: testbed.env.now  # noqa: E731 - tiny clock closure
        telemetry = Telemetry(clock, enabled=calibration.telemetry_spans)
        billing = BillingMeter(clock)
        meter = TransactionMeter(clock)
        blob = BlobStore(testbed.env, meter,
                         testbed.streams.get("azure.blob"),
                         account="azblob")
        stack = PlatformStack(telemetry, billing, meter, blob)
        testbed.durable = DurableFunctionsRuntime(
            testbed.env, telemetry, billing, meter, testbed.streams,
            calibration=calibration, services={"blob": blob},
            faults=testbed.faults)
        return stack

    def price_model(self, calibration: Any) -> Any:
        from repro.azure import AzurePriceModel
        return AzurePriceModel(calibration)

    # -- deploy / invoke -------------------------------------------------------

    def register_function(self, testbed: Any, spec: Any) -> Any:
        return testbed.app.register(spec)

    def invoke_function(self, testbed: Any, name: str,
                        event: Any) -> Generator:
        result = yield from testbed.app.invoke(name, event)
        return result

    def deploy_workflow(self, testbed: Any, workflow: Any) -> str:
        return workflow.deploy_azure(testbed)

    def invoke_workflow(self, testbed: Any, name: str,
                        payload: Any) -> Generator:
        from repro.azure.durable import OrchestrationFailedError
        client = testbed.durable.client
        instance_id = yield from client.start_new(name, payload)
        try:
            output = yield from client.wait_for_completion(instance_id)
        except OrchestrationFailedError as error:
            return "FAILED", str(error)
        return "SUCCEEDED", output

    # -- limits ----------------------------------------------------------------

    def payload_limit_bytes(self, calibration: Any) -> int:
        return calibration.durable_payload_limit_bytes

    # -- billing / accounting --------------------------------------------------

    def billing_rules(self, calibration: Any) -> BillingRules:
        # Azure bills measured memory rounded up to 128 MB with a 100 ms
        # execution minimum; deadline sheds happen after the request
        # charge, so billed requests = executions + sheds.
        return BillingRules(
            granularity_s=calibration.billing_granularity_s,
            min_billed_s=calibration.min_billed_execution_s,
            memory_rounding_mb=128,
            bills_shed_requests=True)

    def throttle_count(self, testbed: Any) -> int:
        return testbed.app.rejections

    def shed_count(self, testbed: Any) -> int:
        return testbed.app.shed

    # -- cost reporting --------------------------------------------------------

    def cost_breakdown(self, testbed: Any) -> Dict[str, Any]:
        stack = testbed.stack(self.name)
        breakdown = testbed.azure_prices.breakdown(stack.billing,
                                                   stack.meter)
        replay_gb_s = sum(
            charge.gb_s for charge in stack.billing.compute
            if charge.replay
            or charge.function_name.startswith("orchestrator::"))
        return {"gb_s": breakdown.gb_s,
                "compute_cost": breakdown.stateless,
                "transaction_cost": breakdown.stateful,
                "transaction_count": breakdown.transaction_count,
                "replay_gb_s": replay_gb_s}

    # -- audit evidence --------------------------------------------------------

    def leak_evidence(self, testbed: Any) -> List[str]:
        evidence: List[str] = []
        app = testbed.app
        if app._pending:
            evidence.append(
                f"azure: {len(app._pending)} work items still pending")
        in_use = sum(instance.in_use for instance in app.instances)
        if in_use:
            evidence.append(
                f"azure: {in_use} app instance slots still in use")
        hub = testbed.durable.taskhub
        active = sorted(instance_id for instance_id, instance
                        in hub.instances.items() if instance.episode_active)
        if active:
            evidence.append(
                f"azure: episodes still active for {active}")
        return evidence

    def delivery_evidence(self, testbed: Any) -> List[str]:
        """Duplicate completion events in any orchestration history.

        Each scheduled operation owns one sequence number, so a second
        completion event for the same ``seq`` means the completion
        dedupe failed (double-processed — and double-billed — work).
        """
        from repro.azure.durable import history as h
        evidence: List[str] = []
        hub = testbed.durable.taskhub
        for instance_id in sorted(hub.instances):
            instance = hub.instances[instance_id]
            seen: Dict[int, int] = {}
            for event in instance.history:
                if isinstance(event, h.SUCCESS_EVENTS + h.FAILURE_EVENTS):
                    seen[event.seq] = seen.get(event.seq, 0) + 1
            for seq, count in sorted(seen.items()):
                if count > 1:
                    evidence.append(
                        f"instance {instance_id}: {count} completion "
                        f"events for seq {seq} — completion dedupe "
                        "failed under duplication faults")
        return evidence

    def replay_check(self, testbed: Any) -> Tuple[int, List[str]]:
        """Replay every finished orchestration's history twice; any
        divergence (between replays, or from the recorded status) is
        evidence of non-deterministic replay."""
        from repro.azure.durable.context import (
            OrchestrationContext,
            run_orchestrator_turn,
        )
        hub = testbed.durable.taskhub
        payload_limit = testbed.calibration(
            self.name).durable_payload_limit_bytes
        expected_state = {"Completed": "completed", "Failed": "failed"}
        evidence: List[str] = []
        replayed = 0
        for instance_id in sorted(hub.instances):
            instance = hub.instances[instance_id]
            if not instance.is_finished or not instance.history:
                continue
            spec = hub.orchestrators.get(instance.orchestrator)
            if spec is None:
                continue
            replayed += 1
            outcomes = []
            for _ in range(2):
                ctx = OrchestrationContext(
                    instance.instance_id, instance.input,
                    instance.history, payload_limit,
                    now=instance.completed_at or 0.0)
                try:
                    state, value = run_orchestrator_turn(spec, ctx)
                except Exception as error:  # noqa: BLE001 - divergence datum
                    outcomes.append(
                        ("replay-error", f"{type(error).__name__}: "
                                         f"{error}", ()))
                    continue
                outcomes.append(
                    (state, repr(value),
                     tuple(repr(action) for action in ctx.actions)))
            if outcomes[0] != outcomes[1]:
                evidence.append(
                    f"instance {instance_id}: two replays of the same "
                    f"history diverged: {outcomes[0][:2]} vs "
                    f"{outcomes[1][:2]}")
                continue
            state, value, _ = outcomes[0]
            want = expected_state.get(instance.status)
            if want is not None and state != want:
                evidence.append(
                    f"instance {instance_id}: recorded status "
                    f"{instance.status!r} but history replays to "
                    f"{state!r} ({value})")
        return replayed, evidence

    # -- chaos -----------------------------------------------------------------

    def crash_host(self, testbed: Any) -> Optional[Generator]:
        def recover() -> Generator:
            testbed.app.simulate_host_crash()
            hub = testbed.durable.taskhub
            pending = list(hub.simulate_host_crash())
            for instance_id in pending:
                try:
                    yield from hub.recover_instance(instance_id)
                except Exception:
                    pass
        return recover()


register_backend(AzureBackend())
