"""Azure Functions consumption-plan runtime: instances + scale controller.

Unlike Lambda's per-request environments, an Azure function app runs on a
*shared pool of instances* grown and shrunk by a scale controller.  Work
that arrives when all instance slots are busy waits in a dispatch queue;
new instances are added a few at a time on a periodic evaluation cycle
and take seconds to provision.  This is the mechanism behind the paper's
central Azure finding: fan-outs do not speed up past a modest width
(Fig 12), and at 50 000 workers half the fleet waits ~40 s to be scheduled
while the slowest 5 % wait minutes (Fig 14).

When the app is scaled to zero, the first piece of work provisions an
instance on demand with a *trigger-specific* cold-start distribution —
durable dispatch wakes in under ~2 s, queue-trigger chains take 10-20 s
(Fig 10) — while subsequent scale-out uses the controller's slower
provisioning path (Fig 13's ~10 s orchestrator starts under load).
"""

from __future__ import annotations

import dataclasses
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional

from repro.platforms.base import (
    FunctionContext,
    FunctionSpec,
    FunctionTimeout,
    InvocationResult,
    LoadShedError,
    ThrottlingError,
    round_up,
)
from repro.platforms.billing import BillingMeter
from repro.platforms.calibration import AzureCalibration
from repro.sim.distributions import Distribution
from repro.sim.kernel import Environment, Event
from repro.sim.rng import RandomStreams
from repro.telemetry import SpanKind, Telemetry

#: Trigger kinds, each with its own scaled-to-zero cold-start behaviour.
TRIGGER_HTTP = "http"
TRIGGER_QUEUE = "queue"
TRIGGER_DURABLE = "durable"


@dataclass
class AppInstance:
    """One VM-like worker hosting function executions."""

    instance_id: int
    started_at: float
    capacity: int
    in_use: int = 0
    last_active: float = 0.0

    @property
    def free_slots(self) -> int:
        return self.capacity - self.in_use


@dataclass
class _WorkItem:
    """A queued execution waiting for an instance slot."""

    spec: FunctionSpec
    submitted_at: float
    granted: Event = None
    instance: Optional[AppInstance] = None


class FunctionAppService:
    """One function app: registry, instance pool, dispatch queue."""

    _instance_ids = itertools.count(1)

    #: hosting plans
    CONSUMPTION = "consumption"
    PREMIUM = "premium"

    def __init__(self, env: Environment, telemetry: Telemetry,
                 billing: BillingMeter, streams: RandomStreams,
                 calibration: Optional[AzureCalibration] = None,
                 services: Optional[Dict[str, Any]] = None,
                 app_name: str = "app", plan: str = CONSUMPTION,
                 faults: Optional[Any] = None):
        if plan not in (self.CONSUMPTION, self.PREMIUM):
            raise ValueError(f"unknown hosting plan: {plan!r}")
        self.env = env
        self.telemetry = telemetry
        self.billing = billing
        self.streams = streams
        self.faults = faults
        self.calibration = calibration or AzureCalibration()
        self.services = dict(services or {})
        self.app_name = app_name
        self.plan = plan
        self._functions: Dict[str, FunctionSpec] = {}
        self.instances: List[AppInstance] = []
        self._provisioning = 0
        self._pending: List[_WorkItem] = []
        #: requests rejected at the trigger with HTTP 429 (queue bound)
        self.rejections = 0
        #: accepted requests dropped because their queue wait exceeded
        #: the shed deadline (accounted as shed, not failed)
        self.shed = 0
        self.controller = ScaleController(self)
        self._controller_started = False
        if plan == self.PREMIUM:
            # Pre-warmed always-ready instances: the premium plan's whole
            # point is that cold starts disappear (billed hourly instead).
            for _ in range(self.calibration.premium_min_instances):
                self.instances.append(AppInstance(
                    instance_id=next(self._instance_ids),
                    started_at=self.env.now,
                    capacity=self.calibration.instance_concurrency,
                    last_active=self.env.now))

    # -- registry -----------------------------------------------------------------

    def register(self, spec: FunctionSpec) -> FunctionSpec:
        """Deploy a function into this app."""
        if spec.name in self._functions:
            raise ValueError(f"function {spec.name!r} already registered")
        if spec.memory_mb > self.calibration.max_memory_mb:
            raise ValueError(
                f"consumption plan caps memory at "
                f"{self.calibration.max_memory_mb} MB, got {spec.memory_mb}")
        if spec.timeout_s > self.calibration.time_limit_s:
            raise ValueError(
                f"timeout {spec.timeout_s}s exceeds the plan limit of "
                f"{self.calibration.time_limit_s}s")
        if (self.faults is not None and self.faults.plan.wraps_handlers
                and self.faults.plan.applies_to(spec.name)
                and not spec.name.startswith("orchestrator::")):
            # Orchestrator episode handlers are excluded: episodes are
            # deterministic replays driven by unmonitored background
            # pumps — the real chaos surface is activities/entities, and
            # a crash there exercises exactly the recovery machinery.
            spec = dataclasses.replace(
                spec, handler=self.faults.wrap(spec.handler, spec.name))
        self._functions[spec.name] = spec
        return spec

    def get_function(self, name: str) -> FunctionSpec:
        try:
            return self._functions[name]
        except KeyError:
            raise KeyError(f"no such Azure function: {name!r}") from None

    @property
    def function_names(self) -> List[str]:
        return sorted(self._functions)

    # -- pool observability -----------------------------------------------------------

    @property
    def live_instance_count(self) -> int:
        return len(self.instances)

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    @property
    def free_slot_count(self) -> int:
        return sum(instance.free_slots for instance in self.instances)

    # -- invocation ----------------------------------------------------------------------

    def invoke(self, name: str, event: Any, trigger: str = TRIGGER_HTTP,
               parent_span=None) -> Generator:
        """Execute a function; drive with ``yield from``.

        Queues for an instance slot, provisioning on demand when scaled to
        zero.  Returns an :class:`InvocationResult`.
        """
        self._ensure_controller()
        spec = self.get_function(name)
        rng = self.streams.get(f"azure.fn.{name}")
        calibration = self.calibration
        # Trigger-level admission: client-facing triggers are rejected
        # with HTTP 429 when the dispatch queue is over its bound (429s
        # are not billed — the execution never happens).  Durable work is
        # queue-driven and backpressured at the storage queues instead.
        depth_limit = calibration.queue_depth_limit
        if (depth_limit is not None and trigger != TRIGGER_DURABLE
                and len(self._pending) >= depth_limit):
            self.rejections += 1
            raise ThrottlingError(
                f"app {self.app_name!r} has {len(self._pending)} queued "
                f"executions (bound {depth_limit}) — 429 TooManyRequests",
                retry_after_s=calibration.scale_interval_s)
        submitted_at = self.env.now

        scheduling_span = self.telemetry.start_span(
            name, SpanKind.SCHEDULING, parent=parent_span,
            platform="azure", trigger=trigger)

        demanded_cold = False
        if (self.plan == self.CONSUMPTION
                and self.free_slot_count == 0
                and self.live_instance_count == 0
                and self._provisioning == 0):
            # Scaled to zero: wake one instance with the trigger's own
            # cold-start profile.
            demanded_cold = True
            cold_model = self._cold_start_model(trigger)
            self.start_provision(cold_model, rng)

        item = _WorkItem(spec=spec, submitted_at=submitted_at,
                         granted=self.env.event())
        self._pending.append(item)
        self._dispatch()
        shed_deadline = calibration.shed_deadline_s
        try:
            if shed_deadline is None or trigger == TRIGGER_DURABLE:
                yield item.granted
            else:
                # Deadline-based load shedding: accepted work still
                # waiting for a slot past the budget is dropped, not
                # failed.
                yield item.granted | self.env.timeout(shed_deadline)
                if not item.granted.triggered:
                    self._pending.remove(item)
                    self.shed += 1
                    waited = self.env.now - submitted_at
                    # Azure bills accepted-then-shed work (the platform
                    # admitted it past the trigger); charge it here since
                    # requests are otherwise billed at execution start.
                    self.billing.charge_request(name)
                    self.telemetry.end_span(scheduling_span, shed=True,
                                            queue_wait=waited)
                    raise LoadShedError(
                        f"execution of {name!r} shed after waiting "
                        f"{waited:.1f}s for an instance slot "
                        f"(deadline {shed_deadline}s)",
                        waited_s=waited, deadline_s=shed_deadline)
            instance = item.instance

            # Warm dispatch hop (queue/poll latency inside the platform).
            yield self.env.timeout(calibration.durable_dispatch.sample(rng))
        except LoadShedError:
            raise
        except BaseException:
            # A mitigation layer may interrupt (cancel) this invocation
            # while it queues for a slot or rides the dispatch hop; give
            # back whatever was claimed so cancellation cannot leak slots.
            if item in self._pending:
                self._pending.remove(item)
            elif item.instance is not None:
                self._release(item.instance)
            self.telemetry.end_span(
                scheduling_span, abandoned=True,
                queue_wait=self.env.now - submitted_at)
            raise
        queue_wait = self.env.now - submitted_at
        self.telemetry.end_span(scheduling_span, cold=demanded_cold,
                                queue_wait=queue_wait)

        # Requests are billed when execution starts (bar shed work,
        # charged above): an invocation cancelled or stranded in the
        # dispatch queue never ran, so it must leave no request charge
        # behind (billed requests must equal execution spans + sheds).
        self.billing.charge_request(name)
        started_at = self.env.now
        span = self.telemetry.start_span(
            name, SpanKind.EXECUTION, parent=parent_span, platform="azure",
            cold=demanded_cold, instance=instance.instance_id,
            memory_mb=spec.billing_memory_mb)
        ctx = FunctionContext(
            self.env, spec, rng, services=self.services,
            telemetry=self.telemetry, span=span,
            jitter=calibration.execution_jitter,
            cpu_factor=calibration.cpu_slowdown)
        try:
            value = yield from self._run_with_timeout(ctx, spec, event)
        finally:
            finished_at = self.env.now
            self.telemetry.end_span(span, duration=finished_at - started_at)
            self._release(instance)
            raw = finished_at - started_at
            billed = max(round_up(max(raw, 1e-9),
                                  calibration.billing_granularity_s),
                         calibration.min_billed_execution_s)
            # Azure bills measured memory, rounded up to 128 MB.
            measured = round_up(spec.billing_memory_mb, 128)
            self.billing.charge_compute(
                name, raw_duration=raw, billed_duration=billed,
                memory_mb=int(measured))

        return InvocationResult(
            value=value, started_at=started_at, finished_at=finished_at,
            cold_start=demanded_cold,
            cold_start_duration=queue_wait if demanded_cold else 0.0,
            queue_wait=queue_wait, billed_gb_s=billed * measured / 1024.0,
            function_name=name)

    # -- internals ---------------------------------------------------------------------------

    def _cold_start_model(self, trigger: str) -> Distribution:
        calibration = self.calibration
        if trigger == TRIGGER_DURABLE:
            return calibration.durable_cold_start
        if trigger == TRIGGER_QUEUE:
            return calibration.queue_trigger_cold_start
        return calibration.http_cold_start

    def _ensure_controller(self) -> None:
        if not self._controller_started:
            self._controller_started = True
            self.env.process(self.controller.run())

    def _run_with_timeout(self, ctx: FunctionContext, spec: FunctionSpec,
                          event: Any) -> Generator:
        handler_process = self.env.process(spec.handler(ctx, event))
        deadline = self.env.timeout(spec.timeout_s)
        race = handler_process | deadline
        try:
            result = yield race
        except BaseException:
            # Interrupted from outside (hedge cancellation, deadline
            # abandonment): reap the orphaned handler so a later failure
            # of it cannot crash the dispatch loop.  The race condition
            # must be defused too: this process no longer waits on it,
            # and the abandoned handler's failure chains into it — an
            # undefused, waiterless condition would crash the run.
            if handler_process.is_alive:
                handler_process.interrupt(cause="abandoned")
            handler_process.defuse()
            race.defuse()
            raise
        if handler_process in result:
            return handler_process.value
        handler_process.interrupt(cause="timeout")
        # The interrupt will surface as the process's failure value; mark
        # it handled so the unwound process cannot crash the simulation.
        handler_process.defuse()
        yield self.env.timeout(0)
        raise FunctionTimeout(
            f"function {spec.name!r} exceeded its {spec.timeout_s}s limit")

    def _dispatch(self) -> None:
        """Grant pending work to free slots, FIFO."""
        while self._pending:
            instance = self._find_free_instance()
            if instance is None:
                return
            item = self._pending.pop(0)
            instance.in_use += 1
            instance.last_active = self.env.now
            item.instance = instance
            item.granted.succeed()

    def _find_free_instance(self) -> Optional[AppInstance]:
        best = None
        for instance in self.instances:
            if instance.free_slots > 0:
                if best is None or instance.free_slots > best.free_slots:
                    best = instance
        return best

    def _release(self, instance: AppInstance) -> None:
        instance.in_use -= 1
        instance.last_active = self.env.now
        self._dispatch()

    def simulate_host_crash(self) -> int:
        """Kill every idle instance (busy slots survive to finish).

        Returns how many instances were dropped; the scale controller
        will re-provision on demand, re-paying cold starts.
        """
        keep = [instance for instance in self.instances
                if instance.in_use > 0]
        dropped = len(self.instances) - len(keep)
        self.instances = keep
        return dropped

    def start_provision(self, provision_time: Distribution, rng) -> None:
        """Kick off provisioning of one instance (counted immediately).

        The count must move synchronously: several arrivals in the same
        instant must not each conclude the app is scaled to zero.
        """
        self._provisioning += 1
        self.env.process(self._provision_instance(provision_time, rng))

    def _provision_instance(self, provision_time: Distribution,
                            rng) -> Generator:
        """Instance birth: joins the pool after its provision delay."""
        span = self.telemetry.start_span(
            self.app_name, SpanKind.COLD_START, platform="azure",
            component="instance")
        try:
            yield self.env.timeout(max(0.0, provision_time.sample(rng)))
        finally:
            self._provisioning -= 1
            self.telemetry.end_span(span)
        instance = AppInstance(
            instance_id=next(self._instance_ids), started_at=self.env.now,
            capacity=self.calibration.instance_concurrency,
            last_active=self.env.now)
        self.instances.append(instance)
        self._dispatch()
        return instance


class ScaleController:
    """Periodic evaluator that grows/shrinks the instance pool.

    Every ``scale_interval_s`` it looks at queued work: if executions are
    waiting, it starts ``instances_per_decision`` new instances (bounded
    by ``max_instances``); if instances have been idle past the timeout,
    it reclaims them.  The bounded birth rate is what starves large
    fan-outs (Fig 12/14).
    """

    def __init__(self, app: FunctionAppService):
        self.app = app
        self.decisions = 0
        self.scale_out_events = 0
        self.stalls = 0
        self._stalled_until = 0.0

    def run(self) -> Generator:
        """The controller loop; runs for the lifetime of the simulation."""
        app = self.app
        calibration = app.calibration
        rng = app.streams.get("azure.scale_controller")
        while True:
            yield app.env.timeout(calibration.scale_interval_s)
            self.decisions += 1
            # Allocation throttling: occasionally scale-out stalls for a
            # while, starving queued work (Fig 14's minutes-long tail).
            if app.env.now < self._stalled_until:
                self._reclaim_idle()
                continue
            if rng.random() < calibration.scale_stall_probability:
                self.stalls += 1
                self._stalled_until = (
                    app.env.now
                    + calibration.scale_stall_duration.sample(rng))
                self._reclaim_idle()
                continue
            backlog = app.pending_count
            capacity_incoming = (
                self._provisioning_slots() + app.free_slot_count)
            if backlog > capacity_incoming:
                room = calibration.max_instances - (
                    app.live_instance_count + app._provisioning)
                births = min(calibration.instances_per_decision, max(0, room))
                for _ in range(births):
                    self.scale_out_events += 1
                    app.start_provision(calibration.instance_provision, rng)
            self._reclaim_idle()

    def _provisioning_slots(self) -> int:
        return self.app._provisioning * self.app.calibration.instance_concurrency

    def _reclaim_idle(self) -> None:
        app = self.app
        now = app.env.now
        timeout = app.calibration.instance_idle_timeout_s
        keep = []
        floor = (app.calibration.premium_min_instances
                 if app.plan == app.PREMIUM else 0)
        for instance in app.instances:
            if (instance.in_use > 0
                    or now - instance.last_active < timeout
                    or len(keep) < floor):
                keep.append(instance)
        app.instances = keep
