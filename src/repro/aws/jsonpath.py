"""Reference-path (JSONPath subset) support for the ASL interpreter.

Amazon States Language uses *reference paths* — JSONPath limited to dotted
field access and numeric indexing — for ``InputPath``, ``OutputPath``,
``ResultPath``, ``ItemsPath`` and ``Parameters`` substitution.  This module
implements exactly that subset: ``$``, ``$.field.sub``, ``$.items[3]``.
"""

from __future__ import annotations

import re
from typing import Any, List, Union

_TOKEN = re.compile(r"\.([A-Za-z_][A-Za-z0-9_\-]*)|\[(\d+)\]")


class PathError(ValueError):
    """A malformed path or one that does not resolve against the data."""


def parse_path(path: str) -> List[Union[str, int]]:
    """Parse ``$.a.b[2]`` into ``['a', 'b', 2]``; ``$`` parses to ``[]``."""
    if not isinstance(path, str) or not path.startswith("$"):
        raise PathError(f"reference path must start with '$': {path!r}")
    rest = path[1:]
    if not rest:
        return []
    tokens: List[Union[str, int]] = []
    position = 0
    while position < len(rest):
        match = _TOKEN.match(rest, position)
        if match is None:
            raise PathError(f"malformed reference path: {path!r}")
        field, index = match.groups()
        tokens.append(field if field is not None else int(index))
        position = match.end()
    return tokens


def get_path(data: Any, path: str) -> Any:
    """Resolve ``path`` against ``data``; raises :class:`PathError` if absent."""
    current = data
    for token in parse_path(path):
        if isinstance(token, int):
            if not isinstance(current, list) or token >= len(current):
                raise PathError(f"index {token} not found resolving {path!r}")
            current = current[token]
        else:
            if not isinstance(current, dict) or token not in current:
                raise PathError(f"field {token!r} not found resolving {path!r}")
            current = current[token]
    return current


def set_path(data: Any, path: str, value: Any) -> Any:
    """Return ``data`` with ``value`` placed at ``path``.

    Follows ASL ``ResultPath`` semantics: ``$`` replaces the whole
    document; intermediate objects are created as needed; the original
    document is not mutated (containers along the path are copied).
    """
    tokens = parse_path(path)
    if not tokens:
        return value
    if not isinstance(data, dict):
        # ResultPath into a non-object input replaces it with an object.
        root: Any = {}
    else:
        root = dict(data)
    current = root
    for position, token in enumerate(tokens[:-1]):
        if not isinstance(token, str):
            raise PathError(
                f"ResultPath may not index into arrays: {path!r}")
        child = current.get(token)
        child = dict(child) if isinstance(child, dict) else {}
        current[token] = child
        current = child
    last = tokens[-1]
    if not isinstance(last, str):
        raise PathError(f"ResultPath may not index into arrays: {path!r}")
    current[last] = value
    return root


def apply_parameters(template: Any, data: Any) -> Any:
    """Instantiate an ASL ``Parameters`` template against ``data``.

    Keys ending in ``.$`` take their value from the reference path given;
    everything else is passed through literally (recursively).
    """
    if isinstance(template, dict):
        result = {}
        for key, value in template.items():
            if key.endswith(".$"):
                if not isinstance(value, str):
                    raise PathError(
                        f"parameter {key!r} must map to a path string")
                result[key[:-2]] = get_path(data, value)
            else:
                result[key] = apply_parameters(value, data)
        return result
    if isinstance(template, list):
        return [apply_parameters(item, data) for item in template]
    return template
