"""Typed state classes for the ASL subset.

These are pure data holders; execution lives in
:mod:`repro.aws.stepfunctions`.  Each class knows its possible transition
targets so the validator can check the graph statically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional


@dataclass
class State:
    """Fields shared by all ASL states."""

    name: str
    next_state: Optional[str] = None
    end: bool = False
    input_path: str = "$"
    output_path: str = "$"
    comment: str = ""

    def transition_targets(self) -> List[str]:
        """Names of states this state can transition to."""
        return [self.next_state] if self.next_state else []

    @property
    def state_type(self) -> str:
        return type(self).__name__.replace("State", "")


@dataclass
class TaskState(State):
    """Invokes a Lambda function (``Resource`` is the function name)."""

    resource: str = ""
    parameters: Optional[Dict[str, Any]] = None
    result_selector: Optional[Dict[str, Any]] = None
    result_path: str = "$"
    timeout_seconds: Optional[float] = None
    retry: List[dict] = field(default_factory=list)
    catch: List[dict] = field(default_factory=list)

    def transition_targets(self) -> List[str]:
        targets = super().transition_targets()
        targets.extend(catcher["next"] for catcher in self.catch)
        return targets


@dataclass
class ParallelState(State):
    """Runs fixed branches concurrently; result is the list of outputs."""

    branches: List[Any] = field(default_factory=list)  # StateMachineDefinition
    result_path: str = "$"
    retry: List[dict] = field(default_factory=list)
    catch: List[dict] = field(default_factory=list)

    def transition_targets(self) -> List[str]:
        targets = super().transition_targets()
        targets.extend(catcher["next"] for catcher in self.catch)
        return targets


@dataclass
class MapState(State):
    """Dynamic fan-out: runs the iterator once per item of ``ItemsPath``.

    ``max_concurrency`` of 0 means unlimited — the configuration the
    paper's video workflow uses for its worker army (Fig 5).
    """

    iterator: Any = None  # StateMachineDefinition
    items_path: str = "$"
    max_concurrency: int = 0
    parameters: Optional[Dict[str, Any]] = None
    result_path: str = "$"
    retry: List[dict] = field(default_factory=list)
    catch: List[dict] = field(default_factory=list)

    def transition_targets(self) -> List[str]:
        targets = super().transition_targets()
        targets.extend(catcher["next"] for catcher in self.catch)
        return targets


@dataclass
class ChoiceRule:
    """One comparison within a Choice state."""

    variable: str
    comparator: str
    expected: Any
    next_state: str
    test: Callable[[Any, Any], bool] = field(repr=False, default=None)

    def matches(self, data: Any) -> bool:
        from repro.aws.jsonpath import PathError, get_path
        try:
            actual = get_path(data, self.variable)
        except PathError:
            return False
        return bool(self.test(actual, self.expected))


@dataclass
class ChoiceState(State):
    """Branches on the first matching rule, else ``Default``."""

    choices: List[ChoiceRule] = field(default_factory=list)
    default: Optional[str] = None

    def transition_targets(self) -> List[str]:
        targets = [rule.next_state for rule in self.choices]
        if self.default:
            targets.append(self.default)
        return targets


@dataclass
class PassState(State):
    """Passes input to output, optionally injecting ``Result``."""

    result: Any = None
    parameters: Optional[Dict[str, Any]] = None
    result_path: str = "$"


@dataclass
class WaitState(State):
    """Delays for a fixed or data-driven number of seconds."""

    seconds: Optional[float] = None
    seconds_path: Optional[str] = None


@dataclass
class SucceedState(State):
    """Terminal success."""


@dataclass
class FailState(State):
    """Terminal failure with an error name and cause."""

    error: str = "States.Failed"
    cause: str = ""
