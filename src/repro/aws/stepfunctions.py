"""AWS Step Functions execution engine.

Executes validated :class:`~repro.aws.asl.StateMachineDefinition` objects
against the simulated :class:`~repro.aws.lambda_service.LambdaService`.

Behavioural notes (all from the paper):

* Every state entry is a billable *state transition* (§II-C price model);
  transitions are metered into the shared :class:`TransactionMeter` under
  ``service='stepfunctions'`` so the cost layer sees AWS's stateful cost
  component exactly where Azure's queue/table transactions appear.
* Data crossing any state boundary is checked against the 256 KB payload
  limit (§IV-A, Table I).
* The client scheduler adds a small per-transition dispatch latency —
  tight and predictable, giving the near-vertical CDF of Fig 7.
* After an idle period the first dispatch pays an extra cold overhead;
  combined with the Lambda cold start this yields the 3-5 s AWS-Step cold
  start of Fig 10.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional

from repro.aws.asl import StateMachineDefinition, parse_state_machine
from repro.aws.jsonpath import apply_parameters, get_path, set_path
from repro.aws.lambda_service import LambdaService
from repro.aws.states import (
    ChoiceState,
    FailState,
    MapState,
    ParallelState,
    PassState,
    State,
    SucceedState,
    TaskState,
    WaitState,
)
from repro.platforms.base import (
    FunctionTimeout,
    ThrottlingError,
    enforce_payload_limit,
)
from repro.sim.kernel import Environment, join_all
from repro.sim.resources import Resource
from repro.storage.meter import TransactionMeter
from repro.telemetry import SpanKind, Telemetry

STATES_ALL = "States.ALL"
STATES_TASK_FAILED = "States.TaskFailed"
STATES_TIMEOUT = "States.Timeout"
STATES_DATA_LIMIT = "States.DataLimitExceeded"
#: Error name surfaced to Retry/Catch when the built-in throttle retry
#: exhausts its attempts against a 429-ing Lambda.
LAMBDA_TOO_MANY_REQUESTS = "Lambda.TooManyRequestsException"


class StatesDataLimitExceeded(ValueError):
    """A state's input or output exceeded the 256 KB payload limit."""


class ExecutionFailed(RuntimeError):
    """The execution reached a Fail state or an unhandled error."""

    def __init__(self, error: str, cause: str = ""):
        super().__init__(f"{error}: {cause}" if cause else error)
        self.error = error
        self.cause = cause


class _StateError(Exception):
    """Internal: an error name + cause travelling through Retry/Catch."""

    def __init__(self, error: str, cause: str = ""):
        super().__init__(error)
        self.error = error
        self.cause = cause

    def matches(self, names: List[str]) -> bool:
        return STATES_ALL in names or self.error in names


#: Workflow types: Standard bills per state transition; Express bills per
#: request plus duration (GB-s at a 64 MB floor) and caps executions at
#: five minutes.
STANDARD = "standard"
EXPRESS = "express"

#: Express workflow execution-duration limit (seconds).
EXPRESS_DURATION_LIMIT_S = 300.0
#: Memory floor Express duration billing is metered against.
EXPRESS_BILLING_MEMORY_MB = 64


@dataclass
class ExecutionRecord:
    """Everything observable about one state-machine execution."""

    execution_id: int
    machine_name: str
    started_at: float
    finished_at: Optional[float] = None
    status: str = "RUNNING"       # RUNNING / SUCCEEDED / FAILED
    output: Any = None
    error: Optional[str] = None
    transitions: int = 0
    states_entered: List[str] = field(default_factory=list)
    workflow_type: str = STANDARD

    @property
    def duration(self) -> float:
        if self.finished_at is None:
            raise ValueError("execution still running")
        return self.finished_at - self.started_at


class StepFunctionsService:
    """Registry and executor for state machines."""

    _execution_ids = itertools.count(1)

    def __init__(self, env: Environment, lambdas: LambdaService,
                 telemetry: Telemetry, meter: TransactionMeter,
                 faults: Optional[Any] = None):
        self.env = env
        self.lambdas = lambdas
        self.telemetry = telemetry
        self.meter = meter
        self.faults = faults
        self.calibration = lambdas.calibration
        self._machines: Dict[str, StateMachineDefinition] = {}
        self._machine_types: Dict[str, str] = {}
        self._last_dispatch: Dict[str, float] = {}
        self.executions: List[ExecutionRecord] = []
        #: Task-state invocations re-attempted after a Lambda 429
        self.throttle_retries = 0

    # -- registry -----------------------------------------------------------------

    def create_state_machine(self, name: str, definition: Dict[str, Any],
                             workflow_type: str = STANDARD
                             ) -> StateMachineDefinition:
        """Validate and register an ASL definition under ``name``.

        ``workflow_type`` selects Standard (per-transition pricing, long
        executions) or Express (per-request + duration pricing, 5-minute
        cap) semantics.
        """
        if name in self._machines:
            raise ValueError(f"state machine {name!r} already exists")
        if workflow_type not in (STANDARD, EXPRESS):
            raise ValueError(
                f"workflow_type must be {STANDARD!r} or {EXPRESS!r}, "
                f"got {workflow_type!r}")
        machine = parse_state_machine(definition)
        for state in _walk_states(machine):
            if isinstance(state, TaskState):
                # Fail at creation time if a Task resource is undeployed.
                self.lambdas.get_function(state.resource)
        self._machines[name] = machine
        self._machine_types[name] = workflow_type
        return machine

    def workflow_type_of(self, name: str) -> str:
        self.get_state_machine(name)
        return self._machine_types[name]

    def get_state_machine(self, name: str) -> StateMachineDefinition:
        try:
            return self._machines[name]
        except KeyError:
            raise KeyError(f"no such state machine: {name!r}") from None

    def list_executions(self, name: Optional[str] = None,
                        status: Optional[str] = None
                        ) -> List[ExecutionRecord]:
        """Executions, newest first, optionally filtered (the console view)."""
        records = [record for record in self.executions
                   if (name is None or record.machine_name == name)
                   and (status is None or record.status == status)]
        return sorted(records, key=lambda record: -record.execution_id)

    def describe_execution(self, execution_id: int) -> ExecutionRecord:
        """One execution by id."""
        for record in self.executions:
            if record.execution_id == execution_id:
                return record
        raise KeyError(f"no such execution: {execution_id}")

    # -- execution -----------------------------------------------------------------

    def start_execution(self, name: str, input_data: Any) -> Generator:
        """Run one execution to completion; drive with ``yield from``.

        Returns the :class:`ExecutionRecord`.  A failed execution returns
        a record with ``status='FAILED'`` rather than raising, matching
        the service API.
        """
        machine = self.get_state_machine(name)
        workflow_type = self._machine_types[name]
        record = ExecutionRecord(
            execution_id=next(self._execution_ids), machine_name=name,
            started_at=self.env.now, workflow_type=workflow_type)
        self.executions.append(record)
        span = self.telemetry.start_span(
            name, SpanKind.WORKFLOW, platform="aws",
            execution_id=record.execution_id)

        # Cold overhead for the first dispatch after an idle period.
        idle_since = self._last_dispatch.get(name)
        rng = self.lambdas.streams.get(f"aws.step.{name}")
        keep_alive = self.calibration.keep_alive_s
        if idle_since is None or self.env.now - idle_since > keep_alive:
            overhead = self.calibration.step_cold_overhead.sample(rng)
            cold_span = self.telemetry.start_span(
                name, SpanKind.COLD_START, parent=span, platform="aws",
                component="stepfunctions")
            yield self.env.timeout(overhead)
            self.telemetry.end_span(cold_span)
        self._last_dispatch[name] = self.env.now

        try:
            output = yield from self._run_machine(
                machine, input_data, record, span, machine_name=name)
        except _StateError as error:
            record.status = "FAILED"
            record.error = error.error
            record.finished_at = self.env.now
            self._charge_express(record)
            self.telemetry.end_span(span, status="FAILED", error=error.error)
            return record

        record.status = "SUCCEEDED"
        record.output = output
        record.finished_at = self.env.now
        if (workflow_type == EXPRESS
                and record.duration > EXPRESS_DURATION_LIMIT_S):
            record.status = "FAILED"
            record.error = "States.Timeout"
            record.output = None
            self._charge_express(record)
            self.telemetry.end_span(span, status="FAILED",
                                    error="States.Timeout")
            return record
        self._last_dispatch[name] = self.env.now
        self._charge_express(record)
        self.telemetry.end_span(span, status="SUCCEEDED")
        return record

    def _charge_express(self, record: ExecutionRecord) -> None:
        """Meter an Express execution: one request + duration GB-s."""
        if record.workflow_type != EXPRESS:
            return
        self.meter.record("stepfunctions-express", record.machine_name,
                          "request")
        duration = record.finished_at - record.started_at
        gb_s = duration * EXPRESS_BILLING_MEMORY_MB / 1024.0
        # Duration cost is metered in micro-GB-s so the integer size
        # field keeps enough resolution for pricing.
        self.meter.record("stepfunctions-express", record.machine_name,
                          "duration", size=int(gb_s * 1e6))

    # -- machine interpreter ----------------------------------------------------------

    def _run_machine(self, machine: StateMachineDefinition, input_data: Any,
                     record: ExecutionRecord, parent_span,
                     machine_name: str) -> Generator:
        data = input_data
        current: Optional[str] = machine.start_at
        while current is not None:
            state = machine.state(current)
            data, current = yield from self._run_state(
                state, data, record, parent_span, machine_name)
        return data

    def _transition(self, record: ExecutionRecord, state: State,
                    machine_name: str) -> Generator:
        record.transitions += 1
        record.states_entered.append(state.name)
        if record.workflow_type == STANDARD:
            # Express workflows do not bill (or durably record) per-state
            # transitions — that is their pricing model's whole point.
            self.meter.record("stepfunctions", machine_name, "transition")
        rng = self.lambdas.streams.get(f"aws.step.{machine_name}")
        latency = self.calibration.transition_latency.sample(rng)
        span = self.telemetry.start_span(
            state.name, SpanKind.TRANSITION, platform="aws",
            state_type=state.state_type)
        yield self.env.timeout(latency)
        self.telemetry.end_span(span)
        return None

    def _check_payload(self, value: Any, where: str) -> None:
        limit = self.calibration.payload_limit_bytes
        try:
            enforce_payload_limit(value, limit, where)
        except Exception as error:
            raise _StateError(STATES_DATA_LIMIT, str(error)) from error

    def _run_state(self, state: State, data: Any, record: ExecutionRecord,
                   parent_span, machine_name: str) -> Generator:
        """Execute one state; returns ``(output_data, next_state_name)``."""
        yield from self._transition(record, state, machine_name)
        self._check_payload(data, f"input of state {state.name!r}")
        effective = get_path(data, state.input_path)

        if isinstance(state, SucceedState):
            return get_path(effective, state.output_path), None
        if isinstance(state, FailState):
            raise _StateError(state.error, state.cause)
        if isinstance(state, PassState):
            result = effective
            if state.parameters is not None:
                result = apply_parameters(state.parameters, effective)
            if state.result is not None:
                result = state.result
            data = set_path(data, state.result_path, result)
            output = get_path(data, state.output_path)
            return output, self._next(state)
        if isinstance(state, WaitState):
            seconds = state.seconds
            if state.seconds_path is not None:
                seconds = float(get_path(effective, state.seconds_path))
            yield self.env.timeout(max(0.0, float(seconds)))
            return get_path(data, state.output_path), self._next(state)
        if isinstance(state, ChoiceState):
            for rule in state.choices:
                if rule.matches(effective):
                    return get_path(data, state.output_path), rule.next_state
            if state.default is None:
                raise _StateError(
                    "States.NoChoiceMatched",
                    f"no rule matched in state {state.name!r}")
            return get_path(data, state.output_path), state.default
        if isinstance(state, TaskState):
            result = yield from self._with_retry_catch(
                state, effective, record, parent_span, machine_name,
                lambda payload: self._invoke_task(state, payload, parent_span))
            if isinstance(result, _CaughtError):
                return result.data, result.next_state
            data = set_path(data, state.result_path, result)
            output = get_path(data, state.output_path)
            self._check_payload(output, f"output of state {state.name!r}")
            return output, self._next(state)
        if isinstance(state, ParallelState):
            result = yield from self._with_retry_catch(
                state, effective, record, parent_span, machine_name,
                lambda payload: self._run_branches(
                    state, payload, record, parent_span, machine_name))
            if isinstance(result, _CaughtError):
                return result.data, result.next_state
            data = set_path(data, state.result_path, result)
            output = get_path(data, state.output_path)
            self._check_payload(output, f"output of state {state.name!r}")
            return output, self._next(state)
        if isinstance(state, MapState):
            result = yield from self._with_retry_catch(
                state, effective, record, parent_span, machine_name,
                lambda payload: self._run_map(
                    state, payload, record, parent_span, machine_name))
            if isinstance(result, _CaughtError):
                return result.data, result.next_state
            data = set_path(data, state.result_path, result)
            output = get_path(data, state.output_path)
            self._check_payload(output, f"output of state {state.name!r}")
            return output, self._next(state)
        raise _StateError("States.Runtime",
                          f"unhandled state type {type(state).__name__}")

    @staticmethod
    def _next(state: State) -> Optional[str]:
        return None if state.end else state.next_state

    # -- task / parallel / map bodies -----------------------------------------------

    def _invoke_task(self, state: TaskState, payload: Any,
                     parent_span) -> Generator:
        if state.parameters is not None:
            payload = apply_parameters(state.parameters, payload)
        self._check_payload(payload, f"Task input of {state.name!r}")
        try:
            if state.timeout_seconds is not None:
                # The state-level timeout races the invocation (it can be
                # tighter than the Lambda's own configured limit).
                invoke = self.env.process(self._invoke_process(
                    state.resource, payload, parent_span))
                deadline = self.env.timeout(state.timeout_seconds)
                raced = yield invoke | deadline
                if invoke not in raced:
                    invoke.defuse()
                    raise _StateError(
                        STATES_TIMEOUT,
                        f"state {state.name!r} exceeded its "
                        f"TimeoutSeconds of {state.timeout_seconds}")
                result = invoke.value
            else:
                result = yield from self._invoke_lambda(
                    state.resource, payload, parent_span)
        except FunctionTimeout as error:
            raise _StateError(STATES_TIMEOUT, str(error)) from error
        except _StateError:
            raise
        except Exception as error:
            raise _StateError(STATES_TASK_FAILED, str(error)) from error
        value = result.value
        if state.result_selector is not None:
            value = apply_parameters(state.result_selector, value)
        return value

    def _invoke_process(self, resource: str, payload: Any,
                        parent_span) -> Generator:
        result = yield from self._invoke_lambda(
            resource, payload, parent_span)
        return result

    def _invoke_lambda(self, resource: str, payload: Any,
                       parent_span) -> Generator:
        """Invoke a Task-state Lambda, absorbing 429s with backoff.

        Throttled invocations are re-attempted with capped exponential
        backoff plus equal jitter drawn from a named stream (so campaigns
        replay bit-identically); once ``throttle_retry_max_attempts`` is
        exhausted, ``Lambda.TooManyRequestsException`` travels through
        the state's ordinary Retry/Catch machinery.  Retry delays run on
        the simulated clock, so they count against a state-level
        ``TimeoutSeconds`` — as they would on the real service.
        """
        calibration = self.calibration
        rng = self.lambdas.streams.get(f"aws.step.throttle.{resource}")
        attempt = 0
        while True:
            try:
                result = yield from self.lambdas.invoke(
                    resource, payload, parent_span=parent_span)
                return result
            except ThrottlingError as error:
                attempt += 1
                if attempt >= calibration.throttle_retry_max_attempts:
                    raise _StateError(
                        LAMBDA_TOO_MANY_REQUESTS, str(error)) from error
                self.throttle_retries += 1
                ceiling = min(
                    calibration.throttle_retry_cap_s,
                    calibration.throttle_retry_interval_s
                    * 2.0 ** (attempt - 1))
                delay = max(error.retry_after_s,
                            ceiling * float(rng.uniform(0.5, 1.0)))
                yield self.env.timeout(delay)

    def _run_branches(self, state: ParallelState, payload: Any,
                      record: ExecutionRecord, parent_span,
                      machine_name: str) -> Generator:
        processes = [
            self.env.process(self._branch_runner(
                branch, payload, record, parent_span, machine_name))
            for branch in state.branches]
        results = yield from join_all(self.env, processes)
        return results

    def _branch_runner(self, branch: StateMachineDefinition, payload: Any,
                       record: ExecutionRecord, parent_span,
                       machine_name: str) -> Generator:
        result = yield from self._run_machine(
            branch, payload, record, parent_span, machine_name)
        return result

    def _run_map(self, state: MapState, payload: Any,
                 record: ExecutionRecord, parent_span,
                 machine_name: str) -> Generator:
        items = get_path(payload, state.items_path)
        if not isinstance(items, list):
            raise _StateError(
                "States.Runtime",
                f"ItemsPath of {state.name!r} did not resolve to a list")
        gate = None
        if state.max_concurrency > 0:
            gate = Resource(self.env, capacity=state.max_concurrency)
        processes = []
        for item in items:
            item_input = item
            if state.parameters is not None:
                item_input = apply_parameters(state.parameters, item)
            processes.append(self.env.process(self._map_iteration(
                state, item_input, gate, record, parent_span, machine_name)))
        results = yield from join_all(self.env, processes)
        return results

    def _map_iteration(self, state: MapState, item: Any, gate,
                       record: ExecutionRecord, parent_span,
                       machine_name: str) -> Generator:
        if gate is None:
            result = yield from self._run_machine(
                state.iterator, item, record, parent_span, machine_name)
            return result
        with gate.request() as slot:
            yield slot
            result = yield from self._run_machine(
                state.iterator, item, record, parent_span, machine_name)
            return result

    # -- retry / catch -----------------------------------------------------------------

    def _with_retry_catch(self, state, payload: Any, record: ExecutionRecord,
                          parent_span, machine_name: str,
                          body) -> Generator:
        retriers = getattr(state, "retry", [])
        catchers = getattr(state, "catch", [])
        if (not retriers and self.faults is not None
                and self.faults.plan.retry_max_attempts > 1):
            # The fault plan synthesizes a default States.ALL retrier for
            # states that configured none, so reliability campaigns
            # measure what absorbing the chaos costs.
            plan = self.faults.plan
            retriers = [{"errors": [STATES_ALL],
                         "max_attempts": plan.retry_max_attempts - 1,
                         "interval": plan.retry_interval_s,
                         "backoff": plan.retry_backoff}]
        attempts: Dict[int, int] = {}
        while True:
            try:
                result = yield from body(payload)
                return result
            except _StateError as error:
                retrier_index = _find_retrier(retriers, error)
                if retrier_index is not None:
                    retrier = retriers[retrier_index]
                    used = attempts.get(retrier_index, 0)
                    if used < retrier["max_attempts"]:
                        attempts[retrier_index] = used + 1
                        delay = (retrier["interval"]
                                 * retrier["backoff"] ** used)
                        if self.faults is not None:
                            self.faults.platform_retries += 1
                        # A retry re-enters the state: another transition.
                        yield self.env.timeout(delay)
                        yield from self._transition(
                            record, state, machine_name)
                        continue
                for catcher in catchers:
                    if error.matches(catcher["errors"]):
                        error_info = {"Error": error.error,
                                      "Cause": error.cause}
                        data = set_path(
                            payload, catcher["result_path"], error_info)
                        return _CaughtError(data=data,
                                            next_state=catcher["next"])
                raise


@dataclass
class _CaughtError:
    """Internal marker: a Catch clause redirected the flow."""

    data: Any
    next_state: str


def _find_retrier(retriers: List[dict], error: _StateError) -> Optional[int]:
    for index, retrier in enumerate(retriers):
        if error.matches(retrier["errors"]):
            return index
    return None


def _walk_states(machine: StateMachineDefinition):
    """Yield every state in a machine, recursing into branches/iterators."""
    for state in machine.states.values():
        yield state
        if isinstance(state, ParallelState):
            for branch in state.branches:
                yield from _walk_states(branch)
        elif isinstance(state, MapState):
            yield from _walk_states(state.iterator)
