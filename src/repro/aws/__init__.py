"""AWS platform simulation: Lambda + Step Functions.

The model captures the mechanisms the paper attributes AWS behaviour to:

* per-request container provisioning (cold starts parallelise, so large
  fan-outs scale — Fig 12),
* user-configurable memory billed on *configuration* with 100 ms rounding
  (§IV-A "Price Calculation"),
* a client scheduler with small, tight per-transition dispatch latency
  (the near-vertical AWS CDF in Fig 7),
* per-state-transition pricing with no idle-time charges (§II-C).

The Step Functions implementation is a working interpreter for a useful
subset of the Amazon States Language (Task, Parallel, Map, Choice, Pass,
Wait, Succeed, Fail, with InputPath/ResultPath/OutputPath/Parameters and
Retry/Catch), enforcing the 256 KB payload limit.
"""

from repro.aws.lambda_service import LambdaContainer, LambdaService
from repro.aws.asl import AslValidationError, parse_state_machine
from repro.aws.stepfunctions import (
    ExecutionFailed,
    ExecutionRecord,
    StatesDataLimitExceeded,
    StepFunctionsService,
)
from repro.aws.pricing import AWSPriceModel

__all__ = [
    "AWSPriceModel",
    "AslValidationError",
    "ExecutionFailed",
    "ExecutionRecord",
    "LambdaContainer",
    "LambdaService",
    "StatesDataLimitExceeded",
    "StepFunctionsService",
    "parse_state_machine",
]
