"""Parser and static validator for the Amazon States Language subset.

``parse_state_machine`` turns an ASL definition (a dict, as loaded from
JSON) into a validated :class:`StateMachineDefinition` of typed state
objects from :mod:`repro.aws.states`.  Validation errors mirror the ones
the real service raises at ``CreateStateMachine`` time: unknown ``StartAt``,
dangling ``Next`` targets, unreachable states, missing terminal states,
states with neither ``Next`` nor ``End``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Set

from repro.aws.states import (
    ChoiceRule,
    ChoiceState,
    FailState,
    MapState,
    ParallelState,
    PassState,
    State,
    SucceedState,
    TaskState,
    WaitState,
)


class AslValidationError(ValueError):
    """The state machine definition is structurally invalid."""


@dataclass
class StateMachineDefinition:
    """A validated state machine: ordered states plus the entry point."""

    start_at: str
    states: Dict[str, State]
    comment: str = ""

    def state(self, name: str) -> State:
        return self.states[name]

    def state_count(self, recursive: bool = True) -> int:
        """Number of states, optionally including nested branches."""
        count = len(self.states)
        if recursive:
            for state in self.states.values():
                if isinstance(state, ParallelState):
                    count += sum(branch.state_count() for branch in state.branches)
                elif isinstance(state, MapState):
                    count += state.iterator.state_count()
        return count


_TERMINAL_TYPES = (SucceedState, FailState)


def parse_state_machine(definition: Dict[str, Any]) -> StateMachineDefinition:
    """Parse and validate an ASL document."""
    if not isinstance(definition, dict):
        raise AslValidationError("state machine definition must be a mapping")
    if "StartAt" not in definition:
        raise AslValidationError("missing required field 'StartAt'")
    if "States" not in definition or not isinstance(definition["States"], dict):
        raise AslValidationError("missing required field 'States'")
    if not definition["States"]:
        raise AslValidationError("'States' must not be empty")

    states: Dict[str, State] = {}
    for name, body in definition["States"].items():
        states[name] = _parse_state(name, body)

    machine = StateMachineDefinition(
        start_at=definition["StartAt"], states=states,
        comment=definition.get("Comment", ""))
    _validate(machine)
    return machine


def _parse_state(name: str, body: Dict[str, Any]) -> State:
    if not isinstance(body, dict):
        raise AslValidationError(f"state {name!r} must be a mapping")
    state_type = body.get("Type")
    common = dict(
        name=name,
        next_state=body.get("Next"),
        end=body.get("End", False),
        input_path=body.get("InputPath", "$"),
        output_path=body.get("OutputPath", "$"),
        comment=body.get("Comment", ""),
    )

    if state_type == "Task":
        if "Resource" not in body:
            raise AslValidationError(f"Task state {name!r} missing 'Resource'")
        return TaskState(
            resource=body["Resource"],
            parameters=body.get("Parameters"),
            result_selector=body.get("ResultSelector"),
            result_path=body.get("ResultPath", "$"),
            timeout_seconds=body.get("TimeoutSeconds"),
            retry=_parse_retriers(name, body.get("Retry", [])),
            catch=_parse_catchers(name, body.get("Catch", [])),
            **common)
    if state_type == "Parallel":
        branches = body.get("Branches")
        if not branches:
            raise AslValidationError(
                f"Parallel state {name!r} needs at least one branch")
        return ParallelState(
            branches=[parse_state_machine(branch) for branch in branches],
            result_path=body.get("ResultPath", "$"),
            retry=_parse_retriers(name, body.get("Retry", [])),
            catch=_parse_catchers(name, body.get("Catch", [])),
            **common)
    if state_type == "Map":
        if "Iterator" not in body:
            raise AslValidationError(f"Map state {name!r} missing 'Iterator'")
        return MapState(
            iterator=parse_state_machine(body["Iterator"]),
            items_path=body.get("ItemsPath", "$"),
            max_concurrency=body.get("MaxConcurrency", 0),
            parameters=body.get("Parameters"),
            result_path=body.get("ResultPath", "$"),
            retry=_parse_retriers(name, body.get("Retry", [])),
            catch=_parse_catchers(name, body.get("Catch", [])),
            **common)
    if state_type == "Choice":
        choices = body.get("Choices")
        if not choices:
            raise AslValidationError(
                f"Choice state {name!r} needs at least one choice rule")
        return ChoiceState(
            choices=[_parse_choice_rule(name, rule) for rule in choices],
            default=body.get("Default"),
            **common)
    if state_type == "Pass":
        return PassState(
            result=body.get("Result"),
            parameters=body.get("Parameters"),
            result_path=body.get("ResultPath", "$"),
            **common)
    if state_type == "Wait":
        if "Seconds" not in body and "SecondsPath" not in body:
            raise AslValidationError(
                f"Wait state {name!r} needs 'Seconds' or 'SecondsPath'")
        return WaitState(
            seconds=body.get("Seconds"),
            seconds_path=body.get("SecondsPath"),
            **common)
    if state_type == "Succeed":
        return SucceedState(**common)
    if state_type == "Fail":
        return FailState(
            error=body.get("Error", "States.Failed"),
            cause=body.get("Cause", ""),
            **common)
    raise AslValidationError(f"state {name!r} has unknown Type: {state_type!r}")


def _parse_retriers(name: str, retriers: List[Dict[str, Any]]) -> List[dict]:
    parsed = []
    for retrier in retriers:
        if "ErrorEquals" not in retrier:
            raise AslValidationError(
                f"Retry entry in state {name!r} missing 'ErrorEquals'")
        parsed.append({
            "errors": list(retrier["ErrorEquals"]),
            "interval": retrier.get("IntervalSeconds", 1.0),
            "max_attempts": retrier.get("MaxAttempts", 3),
            "backoff": retrier.get("BackoffRate", 2.0),
        })
    return parsed


def _parse_catchers(name: str, catchers: List[Dict[str, Any]]) -> List[dict]:
    parsed = []
    for catcher in catchers:
        if "ErrorEquals" not in catcher or "Next" not in catcher:
            raise AslValidationError(
                f"Catch entry in state {name!r} needs 'ErrorEquals' and 'Next'")
        parsed.append({
            "errors": list(catcher["ErrorEquals"]),
            "next": catcher["Next"],
            "result_path": catcher.get("ResultPath", "$"),
        })
    return parsed


_COMPARATORS = {
    "StringEquals": lambda actual, expected: actual == expected,
    "NumericEquals": lambda actual, expected: actual == expected,
    "NumericGreaterThan": lambda actual, expected: actual > expected,
    "NumericGreaterThanEquals": lambda actual, expected: actual >= expected,
    "NumericLessThan": lambda actual, expected: actual < expected,
    "NumericLessThanEquals": lambda actual, expected: actual <= expected,
    "BooleanEquals": lambda actual, expected: actual is expected,
    "IsPresent": lambda actual, expected: True,  # resolution implies presence
}


def _parse_choice_rule(name: str, rule: Dict[str, Any]) -> ChoiceRule:
    if "Next" not in rule:
        raise AslValidationError(
            f"choice rule in state {name!r} missing 'Next'")
    if "Variable" not in rule:
        raise AslValidationError(
            f"choice rule in state {name!r} missing 'Variable' "
            "(boolean combinators are not supported by this subset)")
    for comparator, test in _COMPARATORS.items():
        if comparator in rule:
            return ChoiceRule(
                variable=rule["Variable"], comparator=comparator,
                expected=rule[comparator], next_state=rule["Next"], test=test)
    raise AslValidationError(
        f"choice rule in state {name!r} has no supported comparator "
        f"(supported: {sorted(_COMPARATORS)})")


def _validate(machine: StateMachineDefinition) -> None:
    states = machine.states
    if machine.start_at not in states:
        raise AslValidationError(
            f"StartAt {machine.start_at!r} is not a defined state")

    for name, state in states.items():
        targets = state.transition_targets()
        for target in targets:
            if target not in states:
                raise AslValidationError(
                    f"state {name!r} transitions to unknown state {target!r}")
        if (not targets and not state.end
                and not isinstance(state, _TERMINAL_TYPES)
                and not isinstance(state, ChoiceState)):
            raise AslValidationError(
                f"state {name!r} has neither 'Next' nor 'End': true")

    # Reachability from StartAt.
    reachable: Set[str] = set()
    frontier = [machine.start_at]
    while frontier:
        current = frontier.pop()
        if current in reachable:
            continue
        reachable.add(current)
        frontier.extend(states[current].transition_targets())
    unreachable = set(states) - reachable
    if unreachable:
        raise AslValidationError(
            f"unreachable states: {sorted(unreachable)}")

    # At least one path must terminate.
    if not any(state.end or isinstance(state, _TERMINAL_TYPES)
               for state in states.values()):
        raise AslValidationError("state machine has no terminal state")
