"""AWS price model: Lambda compute/requests + Step Functions transitions.

The paper's framing (§II-C): "the user is charged based on the number of
state transitions that took place during the execution", with no charge
for idle periods — the property the authors call closest to the
pay-per-use serverless model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.platforms.billing import BillingMeter
from repro.platforms.calibration import AWSCalibration
from repro.storage.meter import TransactionMeter


@dataclass
class AWSCostBreakdown:
    """Dollar cost split into the paper's two components."""

    compute: float          # Lambda GB-s ("computation cost")
    requests: float         # Lambda per-request charge
    transitions: float      # Step Functions ("transaction cost")
    gb_s: float             # raw GB-s, for Fig 11a/11b
    transition_count: int
    express: float = 0.0    # Express workflow charges (requests + duration)

    @property
    def stateless(self) -> float:
        """The paper's 'computation cost' component."""
        return self.compute + self.requests

    @property
    def stateful(self) -> float:
        """The paper's 'transaction cost' component."""
        return self.transitions + self.express

    @property
    def total(self) -> float:
        return self.stateless + self.stateful

    @property
    def stateful_share(self) -> float:
        """Transaction cost as a fraction of the total (Fig 11c/11d)."""
        return self.stateful / self.total if self.total else 0.0


class AWSPriceModel:
    """Prices a deployment's billing and transaction meters."""

    def __init__(self, calibration: AWSCalibration):
        self.calibration = calibration

    def breakdown(self, billing: BillingMeter,
                  meter: TransactionMeter) -> AWSCostBreakdown:
        """Cost of everything recorded so far."""
        gb_s = billing.total_gb_s()
        transitions = meter.count(service="stepfunctions",
                                  operation="transition")
        express_requests = meter.count(service="stepfunctions-express",
                                       operation="request")
        express_micro_gb_s = sum(
            entry.size * entry.count for entry in meter.records
            if entry.service == "stepfunctions-express"
            and entry.operation == "duration")
        express = (express_requests * self.calibration.express_request_price
                   + express_micro_gb_s / 1e6
                   * self.calibration.express_gb_s_price)
        return AWSCostBreakdown(
            compute=gb_s * self.calibration.gb_s_price,
            requests=billing.total_requests() * self.calibration.request_price,
            transitions=transitions * self.calibration.transition_price,
            gb_s=gb_s,
            transition_count=transitions,
            express=express)

    def monthly_cost(self, breakdown_per_run: AWSCostBreakdown,
                     runs_per_month: int) -> float:
        """Project a single run's cost to a monthly bill.

        AWS charges nothing while idle, so the projection is linear in the
        number of runs (§V-A cost discussion).
        """
        return breakdown_per_run.total * runs_per_month
