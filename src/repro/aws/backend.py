"""The AWS platform backend: Lambda + Step Functions behind the registry.

Adapts the existing AWS services to the
:class:`~repro.platforms.backend.PlatformBackend` interface so the
testbed, campaign executors, auditor and CLI can drive AWS without
naming it.  Registered at import by the registry's lazy builtin loader.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.platforms.backend import (
    BillingRules,
    PlatformBackend,
    register_backend,
)


class AWSBackend(PlatformBackend):
    """AWS Lambda + Step Functions."""

    name = "aws"
    variant_prefix = "AWS"

    # -- calibration -----------------------------------------------------------

    def calibration_type(self) -> type:
        from repro.platforms.calibration import AWSCalibration
        return AWSCalibration

    def default_calibration(self) -> Any:
        from repro.platforms.calibration import default_aws_calibration
        return default_aws_calibration()

    def fuzz_calibration_space(self) -> Dict[str, Tuple[Any, ...]]:
        # Admission-control and keep-alive knobs: any combination keeps
        # AWSCalibration.validate() passing (retry cap stays >= the
        # default 0.5 s interval).
        return {
            "concurrency_limit": (5, 50, 1000),
            "burst_concurrency": (5, 100, 1000),
            "refill_per_s": (10.0, 100.0, 500.0),
            "keep_alive_s": (60.0, 600.0),
            "default_memory_mb": (512, 1536, 3008),
            "throttle_retry_max_attempts": (1, 3, 6),
            "throttle_retry_cap_s": (0.5, 8.0),
        }

    # -- stack construction ----------------------------------------------------

    def build(self, testbed: Any, calibration: Any) -> Any:
        from repro.aws import AWSPriceModel  # noqa: F401 - registry sanity
        from repro.aws.lambda_service import LambdaService
        from repro.aws.stepfunctions import StepFunctionsService
        from repro.core.testbed import PlatformStack
        from repro.platforms.billing import BillingMeter
        from repro.storage import BlobStore, TransactionMeter
        from repro.telemetry import Telemetry

        clock = lambda: testbed.env.now  # noqa: E731 - tiny clock closure
        telemetry = Telemetry(clock, enabled=calibration.telemetry_spans)
        billing = BillingMeter(clock)
        meter = TransactionMeter(clock)
        blob = BlobStore(testbed.env, meter, testbed.streams.get("aws.blob"),
                         account="s3")
        stack = PlatformStack(telemetry, billing, meter, blob)
        testbed.lambdas = LambdaService(
            testbed.env, telemetry, billing, testbed.streams,
            calibration=calibration, services={"blob": blob},
            faults=testbed.faults)
        testbed.stepfunctions = StepFunctionsService(
            testbed.env, testbed.lambdas, telemetry, meter,
            faults=testbed.faults)
        return stack

    def price_model(self, calibration: Any) -> Any:
        from repro.aws import AWSPriceModel
        return AWSPriceModel(calibration)

    # -- deploy / invoke -------------------------------------------------------

    def register_function(self, testbed: Any, spec: Any) -> Any:
        return testbed.lambdas.register(spec)

    def invoke_function(self, testbed: Any, name: str,
                        event: Any) -> Generator:
        result = yield from testbed.lambdas.invoke(name, event)
        return result

    def deploy_workflow(self, testbed: Any, workflow: Any) -> str:
        return workflow.deploy_aws(testbed)

    def invoke_workflow(self, testbed: Any, name: str,
                        payload: Any) -> Generator:
        record = yield from testbed.stepfunctions.start_execution(
            name, payload)
        if record.status == "SUCCEEDED":
            return "SUCCEEDED", record.output
        return "FAILED", record.error

    # -- limits ----------------------------------------------------------------

    def payload_limit_bytes(self, calibration: Any) -> int:
        return calibration.payload_limit_bytes

    # -- billing / accounting --------------------------------------------------

    def billing_rules(self, calibration: Any) -> BillingRules:
        # AWS bills configured memory exactly; throttles are rejected
        # before the request charge, so requests == executions.
        return BillingRules(
            granularity_s=calibration.billing_granularity_s)

    def throttle_count(self, testbed: Any) -> int:
        return testbed.lambdas.throttles

    def retry_count(self, testbed: Any) -> int:
        return testbed.stepfunctions.throttle_retries

    # -- cost reporting --------------------------------------------------------

    def cost_breakdown(self, testbed: Any) -> Dict[str, Any]:
        stack = testbed.stack(self.name)
        breakdown = testbed.aws_prices.breakdown(stack.billing, stack.meter)
        return {"gb_s": breakdown.gb_s,
                "compute_cost": breakdown.stateless,
                "transaction_cost": breakdown.stateful,
                "transaction_count": breakdown.transition_count,
                "replay_gb_s": 0.0}

    # -- audit evidence --------------------------------------------------------

    def leak_evidence(self, testbed: Any) -> List[str]:
        evidence: List[str] = []
        lambdas = testbed.lambdas
        if lambdas._in_flight != 0:
            evidence.append(
                f"aws: {lambdas._in_flight} Lambda invocations still "
                "in flight at quiesce")
        busy = sum(1 for containers in lambdas._warm.values()
                   for container in containers if container.busy)
        if busy:
            evidence.append(f"aws: {busy} Lambda containers still busy")
        return evidence

    # -- chaos -----------------------------------------------------------------

    def crash_host(self, testbed: Any) -> Optional[Generator]:
        testbed.lambdas.simulate_host_crash()
        return None


register_backend(AWSBackend())
