"""AWS Lambda runtime simulation.

Lambda provisions execution environments *per concurrent request*: if no
warm container is idle, a new one is started for this request alone —
there is no shared dispatch queue.  That is why AWS fan-outs in the paper
scale almost linearly (Fig 12) while Azure's shared-pool model does not.

Billing follows the paper's description (§IV-A): the *configured* memory
times the execution duration rounded up to 100 ms.
"""

from __future__ import annotations

import dataclasses
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional

from repro.platforms.base import (
    FunctionContext,
    FunctionSpec,
    FunctionTimeout,
    InvocationResult,
    ThrottlingError,
    round_up,
)
from repro.platforms.billing import BillingMeter
from repro.platforms.calibration import AWSCalibration
from repro.sim.kernel import Environment
from repro.sim.rng import RandomStreams
from repro.telemetry import SpanKind, Telemetry


@dataclass
class LambdaContainer:
    """One warm execution environment for a specific function."""

    container_id: int
    function_name: str
    created_at: float
    expires_at: float
    busy: bool = False
    invocations: int = 0


class LambdaService:
    """The Lambda control plane: function registry plus container pools."""

    _container_ids = itertools.count(1)

    def __init__(self, env: Environment, telemetry: Telemetry,
                 billing: BillingMeter, streams: RandomStreams,
                 calibration: Optional[AWSCalibration] = None,
                 services: Optional[Dict[str, Any]] = None,
                 faults: Optional[Any] = None):
        self.env = env
        self.telemetry = telemetry
        self.billing = billing
        self.streams = streams
        self.faults = faults
        self.calibration = calibration or AWSCalibration()
        self.services = dict(services or {})
        self._functions: Dict[str, FunctionSpec] = {}
        self._warm: Dict[str, List[LambdaContainer]] = {}
        self._provisioned: Dict[str, int] = {}
        self._in_flight = 0
        #: requests rejected with a 429 (concurrency or token bucket)
        self.throttles = 0
        # Token-bucket admission state: refilled lazily from elapsed
        # simulated time, so it is a pure function of (calibration, now).
        self._tokens = float(self.calibration.burst_concurrency)
        self._tokens_at = env.now

    # -- registry ---------------------------------------------------------------

    def register(self, spec: FunctionSpec) -> FunctionSpec:
        """Deploy a function; its name becomes invokable."""
        if spec.name in self._functions:
            raise ValueError(f"function {spec.name!r} already registered")
        if spec.memory_mb % 128 != 0:
            raise ValueError(
                f"Lambda memory must be a multiple of 128 MB, "
                f"got {spec.memory_mb}")
        if spec.timeout_s > self.calibration.time_limit_s:
            raise ValueError(
                f"timeout {spec.timeout_s}s exceeds the Lambda limit of "
                f"{self.calibration.time_limit_s}s")
        if (self.faults is not None and self.faults.plan.wraps_handlers
                and self.faults.plan.applies_to(spec.name)):
            spec = dataclasses.replace(
                spec, handler=self.faults.wrap(spec.handler, spec.name))
        self._functions[spec.name] = spec
        self._warm.setdefault(spec.name, [])
        return spec

    def get_function(self, name: str) -> FunctionSpec:
        try:
            return self._functions[name]
        except KeyError:
            raise KeyError(f"no such Lambda function: {name!r}") from None

    def set_provisioned_concurrency(self, name: str, count: int) -> None:
        """Keep ``count`` execution environments permanently warm.

        The AWS answer to cold starts (and the symmetric of Azure's
        premium plan): provisioned environments never expire and never
        pay the cold-start delay — instead the capacity is billed by the
        hour whether or not it runs.
        """
        self.get_function(name)
        if count < 0:
            raise ValueError("count must be non-negative")
        self._provisioned[name] = count
        current = self._warm.setdefault(name, [])
        warm = sum(1 for container in current if not container.busy)
        for _ in range(max(0, count - warm)):
            current.append(LambdaContainer(
                container_id=next(self._container_ids),
                function_name=name, created_at=self.env.now,
                expires_at=float("inf")))

    def provisioned_concurrency(self, name: str) -> int:
        return self._provisioned.get(name, 0)

    def provisioned_monthly_cost(self, hours: float = 730.0) -> float:
        """Fixed monthly bill for all provisioned capacity."""
        total = 0.0
        for name, count in self._provisioned.items():
            spec = self.get_function(name)
            total += (count * spec.memory_gb
                      * self.calibration.provisioned_gb_hour_price * hours)
        return total

    @property
    def function_names(self) -> List[str]:
        return sorted(self._functions)

    def warm_container_count(self, name: str) -> int:
        """Idle warm containers available for ``name`` right now."""
        self._prune(name)
        return sum(1 for container in self._warm.get(name, [])
                   if not container.busy)

    # -- invocation ---------------------------------------------------------------

    def invoke(self, name: str, event: Any,
               parent_span=None) -> Generator:
        """Invoke a function; drive with ``yield from``.

        Returns an :class:`InvocationResult`.  Raises whatever the handler
        raises, or :class:`FunctionTimeout` past the configured limit.
        """
        spec = self.get_function(name)
        rng = self.streams.get(f"aws.lambda.{name}")
        calibration = self.calibration
        self._admit()
        self._in_flight += 1
        try:
            invoked_at = self.env.now
            container, cold = self._claim_container(name)
            cold_duration = 0.0
            # A mitigation layer may interrupt (cancel) this invocation
            # while it waits out the start-up delay; release the claimed
            # container so cancellation cannot leak busy capacity.
            try:
                if cold:
                    cold_duration = calibration.cold_start.sample(rng)
                    span = self.telemetry.start_span(
                        name, SpanKind.COLD_START, parent=parent_span,
                        platform="aws")
                    try:
                        yield self.env.timeout(cold_duration)
                    finally:
                        self.telemetry.end_span(span)
                else:
                    yield self.env.timeout(
                        calibration.warm_start.sample(rng))
            except BaseException:
                self._release_container(container)
                raise

            # Requests are billed when execution starts, not at
            # admission: an invocation cancelled while it waits out the
            # start-up delay never ran, so it must leave no request
            # charge behind (billed requests must equal execution spans).
            self.billing.charge_request(name)
            started_at = self.env.now
            span = self.telemetry.start_span(
                name, SpanKind.EXECUTION, parent=parent_span,
                platform="aws", cold=cold, memory_mb=spec.memory_mb)
            ctx = FunctionContext(
                self.env, spec, rng, services=self.services,
                telemetry=self.telemetry, span=span,
                jitter=calibration.execution_jitter,
                cpu_factor=calibration.cpu_factor(spec.memory_mb))
            try:
                value = yield from self._run_with_timeout(ctx, spec, event)
            finally:
                finished_at = self.env.now
                self.telemetry.end_span(span, duration=finished_at - started_at)
                self._release_container(container)
                raw = finished_at - started_at
                billed = round_up(max(raw, 1e-9),
                                  calibration.billing_granularity_s)
                self.billing.charge_compute(
                    name, raw_duration=raw, billed_duration=billed,
                    memory_mb=spec.memory_mb)

            return InvocationResult(
                value=value, started_at=started_at, finished_at=finished_at,
                cold_start=cold, cold_start_duration=cold_duration,
                queue_wait=started_at - invoked_at - cold_duration,
                billed_gb_s=billed * spec.memory_gb, function_name=name)
        finally:
            self._in_flight -= 1

    # -- admission control ---------------------------------------------------------

    def available_tokens(self) -> float:
        """Current token-bucket level (refilled up to now)."""
        self._refill_tokens()
        return self._tokens

    def _refill_tokens(self) -> None:
        calibration = self.calibration
        elapsed = self.env.now - self._tokens_at
        if elapsed > 0:
            self._tokens = min(
                float(calibration.burst_concurrency),
                self._tokens + elapsed * calibration.refill_per_s)
        self._tokens_at = self.env.now

    def _admit(self) -> None:
        """Token-bucket + concurrency admission; throttled requests are
        rejected with a 429 and are not billed."""
        calibration = self.calibration
        if self._in_flight >= calibration.concurrency_limit:
            self.throttles += 1
            raise ThrottlingError(
                f"concurrent execution limit "
                f"({calibration.concurrency_limit}) exceeded",
                retry_after_s=calibration.throttle_retry_interval_s)
        self._refill_tokens()
        if self._tokens < 1.0:
            self.throttles += 1
            raise ThrottlingError(
                f"request rate exceeded: token bucket empty "
                f"(burst {calibration.burst_concurrency}, refill "
                f"{calibration.refill_per_s}/s) — 429 TooManyRequests",
                retry_after_s=(1.0 - self._tokens)
                / calibration.refill_per_s)
        self._tokens -= 1.0

    # -- internals -----------------------------------------------------------------

    def _run_with_timeout(self, ctx: FunctionContext, spec: FunctionSpec,
                          event: Any) -> Generator:
        handler_process = self.env.process(spec.handler(ctx, event))
        deadline = self.env.timeout(spec.timeout_s)
        race = handler_process | deadline
        try:
            result = yield race
        except BaseException:
            # Interrupted from outside (hedge cancellation, deadline
            # abandonment): reap the orphaned handler so a later failure
            # of it cannot crash the dispatch loop.  The race condition
            # must be defused too: this process no longer waits on it,
            # and the abandoned handler's failure chains into it — an
            # undefused, waiterless condition would crash the run.
            if handler_process.is_alive:
                handler_process.interrupt(cause="abandoned")
            handler_process.defuse()
            race.defuse()
            raise
        if handler_process in result:
            return handler_process.value
        handler_process.interrupt(cause="timeout")
        # The interrupt will surface as the process's failure value; mark
        # it handled so the unwound process cannot crash the simulation.
        handler_process.defuse()
        yield self.env.timeout(0)
        raise FunctionTimeout(
            f"function {spec.name!r} exceeded its {spec.timeout_s}s limit")

    def _claim_container(self, name: str) -> tuple:
        """Return ``(container, cold)`` — reuse warm or provision new."""
        self._prune(name)
        for container in self._warm[name]:
            if not container.busy:
                container.busy = True
                container.invocations += 1
                return container, False
        container = LambdaContainer(
            container_id=next(self._container_ids), function_name=name,
            created_at=self.env.now,
            expires_at=self.env.now + self.calibration.keep_alive_s,
            busy=True, invocations=1)
        self._warm[name].append(container)
        return container, True

    def _release_container(self, container: LambdaContainer) -> None:
        container.busy = False
        if container.expires_at != float("inf"):
            container.expires_at = (self.env.now
                                    + self.calibration.keep_alive_s)

    def simulate_host_crash(self) -> int:
        """Kill every idle warm container (busy ones finish their run).

        Provisioned-concurrency environments are restored by the service,
        so they survive.  Returns how many containers were dropped; the
        next invocations pay cold starts again.
        """
        dropped = 0
        for name, containers in self._warm.items():
            keep = [container for container in containers
                    if container.busy
                    or container.expires_at == float("inf")]
            dropped += len(containers) - len(keep)
            self._warm[name] = keep
        return dropped

    def _prune(self, name: str) -> None:
        now = self.env.now
        self._warm[name] = [
            container for container in self._warm.get(name, [])
            if container.busy or container.expires_at > now]
