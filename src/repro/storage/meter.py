"""Transaction metering for storage services.

Azure bills Durable Functions users for every queue and table transaction
the Durable Task Framework performs — including the constant queue polling
that continues while the application is idle.  The meter records every
operation with enough detail (service, operation, timestamp, byte size)
for the pricing layer to reconstruct both providers' stateful cost
components.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple


@dataclass(frozen=True)
class TransactionRecord:
    """One or more identical billable storage operations.

    ``count`` lets high-frequency periodic traffic (idle queue polling,
    lease heartbeats) be metered in batches without creating one record
    per poll over multi-day simulations.
    """

    time: float
    service: str        # e.g. 'queue', 'table', 'blob'
    account: str        # storage account / namespace
    operation: str      # e.g. 'enqueue', 'poll', 'read', 'insert'
    size: int = 0       # bytes moved, when meaningful
    billable: bool = True
    count: int = 1


class TransactionMeter:
    """Collects :class:`TransactionRecord` entries from storage services.

    A single meter is shared by all the storage services of one platform
    deployment so that cost reports see every transaction in one place.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self._clock = clock or (lambda: 0.0)
        self.records: List[TransactionRecord] = []
        self._settlers: List[Callable[[], None]] = []

    def register_settler(self, settle: Callable[[], None]) -> None:
        """Register a callback that records lazily-accrued transactions.

        Services that batch periodic traffic (idle-poll elision) settle
        their outstanding bill here; every read method calls
        :meth:`settle` first so reports never observe a stale total.
        """
        self._settlers.append(settle)

    def settle(self) -> None:
        """Flush all registered accrual providers into the record list."""
        for settle in self._settlers:
            settle()

    def record(self, service: str, account: str, operation: str,
               size: int = 0, billable: bool = True,
               count: int = 1) -> TransactionRecord:
        """Append ``count`` identical transactions at the current time."""
        if count < 1:
            raise ValueError(f"count must be at least 1, got {count}")
        entry = TransactionRecord(
            time=self._clock(), service=service, account=account,
            operation=operation, size=size, billable=billable, count=count)
        self.records.append(entry)
        return entry

    def count(self, service: Optional[str] = None,
              operation: Optional[str] = None,
              account: Optional[str] = None,
              billable_only: bool = True) -> int:
        """Number of recorded transactions matching the filters."""
        self.settle()
        return sum(entry.count for entry in self.records
                   if (service is None or entry.service == service)
                   and (operation is None or entry.operation == operation)
                   and (account is None or entry.account == account)
                   and (not billable_only or entry.billable))

    def counts_by(self, key: str = "operation",
                  billable_only: bool = True) -> Dict[str, int]:
        """Histogram of transactions grouped by a record field."""
        self.settle()
        histogram: Dict[str, int] = {}
        for entry in self.records:
            if billable_only and not entry.billable:
                continue
            value = getattr(entry, key)
            histogram[value] = histogram.get(value, 0) + entry.count
        return histogram

    def bytes_moved(self, service: Optional[str] = None) -> int:
        """Total payload bytes across matching transactions."""
        self.settle()
        return sum(entry.size * entry.count for entry in self.records
                   if service is None or entry.service == service)

    def between(self, start: float, end: float) -> List[TransactionRecord]:
        """Records with ``start <= time < end``."""
        self.settle()
        return [entry for entry in self.records if start <= entry.time < end]

    def window_counts(self, window: float) -> List[Tuple[float, int]]:
        """Per-window transaction counts — exposes idle-time polling load."""
        if window <= 0:
            raise ValueError("window must be positive")
        self.settle()
        buckets: Dict[int, int] = {}
        for entry in self.records:
            buckets_key = int(entry.time // window)
            buckets[buckets_key] = buckets.get(buckets_key, 0) + entry.count
        return [(index * window, buckets[index]) for index in sorted(buckets)]

    def merge(self, others: Iterable["TransactionMeter"]) -> "TransactionMeter":
        """Return a new meter containing this meter's and others' records."""
        self.settle()
        merged = TransactionMeter(self._clock)
        merged.records = list(self.records)
        for other in others:
            other.settle()
            merged.records.extend(other.records)
        merged.records.sort(key=lambda entry: entry.time)
        return merged

    def reset(self) -> None:
        """Drop all records (used between experiment iterations)."""
        self.records.clear()

    def __len__(self) -> int:
        """Total transaction count (including batched records)."""
        self.settle()
        return sum(entry.count for entry in self.records)

    def __repr__(self) -> str:
        return f"TransactionMeter(records={len(self.records)})"
