"""Cloud storage substrates: blob store, queue, and table.

These model the remote storage services both platforms lean on —
S3 / Azure Blob for large objects, SQS / Azure Storage Queues for
messaging, DynamoDB / Azure Table for key-value state — with simple
latency models and per-operation transaction metering (the raw material
for the paper's "transaction cost" price component).
"""

from repro.storage.payload import Payload, estimate_size
from repro.storage.meter import TransactionMeter, TransactionRecord
from repro.storage.blob import BlobStore, BlobNotFound
from repro.storage.queue import CloudQueue, QueueMessage
from repro.storage.table import (
    TableStore,
    TableEntity,
    EntityNotFound,
    PreconditionFailed,
)

__all__ = [
    "BlobNotFound",
    "BlobStore",
    "CloudQueue",
    "EntityNotFound",
    "Payload",
    "PreconditionFailed",
    "QueueMessage",
    "TableEntity",
    "TableStore",
    "TransactionMeter",
    "TransactionRecord",
    "estimate_size",
]
