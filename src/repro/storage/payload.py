"""Payload modeling: every value that crosses a function boundary has a size.

Both platforms enforce payload-size limits (AWS Step Functions: 256 KB,
Azure Durable cross-function messages: 64 KB) and both charge for data
movement indirectly via execution time.  To make those limits and transfer
times meaningful in simulation, values are wrapped in :class:`Payload`
objects carrying an explicit byte size.

For plain Python/numpy values an estimated serialized size is derived
automatically; workload code can also declare sizes explicitly (e.g. "this
trained model serializes to 5.2 MB") which is how the paper's reported
object sizes are honoured.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable

import numpy as np

KB = 1024
MB = 1024 * 1024
GB = 1024 * 1024 * 1024


def estimate_size(value: Any) -> int:
    """Estimate the serialized size of ``value`` in bytes.

    The estimate approximates a JSON/pickle hybrid: numpy arrays count
    their buffer, containers count their members plus small per-item
    overhead, strings/bytes count their length.  Exact framing overhead is
    irrelevant — limits are triggered by kilobytes, not bytes.
    """
    if value is None:
        return 4
    if isinstance(value, Payload):
        return value.size
    if isinstance(value, bool):
        return 5
    if isinstance(value, (int, float)):
        return 8
    if isinstance(value, str):
        return len(value.encode("utf-8"))
    if isinstance(value, (bytes, bytearray, memoryview)):
        return len(value)
    if isinstance(value, np.ndarray):
        return int(value.nbytes) + 96
    if isinstance(value, np.generic):
        return int(value.nbytes)
    if isinstance(value, dict):
        return sum(
            estimate_size(key) + estimate_size(item) + 2
            for key, item in value.items()) + 2
    if isinstance(value, (list, tuple, set, frozenset)):
        return sum(estimate_size(item) + 1 for item in value) + 2
    size_hint = getattr(value, "payload_size", None)
    if size_hint is not None:
        return int(size_hint)
    # Fall back to a conservative flat charge for opaque objects.
    return 256


class Payload:
    """A value plus its serialized size in bytes.

    >>> Payload({'a': 1}).size > 0
    True
    >>> Payload('x' * 1000, size=5000).size
    5000
    """

    __slots__ = ("value", "size")

    def __init__(self, value: Any, size: int | None = None):
        self.value = value
        self.size = int(size) if size is not None else estimate_size(value)
        if self.size < 0:
            raise ValueError(f"negative payload size: {self.size}")

    @classmethod
    def wrap(cls, value: Any) -> "Payload":
        """Return ``value`` unchanged if already a payload, else wrap it."""
        if isinstance(value, Payload):
            return value
        return cls(value)

    def __repr__(self) -> str:
        return f"Payload(size={self.size}, value={type(self.value).__name__})"


class SizedObject:
    """Mixin for domain objects with a declared serialized size.

    Workload artifacts (trained models, encoders, video chunks) subclass or
    compose this so :func:`estimate_size` honours the size the paper
    reports rather than the in-memory numpy footprint.
    """

    def __init__(self, payload_size: int):
        self.payload_size = int(payload_size)


def total_size(values: Iterable[Any]) -> int:
    """Sum of estimated sizes over ``values``."""
    return sum(estimate_size(value) for value in values)


def human_size(size: int) -> str:
    """Render a byte count for reports: ``human_size(5452595) == '5.2MB'``."""
    if size >= GB:
        return f"{size / GB:.1f}GB"
    if size >= MB:
        return f"{size / MB:.1f}MB"
    if size >= KB:
        return f"{size / KB:.1f}KB"
    return f"{size}B"
