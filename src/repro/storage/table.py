"""Table (key-value) storage — the Azure Table / DynamoDB stand-in.

Tables hold the Durable Task Framework's *history table* (the event-source
log for orchestrations) and the persisted state of durable entities.
Entities are addressed by ``(partition_key, row_key)``; every read, insert,
update and range query is a billable transaction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Tuple

import numpy as np

from repro.sim.kernel import Environment
from repro.storage.latency import StorageLatencyModel, default_table_latency
from repro.storage.meter import TransactionMeter
from repro.storage.payload import Payload


class EntityNotFound(KeyError):
    """Raised when reading a row that does not exist."""


class PreconditionFailed(RuntimeError):
    """A conditional update lost the optimistic-concurrency race.

    Mirrors HTTP 412 from Azure Table storage / DynamoDB's conditional
    check failure: the caller's ``if_match`` etag no longer matches the
    stored row.
    """

    def __init__(self, key: Tuple[str, str], expected: int,
                 actual: Optional[int]):
        self.key = key
        self.expected = expected
        self.actual = actual
        super().__init__(
            f"etag mismatch on {key}: if_match={expected}, stored={actual}")


@dataclass
class TableEntity:
    """One table row."""

    partition_key: str
    row_key: str
    payload: Payload
    etag: int = 0

    @property
    def value(self) -> Any:
        return self.payload.value

    @property
    def size(self) -> int:
        return self.payload.size


class TableStore:
    """A partitioned key-value table with latency and metering."""

    def __init__(self, env: Environment, meter: TransactionMeter,
                 rng: np.random.Generator, name: str = "table",
                 account: str = "storage",
                 latency: Optional[StorageLatencyModel] = None):
        self.env = env
        self.meter = meter
        self.rng = rng
        self.name = name
        self.account = account
        self.latency = latency or default_table_latency()
        self._rows: Dict[Tuple[str, str], TableEntity] = {}

    def __len__(self) -> int:
        return len(self._rows)

    # -- synchronous inspection helpers --------------------------------------

    def contains(self, partition_key: str, row_key: str) -> bool:
        """True if the row exists (no transaction recorded)."""
        return (partition_key, row_key) in self._rows

    def partition_size(self, partition_key: str) -> int:
        """Number of rows in a partition (inspection only)."""
        return sum(1 for pk, _ in self._rows if pk == partition_key)

    # -- simulated operations -------------------------------------------------

    def insert(self, partition_key: str, row_key: str, value: Any,
               size: Optional[int] = None) -> Generator:
        """Insert or replace a row; yields for the round trip."""
        payload = Payload(value, size) if size is not None else Payload.wrap(value)
        duration = self.latency.operation_time(self.rng, payload.size)
        yield self.env.timeout(duration)
        key = (partition_key, row_key)
        etag = self._rows[key].etag + 1 if key in self._rows else 0
        self._rows[key] = TableEntity(partition_key, row_key, payload, etag)
        self.meter.record("table", self.account, "insert", size=payload.size)
        return etag

    def update(self, partition_key: str, row_key: str, value: Any,
               if_match: int, size: Optional[int] = None) -> Generator:
        """Replace a row only if its etag still equals ``if_match``.

        Returns the new etag on success; raises
        :class:`PreconditionFailed` when another writer got there first
        (the round trip is still billed, as on the real service) and
        :class:`EntityNotFound` when the row has vanished.
        """
        payload = Payload(value, size) if size is not None else Payload.wrap(value)
        duration = self.latency.operation_time(self.rng, payload.size)
        yield self.env.timeout(duration)
        key = (partition_key, row_key)
        entity = self._rows.get(key)
        self.meter.record("table", self.account, "update", size=payload.size)
        if entity is None:
            raise EntityNotFound(key)
        if entity.etag != if_match:
            raise PreconditionFailed(key, if_match, entity.etag)
        etag = entity.etag + 1
        self._rows[key] = TableEntity(partition_key, row_key, payload, etag)
        return etag

    def read(self, partition_key: str, row_key: str) -> Generator:
        """Read one row's value; yields for the round trip."""
        key = (partition_key, row_key)
        if key not in self._rows:
            duration = self.latency.operation_time(self.rng, 0)
            yield self.env.timeout(duration)
            self.meter.record("table", self.account, "read", size=0)
            raise EntityNotFound(key)
        entity = self._rows[key]
        duration = self.latency.operation_time(self.rng, entity.size)
        yield self.env.timeout(duration)
        self.meter.record("table", self.account, "read", size=entity.size)
        return entity.value

    def read_partition(self, partition_key: str) -> Generator:
        """Read a whole partition in row-key order (the history replay path)."""
        rows = sorted(
            (entity for (pk, _), entity in self._rows.items()
             if pk == partition_key),
            key=lambda entity: entity.row_key)
        size = sum(entity.size for entity in rows)
        duration = self.latency.operation_time(self.rng, size)
        yield self.env.timeout(duration)
        self.meter.record("table", self.account, "query", size=size)
        return [entity.value for entity in rows]

    def delete(self, partition_key: str, row_key: str) -> Generator:
        """Delete one row (idempotent)."""
        duration = self.latency.operation_time(self.rng, 0)
        yield self.env.timeout(duration)
        self._rows.pop((partition_key, row_key), None)
        self.meter.record("table", self.account, "delete")
        return None

    def delete_partition(self, partition_key: str) -> Generator:
        """Delete a whole partition (end-of-orchestration cleanup)."""
        duration = self.latency.operation_time(self.rng, 0)
        yield self.env.timeout(duration)
        keys = [key for key in self._rows if key[0] == partition_key]
        for key in keys:
            del self._rows[key]
        self.meter.record("table", self.account, "delete")
        return len(keys)

    def __repr__(self) -> str:
        return f"TableStore(name={self.name!r}, rows={len(self._rows)})"
