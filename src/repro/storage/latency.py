"""Latency models for storage services.

A storage operation's duration = per-operation base latency (drawn from a
distribution) + transfer time for the bytes moved at the service's
effective bandwidth.  Defaults approximate public measurements of
S3/Azure Blob small-object latency and sustained throughput; they are
deliberately simple — the paper's conclusions hinge on *relative* costs
(remote storage ≫ direct entity access) rather than exact milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.distributions import Distribution, LogNormal


@dataclass
class StorageLatencyModel:
    """Latency model: ``base + bytes / bandwidth``."""

    base: Distribution
    bandwidth_bytes_per_s: float = 100e6  # ~100 MB/s sustained

    def operation_time(self, rng: np.random.Generator, size: int = 0) -> float:
        """Duration in seconds for one operation moving ``size`` bytes."""
        transfer = size / self.bandwidth_bytes_per_s if size else 0.0
        return max(0.0, self.base.sample(rng)) + transfer


def default_blob_latency() -> StorageLatencyModel:
    """Object storage: ~20 ms median first-byte, heavy-ish tail."""
    return StorageLatencyModel(base=LogNormal(median=0.020, sigma=0.45),
                               bandwidth_bytes_per_s=90e6)


def default_queue_latency() -> StorageLatencyModel:
    """Storage queue ops: ~8 ms median per REST call."""
    return StorageLatencyModel(base=LogNormal(median=0.008, sigma=0.35),
                               bandwidth_bytes_per_s=60e6)


def default_table_latency() -> StorageLatencyModel:
    """Table store ops: ~10 ms median per entity operation."""
    return StorageLatencyModel(base=LogNormal(median=0.010, sigma=0.40),
                               bandwidth_bytes_per_s=60e6)
