"""Cloud message queue — the Azure Storage Queue / SQS stand-in.

Queues are *poll-based*: consumers issue receive transactions whether or
not a message is waiting, and every poll is billable.  This is the
mechanism behind the paper's observation that Azure Durable Functions
charge for idle periods — the Durable Task Framework keeps polling its
control and work-item queues while orchestrations sit idle.

Polling uses an exponential backoff between ``min_poll_interval`` and
``max_poll_interval``, mirroring the Durable Task Framework's adaptive
polling ("the queue polling rate is adjusted based on the function
activity", §V-A of the paper).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Generator, List, Optional

import numpy as np

from repro.sim.kernel import Environment
from repro.storage.latency import StorageLatencyModel, default_queue_latency
from repro.storage.meter import TransactionMeter
from repro.storage.payload import KB, Payload


class MessageTooLarge(ValueError):
    """Raised when a message exceeds the queue's payload limit."""


class _IdleAccrual:
    """Backoff bookkeeping for one elided (blocking) receive wait.

    Tracks where the sampled sleep/poll/double cycle *would* be: the
    absolute time of the next would-be poll and the interval it would
    sleep afterwards.  ``advance`` rolls the cycle forward to ``now``
    and returns how many empty polls it passed — the bill the consumer
    owes for the wait.  Poll service times are ignored — milliseconds
    against intervals of 0.1-30 s — so the count can run a poll or so
    ahead of a sampled loop over long windows; the *rate* (and hence
    the bill) is the same.
    """

    __slots__ = ("due", "interval")

    def __init__(self, now: float, interval: float):
        self.due = now + interval
        self.interval = interval

    def advance(self, now: float, max_interval: float) -> int:
        count = 0
        due = self.due
        interval = self.interval
        while due <= now:
            count += 1
            interval = min(interval * 2.0, max_interval)
            due += interval
        self.due = due
        self.interval = interval
        return count


class QueueFullError(RuntimeError):
    """A non-blocking enqueue hit the queue's ``max_depth`` bound."""


@dataclass
class QueueMessage:
    """A message plus its delivery metadata."""

    message_id: int
    payload: Payload
    enqueued_at: float
    dequeue_count: int = 0
    visible_at: float = 0.0

    @property
    def value(self) -> Any:
        return self.payload.value

    @property
    def size(self) -> int:
        return self.payload.size


class CloudQueue:
    """A poll-based FIFO queue with visibility timeouts and metering."""

    _ids = itertools.count(1)

    def __init__(self, env: Environment, meter: TransactionMeter,
                 rng: np.random.Generator, name: str = "queue",
                 account: str = "storage",
                 latency: Optional[StorageLatencyModel] = None,
                 max_message_size: int = 256 * KB,
                 visibility_timeout: float = 30.0,
                 min_poll_interval: float = 0.05,
                 max_poll_interval: float = 30.0,
                 max_depth: Optional[int] = None,
                 faults: Optional[Any] = None,
                 idle_poll_elision: bool = False):
        if max_depth is not None and max_depth <= 0:
            raise ValueError("max_depth must be positive when set")
        self.env = env
        self.meter = meter
        self.rng = rng
        self.name = name
        self.account = account
        self.faults = faults
        self.latency = latency or default_queue_latency()
        self.max_message_size = max_message_size
        self.visibility_timeout = visibility_timeout
        self.min_poll_interval = min_poll_interval
        self.max_poll_interval = max_poll_interval
        self.max_depth = max_depth
        self.idle_poll_elision = idle_poll_elision
        self._idle_accruals: List[_IdleAccrual] = []
        self._messages: List[QueueMessage] = []
        self._waiters: List[Any] = []
        self._space_waiters: List[Any] = []
        # An audit layer installed as the environment monitor can watch
        # message lifecycles; queues created after the auditor attaches
        # (deployment-time chains) self-register here.
        register = getattr(getattr(env, "monitor", None),
                           "register_queue", None)
        self._observer = register(self) if register is not None else None
        # Cost readers settle elided idle polls before reporting, so
        # bills stay current even while consumers are parked.
        settle = getattr(meter, "register_settler", None)
        if settle is not None:
            settle(self.settle_idle_polls)

    def __len__(self) -> int:
        """Approximate queue depth (visible messages only)."""
        now = self.env.now
        return sum(1 for message in self._messages if message.visible_at <= now)

    # -- simulated operations ----------------------------------------------

    def enqueue(self, value: Any, size: Optional[int] = None,
                block: bool = True) -> Generator:
        """Append a message; yields for the REST round trip.

        When the queue has a ``max_depth`` bound and is full, a blocking
        enqueue waits for a delete to free space (storage backpressure:
        producers slow to the consumers' pace); ``block=False`` raises
        :class:`QueueFullError` instead — the trigger-style 429 path.
        The bound counts all stored messages, visible or not, and is
        approximate under simultaneous producers (like the real service).
        """
        payload = Payload(value, size) if size is not None else Payload.wrap(value)
        if payload.size > self.max_message_size:
            raise MessageTooLarge(
                f"message of {payload.size} bytes exceeds the "
                f"{self.max_message_size}-byte limit of queue {self.name!r}")
        while (self.max_depth is not None
               and len(self._messages) >= self.max_depth):
            if not block:
                raise QueueFullError(
                    f"queue {self.name!r} is at its depth bound "
                    f"({self.max_depth} messages)")
            space = self.env.event()
            self._space_waiters.append(space)
            yield space
        duration = self.latency.operation_time(self.rng, payload.size)
        yield self.env.timeout(duration)
        message = QueueMessage(
            message_id=next(self._ids), payload=payload,
            enqueued_at=self.env.now)
        self._messages.append(message)
        if self._observer is not None:
            self._observer.note_enqueue(message, duplicate=False)
        if self.faults is not None:
            # At-least-once delivery faults: the message may surface late
            # and/or twice — or, during a partition window, not at all.
            # The duplicate is the broker's doing, not a client call, so
            # it is not metered as a second enqueue.
            chaos = getattr(self.faults, "draw_message_chaos", None)
            if chaos is not None:
                delay, duplicate, dropped = chaos(self.name, self.env.now)
            else:
                delay, duplicate = self.faults.draw_queue_faults(self.name)
                dropped = False
            if dropped:
                # Partition drop: the enqueue call already succeeded and
                # is metered below; the broker silently loses the body.
                self._messages.remove(message)
                if self._observer is not None:
                    note_drop = getattr(self._observer, "note_drop", None)
                    if note_drop is not None:
                        note_drop(message)
            if delay > 0:
                message.visible_at = self.env.now + delay
            if duplicate and not dropped:
                twin = QueueMessage(
                    message_id=next(self._ids), payload=payload,
                    enqueued_at=self.env.now,
                    visible_at=message.visible_at)
                self._messages.append(twin)
                if self._observer is not None:
                    self._observer.note_enqueue(twin, duplicate=True)
        self.meter.record("queue", self.account, "enqueue", size=payload.size)
        # Cut short the backoff sleep of any waiting receiver: an active
        # consumer dispatches in sub-second time (the paper measures
        # durable queue hops at "often less than 1 second") while idle
        # polling — and its transaction bill — continues unchanged.
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            if not waiter.triggered:
                waiter.succeed()
        return message.message_id

    def poll(self) -> Generator:
        """One receive attempt.  Returns a message or ``None``.

        Every attempt — empty or not — is a billable transaction, which is
        exactly how storage queues are priced.
        """
        duration = self.latency.operation_time(self.rng, 0)
        yield self.env.timeout(duration)
        message = self._next_visible()
        if message is None:
            self.meter.record("queue", self.account, "poll", size=0)
            return None
        message.dequeue_count += 1
        message.visible_at = self.env.now + self.visibility_timeout
        if self._observer is not None:
            self._observer.note_dequeue(message)
        self.meter.record("queue", self.account, "poll", size=message.size)
        return message

    def receive(self, deadline: Optional[float] = None) -> Generator:
        """Poll with exponential backoff until a message arrives.

        Returns the message, or ``None`` if ``deadline`` (absolute
        simulated time) passes first.  Each poll is metered, so an idle
        consumer accrues transaction cost proportional to idle time.

        With ``idle_poll_elision`` enabled and the queue *provably*
        empty — no stored messages at all, no fault plan that could
        delay or duplicate deliveries, no depth bound that could park
        producers — the backoff loop is replaced by a blocking wait on
        the enqueue wakeup: the polls that sampling would have issued
        are reconstructed arithmetically and metered in one batched
        record (the bill is the paper's point; the simulator events are
        not).  Any condition that makes poll timing observable falls
        back to honest sampled polling.
        """
        interval = self.min_poll_interval
        while True:
            message = yield from self.poll()
            if message is not None:
                return message
            if deadline is not None and self.env.now >= deadline:
                return None
            if (self.idle_poll_elision and not self._messages
                    and self.faults is None and self.max_depth is None):
                interval = yield from self._idle_wait(interval, deadline)
                continue
            wait = interval
            if deadline is not None:
                wait = min(wait, max(0.0, deadline - self.env.now))
            wakeup = self.env.event()
            self._waiters.append(wakeup)
            yield self.env.timeout(wait) | wakeup
            if wakeup in self._waiters:
                self._waiters.remove(wakeup)
            interval = min(interval * 2.0, self.max_poll_interval)

    #: Elided idle waits also settle their accrued poll bill on a timer
    #: at least this many backoff periods apart, bounding how stale the
    #: meter's *timestamps* can get (totals are always exact — cost
    #: readers settle on demand via the meter's settler hook).
    SETTLE_PERIODS = 64.0

    def settle_idle_polls(self) -> None:
        """Bill the empty polls every parked consumer has accrued so far.

        Called on a coarse timer from within elided waits and by the
        meter before any cost read, so elision changes when poll
        transactions are *recorded*, never how many are billed.
        """
        total = 0
        now = self.env.now
        for accrual in self._idle_accruals:
            total += accrual.advance(now, self.max_poll_interval)
        if total:
            self.meter.record("queue", self.account, "poll", size=0,
                              count=total)

    def _idle_wait(self, interval: float,
                   deadline: Optional[float]) -> Generator:
        """Block until an enqueue wakeup instead of sampling an empty
        queue; returns the backoff interval sampling would have reached.

        The wait costs a handful of kernel events per settlement window
        instead of several per backoff period, which is what lets long
        idle campaigns simulate in seconds.
        """
        settle = self.max_poll_interval * self.SETTLE_PERIODS
        accrual = _IdleAccrual(self.env.now, interval)
        self._idle_accruals.append(accrual)
        try:
            while True:
                wait = settle
                if deadline is not None:
                    wait = min(wait, max(0.0, deadline - self.env.now))
                wakeup = self.env.event()
                self._waiters.append(wakeup)
                yield self.env.timeout(wait) | wakeup
                if wakeup in self._waiters:
                    self._waiters.remove(wakeup)
                self.settle_idle_polls()
                if wakeup.triggered or (deadline is not None
                                        and self.env.now >= deadline):
                    # Let the caller's loop issue the next *real* poll.
                    return accrual.interval
        finally:
            self._idle_accruals.remove(accrual)

    def delete(self, message: QueueMessage) -> Generator:
        """Acknowledge (remove) a received message."""
        duration = self.latency.operation_time(self.rng, 0)
        yield self.env.timeout(duration)
        try:
            self._messages.remove(message)
        except ValueError:
            pass
        else:
            if self._observer is not None:
                self._observer.note_delete(message)
            # A slot freed under the depth bound: wake blocked producers.
            waiters, self._space_waiters = self._space_waiters, []
            for waiter in waiters:
                if not waiter.triggered:
                    waiter.succeed()
        self.meter.record("queue", self.account, "delete")
        return None

    # -- internals -----------------------------------------------------------

    def _next_visible(self) -> Optional[QueueMessage]:
        now = self.env.now
        for message in self._messages:
            if message.visible_at <= now:
                return message
        return None

    def __repr__(self) -> str:
        return f"CloudQueue(name={self.name!r}, depth={len(self._messages)})"
