"""Blob (object) storage — the S3 / Azure Blob stand-in.

Workflows use blob storage for payloads that exceed the platform's
cross-function payload limit (dataframes, video files) and for artifacts
such as pre-trained models.  Every operation takes simulated time and is
metered as a billable transaction.

All operations are generator methods intended to be driven with
``yield from`` inside a simulation process::

    def handler(env, blob):
        model = yield from blob.get('models/best.bin')
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional

import numpy as np

from repro.sim.kernel import Environment
from repro.storage.latency import StorageLatencyModel, default_blob_latency
from repro.storage.meter import TransactionMeter
from repro.storage.payload import Payload


class BlobNotFound(KeyError):
    """Raised when getting a key that has never been put."""


class BlobStore:
    """A flat-namespace object store with latency and metering."""

    def __init__(self, env: Environment, meter: TransactionMeter,
                 rng: np.random.Generator, account: str = "blob",
                 latency: Optional[StorageLatencyModel] = None):
        self.env = env
        self.meter = meter
        self.rng = rng
        self.account = account
        self.latency = latency or default_blob_latency()
        self._objects: Dict[str, Payload] = {}

    # -- synchronous inspection helpers (no simulated time) ----------------

    def exists(self, key: str) -> bool:
        """True if ``key`` holds an object (no transaction recorded)."""
        return key in self._objects

    def size_of(self, key: str) -> int:
        """Stored size of ``key`` in bytes."""
        try:
            return self._objects[key].size
        except KeyError:
            raise BlobNotFound(key) from None

    def keys(self) -> List[str]:
        """All stored keys (inspection only)."""
        return sorted(self._objects)

    # -- simulated operations ----------------------------------------------

    def put(self, key: str, value: Any,
            size: Optional[int] = None) -> Generator:
        """Store ``value`` under ``key``; yields for upload latency."""
        payload = Payload(value, size) if size is not None else Payload.wrap(value)
        duration = self.latency.operation_time(self.rng, payload.size)
        yield self.env.timeout(duration)
        self._objects[key] = payload
        self.meter.record("blob", self.account, "put", size=payload.size)
        return payload.size

    def get(self, key: str) -> Generator:
        """Fetch the object under ``key``; yields for download latency."""
        if key not in self._objects:
            # The lookup itself still costs a round trip.
            duration = self.latency.operation_time(self.rng, 0)
            yield self.env.timeout(duration)
            self.meter.record("blob", self.account, "get", size=0)
            raise BlobNotFound(key)
        payload = self._objects[key]
        duration = self.latency.operation_time(self.rng, payload.size)
        yield self.env.timeout(duration)
        self.meter.record("blob", self.account, "get", size=payload.size)
        return payload.value

    def delete(self, key: str) -> Generator:
        """Remove ``key`` (idempotent); yields for the round trip."""
        duration = self.latency.operation_time(self.rng, 0)
        yield self.env.timeout(duration)
        self._objects.pop(key, None)
        self.meter.record("blob", self.account, "delete")
        return None

    def list_prefix(self, prefix: str) -> Generator:
        """List keys with ``prefix``; yields for the listing round trip."""
        duration = self.latency.operation_time(self.rng, 0)
        yield self.env.timeout(duration)
        matches = sorted(key for key in self._objects if key.startswith(prefix))
        self.meter.record("blob", self.account, "list")
        return matches

    def __repr__(self) -> str:
        return f"BlobStore(account={self.account!r}, objects={len(self._objects)})"
