"""Content-addressed on-disk cache for completed campaign results.

Every campaign is a deterministic function of its
:class:`~repro.core.parallel.CampaignSpec` and of the calibration
constants compiled into the package, so a completed campaign never needs
re-simulating: the CLI and the figure benchmarks key results by
``(spec hash, calibration hash, package version)`` and reuse them across
invocations.

Cache location, in precedence order:

1. an explicit ``root`` argument,
2. the ``REPRO_CACHE_DIR`` environment variable,
3. ``~/.cache/repro/campaigns``.

Invalidation is automatic — editing a calibration default, bumping the
package version, or changing any spec field changes the key — but the
cache can always be dropped wholesale with :meth:`ResultCache.clear` or
``rm -rf`` on the directory.

Durability: every write goes to a unique temporary file first and is
published with an atomic ``os.replace``, so a crash (or two processes
racing on the same key) can never leave a half-written document behind
the final name.  Every document carries a content checksum of its
outcome payload; a read that fails the checksum — a truncated entry, a
flipped bit — quarantines the file (``quarantine/`` next to the
entries) and reports a miss, so the caller recomputes instead of
crashing on garbage.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro import __version__
from repro.core.parallel import CampaignOutcome, CampaignSpec
from repro.core.persistence import (
    outcome_from_dict,
    outcome_to_dict,
    payload_checksum,
)

#: bumped to 2 when the document grew a checksummed ``outcome`` payload
FORMAT_VERSION = 2
ENV_VAR = "REPRO_CACHE_DIR"


def write_atomic(path: Path, text: str) -> Path:
    """Write ``text`` to ``path`` via a unique tmp file + ``os.replace``.

    The temporary name embeds the pid so concurrent writers (parallel
    sweeps sharing one cache) never clobber each other's staging file;
    the final rename is atomic on POSIX and Windows alike.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    temporary = path.parent / f".{path.name}.{os.getpid()}.tmp"
    try:
        temporary.write_text(text)
        temporary.replace(path)
    finally:
        if temporary.exists():
            try:
                temporary.unlink()
            except OSError:
                pass
    return path


def quarantine(path: Path,
               target_dir: Optional[Path] = None) -> Optional[Path]:
    """Move a corrupted document aside (``quarantine/`` sibling dir).

    Returns the quarantined path, or ``None`` when the file vanished or
    could not be moved (in which case it is best-effort deleted so the
    recompute can overwrite it).
    """
    if target_dir is None:
        target_dir = path.parent / "quarantine"
    try:
        target_dir.mkdir(parents=True, exist_ok=True)
        target = target_dir / f"{path.name}.corrupt"
        path.replace(target)
        return target
    except OSError:
        try:
            path.unlink()
        except OSError:
            pass
        return None


def default_cache_dir() -> Path:
    """The cache root this process would use (env override honoured)."""
    override = os.environ.get(ENV_VAR)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro" / "campaigns"


def cache_key(spec: CampaignSpec) -> str:
    """``sha256(spec hash, calibration hash, package version)``."""
    blob = json.dumps({
        "spec": spec.spec_hash(),
        "calibration": spec.calibration_hash(),
        "version": __version__,
    }, sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()


class ResultCache:
    """Stores one JSON document per completed campaign spec."""

    def __init__(self, root: Optional[Union[str, Path]] = None):
        self.root = Path(root) if root is not None else default_cache_dir()

    def path_for(self, spec: CampaignSpec) -> Path:
        return self.root / f"{cache_key(spec)}.json"

    def get(self, spec: CampaignSpec) -> Optional[CampaignOutcome]:
        """The cached outcome for ``spec``, or ``None`` on a miss.

        Unreadable or structurally stale documents count as misses.  A
        document whose content checksum does not match its outcome
        payload (truncated write, disk corruption) is quarantined and
        also reported as a miss — the caller recomputes and overwrites.
        """
        path = self.path_for(spec)
        try:
            raw = path.read_text()
        except OSError:
            return None
        try:
            document = json.loads(raw)
            if document.get("format_version") != FORMAT_VERSION:
                return None
            payload = document["outcome"]
            if document.get("checksum") != payload_checksum(payload):
                raise ValueError("checksum mismatch")
            outcome = outcome_from_dict(payload, spec)
            outcome.cached = True
            return outcome
        except (KeyError, TypeError, ValueError):
            quarantine(path)
            return None

    def put(self, spec: CampaignSpec, outcome: CampaignOutcome) -> Path:
        """Persist ``outcome`` under ``spec``'s key; returns the path.

        The write is atomic (unique tmp file + ``os.replace``) and the
        stored document carries a checksum of the outcome payload, so a
        crash mid-write can never poison a later read.
        """
        path = self.path_for(spec)
        payload = outcome_to_dict(outcome)
        document: Dict[str, Any] = {
            "format_version": FORMAT_VERSION,
            "kind": "campaign-cache",
            "package_version": __version__,
            "spec": spec.canonical(),
            "checksum": payload_checksum(payload),
            "outcome": payload,
        }
        return write_atomic(path, json.dumps(document, default=repr))

    def clear(self) -> int:
        """Delete every cached document; returns how many were removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                path.unlink()
                removed += 1
        return removed

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.json"))

    def __repr__(self) -> str:
        return f"ResultCache(root={str(self.root)!r}, entries={len(self)})"
