"""Content-addressed on-disk cache for completed campaign results.

Every campaign is a deterministic function of its
:class:`~repro.core.parallel.CampaignSpec` and of the calibration
constants compiled into the package, so a completed campaign never needs
re-simulating: the CLI and the figure benchmarks key results by
``(spec hash, calibration hash, package version)`` and reuse them across
invocations.

Cache location, in precedence order:

1. an explicit ``root`` argument,
2. the ``REPRO_CACHE_DIR`` environment variable,
3. ``~/.cache/repro/campaigns``.

Invalidation is automatic — editing a calibration default, bumping the
package version, or changing any spec field changes the key — but the
cache can always be dropped wholesale with :meth:`ResultCache.clear` or
``rm -rf`` on the directory.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro import __version__
from repro.core.parallel import CampaignOutcome, CampaignSpec
from repro.core.persistence import (
    audit_from_dict,
    audit_to_dict,
    campaign_from_dict,
    campaign_to_dict,
    cost_report_from_dict,
    cost_report_to_dict,
    overload_from_dict,
    overload_to_dict,
    reliability_from_dict,
    reliability_to_dict,
    resilience_from_dict,
    resilience_to_dict,
)

FORMAT_VERSION = 1
ENV_VAR = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """The cache root this process would use (env override honoured)."""
    override = os.environ.get(ENV_VAR)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro" / "campaigns"


def cache_key(spec: CampaignSpec) -> str:
    """``sha256(spec hash, calibration hash, package version)``."""
    blob = json.dumps({
        "spec": spec.spec_hash(),
        "calibration": spec.calibration_hash(),
        "version": __version__,
    }, sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()


class ResultCache:
    """Stores one JSON document per completed campaign spec."""

    def __init__(self, root: Optional[Union[str, Path]] = None):
        self.root = Path(root) if root is not None else default_cache_dir()

    def path_for(self, spec: CampaignSpec) -> Path:
        return self.root / f"{cache_key(spec)}.json"

    def get(self, spec: CampaignSpec) -> Optional[CampaignOutcome]:
        """The cached outcome for ``spec``, or ``None`` on a miss.

        Unreadable or structurally stale documents count as misses —
        the caller will recompute and overwrite them.
        """
        path = self.path_for(spec)
        try:
            document = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        try:
            if document.get("format_version") != FORMAT_VERSION:
                return None
            reliability = document.get("reliability")
            overload = document.get("overload")
            resilience = document.get("resilience")
            audit = document.get("audit")
            return CampaignOutcome(
                spec=spec,
                campaign=campaign_from_dict(document["campaign"]),
                cost=cost_report_from_dict(document["cost"]),
                idle_transactions=document.get("idle_transactions", 0),
                reliability=(reliability_from_dict(reliability)
                             if reliability else None),
                overload=(overload_from_dict(overload)
                          if overload else None),
                resilience=(resilience_from_dict(resilience)
                            if resilience else None),
                audit=audit_from_dict(audit) if audit else None,
                cached=True)
        except (KeyError, TypeError, ValueError):
            return None

    def put(self, spec: CampaignSpec, outcome: CampaignOutcome) -> Path:
        """Persist ``outcome`` under ``spec``'s key; returns the path.

        Note that exotic per-run values (anything JSON cannot carry) are
        stored as their ``repr`` — latencies, delays, breakdowns and
        cost meters round-trip exactly.
        """
        path = self.path_for(spec)
        document: Dict[str, Any] = {
            "format_version": FORMAT_VERSION,
            "kind": "campaign-cache",
            "package_version": __version__,
            "spec": spec.canonical(),
            "campaign": campaign_to_dict(outcome.campaign),
            "cost": cost_report_to_dict(outcome.cost),
            "idle_transactions": outcome.idle_transactions,
            "reliability": (reliability_to_dict(outcome.reliability)
                            if outcome.reliability is not None else None),
            "overload": (overload_to_dict(outcome.overload)
                         if outcome.overload is not None else None),
            "resilience": (resilience_to_dict(outcome.resilience)
                           if outcome.resilience is not None else None),
            "audit": (audit_to_dict(outcome.audit)
                      if outcome.audit is not None else None),
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        temporary = path.with_suffix(".tmp")
        temporary.write_text(json.dumps(document, default=repr))
        temporary.replace(path)
        return path

    def clear(self) -> int:
        """Delete every cached document; returns how many were removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                path.unlink()
                removed += 1
        return removed

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.json"))

    def __repr__(self) -> str:
        return f"ResultCache(root={str(self.root)!r}, entries={len(self)})"
