"""Parameter sweeps: sensitivity analysis over calibration constants.

The reproduction's claims are shapes, and shapes should be robust to the
calibration constants around them.  A :class:`CalibrationSweep` reruns a
measurement under a grid of calibration overrides and tabulates the
metric, making "how sensitive is Fig 12 to the scale interval?" a
three-line question.

Example
-------
>>> from repro.core.sweep import CalibrationSweep
>>> sweep = CalibrationSweep(platform="azure",
...                          parameter="scale_interval_s",
...                          values=[5.0, 10.0, 20.0])
>>> len(sweep.points())
3
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.core.testbed import Testbed
from repro.platforms.calibration import (
    default_aws_calibration,
    default_azure_calibration,
)


@dataclass
class SweepPoint:
    """One grid point: the overrides applied and the measured value."""

    overrides: Dict[str, Any]
    value: Any = None


class CalibrationSweep:
    """A one-parameter sweep over a platform calibration constant."""

    def __init__(self, platform: str, parameter: str,
                 values: Sequence[Any], seed: int = 0):
        if platform not in ("aws", "azure"):
            raise ValueError("platform must be 'aws' or 'azure'")
        if not values:
            raise ValueError("sweep needs at least one value")
        template = (default_aws_calibration() if platform == "aws"
                    else default_azure_calibration())
        if not hasattr(template, parameter):
            raise AttributeError(
                f"{type(template).__name__} has no field {parameter!r}")
        self.platform = platform
        self.parameter = parameter
        self.values = list(values)
        self.seed = seed

    def points(self) -> List[SweepPoint]:
        return [SweepPoint(overrides={self.parameter: value})
                for value in self.values]

    def run(self, measure: Callable[[Testbed], Any]) -> List[SweepPoint]:
        """Evaluate ``measure`` on a fresh testbed per grid point.

        ``measure`` receives a testbed whose calibration carries the
        point's override and returns the metric to record.
        """
        results = []
        for point in self.points():
            aws = default_aws_calibration()
            azure = default_azure_calibration()
            target = aws if self.platform == "aws" else azure
            for key, value in point.overrides.items():
                setattr(target, key, value)
            testbed = Testbed(seed=self.seed, aws_calibration=aws,
                              azure_calibration=azure)
            point.value = measure(testbed)
            results.append(point)
        return results


class GridSweep:
    """A multi-parameter grid over both calibrations.

    ``grid`` maps ``"aws.field"`` / ``"azure.field"`` names to value
    lists; the cartesian product is evaluated.
    """

    def __init__(self, grid: Dict[str, Sequence[Any]], seed: int = 0):
        if not grid:
            raise ValueError("grid must not be empty")
        for name in grid:
            platform, _, parameter = name.partition(".")
            if platform not in ("aws", "azure") or not parameter:
                raise ValueError(
                    f"grid keys look like 'aws.field' or 'azure.field', "
                    f"got {name!r}")
            template = (default_aws_calibration() if platform == "aws"
                        else default_azure_calibration())
            if not hasattr(template, parameter):
                raise AttributeError(
                    f"{type(template).__name__} has no field {parameter!r}")
        self.grid = {name: list(values) for name, values in grid.items()}
        self.seed = seed

    def points(self) -> List[SweepPoint]:
        names = sorted(self.grid)
        combinations = itertools.product(
            *(self.grid[name] for name in names))
        return [SweepPoint(overrides=dict(zip(names, combo)))
                for combo in combinations]

    def run(self, measure: Callable[[Testbed], Any]) -> List[SweepPoint]:
        results = []
        for point in self.points():
            aws = default_aws_calibration()
            azure = default_azure_calibration()
            for name, value in point.overrides.items():
                platform, _, parameter = name.partition(".")
                target = aws if platform == "aws" else azure
                setattr(target, parameter, value)
            testbed = Testbed(seed=self.seed, aws_calibration=aws,
                              azure_calibration=azure)
            point.value = measure(testbed)
            results.append(point)
        return results


def tabulate(points: List[SweepPoint],
             value_label: str = "value") -> List[List[Any]]:
    """Rows ``[override..., value]`` ready for ``render_table``."""
    if not points:
        raise ValueError("no sweep points")
    names = sorted(points[0].overrides)
    rows = []
    for point in points:
        rows.append([point.overrides[name] for name in names]
                    + [point.value])
    return rows
