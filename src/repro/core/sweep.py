"""Parameter sweeps: sensitivity analysis over calibration constants.

The reproduction's claims are shapes, and shapes should be robust to the
calibration constants around them.  A :class:`CalibrationSweep` reruns a
measurement under a grid of calibration overrides and tabulates the
metric, making "how sensitive is Fig 12 to the scale interval?" a
three-line question.

Example
-------
>>> from repro.core.sweep import CalibrationSweep
>>> sweep = CalibrationSweep(platform="azure",
...                          parameter="scale_interval_s",
...                          values=[5.0, 10.0, 20.0])
>>> len(sweep.points())
3
"""

from __future__ import annotations

import itertools
import multiprocessing
import pickle
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.core.testbed import Testbed
from repro.platforms.backend import backend_names, get_backend


def _evaluate_point(overrides: Dict[str, Any], seed: int,
                    measure: Callable[[Testbed], Any]) -> Any:
    """Worker: one grid point on a fresh testbed (module-level so it
    pickles into worker processes).

    ``overrides`` keys are ``"<platform>.field"`` names; a bare field
    name is applied to the platform given by the sweep (see the callers,
    which prefix it).
    """
    calibrations = {name: get_backend(name).default_calibration()
                    for name in backend_names()}
    for name, value in overrides.items():
        platform, _, parameter = name.partition(".")
        setattr(calibrations[platform], parameter, value)
    testbed = Testbed(seed=seed, calibrations=calibrations)
    return measure(testbed)


def _run_points(prefixed: List[Dict[str, Any]], seed: int,
                measure: Callable[[Testbed], Any],
                workers: int) -> List[Any]:
    """Evaluate prefixed override dicts, fanning out when asked.

    ``workers <= 1`` evaluates in-process.  A pool failure (sandboxed
    interpreter, unpicklable ``measure`` closure) falls back to the
    serial path — parallelism is an optimization, never a requirement.
    """
    if workers > 1 and len(prefixed) > 1:
        try:
            methods = multiprocessing.get_all_start_methods()
            context = multiprocessing.get_context(
                "fork" if "fork" in methods else None)
            with ProcessPoolExecutor(
                    max_workers=min(workers, len(prefixed)),
                    mp_context=context) as pool:
                futures = [pool.submit(_evaluate_point, overrides, seed,
                                       measure)
                           for overrides in prefixed]
                return [future.result() for future in futures]
        except (BrokenExecutor, OSError, ValueError, TypeError,
                AttributeError, ImportError, pickle.PicklingError):
            pass
    return [_evaluate_point(overrides, seed, measure)
            for overrides in prefixed]


@dataclass
class SweepPoint:
    """One grid point: the overrides applied and the measured value."""

    overrides: Dict[str, Any]
    value: Any = None


class CalibrationSweep:
    """A one-parameter sweep over a platform calibration constant."""

    def __init__(self, platform: str, parameter: str,
                 values: Sequence[Any], seed: int = 0):
        if platform not in backend_names():
            raise ValueError(
                f"platform must be one of {backend_names()}")
        if not values:
            raise ValueError("sweep needs at least one value")
        template = get_backend(platform).default_calibration()
        if not hasattr(template, parameter):
            raise AttributeError(
                f"{type(template).__name__} has no field {parameter!r}")
        self.platform = platform
        self.parameter = parameter
        self.values = list(values)
        self.seed = seed

    def points(self) -> List[SweepPoint]:
        return [SweepPoint(overrides={self.parameter: value})
                for value in self.values]

    def run(self, measure: Callable[[Testbed], Any],
            workers: int = 1) -> List[SweepPoint]:
        """Evaluate ``measure`` on a fresh testbed per grid point.

        ``measure`` receives a testbed whose calibration carries the
        point's override and returns the metric to record.  With
        ``workers > 1`` the grid points fan out across worker processes
        when ``measure`` is picklable (a module-level function), falling
        back to the serial path otherwise.
        """
        points = self.points()
        prefixed = [{f"{self.platform}.{name}": value
                     for name, value in point.overrides.items()}
                    for point in points]
        values = _run_points(prefixed, self.seed, measure, workers)
        for point, value in zip(points, values):
            point.value = value
        return points


class GridSweep:
    """A multi-parameter grid over any registered platforms' calibrations.

    ``grid`` maps ``"<platform>.field"`` names (``"aws.field"``,
    ``"azure.field"``, ``"gcp.field"``, ...) to value lists; the
    cartesian product is evaluated.
    """

    def __init__(self, grid: Dict[str, Sequence[Any]], seed: int = 0):
        if not grid:
            raise ValueError("grid must not be empty")
        for name in grid:
            platform, _, parameter = name.partition(".")
            if platform not in backend_names() or not parameter:
                raise ValueError(
                    f"grid keys look like '<platform>.field' with a "
                    f"registered platform {backend_names()}, got {name!r}")
            template = get_backend(platform).default_calibration()
            if not hasattr(template, parameter):
                raise AttributeError(
                    f"{type(template).__name__} has no field {parameter!r}")
        self.grid = {name: list(values) for name, values in grid.items()}
        self.seed = seed

    def points(self) -> List[SweepPoint]:
        names = sorted(self.grid)
        combinations = itertools.product(
            *(self.grid[name] for name in names))
        return [SweepPoint(overrides=dict(zip(names, combo)))
                for combo in combinations]

    def run(self, measure: Callable[[Testbed], Any],
            workers: int = 1) -> List[SweepPoint]:
        points = self.points()
        values = _run_points([point.overrides for point in points],
                             self.seed, measure, workers)
        for point, value in zip(points, values):
            point.value = value
        return points


def tabulate(points: List[SweepPoint],
             value_label: str = "value") -> List[List[Any]]:
    """Rows ``[override..., value]`` ready for ``render_table``."""
    if not points:
        raise ValueError("no sweep points")
    names = sorted(points[0].overrides)
    rows = []
    for point in points:
        rows.append([point.overrides[name] for name in names]
                    + [point.value])
    return rows
