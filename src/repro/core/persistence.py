"""Persist experiment results to JSON for cross-run comparison.

Campaign latencies and cost reports serialize to a stable, versioned JSON
shape so that a run's numbers can be archived next to EXPERIMENTS.md,
diffed across calibration changes, or post-processed elsewhere.

This module is also the single serialization authority for completed
campaign outcomes: :func:`outcome_to_dict`/:func:`outcome_from_dict`
round-trip a :class:`~repro.core.parallel.CampaignOutcome` exactly
(floats survive via JSON shortest-repr), and both the result cache
(:mod:`repro.core.cache`) and the sweep journal
(:mod:`repro.core.checkpoint`) store that one document shape, guarded by
:func:`payload_checksum`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, fields as dataclass_fields
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.core.audit import AuditReport, CheckResult
from repro.core.costs import CostReport
from repro.core.deployments.base import RunResult
from repro.core.experiment import CampaignResult
from repro.core.metrics import LatencyBreakdown
from repro.core.overload import OverloadSummary
from repro.core.parallel import CampaignOutcome, CampaignSpec
from repro.core.reliability import ReliabilitySummary
from repro.core.resilience import ResilienceSummary

FORMAT_VERSION = 1


def campaign_to_dict(campaign: CampaignResult) -> Dict[str, Any]:
    """A JSON-ready representation of a campaign."""
    return {
        "format_version": FORMAT_VERSION,
        "kind": "campaign",
        "deployment": campaign.deployment,
        "runs": [asdict(run) for run in campaign.runs],
        "breakdowns": [asdict(breakdown)
                       for breakdown in campaign.breakdowns],
    }


def campaign_from_dict(data: Dict[str, Any]) -> CampaignResult:
    """Inverse of :func:`campaign_to_dict`."""
    _check(data, "campaign")
    campaign = CampaignResult(deployment=data["deployment"])
    campaign.runs = [RunResult(**run) for run in data["runs"]]
    campaign.breakdowns = [LatencyBreakdown(**breakdown)
                           for breakdown in data["breakdowns"]]
    return campaign


def cost_report_to_dict(report: CostReport) -> Dict[str, Any]:
    """A JSON-ready representation of a cost report."""
    payload = asdict(report)
    payload.update({"format_version": FORMAT_VERSION, "kind": "cost"})
    return payload


def cost_report_from_dict(data: Dict[str, Any]) -> CostReport:
    """Inverse of :func:`cost_report_to_dict`."""
    _check(data, "cost")
    fields = {key: value for key, value in data.items()
              if key not in ("format_version", "kind")}
    return CostReport(**fields)


def reliability_to_dict(summary: ReliabilitySummary) -> Dict[str, Any]:
    """A JSON-ready representation of a reliability summary."""
    payload = asdict(summary)
    payload.update({"format_version": FORMAT_VERSION,
                    "kind": "reliability"})
    return payload


def reliability_from_dict(data: Dict[str, Any]) -> ReliabilitySummary:
    """Inverse of :func:`reliability_to_dict`."""
    _check(data, "reliability")
    fields = {key: value for key, value in data.items()
              if key not in ("format_version", "kind")}
    return ReliabilitySummary(**fields)


def resilience_to_dict(summary: ResilienceSummary) -> Dict[str, Any]:
    """A JSON-ready representation of a resilience summary."""
    payload = asdict(summary)
    payload.update({"format_version": FORMAT_VERSION,
                    "kind": "resilience"})
    return payload


def resilience_from_dict(data: Dict[str, Any]) -> ResilienceSummary:
    """Inverse of :func:`resilience_to_dict` (tuples restored)."""
    _check(data, "resilience")
    fields = {key: value for key, value in data.items()
              if key not in ("format_version", "kind")}
    fields["outage_windows"] = tuple(
        tuple(window) for window in fields.get("outage_windows", ()))
    fields["recovery_times_s"] = tuple(fields.get("recovery_times_s", ()))
    return ResilienceSummary(**fields)


def overload_to_dict(summary: OverloadSummary) -> Dict[str, Any]:
    """A JSON-ready representation of an overload summary."""
    payload = asdict(summary)
    payload.update({"format_version": FORMAT_VERSION, "kind": "overload"})
    return payload


def overload_from_dict(data: Dict[str, Any]) -> OverloadSummary:
    """Inverse of :func:`overload_to_dict`."""
    _check(data, "overload")
    fields = {key: value for key, value in data.items()
              if key not in ("format_version", "kind")}
    return OverloadSummary(**fields)


def audit_to_dict(report: AuditReport) -> Dict[str, Any]:
    """A JSON-ready representation of an audit report."""
    payload = asdict(report)
    payload.update({"format_version": FORMAT_VERSION, "kind": "audit"})
    return payload


def audit_from_dict(data: Dict[str, Any]) -> AuditReport:
    """Inverse of :func:`audit_to_dict` (tuples restored from lists)."""
    _check(data, "audit")
    checks = tuple(
        CheckResult(invariant=check["invariant"], passed=check["passed"],
                    detail=check["detail"],
                    evidence=tuple(check.get("evidence", ())))
        for check in data["checks"])
    outcomes = tuple((str(name), int(count))
                     for name, count in data["outcomes"])
    return AuditReport(checks=checks, dispatches=data["dispatches"],
                       arrivals=data["arrivals"], outcomes=outcomes)


def outcome_to_dict(outcome: CampaignOutcome) -> Dict[str, Any]:
    """A JSON-ready representation of a full campaign outcome.

    Exotic per-run values (anything JSON cannot carry) are stored as
    their ``repr`` — latencies, delays, breakdowns and cost meters
    round-trip exactly.
    """
    return {
        "format_version": FORMAT_VERSION,
        "kind": "outcome",
        "campaign": campaign_to_dict(outcome.campaign),
        "cost": cost_report_to_dict(outcome.cost),
        "idle_transactions": outcome.idle_transactions,
        "reliability": (reliability_to_dict(outcome.reliability)
                        if outcome.reliability is not None else None),
        "overload": (overload_to_dict(outcome.overload)
                     if outcome.overload is not None else None),
        "resilience": (resilience_to_dict(outcome.resilience)
                       if outcome.resilience is not None else None),
        "audit": (audit_to_dict(outcome.audit)
                  if outcome.audit is not None else None),
    }


def outcome_from_dict(data: Dict[str, Any],
                      spec: CampaignSpec) -> CampaignOutcome:
    """Inverse of :func:`outcome_to_dict` for the given ``spec``."""
    _check(data, "outcome")
    reliability = data.get("reliability")
    overload = data.get("overload")
    resilience = data.get("resilience")
    audit = data.get("audit")
    return CampaignOutcome(
        spec=spec,
        campaign=campaign_from_dict(data["campaign"]),
        cost=cost_report_from_dict(data["cost"]),
        idle_transactions=data.get("idle_transactions", 0),
        reliability=(reliability_from_dict(reliability)
                     if reliability else None),
        overload=overload_from_dict(overload) if overload else None,
        resilience=(resilience_from_dict(resilience)
                    if resilience else None),
        audit=audit_from_dict(audit) if audit else None)


class SpecValidationError(ValueError):
    """A spec document cannot rebuild a :class:`CampaignSpec`.

    Always names the offending key, so a hand-edited repro file or a
    fuzzer-mutated document fails with ``spec field 'fault_plan': ...``
    instead of a bare ``KeyError``/``TypeError`` from deep inside the
    dataclass machinery.
    """

    def __init__(self, key: str, detail: str):
        super().__init__(f"spec field {key!r}: {detail}")
        self.key = key
        self.detail = detail

    def __reduce__(self):
        # The default reduce replays ``args`` (the formatted message)
        # into ``__init__(key, detail)`` — rebuild from the real fields
        # so the error survives worker→parent pickling intact.
        return (type(self), (self.key, self.detail))


#: pair-list spec fields (``((name, value), ...)`` tuples in canonical form)
_PAIR_FIELDS = ("calibration_overrides", "invoke_kwargs", "fault_plan",
                "mitigation")
#: JSON type each scalar spec field must carry (bool checked before int —
#: ``isinstance(True, int)`` holds, and a bool where a count belongs is a
#: type error we want named)
_SPEC_FIELD_TYPES: Dict[str, tuple] = {
    "deployment": (str,), "workload": (str,), "scale": (str,),
    "campaign": (str,), "arrival": (str,),
    "fanout": (int,), "seed": (int,), "workload_seed": (int,),
    "iterations": (int,), "warmup": (int,), "batch": (int,),
    "think_time_s": (int, float), "settle_time_s": (int, float),
    "interval_s": (int, float), "days": (int, float),
    "idle_window_s": (int, float), "arrival_rate_per_s": (int, float),
    "horizon_s": (int, float), "slo_availability": (int, float),
    "slo_p99_s": (int, float),
}


def spec_to_dict(spec: CampaignSpec) -> Dict[str, Any]:
    """The JSON-ready canonical dict of ``spec``.

    The inverse of :func:`spec_from_dict`; today this is exactly
    :meth:`CampaignSpec.canonical`, named here so the serialization
    authority exports both directions of the round trip.
    """
    return spec.canonical()


def spec_from_dict(data: Dict[str, Any]) -> CampaignSpec:
    """Rebuild a :class:`CampaignSpec` from its ``canonical()`` dict.

    The round trip is hash-exact *and* equality-exact:
    ``spec_from_dict(spec_to_dict(spec))`` compares equal to the
    original and has the same ``spec_hash()`` (and therefore the same
    cache key), which is what lets a resumed sweep re-derive its specs
    from the journal manifest alone.

    Malformed documents — unknown keys, wrong-typed fields, truncated
    fault-plan pairs — raise :class:`SpecValidationError` naming the
    offending key, never a bare ``KeyError``/``TypeError``.
    """
    if not isinstance(data, dict):
        raise SpecValidationError(
            "<document>", f"expected a dict, got {type(data).__name__}")
    known = {spec_field.name for spec_field in dataclass_fields(CampaignSpec)}
    fields = {}
    for name, value in data.items():
        if not isinstance(name, str) or name not in known:
            raise SpecValidationError(
                str(name), f"unknown CampaignSpec field; "
                           f"choose from {sorted(known)}")
        fields[name] = value
    for name, allowed in _SPEC_FIELD_TYPES.items():
        if name not in fields:
            continue
        value = fields[name]
        if isinstance(value, bool) and bool not in allowed or \
                not isinstance(value, allowed):
            raise SpecValidationError(
                name, f"expected {' or '.join(t.__name__ for t in allowed)},"
                      f" got {type(value).__name__} ({value!r})")
    if "audit" in fields and fields["audit"] is not None \
            and not isinstance(fields["audit"], bool):
        raise SpecValidationError(
            "audit", f"expected true, false or null, "
                     f"got {type(fields['audit']).__name__}")
    # JSON turns the pair-tuples into lists; ``__post_init__`` only
    # re-normalizes non-empty ones, so coerce here for equality — and
    # reject truncated or non-pair entries by name.
    for name in _PAIR_FIELDS:
        if name not in fields:
            continue
        value = fields[name]
        if not isinstance(value, (list, tuple)):
            raise SpecValidationError(
                name, f"expected a list of (name, value) pairs, "
                      f"got {type(value).__name__}")
        pairs = []
        for item in value:
            if not isinstance(item, (list, tuple)) or len(item) != 2:
                raise SpecValidationError(
                    name, f"entries are (name, value) pairs, got {item!r}")
            if not isinstance(item[0], str):
                raise SpecValidationError(
                    name, f"pair names are strings, got {item[0]!r}")
            pairs.append(tuple(
                tuple(part) if isinstance(part, list) else part
                for part in item))
        fields[name] = tuple(pairs)
    try:
        return CampaignSpec(**fields)
    except SpecValidationError:
        raise
    except (ValueError, TypeError, KeyError, AttributeError) as error:
        # ``__post_init__`` raises about one field; name the first field
        # present in the document that the error message mentions.
        message = str(error).lower()
        key = next((name for name in fields
                    if name.lower() in message
                    or name.rstrip("s").replace("_", " ") in message),
                   "<spec>")
        raise SpecValidationError(
            key, f"{type(error).__name__}: {error}") from error


def payload_checksum(payload: Any) -> str:
    """A stable content checksum of a JSON-ready payload.

    Both the result cache and the sweep journal store this next to the
    document they write, so a torn or bit-rotted file is detected on
    read (and quarantined) instead of silently deserializing garbage.
    """
    blob = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode()).hexdigest()


def _check(data: Dict[str, Any], kind: str) -> None:
    if data.get("kind") != kind:
        raise ValueError(
            f"expected a {kind!r} document, got {data.get('kind')!r}")
    if data.get("format_version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported format version {data.get('format_version')!r}")


def save_results(path: Union[str, Path],
                 campaigns: Optional[List[CampaignResult]] = None,
                 cost_reports: Optional[List[CostReport]] = None,
                 metadata: Optional[Dict[str, Any]] = None) -> Path:
    """Write campaigns and cost reports to one JSON file."""
    path = Path(path)
    document = {
        "format_version": FORMAT_VERSION,
        "kind": "results",
        "metadata": dict(metadata or {}),
        "campaigns": [campaign_to_dict(campaign)
                      for campaign in (campaigns or [])],
        "cost_reports": [cost_report_to_dict(report)
                         for report in (cost_reports or [])],
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=2, default=_fallback))
    return path


def load_results(path: Union[str, Path]) -> Dict[str, Any]:
    """Read a results file back into live objects."""
    data = json.loads(Path(path).read_text())
    _check(data, "results")
    return {
        "metadata": data["metadata"],
        "campaigns": [campaign_from_dict(campaign)
                      for campaign in data["campaigns"]],
        "cost_reports": [cost_report_from_dict(report)
                         for report in data["cost_reports"]],
    }


def _fallback(value: Any) -> Any:
    """JSON encoder fallback: stringify anything exotic in run values."""
    return repr(value)
