"""Persist experiment results to JSON for cross-run comparison.

Campaign latencies and cost reports serialize to a stable, versioned JSON
shape so that a run's numbers can be archived next to EXPERIMENTS.md,
diffed across calibration changes, or post-processed elsewhere.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.core.audit import AuditReport, CheckResult
from repro.core.costs import CostReport
from repro.core.deployments.base import RunResult
from repro.core.experiment import CampaignResult
from repro.core.metrics import LatencyBreakdown
from repro.core.overload import OverloadSummary
from repro.core.reliability import ReliabilitySummary
from repro.core.resilience import ResilienceSummary

FORMAT_VERSION = 1


def campaign_to_dict(campaign: CampaignResult) -> Dict[str, Any]:
    """A JSON-ready representation of a campaign."""
    return {
        "format_version": FORMAT_VERSION,
        "kind": "campaign",
        "deployment": campaign.deployment,
        "runs": [asdict(run) for run in campaign.runs],
        "breakdowns": [asdict(breakdown)
                       for breakdown in campaign.breakdowns],
    }


def campaign_from_dict(data: Dict[str, Any]) -> CampaignResult:
    """Inverse of :func:`campaign_to_dict`."""
    _check(data, "campaign")
    campaign = CampaignResult(deployment=data["deployment"])
    campaign.runs = [RunResult(**run) for run in data["runs"]]
    campaign.breakdowns = [LatencyBreakdown(**breakdown)
                           for breakdown in data["breakdowns"]]
    return campaign


def cost_report_to_dict(report: CostReport) -> Dict[str, Any]:
    """A JSON-ready representation of a cost report."""
    payload = asdict(report)
    payload.update({"format_version": FORMAT_VERSION, "kind": "cost"})
    return payload


def cost_report_from_dict(data: Dict[str, Any]) -> CostReport:
    """Inverse of :func:`cost_report_to_dict`."""
    _check(data, "cost")
    fields = {key: value for key, value in data.items()
              if key not in ("format_version", "kind")}
    return CostReport(**fields)


def reliability_to_dict(summary: ReliabilitySummary) -> Dict[str, Any]:
    """A JSON-ready representation of a reliability summary."""
    payload = asdict(summary)
    payload.update({"format_version": FORMAT_VERSION,
                    "kind": "reliability"})
    return payload


def reliability_from_dict(data: Dict[str, Any]) -> ReliabilitySummary:
    """Inverse of :func:`reliability_to_dict`."""
    _check(data, "reliability")
    fields = {key: value for key, value in data.items()
              if key not in ("format_version", "kind")}
    return ReliabilitySummary(**fields)


def resilience_to_dict(summary: ResilienceSummary) -> Dict[str, Any]:
    """A JSON-ready representation of a resilience summary."""
    payload = asdict(summary)
    payload.update({"format_version": FORMAT_VERSION,
                    "kind": "resilience"})
    return payload


def resilience_from_dict(data: Dict[str, Any]) -> ResilienceSummary:
    """Inverse of :func:`resilience_to_dict` (tuples restored)."""
    _check(data, "resilience")
    fields = {key: value for key, value in data.items()
              if key not in ("format_version", "kind")}
    fields["outage_windows"] = tuple(
        tuple(window) for window in fields.get("outage_windows", ()))
    fields["recovery_times_s"] = tuple(fields.get("recovery_times_s", ()))
    return ResilienceSummary(**fields)


def overload_to_dict(summary: OverloadSummary) -> Dict[str, Any]:
    """A JSON-ready representation of an overload summary."""
    payload = asdict(summary)
    payload.update({"format_version": FORMAT_VERSION, "kind": "overload"})
    return payload


def overload_from_dict(data: Dict[str, Any]) -> OverloadSummary:
    """Inverse of :func:`overload_to_dict`."""
    _check(data, "overload")
    fields = {key: value for key, value in data.items()
              if key not in ("format_version", "kind")}
    return OverloadSummary(**fields)


def audit_to_dict(report: AuditReport) -> Dict[str, Any]:
    """A JSON-ready representation of an audit report."""
    payload = asdict(report)
    payload.update({"format_version": FORMAT_VERSION, "kind": "audit"})
    return payload


def audit_from_dict(data: Dict[str, Any]) -> AuditReport:
    """Inverse of :func:`audit_to_dict` (tuples restored from lists)."""
    _check(data, "audit")
    checks = tuple(
        CheckResult(invariant=check["invariant"], passed=check["passed"],
                    detail=check["detail"],
                    evidence=tuple(check.get("evidence", ())))
        for check in data["checks"])
    outcomes = tuple((str(name), int(count))
                     for name, count in data["outcomes"])
    return AuditReport(checks=checks, dispatches=data["dispatches"],
                       arrivals=data["arrivals"], outcomes=outcomes)


def _check(data: Dict[str, Any], kind: str) -> None:
    if data.get("kind") != kind:
        raise ValueError(
            f"expected a {kind!r} document, got {data.get('kind')!r}")
    if data.get("format_version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported format version {data.get('format_version')!r}")


def save_results(path: Union[str, Path],
                 campaigns: Optional[List[CampaignResult]] = None,
                 cost_reports: Optional[List[CostReport]] = None,
                 metadata: Optional[Dict[str, Any]] = None) -> Path:
    """Write campaigns and cost reports to one JSON file."""
    path = Path(path)
    document = {
        "format_version": FORMAT_VERSION,
        "kind": "results",
        "metadata": dict(metadata or {}),
        "campaigns": [campaign_to_dict(campaign)
                      for campaign in (campaigns or [])],
        "cost_reports": [cost_report_to_dict(report)
                         for report in (cost_reports or [])],
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=2, default=_fallback))
    return path


def load_results(path: Union[str, Path]) -> Dict[str, Any]:
    """Read a results file back into live objects."""
    data = json.loads(Path(path).read_text())
    _check(data, "results")
    return {
        "metadata": data["metadata"],
        "campaigns": [campaign_from_dict(campaign)
                      for campaign in data["campaigns"]],
        "cost_reports": [cost_report_from_dict(report)
                         for report in data["cost_reports"]],
    }


def _fallback(value: Any) -> Any:
    """JSON encoder fallback: stringify anything exotic in run values."""
    return repr(value)
