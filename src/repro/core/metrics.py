"""Latency statistics: percentiles, CDFs, breakdowns.

The aggregation layer behind every latency figure in the paper — median
and 99ile bars (Fig 6), CDFs (Fig 7, Fig 14), queue/execution breakdowns
(Fig 8, Fig 13) and fan-out finish-time tables (Table III).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0-100) of ``values``."""
    if len(values) == 0:
        raise ValueError("no values")
    if not 0 <= q <= 100:
        raise ValueError(f"percentile out of range: {q}")
    return float(np.percentile(np.asarray(values, dtype=float), q))


@dataclass(frozen=True)
class LatencyStats:
    """Summary statistics for one deployment's latency sample."""

    count: int
    mean: float
    median: float
    p95: float
    p99: float
    minimum: float
    maximum: float

    def as_row(self) -> Dict[str, float]:
        return {"count": self.count, "mean": self.mean,
                "median": self.median, "p95": self.p95, "p99": self.p99,
                "min": self.minimum, "max": self.maximum}


def summarize(values: Sequence[float]) -> LatencyStats:
    """Compute the full stats bundle for a latency sample."""
    if len(values) == 0:
        raise ValueError("no values to summarize")
    data = np.asarray(values, dtype=float)
    return LatencyStats(
        count=len(data), mean=float(data.mean()),
        median=float(np.percentile(data, 50)),
        p95=float(np.percentile(data, 95)),
        p99=float(np.percentile(data, 99)),
        minimum=float(data.min()), maximum=float(data.max()))


def cdf_points(values: Sequence[float],
               n_points: int = 100) -> List[Tuple[float, float]]:
    """(latency, cumulative fraction) pairs for CDF plots (Fig 7/14)."""
    if len(values) == 0:
        raise ValueError("no values")
    data = np.sort(np.asarray(values, dtype=float))
    if n_points >= len(data):
        fractions = (np.arange(len(data)) + 1) / len(data)
        return list(zip(data.tolist(), fractions.tolist()))
    quantiles = np.linspace(0.0, 1.0, n_points + 1)[1:]
    points = np.quantile(data, quantiles)
    return list(zip(points.tolist(), quantiles.tolist()))


def fraction_above(values: Sequence[float], threshold: float) -> float:
    """Share of values ≥ threshold (e.g. 'half the workers wait ≥40 s')."""
    if len(values) == 0:
        raise ValueError("no values")
    data = np.asarray(values, dtype=float)
    return float((data >= threshold).mean())


@dataclass(frozen=True)
class LatencyBreakdown:
    """Queue time vs execution time (Fig 8 / Fig 13)."""

    queue_time: float
    execution_time: float
    cold_start_time: float = 0.0

    @property
    def total(self) -> float:
        return self.queue_time + self.execution_time + self.cold_start_time

    @property
    def queue_share(self) -> float:
        return self.queue_time / self.total if self.total else 0.0


def breakdown_from_spans(telemetry, since: float, until: float,
                         start_hint: int = 0) -> LatencyBreakdown:
    """Aggregate a window of spans into a queue/execution breakdown.

    * queue time — scheduling waits and queue-trigger polling,
    * execution time — billable handler execution (incl. replay),
    * cold start — container/instance provisioning.

    ``start_hint`` is an optimization for long campaigns: spans are
    opened in nondecreasing start order, so a caller that noted
    ``len(telemetry.spans)`` at the window start can pass it to skip the
    history before the window instead of rescanning every span ever
    collected.  The hint is safe by construction — it is walked back over
    any trailing spans that still start inside the window, and the
    time-window filters below apply unchanged — so the result is
    identical to a full scan.
    """
    queue_time = 0.0
    execution_time = 0.0
    cold_time = 0.0
    spans = telemetry.spans
    index = min(start_hint, len(spans))
    while index > 0 and spans[index - 1].start >= since:
        index -= 1
    for span in spans[index:]:
        if not span.closed or span.start < since or span.start >= until:
            continue
        if span.kind in ("queue_wait", "scheduling"):
            queue_time += span.duration
        elif span.kind == "execution":
            execution_time += span.duration
        elif span.kind == "cold_start":
            cold_time += span.duration
    return LatencyBreakdown(queue_time=queue_time,
                            execution_time=execution_time,
                            cold_start_time=cold_time)
