"""Client-side mitigation policies: breakers, hedging, deadlines.

Production serverless clients do not call a degraded platform naively —
they wrap every invoke in resilience middleware.  This module simulates
that middleware so resilience campaigns can price it:

* **Circuit breaker** — classic closed/open/half-open per
  ``(platform, function)`` deployment.  A streak of failures opens the
  circuit; while open, calls short-circuit with
  :class:`CircuitOpenError` (cheap, fast, and load-shedding for the
  struggling backend); after a seeded recovery timeout a limited number
  of half-open probes decide whether to close again.  Probe timing draws
  from the ``mitigation.<label>`` stream so runs stay bit-identical.
* **Request hedging** — after ``hedge_after_s`` without a response, a
  duplicate attempt launches; first winner cancels the rest.  The
  engine accounts what the lost races cost (``hedge_overspend_gb_s``:
  GB-s billed to cancelled attempts), because hedging trades money for
  tail latency and the campaign must show the bill.
* **Adaptive deadlines** — a per-engine EWMA of observed latency sets
  the abandon point at ``deadline_factor ×`` the estimate (floored at
  ``deadline_min_s``); a hard ``request_timeout_s`` always backstops it
  so a partition-dropped message cannot hang a campaign forever.

:class:`MitigationPolicy` is frozen and picklable and round-trips
through sorted items so it can ride inside a hashable
:class:`~repro.core.parallel.CampaignSpec`;
:class:`MitigationEngine` is the per-deployment runtime, driven through
:meth:`~repro.platforms.backend.PlatformBackend.mitigated_invoke` so
every registered backend gets the whole layer for free.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Callable, Dict, Generator, Iterable, List, Optional, Tuple

from repro.sim.kernel import Interrupt


class CircuitOpenError(RuntimeError):
    """The circuit breaker is open: the call was never attempted."""


class MitigationTimeout(RuntimeError):
    """Every in-flight attempt was abandoned at the deadline."""


@dataclass(frozen=True)
class MitigationPolicy:
    """Declarative description of the client-side mitigation stack.

    Every knob at its default (zero) disables that mechanism; only the
    hard ``request_timeout_s`` backstop is always on.  The default
    policy therefore behaves like a plain invoke with a generous cap.
    """

    #: consecutive failures that open the breaker (0 disables it)
    breaker_failure_threshold: int = 0
    #: base open-state dwell before a half-open probe (the actual dwell
    #: adds up to 10% seeded jitter so fleets do not probe in lockstep)
    breaker_recovery_timeout_s: float = 30.0
    #: successful probes required to close again
    breaker_half_open_probes: int = 1
    #: launch a duplicate attempt after this long without a response
    #: (0 disables hedging)
    hedge_after_s: float = 0.0
    #: duplicate attempts allowed per call
    max_hedges: int = 1
    #: adaptive deadline at ``deadline_factor ×`` the latency EWMA
    #: (0 disables; the estimate floors at ``deadline_min_s``)
    deadline_factor: float = 0.0
    deadline_min_s: float = 1.0
    #: hard per-call timeout, always enforced
    request_timeout_s: float = 300.0

    def __post_init__(self):
        if self.breaker_failure_threshold < 0:
            raise ValueError(
                "breaker_failure_threshold must be non-negative")
        if self.breaker_recovery_timeout_s <= 0:
            raise ValueError(
                "breaker_recovery_timeout_s must be positive")
        if self.breaker_half_open_probes < 1:
            raise ValueError("breaker_half_open_probes must be >= 1")
        if self.hedge_after_s < 0:
            raise ValueError("hedge_after_s must be non-negative")
        if self.max_hedges < 1:
            raise ValueError("max_hedges must be >= 1")
        if self.deadline_factor < 0:
            raise ValueError("deadline_factor must be non-negative")
        if self.deadline_min_s <= 0:
            raise ValueError("deadline_min_s must be positive")
        if self.request_timeout_s <= 0:
            raise ValueError("request_timeout_s must be positive")

    @property
    def enabled(self) -> bool:
        """Any mechanism beyond the hard backstop active?"""
        return (self.breaker_failure_threshold > 0
                or self.hedge_after_s > 0
                or self.deadline_factor > 0)

    # -- spec round-trip -----------------------------------------------------------

    def to_items(self) -> Tuple[Tuple[str, Any], ...]:
        """Non-default fields as sorted key/value pairs (spec-friendly)."""
        items: List[Tuple[str, Any]] = []
        for policy_field in fields(self):
            value = getattr(self, policy_field.name)
            if value == policy_field.default:
                continue
            items.append((policy_field.name, value))
        return tuple(sorted(items))

    @classmethod
    def from_items(cls,
                   items: Iterable[Tuple[str, Any]]) -> "MitigationPolicy":
        """Build a policy from key/value pairs, rejecting unknown fields."""
        known = {policy_field.name for policy_field in fields(cls)}
        payload: Dict[str, Any] = {}
        for name, value in items:
            if name not in known:
                raise ValueError(
                    f"unknown MitigationPolicy field {name!r}; "
                    f"choose from {sorted(known)}")
            payload[str(name)] = value
        return cls(**payload)


class _Attempt:
    """One in-flight (possibly hedged) attempt's outcome slot."""

    __slots__ = ("index", "proc", "ok", "value", "error", "cancelled")

    def __init__(self, index: int):
        self.index = index
        self.proc = None
        self.ok = False
        self.value: Any = None
        self.error: Optional[BaseException] = None
        self.cancelled = False

    @property
    def settled(self) -> bool:
        return self.ok or self.error is not None or self.cancelled


@dataclass
class MitigationEngine:
    """Per-deployment mitigation runtime with chaos-era accounting.

    One engine guards one ``(platform, function)`` pair; breaker state
    and the latency EWMA persist across calls like a client library's.
    All timing draws come from the ``mitigation.<label>`` stream so
    campaigns stay bit-identical given ``(seed, policy)``.
    """

    policy: MitigationPolicy
    env: Any
    streams: Any
    label: str
    #: reads the platform's cumulative billed GB-s; sampled around
    #: hedge-loser cancellation to price the overspend
    gb_s_probe: Callable[[], float] = lambda: 0.0

    # accounting
    requests: int = field(default=0, init=False)
    hedges_launched: int = field(default=0, init=False)
    hedge_wins: int = field(default=0, init=False)
    hedges_cancelled: int = field(default=0, init=False)
    hedge_overspend_gb_s: float = field(default=0.0, init=False)
    breaker_opens: int = field(default=0, init=False)
    short_circuits: int = field(default=0, init=False)
    breaker_probes: int = field(default=0, init=False)
    deadline_abandons: int = field(default=0, init=False)
    request_timeouts: int = field(default=0, init=False)

    def __post_init__(self):
        self._rng = (self.streams.get(f"mitigation.{self.label}")
                     if self.streams is not None else None)
        self._state = "closed"
        self._failure_streak = 0
        self._probe_at = 0.0
        self._probes_left = 0
        self._ewma: Optional[float] = None

    # -- breaker state machine -----------------------------------------------------

    @property
    def breaker_state(self) -> str:
        return self._state

    def _admit(self) -> bool:
        if self.policy.breaker_failure_threshold <= 0:
            return True
        if self._state == "closed":
            return True
        if self._state == "open":
            if self.env.now < self._probe_at:
                return False
            self._state = "half_open"
            self._probes_left = self.policy.breaker_half_open_probes
        # half-open: admit only the configured probe budget
        if self._probes_left <= 0:
            return False
        self._probes_left -= 1
        self.breaker_probes += 1
        return True

    def _open_breaker(self) -> None:
        self._state = "open"
        self.breaker_opens += 1
        jitter = self._rng.random() if self._rng is not None else 0.0
        self._probe_at = (self.env.now
                          + self.policy.breaker_recovery_timeout_s
                          * (1.0 + 0.1 * jitter))

    def _record_success(self, latency: float) -> None:
        self._failure_streak = 0
        if self._state in ("half_open", "open"):
            self._state = "closed"
        alpha = 0.3
        self._ewma = (latency if self._ewma is None
                      else alpha * latency + (1.0 - alpha) * self._ewma)

    def _record_failure(self) -> None:
        if self.policy.breaker_failure_threshold <= 0:
            return
        self._failure_streak += 1
        if (self._state == "half_open"
                or self._failure_streak
                >= self.policy.breaker_failure_threshold):
            self._open_breaker()

    # -- deadlines ------------------------------------------------------------------

    def _effective_deadline(self) -> Tuple[float, bool]:
        """``(seconds, adaptive)`` for this call."""
        hard = self.policy.request_timeout_s
        if self.policy.deadline_factor > 0 and self._ewma is not None:
            adaptive = max(self.policy.deadline_min_s,
                           self.policy.deadline_factor * self._ewma)
            if adaptive < hard:
                return adaptive, True
        return hard, False

    # -- the call path ----------------------------------------------------------------

    def _guarded(self, factory: Callable[[], Generator],
                 slot: _Attempt) -> Generator:
        """Run one attempt, absorbing its outcome into ``slot``.

        The attempt process itself always succeeds as a kernel event, so
        losing racers can never crash the dispatch loop; the engine
        reads the slots instead of the process failure values.
        """
        try:
            slot.value = yield from factory()
            slot.ok = True
        except Interrupt:
            slot.cancelled = True
        except Exception as error:
            slot.error = error

    def call(self, factory: Callable[[], Generator]) -> Generator:
        """Invoke ``factory()`` under the policy; drive with ``yield from``.

        Returns the winning attempt's value, or raises
        :class:`CircuitOpenError` (breaker open),
        :class:`MitigationTimeout` (deadline hit), or the first
        attempt's own error when every attempt failed.
        """
        policy = self.policy
        env = self.env
        self.requests += 1
        if not self._admit():
            self.short_circuits += 1
            raise CircuitOpenError(
                f"circuit open for {self.label}: short-circuited "
                f"(probe at t={self._probe_at:.1f}s)")

        started = env.now
        deadline_s, adaptive = self._effective_deadline()
        deadline_at = started + deadline_s
        hedge_budget = policy.max_hedges if policy.hedge_after_s > 0 else 0
        next_hedge_at = (started + policy.hedge_after_s
                         if hedge_budget > 0 else None)

        attempts: List[_Attempt] = []

        def launch() -> None:
            slot = _Attempt(len(attempts))
            slot.proc = env.process(self._guarded(factory, slot))
            attempts.append(slot)

        launch()
        while True:
            winner = next((slot for slot in attempts if slot.ok), None)
            if winner is not None:
                self._record_success(env.now - started)
                losers = [slot for slot in attempts
                          if slot.proc.is_alive]
                if winner.index > 0:
                    self.hedge_wins += 1
                if losers:
                    before = self.gb_s_probe()
                    for slot in losers:
                        slot.proc.interrupt(cause="hedge-lost")
                        slot.proc.defuse()
                        self.hedges_cancelled += 1
                    # Let the interrupts unwind (and bill) now.
                    yield env.timeout(0)
                    self.hedge_overspend_gb_s += max(
                        0.0, self.gb_s_probe() - before)
                return winner.value
            alive = [slot for slot in attempts if slot.proc.is_alive]
            if not alive:
                # Every attempt settled without a winner: surface the
                # primary attempt's error (deterministic order).
                self._record_failure()
                errors = [slot.error for slot in attempts
                          if slot.error is not None]
                if errors:
                    raise errors[0]
                raise MitigationTimeout(
                    f"every attempt of {self.label} was cancelled")
            if env.now >= deadline_at:
                for slot in alive:
                    slot.proc.interrupt(cause="deadline")
                    slot.proc.defuse()
                yield env.timeout(0)
                if adaptive:
                    self.deadline_abandons += 1
                else:
                    self.request_timeouts += 1
                self._record_failure()
                raise MitigationTimeout(
                    f"{self.label} abandoned after {deadline_s:.1f}s "
                    f"({'adaptive deadline' if adaptive else 'hard cap'})")
            waits = [slot.proc for slot in alive]
            hedge_timer = None
            if hedge_budget > 0 and next_hedge_at is not None:
                hedge_timer = env.timeout(
                    max(0.0, next_hedge_at - env.now))
                waits.append(hedge_timer)
            deadline_timer = env.timeout(max(0.0, deadline_at - env.now))
            waits.append(deadline_timer)
            result = yield env.any_of(waits)
            if (hedge_timer is not None and hedge_timer in result
                    and not any(slot.ok for slot in attempts)):
                self.hedges_launched += 1
                hedge_budget -= 1
                launch()
                next_hedge_at = (env.now + policy.hedge_after_s
                                 if hedge_budget > 0 else None)
            # Completions, errors and the deadline are handled at the
            # top of the loop so every exit shares one code path.
