"""The six deployment variants of Table II, for both workloads.

Builders return dictionaries keyed by the paper's graph references
(``AWS-Lambda``, ``AWS-Step``, ``Az-Func``, ``Az-Queue``, ``Az-Dorch``,
``Az-Dent``).
"""

from repro.core.deployments.base import Deployment, RunResult
from repro.core.deployments.ml import (
    MLWorkload,
    build_ml_inference_deployments,
    build_ml_training_deployments,
    ml_workload,
)
from repro.core.deployments.video import (
    VideoWorkload,
    build_video_deployments,
    video_workload,
)

__all__ = [
    "Deployment",
    "MLWorkload",
    "RunResult",
    "VideoWorkload",
    "build_ml_inference_deployments",
    "build_ml_training_deployments",
    "build_video_deployments",
    "ml_workload",
    "video_workload",
]
