"""ML training and inference deployments — all six Table II variants.

Data larger than the platform payload limits (dataframes, matrices,
models) moves through blob storage; only keys and small summaries cross
function boundaries, exactly as the paper describes (§IV-A: "since the
dataframes are often larger than 256 KB, we had to transfer them via the
remote storage").
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional

from repro.azure import EntityId, EntitySpec, OrchestratorSpec, QueueChain
from repro.azure.app import TRIGGER_HTTP
from repro.core.deployments.base import Deployment, RunResult
from repro.core.stage_models import (
    ML_DURATIONS,
    ML_LARGE_ROWS,
    ML_SMALL_ROWS,
    ml_work_models,
)
from repro.core.testbed import Testbed
from repro.platforms.base import FunctionSpec
from repro.storage.payload import MB
from repro.workloads.ml import make_car_pricing_dataset, train_test_split
from repro.workloads.ml.pipeline import MLPipeline
from repro.workloads.ml.selection import default_candidates


class MLWorkload:
    """Shared real-compute artifacts for one dataset scale.

    One instance per (scale, seed) backs every deployment variant so all
    six run the same real pipeline and move identically-sized payloads.
    """

    def __init__(self, scale: str, seed: int = 0):
        if scale not in ML_DURATIONS:
            raise ValueError(f"scale must be one of {sorted(ML_DURATIONS)}")
        self.scale = scale
        self.seed = seed
        rows = ML_SMALL_ROWS if scale == "small" else ML_LARGE_ROWS
        full = make_car_pricing_dataset(rows, seed=seed)
        self.train_dataset, self.test_dataset = train_test_split(
            full, test_fraction=0.2, seed=seed)
        self.pipeline = MLPipeline(seed=seed)
        self.candidates = default_candidates(seed)

    @property
    def trained(self):
        """The real trained pipeline (computed once, memoized)."""
        return self.pipeline.train(self.train_dataset)

    # -- payload sizes (bytes) ---------------------------------------------------

    @property
    def dataset_bytes(self) -> int:
        return self.train_dataset.features.payload_size

    @property
    def test_dataset_bytes(self) -> int:
        return self.test_dataset.features.payload_size

    @property
    def prepared_bytes(self) -> int:
        n_features = 14 + self.trained.encoder.n_output_features
        return self.train_dataset.n_rows * n_features * 8

    @property
    def reduced_bytes(self) -> int:
        return self.train_dataset.n_rows * self.trained.pca.n_components * 8

    @property
    def best_model_bytes(self) -> int:
        return self.trained.best.payload_size

    def candidate_result(self, name: str):
        for result in self.trained.results:
            if result.candidate.name == name:
                return result
        raise KeyError(f"no candidate named {name!r}")

    def summary_of(self, name: str) -> Dict[str, Any]:
        """A ≤64 KB-safe summary of one trained candidate."""
        result = self.candidate_result(name)
        return {"name": name, "error": result.error,
                "model_bytes": result.payload_size}


_WORKLOADS: Dict[tuple, MLWorkload] = {}


def ml_workload(scale: str, seed: int = 0) -> MLWorkload:
    """Process-wide cache of ML workloads (real training runs once)."""
    key = (scale, seed)
    if key not in _WORKLOADS:
        _WORKLOADS[key] = MLWorkload(scale, seed)
    return _WORKLOADS[key]


def _train_model_name(algorithm: str) -> str:
    return {"random_forest": "train_rf", "kneighbors": "train_knn",
            "lasso": "train_lasso"}[algorithm]


# ---------------------------------------------------------------------------
# Stage handler factories (shared by every variant on both platforms).
# ---------------------------------------------------------------------------

def make_prepare_handler(workload: MLWorkload):
    """Stage 1: fetch raw dataset, feature-engineer, store prepared matrix."""
    def handler(ctx, event) -> Generator:
        dataset = yield from ctx.blob.get(event["dataset_key"])
        yield from ctx.work("deserialize",
                            units=workload.dataset_bytes / MB)
        trained = workload.trained      # real compute, memoized
        yield from ctx.work("prepare")
        prepared_key = f"runs/{event['run_id']}/prepared"
        yield from ctx.blob.put(prepared_key, {"encoder": trained.encoder},
                                size=workload.prepared_bytes)
        return {"run_id": event["run_id"], "prepared_key": prepared_key}
    return handler


def make_reduce_handler(workload: MLWorkload):
    """Stage 2: fetch prepared matrix, PCA, store reduced matrix."""
    def handler(ctx, event) -> Generator:
        yield from ctx.blob.get(event["prepared_key"])
        yield from ctx.work("deserialize",
                            units=workload.prepared_bytes / MB)
        trained = workload.trained
        yield from ctx.work("reduce")
        reduced_key = f"runs/{event['run_id']}/reduced"
        yield from ctx.blob.put(reduced_key, {"pca": trained.pca},
                                size=workload.reduced_bytes)
        return {"run_id": event["run_id"], "reduced_key": reduced_key}
    return handler


def make_train_one_handler(workload: MLWorkload):
    """Train a single named candidate on the reduced matrix."""
    def handler(ctx, event) -> Generator:
        yield from ctx.blob.get(event["reduced_key"])
        yield from ctx.work("deserialize",
                            units=workload.reduced_bytes / MB)
        result = workload.candidate_result(event["candidate"])
        yield from ctx.work(
            _train_model_name(result.candidate.algorithm))
        model_key = f"runs/{event['run_id']}/models/{event['candidate']}"
        yield from ctx.blob.put(model_key, result.model,
                                size=result.payload_size)
        summary = workload.summary_of(event["candidate"])
        summary.update({"run_id": event["run_id"], "model_key": model_key})
        return summary
    return handler


def make_train_all_handler(workload: MLWorkload):
    """Train every candidate sequentially (the chain variants)."""
    def handler(ctx, event) -> Generator:
        yield from ctx.blob.get(event["reduced_key"])
        yield from ctx.work("deserialize",
                            units=workload.reduced_bytes / MB)
        summaries = []
        for result in workload.trained.results:
            yield from ctx.work(
                _train_model_name(result.candidate.algorithm))
            model_key = (f"runs/{event['run_id']}/models/"
                         f"{result.candidate.name}")
            yield from ctx.blob.put(model_key, result.model,
                                    size=result.payload_size)
            summary = workload.summary_of(result.candidate.name)
            summary["model_key"] = model_key
            summaries.append(summary)
        return {"run_id": event["run_id"], "results": summaries}
    return handler


def make_select_handler(workload: MLWorkload):
    """Pick the lowest-error candidate and publish it as the best model."""
    def handler(ctx, event) -> Generator:
        results = event["results"]
        yield from ctx.work("select")
        best = min(results, key=lambda summary: summary["error"])
        best_key = f"runs/{event['run_id']}/best"
        yield from ctx.blob.put(best_key, {"best": best["name"]},
                                size=workload.best_model_bytes)
        return {"run_id": event["run_id"], "best": best["name"],
                "error": best["error"], "best_key": best_key}
    return handler


def make_monolith_handler(workload: MLWorkload):
    """The whole pipeline inside one function (AWS-Lambda / Az-Func)."""
    def handler(ctx, event) -> Generator:
        dataset = yield from ctx.blob.get(event["dataset_key"])
        yield from ctx.work("deserialize",
                            units=workload.dataset_bytes / MB)
        trained = workload.trained
        yield from ctx.work("prepare")
        yield from ctx.work("reduce")
        for result in trained.results:
            yield from ctx.work(
                _train_model_name(result.candidate.algorithm))
        yield from ctx.work("select")
        best_key = f"runs/{event['run_id']}/best"
        yield from ctx.blob.put(best_key, trained.best.model,
                                size=workload.best_model_bytes)
        return {"run_id": event["run_id"],
                "best": trained.best.candidate.name,
                "error": trained.best.error, "best_key": best_key}
    return handler


# ---------------------------------------------------------------------------
# AWS deployments.
# ---------------------------------------------------------------------------

class AWSLambdaMLTraining(Deployment):
    """Table II 'AWS-Lambda': one stateless Lambda runs everything."""

    name = "AWS-Lambda"
    platform = "aws"
    stateful = False
    description = "One stateless Lambda function."
    function_count = 1
    code_size_mb = 63.1

    def __init__(self, testbed: Testbed, workload: MLWorkload):
        super().__init__(testbed)
        self.workload = workload
        self.dataset_key = f"datasets/{workload.scale}"

    def setup(self) -> Generator:
        self.testbed.lambdas.register(FunctionSpec(
            name="ml-train-monolith",
            handler=make_monolith_handler(self.workload),
            memory_mb=1536, timeout_s=900.0,
            work_models=ml_work_models(self.workload.scale)))
        yield from self.testbed.aws.blob.put(
            self.dataset_key, self.workload.train_dataset,
            size=self.workload.dataset_bytes)

    def invoke(self) -> Generator:
        run_id = self.next_run_id()
        started = self.testbed.now
        result = yield from self.testbed.lambdas.invoke(
            "ml-train-monolith",
            {"run_id": run_id, "dataset_key": self.dataset_key})
        return RunResult(
            deployment=self.name, started_at=started,
            finished_at=self.testbed.now, value=result.value,
            cold_start_delay=result.cold_start_duration or None,
            execution_time=result.duration)


class AWSStepMLTraining(Deployment):
    """Table II 'AWS-Step': a 4-state machine calling one Lambda each."""

    name = "AWS-Step"
    platform = "aws"
    stateful = True
    description = ("Workflow implementation using AWS Step Functions, "
                   "calling AWS Lambda functions on each state.")
    function_count = 4
    code_size_mb = 271.2

    machine_name = "ml-training"

    def __init__(self, testbed: Testbed, workload: MLWorkload):
        super().__init__(testbed)
        self.workload = workload
        self.dataset_key = f"datasets/{workload.scale}"

    def setup(self) -> Generator:
        lambdas = self.testbed.lambdas
        models = ml_work_models(self.workload.scale)
        stages = [
            ("aws-ml-prepare", make_prepare_handler(self.workload)),
            ("aws-ml-reduce", make_reduce_handler(self.workload)),
            ("aws-ml-train", make_train_all_handler(self.workload)),
            ("aws-ml-select", make_select_handler(self.workload)),
        ]
        for name, handler in stages:
            lambdas.register(FunctionSpec(
                name=name, handler=handler, memory_mb=1536,
                timeout_s=900.0, work_models=models))
        self.testbed.stepfunctions.create_state_machine(self.machine_name, {
            "Comment": "ML training workflow (paper Figure 2)",
            "StartAt": "Prepare",
            "States": {
                "Prepare": {"Type": "Task", "Resource": "aws-ml-prepare",
                            "Next": "Reduce"},
                "Reduce": {"Type": "Task", "Resource": "aws-ml-reduce",
                           "Next": "Train"},
                "Train": {"Type": "Task", "Resource": "aws-ml-train",
                          "Next": "Select"},
                "Select": {"Type": "Task", "Resource": "aws-ml-select",
                           "End": True},
            },
        })
        yield from self.testbed.aws.blob.put(
            self.dataset_key, self.workload.train_dataset,
            size=self.workload.dataset_bytes)

    def invoke(self) -> Generator:
        run_id = self.next_run_id()
        started = self.testbed.now
        record = yield from self.testbed.stepfunctions.start_execution(
            self.machine_name,
            {"run_id": run_id, "dataset_key": self.dataset_key})
        if record.status != "SUCCEEDED":
            raise RuntimeError(
                f"AWS-Step training failed: {record.error}")
        cold = _first_execution_delay(self.testbed.aws.telemetry, started)
        return RunResult(
            deployment=self.name, started_at=started,
            finished_at=self.testbed.now, value=record.output,
            cold_start_delay=cold)


# ---------------------------------------------------------------------------
# Azure deployments.
# ---------------------------------------------------------------------------

#: Measured memory per Azure stage (MB) — Azure bills on consumption.
AZURE_MEASURED_MEMORY = {
    "prepare": 1024, "reduce": 1024, "train": 1024, "select": 512,
    "monolith": 1024, "inference": 1024,
}


class AzureFuncMLTraining(Deployment):
    """Table II 'Az-Func': one stateless Azure function."""

    name = "Az-Func"
    platform = "azure"
    stateful = False
    description = "One stateless Azure function."
    function_count = 1
    code_size_mb = 304.0

    def __init__(self, testbed: Testbed, workload: MLWorkload):
        super().__init__(testbed)
        self.workload = workload
        self.dataset_key = f"datasets/{workload.scale}"

    def setup(self) -> Generator:
        self.testbed.app.register(FunctionSpec(
            name="az-ml-monolith",
            handler=make_monolith_handler(self.workload),
            memory_mb=1536, timeout_s=1800.0,
            measured_memory_mb=AZURE_MEASURED_MEMORY["monolith"],
            work_models=ml_work_models(self.workload.scale)))
        yield from self.testbed.azure.blob.put(
            self.dataset_key, self.workload.train_dataset,
            size=self.workload.dataset_bytes)

    def invoke(self) -> Generator:
        run_id = self.next_run_id()
        started = self.testbed.now
        result = yield from self.testbed.app.invoke(
            "az-ml-monolith",
            {"run_id": run_id, "dataset_key": self.dataset_key},
            trigger=TRIGGER_HTTP)
        return RunResult(
            deployment=self.name, started_at=started,
            finished_at=self.testbed.now, value=result.value,
            cold_start_delay=(result.queue_wait if result.cold_start
                              else None),
            queue_time=result.queue_wait, execution_time=result.duration)


def _register_azure_stage_functions(testbed: Testbed,
                                    workload: MLWorkload) -> None:
    """Register the four per-stage Azure functions (idempotent)."""
    models = ml_work_models(workload.scale)
    stages = [
        ("az-ml-prepare", make_prepare_handler(workload), "prepare"),
        ("az-ml-reduce", make_reduce_handler(workload), "reduce"),
        ("az-ml-train", make_train_all_handler(workload), "train"),
        ("az-ml-train-one", make_train_one_handler(workload), "train"),
        ("az-ml-select", make_select_handler(workload), "select"),
    ]
    for name, handler, memory_key in stages:
        if name in testbed.app.function_names:
            continue
        testbed.app.register(FunctionSpec(
            name=name, handler=handler, memory_mb=1536, timeout_s=1800.0,
            measured_memory_mb=AZURE_MEASURED_MEMORY[memory_key],
            work_models=models))


class AzureQueueMLTraining(Deployment):
    """Table II 'Az-Queue': isolated functions chained via Azure queues."""

    name = "Az-Queue"
    platform = "azure"
    stateful = False
    description = "Isolated functions connecting through Azure queues."
    function_count = 4
    code_size_mb = 304.0

    def __init__(self, testbed: Testbed, workload: MLWorkload):
        super().__init__(testbed)
        self.workload = workload
        self.dataset_key = f"datasets/{workload.scale}"
        self.chain: Optional[QueueChain] = None

    def setup(self) -> Generator:
        _register_azure_stage_functions(self.testbed, self.workload)
        self.chain = QueueChain(
            self.testbed.app, self.testbed.azure.meter,
            ["az-ml-prepare", "az-ml-reduce", "az-ml-train", "az-ml-select"],
            name="ml-training-chain")
        yield from self.testbed.azure.blob.put(
            self.dataset_key, self.workload.train_dataset,
            size=self.workload.dataset_bytes)

    def invoke(self) -> Generator:
        run_id = self.next_run_id()
        started = self.testbed.now
        chain_run = yield from self.chain.run(
            {"run_id": run_id, "dataset_key": self.dataset_key,
             "results": []})
        cold = _first_execution_delay(self.testbed.azure.telemetry, started)
        return RunResult(
            deployment=self.name, started_at=started,
            finished_at=self.testbed.now, value=chain_run.value,
            cold_start_delay=cold, queue_time=chain_run.queue_time,
            execution_time=chain_run.execution_time)


#: Orchestrator inline CPU per episode: the paper's Figure 4 orchestrator
#: re-reads its input data at the top of every replay, so the cost scales
#: with the dataset.
ORCHESTRATOR_INLINE_CPU_S = {"small": 0.3, "large": 1.5}
SUB_ORCHESTRATOR_INLINE_CPU_S = {"small": 0.15, "large": 0.8}


class AzureDorchMLTraining(Deployment):
    """Table II 'Az-Dorch': durable orchestrator calling activities."""

    name = "Az-Dorch"
    platform = "azure"
    stateful = True
    description = ("Workflow implemented using Azure Durable orchestrators, "
                   "calling isolated functions through call_activity.")
    function_count = 6
    code_size_mb = 304.0

    orchestrator_name = "ml-training-dorch"

    def __init__(self, testbed: Testbed, workload: MLWorkload):
        super().__init__(testbed)
        self.workload = workload
        self.dataset_key = f"datasets/{workload.scale}"

    def setup(self) -> Generator:
        _register_azure_stage_functions(self.testbed, self.workload)
        candidates = [candidate.name
                      for candidate in self.workload.candidates]

        def orchestrator(context):
            meta = context.input
            prepared = yield context.call_activity("az-ml-prepare", meta)
            reduced = yield context.call_activity("az-ml-reduce", prepared)
            tasks = [
                context.call_activity(
                    "az-ml-train-one",
                    {"run_id": meta["run_id"], "candidate": name,
                     "reduced_key": reduced["reduced_key"]})
                for name in candidates]
            results = yield context.task_all(tasks)
            best = yield context.call_activity(
                "az-ml-select",
                {"run_id": meta["run_id"],
                 "results": [_strip_model_key(result)
                             for result in results]})
            return best

        self.testbed.durable.register_orchestrator(OrchestratorSpec(
            self.orchestrator_name, orchestrator, measured_memory_mb=512,
            inline_cpu_s=ORCHESTRATOR_INLINE_CPU_S[self.workload.scale]))
        yield from self.testbed.azure.blob.put(
            self.dataset_key, self.workload.train_dataset,
            size=self.workload.dataset_bytes)

    def invoke(self) -> Generator:
        run_id = self.next_run_id()
        client = self.testbed.durable.client
        instance_id = yield from client.start_new(
            self.orchestrator_name,
            {"run_id": f"dorch-{run_id}", "dataset_key": self.dataset_key})
        value = yield from client.wait_for_completion(instance_id)
        instance = client.get_status(instance_id)
        return RunResult(
            deployment=self.name, started_at=instance.running_at,
            finished_at=instance.completed_at, value=value,
            cold_start_delay=instance.cold_start_delay)


def _strip_model_key(summary: Dict[str, Any]) -> Dict[str, Any]:
    return {"name": summary["name"], "error": summary["error"]}


class AzureDentMLTraining(Deployment):
    """Table II 'Az-Dent': orchestrator calling stateful entities.

    Feature engineering lives in entities (Encoding / Scalar /
    DReduction); small models train inside Trainer entities, large ones
    in a sub-orchestrator; a ModelSelection entity collects the best fit
    (paper Figures 3-4).
    """

    name = "Az-Dent"
    platform = "azure"
    stateful = True
    description = ("Workflow implemented using Azure Durable orchestrators, "
                   "calling stateful entities for operations through "
                   "call_entity.")
    function_count = 7
    code_size_mb = 304.0

    orchestrator_name = "ml-training-dent"
    sub_orchestrator_name = "ml-train-heavy-sub"

    def __init__(self, testbed: Testbed, workload: MLWorkload):
        super().__init__(testbed)
        self.workload = workload
        self.dataset_key = f"datasets/{workload.scale}"

    def setup(self) -> Generator:
        workload = self.workload
        _register_azure_stage_functions(self.testbed, workload)
        self._register_entities()
        heavy = [candidate for candidate in workload.candidates
                 if candidate.heavy]
        light = [candidate for candidate in workload.candidates
                 if not candidate.heavy]

        def sub_orchestrator(context):
            meta = context.input
            summary = yield context.call_activity("az-ml-train-one", meta)
            summary = _strip_model_key(summary)
            yield context.call_entity(
                EntityId("ModelSelection", "best_fit"), "report", summary)
            return summary

        def orchestrator(context):
            meta = context.input
            run_id = meta["run_id"]
            prepared = yield context.call_entity(
                EntityId("Encoding", "OneHot"), "encode", meta)
            reduced = yield context.call_entity(
                EntityId("DReduction", "PCA"), "decompose", prepared)
            tasks = []
            for candidate in heavy:
                tasks.append(context.call_sub_orchestrator(
                    self.sub_orchestrator_name,
                    {"run_id": run_id, "candidate": candidate.name,
                     "reduced_key": reduced["reduced_key"]}))
            for candidate in light:
                tasks.append(context.call_entity(
                    EntityId("Trainer", candidate.name), "train",
                    {"run_id": run_id, "candidate": candidate.name,
                     "reduced_key": reduced["reduced_key"]}))
            results = yield context.task_all(tasks)
            for result in results[len(heavy):]:
                yield context.call_entity(
                    EntityId("ModelSelection", "best_fit"), "report",
                    _strip_model_key(result))
            best = yield context.call_entity(
                EntityId("ModelSelection", "best_fit"), "get")
            return best

        scale = self.workload.scale
        self.testbed.durable.register_orchestrator(OrchestratorSpec(
            self.sub_orchestrator_name, sub_orchestrator,
            measured_memory_mb=512,
            inline_cpu_s=SUB_ORCHESTRATOR_INLINE_CPU_S[scale]))
        self.testbed.durable.register_orchestrator(OrchestratorSpec(
            self.orchestrator_name, orchestrator, measured_memory_mb=512,
            inline_cpu_s=ORCHESTRATOR_INLINE_CPU_S[scale]))
        yield from self.testbed.azure.blob.put(
            self.dataset_key, workload.train_dataset,
            size=workload.dataset_bytes)

    def _register_entities(self) -> None:
        workload = self.workload
        registered = self.testbed.durable.taskhub.entities

        def encode_op(ctx, state, meta) -> Generator:
            yield from ctx.blob.get(meta["dataset_key"])
            yield from ctx.work("deserialize",
                                units=workload.dataset_bytes / MB)
            trained = workload.trained
            yield from ctx.work("prepare")
            prepared_key = f"runs/{meta['run_id']}/prepared"
            yield from ctx.blob.put(prepared_key, {"enc": True},
                                    size=workload.prepared_bytes)
            return trained.encoder, {"run_id": meta["run_id"],
                                     "prepared_key": prepared_key}

        def decompose_op(ctx, state, meta) -> Generator:
            yield from ctx.blob.get(meta["prepared_key"])
            yield from ctx.work("deserialize",
                                units=workload.prepared_bytes / MB)
            trained = workload.trained
            yield from ctx.work("reduce")
            reduced_key = f"runs/{meta['run_id']}/reduced"
            yield from ctx.blob.put(reduced_key, {"pca": True},
                                    size=workload.reduced_bytes)
            return trained.pca, {"run_id": meta["run_id"],
                                 "reduced_key": reduced_key}

        def train_op(ctx, state, meta) -> Generator:
            yield from ctx.blob.get(meta["reduced_key"])
            yield from ctx.work("deserialize",
                                units=workload.reduced_bytes / MB)
            result = workload.candidate_result(meta["candidate"])
            yield from ctx.work(
                _train_model_name(result.candidate.algorithm))
            summary = {"name": meta["candidate"], "error": result.error}
            return result.model, summary

        def report_op(ctx, state, summary) -> Generator:
            yield from ctx.busy(0.01)
            if state is None or summary["error"] < state["error"]:
                return dict(summary), True
            return state, False

        models = ml_work_models(workload.scale)
        specs = [
            EntitySpec("Encoding", {"encode": encode_op},
                       measured_memory_mb=1024),
            EntitySpec("DReduction", {"decompose": decompose_op},
                       measured_memory_mb=1024),
            EntitySpec("Trainer", {"train": train_op},
                       measured_memory_mb=1024),
            EntitySpec("ModelSelection", {"report": report_op},
                       measured_memory_mb=512),
        ]
        for spec in specs:
            if spec.name in registered:
                continue
            self.testbed.durable.register_entity(spec)
            # Entity executions charge stage work models too.
            fn = self.testbed.app.get_function(f"entity::{spec.name}")
            fn.work_models = models

    def invoke(self) -> Generator:
        run_id = self.next_run_id()
        client = self.testbed.durable.client
        instance_id = yield from client.start_new(
            self.orchestrator_name,
            {"run_id": f"dent-{run_id}", "dataset_key": self.dataset_key})
        value = yield from client.wait_for_completion(instance_id)
        instance = client.get_status(instance_id)
        return RunResult(
            deployment=self.name, started_at=instance.running_at,
            finished_at=instance.completed_at, value=value,
            cold_start_delay=instance.cold_start_delay)


# ---------------------------------------------------------------------------
# GCP deployments (the cross-platform extension's third data point).
# ---------------------------------------------------------------------------

class GCPFuncMLTraining(Deployment):
    """'GCP-Func': one stateless Cloud Function runs everything."""

    name = "GCP-Func"
    platform = "gcp"
    stateful = False
    description = "One stateless Cloud Function (gen1)."
    function_count = 1
    code_size_mb = 63.1

    def __init__(self, testbed: Testbed, workload: MLWorkload):
        super().__init__(testbed)
        self.workload = workload
        self.dataset_key = f"datasets/{workload.scale}"

    def setup(self) -> Generator:
        self.testbed.cloudfunctions.register(FunctionSpec(
            name="gcp-ml-monolith",
            handler=make_monolith_handler(self.workload),
            memory_mb=1536, timeout_s=900.0,
            work_models=ml_work_models(self.workload.scale)))
        yield from self.testbed.gcp.blob.put(
            self.dataset_key, self.workload.train_dataset,
            size=self.workload.dataset_bytes)

    def invoke(self) -> Generator:
        run_id = self.next_run_id()
        started = self.testbed.now
        result = yield from self.testbed.cloudfunctions.invoke(
            "gcp-ml-monolith",
            {"run_id": run_id, "dataset_key": self.dataset_key})
        return RunResult(
            deployment=self.name, started_at=started,
            finished_at=self.testbed.now, value=result.value,
            cold_start_delay=result.cold_start_duration or None,
            execution_time=result.duration)


class GCPWorkflowsMLTraining(Deployment):
    """'GCP-Flows': a 4-call-step workflow chaining one function per stage.

    The structural analogue of AWS-Step — same four stages, same blob
    hand-offs — expressed in the step dialect: each call step reads and
    rebinds the ``data`` variable over a synchronous HTTP round-trip,
    and every step (not every transition) is billed.
    """

    name = "GCP-Flows"
    platform = "gcp"
    stateful = True
    description = ("Workflow implementation using GCP Workflows, calling "
                   "Cloud Functions from each step.")
    function_count = 4
    code_size_mb = 271.2

    workflow_name = "ml-training"

    def __init__(self, testbed: Testbed, workload: MLWorkload):
        super().__init__(testbed)
        self.workload = workload
        self.dataset_key = f"datasets/{workload.scale}"

    def setup(self) -> Generator:
        functions = self.testbed.cloudfunctions
        models = ml_work_models(self.workload.scale)
        stages = [
            ("gcp-ml-prepare", make_prepare_handler(self.workload)),
            ("gcp-ml-reduce", make_reduce_handler(self.workload)),
            ("gcp-ml-train", make_train_all_handler(self.workload)),
            ("gcp-ml-select", make_select_handler(self.workload)),
        ]
        for name, handler in stages:
            functions.register(FunctionSpec(
                name=name, handler=handler, memory_mb=1536,
                timeout_s=900.0, work_models=models))
        self.testbed.workflows.create_workflow(self.workflow_name, [
            {"name": "Prepare", "call": "gcp-ml-prepare",
             "args": "$.data", "result": "data"},
            {"name": "Reduce", "call": "gcp-ml-reduce",
             "args": "$.data", "result": "data"},
            {"name": "Train", "call": "gcp-ml-train",
             "args": "$.data", "result": "data"},
            {"name": "Select", "call": "gcp-ml-select",
             "args": "$.data", "result": "data"},
            {"name": "Done", "return": "$.data"},
        ])
        yield from self.testbed.gcp.blob.put(
            self.dataset_key, self.workload.train_dataset,
            size=self.workload.dataset_bytes)

    def invoke(self) -> Generator:
        run_id = self.next_run_id()
        started = self.testbed.now
        record = yield from self.testbed.workflows.execute(
            self.workflow_name,
            {"run_id": run_id, "dataset_key": self.dataset_key})
        if record.status != "SUCCEEDED":
            raise RuntimeError(
                f"GCP-Flows training failed: {record.error}")
        cold = _first_execution_delay(self.testbed.gcp.telemetry, started)
        return RunResult(
            deployment=self.name, started_at=started,
            finished_at=self.testbed.now, value=record.output,
            cold_start_delay=cold)


# ---------------------------------------------------------------------------
# Inference deployments (paper Figure 4 / Figure 9).
# ---------------------------------------------------------------------------

def make_inference_stage_handlers(workload: MLWorkload):
    """Stateless handlers for the inference path."""

    def apply_prepare(ctx, event) -> Generator:
        yield from ctx.blob.get(event["dataset_key"])
        yield from ctx.work("deserialize",
                            units=workload.test_dataset_bytes / MB)
        yield from ctx.work("apply_prepare")
        key = f"infer/{event['run_id']}/prepared"
        yield from ctx.blob.put(key, {"applied": True},
                                size=workload.prepared_bytes)
        return {"run_id": event["run_id"], "prepared_key": key}

    def apply_reduce(ctx, event) -> Generator:
        yield from ctx.blob.get(event["prepared_key"])
        yield from ctx.work("deserialize",
                            units=workload.prepared_bytes / MB)
        yield from ctx.work("apply_reduce")
        key = f"infer/{event['run_id']}/reduced"
        yield from ctx.blob.put(key, {"reduced": True},
                                size=workload.reduced_bytes)
        return {"run_id": event["run_id"], "reduced_key": key}

    def infer_from_blob(ctx, event) -> Generator:
        """AWS path: fetch the model from slow remote storage, predict.

        The model object is re-hydrated from its serialized form on every
        run — the cost Azure's live entities avoid (Fig 9 discussion).
        """
        yield from ctx.blob.get(event["reduced_key"])
        yield from ctx.blob.get(event["model_key"])
        yield from ctx.work("deserialize",
                            units=workload.reduced_bytes / MB)
        yield from ctx.work("load_model",
                            units=workload.best_model_bytes / MB)
        predictions = workload.pipeline.infer(workload.train_dataset,
                                              workload.test_dataset)
        yield from ctx.work("inference")
        return {"run_id": event["run_id"],
                "n_predictions": int(len(predictions))}

    def infer_stateless(ctx, event) -> Generator:
        """Azure path: the model object arrived from an entity."""
        yield from ctx.blob.get(event["reduced_key"])
        yield from ctx.work("deserialize",
                            units=workload.reduced_bytes / MB)
        predictions = workload.pipeline.infer(workload.train_dataset,
                                              workload.test_dataset)
        yield from ctx.work("inference")
        return {"run_id": event["run_id"],
                "n_predictions": int(len(predictions))}

    return apply_prepare, apply_reduce, infer_from_blob, infer_stateless


class AWSStepMLInference(Deployment):
    """AWS-Step inference: the model comes from slow remote storage."""

    name = "AWS-Step"
    platform = "aws"
    stateful = True
    description = "Inference workflow as a state machine."
    function_count = 3
    code_size_mb = 271.2

    machine_name = "ml-inference"
    model_key = "trained/best-model"

    def __init__(self, testbed: Testbed, workload: MLWorkload):
        super().__init__(testbed)
        self.workload = workload
        self.dataset_key = "datasets/test"

    def setup(self) -> Generator:
        workload = self.workload
        models = ml_work_models(workload.scale)
        (apply_prepare, apply_reduce,
         infer_from_blob, _) = make_inference_stage_handlers(workload)
        for name, handler in [("aws-infer-prepare", apply_prepare),
                              ("aws-infer-reduce", apply_reduce),
                              ("aws-infer-predict", infer_from_blob)]:
            self.testbed.lambdas.register(FunctionSpec(
                name=name, handler=handler, memory_mb=1536,
                timeout_s=900.0, work_models=models))
        self.testbed.stepfunctions.create_state_machine(self.machine_name, {
            "StartAt": "Prepare",
            "States": {
                "Prepare": {"Type": "Task", "Resource": "aws-infer-prepare",
                            "Next": "Reduce"},
                "Reduce": {"Type": "Task", "Resource": "aws-infer-reduce",
                           "Next": "Predict",
                           "ResultPath": "$"},
                "Predict": {"Type": "Task", "Resource": "aws-infer-predict",
                            "Parameters": {
                                "run_id.$": "$.run_id",
                                "reduced_key.$": "$.reduced_key",
                                "model_key": self.model_key},
                            "End": True},
            },
        })
        # The pre-trained model and test data live in S3.
        yield from self.testbed.aws.blob.put(
            self.model_key, workload.trained.best.model,
            size=workload.best_model_bytes)
        yield from self.testbed.aws.blob.put(
            self.dataset_key, workload.test_dataset,
            size=workload.test_dataset_bytes)

    def invoke(self) -> Generator:
        run_id = self.next_run_id()
        started = self.testbed.now
        record = yield from self.testbed.stepfunctions.start_execution(
            self.machine_name,
            {"run_id": run_id, "dataset_key": self.dataset_key})
        if record.status != "SUCCEEDED":
            raise RuntimeError(f"AWS-Step inference failed: {record.error}")
        cold = _first_execution_delay(self.testbed.aws.telemetry, started)
        return RunResult(
            deployment=self.name, started_at=started,
            finished_at=self.testbed.now, value=record.output,
            cold_start_delay=cold)


class GCPWorkflowsMLInference(Deployment):
    """GCP-Flows inference: the model comes from slow remote storage.

    Mirrors the AWS-Step inference shape — GCP Workflows has no live
    entities, so like AWS the model is re-hydrated from blob storage on
    every run; an assign step plays the role of ASL ``Parameters``,
    injecting the static model key into the document.
    """

    name = "GCP-Flows"
    platform = "gcp"
    stateful = True
    description = "Inference workflow as GCP Workflows steps."
    function_count = 3
    code_size_mb = 271.2

    workflow_name = "ml-inference"
    model_key = "trained/best-model"

    def __init__(self, testbed: Testbed, workload: MLWorkload):
        super().__init__(testbed)
        self.workload = workload
        self.dataset_key = "datasets/test"

    def setup(self) -> Generator:
        workload = self.workload
        models = ml_work_models(workload.scale)
        (apply_prepare, apply_reduce,
         infer_from_blob, _) = make_inference_stage_handlers(workload)
        for name, handler in [("gcp-infer-prepare", apply_prepare),
                              ("gcp-infer-reduce", apply_reduce),
                              ("gcp-infer-predict", infer_from_blob)]:
            self.testbed.cloudfunctions.register(FunctionSpec(
                name=name, handler=handler, memory_mb=1536,
                timeout_s=900.0, work_models=models))
        self.testbed.workflows.create_workflow(self.workflow_name, [
            {"name": "Prepare", "call": "gcp-infer-prepare",
             "args": "$.data", "result": "data"},
            {"name": "Reduce", "call": "gcp-infer-reduce",
             "args": "$.data", "result": "data"},
            {"name": "BindModel", "assign": [
                ["data", {"run_id": "$.data.run_id",
                          "reduced_key": "$.data.reduced_key",
                          "model_key": self.model_key}]]},
            {"name": "Predict", "call": "gcp-infer-predict",
             "args": "$.data", "result": "data"},
            {"name": "Done", "return": "$.data"},
        ])
        # The pre-trained model and test data live in Cloud Storage.
        yield from self.testbed.gcp.blob.put(
            self.model_key, workload.trained.best.model,
            size=workload.best_model_bytes)
        yield from self.testbed.gcp.blob.put(
            self.dataset_key, workload.test_dataset,
            size=workload.test_dataset_bytes)

    def invoke(self) -> Generator:
        run_id = self.next_run_id()
        started = self.testbed.now
        record = yield from self.testbed.workflows.execute(
            self.workflow_name,
            {"run_id": run_id, "dataset_key": self.dataset_key})
        if record.status != "SUCCEEDED":
            raise RuntimeError(
                f"GCP-Flows inference failed: {record.error}")
        cold = _first_execution_delay(self.testbed.gcp.telemetry, started)
        return RunResult(
            deployment=self.name, started_at=started,
            finished_at=self.testbed.now, value=record.output,
            cold_start_delay=cold)


class _AzureDurableMLInference(Deployment):
    """Common wiring for the two Azure durable inference variants."""

    platform = "azure"
    stateful = True
    function_count = 5
    code_size_mb = 304.0

    orchestrator_name = ""   # per subclass
    dataset_key = "datasets/test"

    def __init__(self, testbed: Testbed, workload: MLWorkload):
        super().__init__(testbed)
        self.workload = workload

    def _register_shared(self) -> Generator:
        workload = self.workload
        models = ml_work_models(workload.scale)
        (apply_prepare, apply_reduce,
         _, infer_stateless) = make_inference_stage_handlers(workload)
        app = self.testbed.app
        for name, handler in [("az-infer-prepare", apply_prepare),
                              ("az-infer-reduce", apply_reduce),
                              ("Inference", infer_stateless)]:
            if name not in app.function_names:
                app.register(FunctionSpec(
                    name=name, handler=handler, memory_mb=1536,
                    timeout_s=1800.0,
                    measured_memory_mb=AZURE_MEASURED_MEMORY["inference"],
                    work_models=models))
        self._register_inference_entities()
        yield from self.testbed.azure.blob.put(
            self.dataset_key, workload.test_dataset,
            size=workload.test_dataset_bytes)
        yield from self._seed_entity_states()

    def _register_inference_entities(self) -> None:
        workload = self.workload
        registered = self.testbed.durable.taskhub.entities
        models = ml_work_models(workload.scale)

        def encode_op(ctx, state, meta) -> Generator:
            yield from ctx.blob.get(meta["dataset_key"])
            yield from ctx.work("deserialize",
                                units=workload.test_dataset_bytes / MB)
            yield from ctx.work("apply_prepare")
            key = f"infer/{meta['run_id']}/prepared"
            yield from ctx.blob.put(key, {"applied": True},
                                    size=workload.prepared_bytes)
            return state, {"run_id": meta["run_id"], "prepared_key": key}

        def scale_op(ctx, state, meta) -> Generator:
            # Scaling is folded into encode time-wise; kept as its own
            # entity hop to mirror the paper's Figure 4 chain.
            yield from ctx.busy(0.05)
            return state, meta

        def decompose_op(ctx, state, meta) -> Generator:
            yield from ctx.blob.get(meta["prepared_key"])
            yield from ctx.work("deserialize",
                                units=workload.prepared_bytes / MB)
            yield from ctx.work("apply_reduce")
            key = f"infer/{meta['run_id']}/reduced"
            yield from ctx.blob.put(key, {"reduced": True},
                                    size=workload.reduced_bytes)
            return state, {"run_id": meta["run_id"], "reduced_key": key}

        def get_ref_op(ctx, state, _input) -> Generator:
            """Return a ≤64 KB model descriptor, not the multi-MB model.

            The paper's Figure 4 nominally passes the model object out of
            the entity, but a multi-MB model cannot cross the 64 KB
            durable message limit; the reference pattern is how the live
            state is handed to the stateless Inference activity.
            """
            yield from ctx.busy(0.01)
            return state, {"name": workload.trained.best.candidate.name,
                           "bytes": workload.best_model_bytes}

        specs = [
            EntitySpec("InferEncoding", {"encode": encode_op}),
            EntitySpec("InferScalar", {"scale": scale_op}),
            EntitySpec("InferDReduction", {"decompose": decompose_op}),
            EntitySpec("InferModel", {"get_ref": get_ref_op}),
        ]
        for spec in specs:
            if spec.name in registered:
                continue
            self.testbed.durable.register_entity(spec)
            fn = self.testbed.app.get_function(f"entity::{spec.name}")
            fn.work_models = models

    def _seed_entity_states(self) -> Generator:
        """Persist pre-trained artifacts into the entity table.

        Mirrors the paper's setup where the training workflow has already
        populated the entities the inference workflow reads.
        """
        workload = self.workload
        table = self.testbed.durable.taskhub.entity_table
        trained = workload.trained
        yield from table.insert("entity:InferEncoding", "OneHot",
                                trained.encoder)
        yield from table.insert("entity:InferScalar", "scalar",
                                trained.scaler)
        yield from table.insert("entity:InferDReduction", "PCA", trained.pca)
        yield from table.insert("entity:InferModel", "best_fit",
                                trained.best.model,
                                size=workload.best_model_bytes)

    def invoke(self) -> Generator:
        run_id = self.next_run_id()
        client = self.testbed.durable.client
        instance_id = yield from client.start_new(
            self.orchestrator_name,
            {"run_id": f"{self.name}-{run_id}",
             "dataset_key": self.dataset_key})
        value = yield from client.wait_for_completion(instance_id)
        instance = client.get_status(instance_id)
        return RunResult(
            deployment=self.name, started_at=instance.running_at,
            finished_at=instance.completed_at, value=value,
            cold_start_delay=instance.cold_start_delay)


class AzureDorchMLInference(_AzureDurableMLInference):
    """Az-Dorch inference: read entity states, run stateless activities.

    The paper's recommended pattern (§IV-A): "we used get operation to
    read the model, and then call a stateless and scalable activity
    (Inference) to do the prediction".
    """

    name = "Az-Dorch"
    description = "Durable orchestrator: entity gets + stateless activities."
    orchestrator_name = "ml-inference-dorch"

    def setup(self) -> Generator:
        yield from self._register_shared()

        def orchestrator(context):
            meta = context.input
            prepared = yield context.call_activity("az-infer-prepare", meta)
            reduced = yield context.call_activity("az-infer-reduce",
                                                  prepared)
            # Read the best-fit model from the entity that holds it (the
            # paper's §IV-A pattern: get the state out, run the heavy
            # read-only operation in a scalable stateless activity).
            model_ref = yield context.call_entity(
                EntityId("InferModel", "best_fit"), "get_ref")
            reduced = dict(reduced, model=model_ref)
            result = yield context.call_activity("Inference", reduced)
            return result

        self.testbed.durable.register_orchestrator(OrchestratorSpec(
            self.orchestrator_name, orchestrator, measured_memory_mb=256))


class AzureDentMLInference(_AzureDurableMLInference):
    """Az-Dent inference: the operations run inside the entities.

    The paper's Figure 4 chain — encode, scale, decompose as entity
    operations — which serializes on the entities and runs slower than
    Az-Dorch (Fig 9: +24 %).
    """

    name = "Az-Dent"
    description = "Durable orchestrator: operations inside entities."
    orchestrator_name = "ml-inference-dent"

    def setup(self) -> Generator:
        yield from self._register_shared()

        def orchestrator(context):
            meta = context.input
            prepared = yield context.call_entity(
                EntityId("InferEncoding", "OneHot"), "encode", meta)
            prepared = yield context.call_entity(
                EntityId("InferScalar", "scalar"), "scale", prepared)
            reduced = yield context.call_entity(
                EntityId("InferDReduction", "PCA"), "decompose", prepared)
            model_ref = yield context.call_entity(
                EntityId("InferModel", "best_fit"), "get_ref")
            reduced = dict(reduced, model=model_ref)
            result = yield context.call_activity("Inference", reduced)
            return result

        self.testbed.durable.register_orchestrator(OrchestratorSpec(
            self.orchestrator_name, orchestrator, measured_memory_mb=256))


# ---------------------------------------------------------------------------
# Builders and helpers.
# ---------------------------------------------------------------------------

def _first_execution_delay(telemetry, since: float) -> Optional[float]:
    """Trigger-to-first-function-start delay (the AWS cold-start metric)."""
    starts = [span.start for span in telemetry.spans
              if span.kind == "execution" and span.start >= since]
    return min(starts) - since if starts else None


def build_ml_training_deployments(testbed: Testbed, scale: str,
                                  seed: int = 0) -> Dict[str, Deployment]:
    """All six Table II variants plus the GCP extension variants.

    Variants whose platform the testbed did not build (``platforms=``
    restriction) are omitted.
    """
    workload = ml_workload(scale, seed)
    deployments = {
        "AWS-Lambda": AWSLambdaMLTraining,
        "AWS-Step": AWSStepMLTraining,
        "Az-Func": AzureFuncMLTraining,
        "Az-Queue": AzureQueueMLTraining,
        "Az-Dorch": AzureDorchMLTraining,
        "Az-Dent": AzureDentMLTraining,
        "GCP-Func": GCPFuncMLTraining,
        "GCP-Flows": GCPWorkflowsMLTraining,
    }
    return {name: cls(testbed, workload)
            for name, cls in deployments.items()
            if cls.platform in testbed.platform_names}


def build_ml_inference_deployments(testbed: Testbed, scale: str,
                                   seed: int = 0) -> Dict[str, Deployment]:
    """The paper's three inference variants (Fig 9) plus GCP-Flows."""
    workload = ml_workload(scale, seed)
    deployments = {
        "AWS-Step": AWSStepMLInference,
        "Az-Dorch": AzureDorchMLInference,
        "Az-Dent": AzureDentMLInference,
        "GCP-Flows": GCPWorkflowsMLInference,
    }
    return {name: cls(testbed, workload)
            for name, cls in deployments.items()
            if cls.platform in testbed.platform_names}
