"""Deployment abstraction: one Table II row, runnable on a testbed."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Generator, Optional

from repro.core.testbed import Testbed


@dataclass
class RunResult:
    """One end-to-end run of a deployment."""

    deployment: str
    started_at: float
    finished_at: float
    value: Any = None
    #: trigger-to-start delay, where the implementation exposes one
    cold_start_delay: Optional[float] = None
    #: breakdown components (Fig 8 / Fig 13), when the deployment reports them
    queue_time: float = 0.0
    execution_time: float = 0.0

    @property
    def latency(self) -> float:
        """End-to-end latency as the paper defines it per platform."""
        return self.finished_at - self.started_at


class Deployment:
    """One implementation variant of one workload.

    Subclasses register their functions in ``setup()`` (a generator, since
    seeding blob data takes simulated time) and implement ``invoke()``.
    """

    #: Table II metadata — overridden per subclass.
    name: str = ""
    platform: str = ""           # a registered backend name: 'aws' | 'azure' | 'gcp'
    stateful: bool = False
    description: str = ""
    function_count: int = 0
    code_size_mb: float = 0.0    # as reported by the paper (Table II)

    _run_ids = itertools.count(1)

    def __init__(self, testbed: Testbed):
        self.testbed = testbed
        self._ready = False

    # -- lifecycle --------------------------------------------------------------

    def deploy(self) -> None:
        """Register functions and seed storage (runs simulated time)."""
        if self._ready:
            return
        self.testbed.run(self.setup())
        self._ready = True

    def setup(self) -> Generator:
        """Override: register functions, upload artifacts.  A generator."""
        raise NotImplementedError
        yield  # pragma: no cover

    def invoke(self) -> Generator:
        """Override: one end-to-end run; returns a :class:`RunResult`."""
        raise NotImplementedError
        yield  # pragma: no cover

    # -- helpers ------------------------------------------------------------------

    def next_run_id(self) -> int:
        return next(self._run_ids)

    @property
    def stack(self):
        """This deployment's platform meters."""
        return self.testbed.stack(self.platform)

    def __repr__(self) -> str:
        return (f"{type(self).__name__}(name={self.name!r}, "
                f"platform={self.platform}, stateful={self.stateful})")
