"""Video-processing deployments (paper §III-B, Figure 5).

Three steps — split, parallel face detection, merge — implemented as:

* ``AWS-Lambda`` / ``Az-Func``: one function does everything serially;
* ``AWS-Step``: a state machine whose Map state fans the chunks out;
* ``Az-Dorch``: a durable orchestrator fanning out with ``task_all``.

Chunk *references* (frame ranges) travel inline; chunk *bytes* and the
1 MB detection model are fetched from blob storage by each worker, as the
paper describes ("the model ... is fetched by each worker from the remote
storage").
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional

from repro.azure import OrchestratorSpec
from repro.azure.app import TRIGGER_HTTP
from repro.core.deployments.base import Deployment, RunResult
from repro.core.stage_models import VIDEO_DETECT_S_PER_MB, video_work_models
from repro.core.testbed import Testbed
from repro.platforms.base import FunctionSpec
from repro.storage.payload import KB, MB
from repro.workloads.video import (
    DetectionModel,
    SyntheticVideo,
    VideoPipeline,
    chunk_video,
    merge_chunks,
)


class VideoWorkload:
    """Shared video artifacts: the clip, the model, real detections."""

    def __init__(self, n_workers: int = 20, seed: int = 0,
                 n_frames: int = 2000, bytes_per_frame: int = 50 * KB,
                 detect_frames_per_chunk: int = 2):
        if n_workers <= 0:
            raise ValueError("n_workers must be positive")
        self.n_workers = n_workers
        self.seed = seed
        #: 2000 frames × 50 KB = ~100 MB, the paper's Sintel clip size.
        self.video = SyntheticVideo(
            n_frames=n_frames, height=72, width=128, seed=seed,
            faces_per_frame=0.6, bytes_per_frame=bytes_per_frame)
        self.model = DetectionModel()
        self.pipeline = VideoPipeline(self.video, self.model)
        #: how many real frames each chunk detection renders (a sample —
        #: rendering all 2000 frames per run would swamp the campaigns)
        self.detect_frames_per_chunk = detect_frames_per_chunk

    @property
    def total_mb(self) -> float:
        return self.video.total_bytes / MB

    def chunks(self, n_workers: Optional[int] = None,
               max_chunk_bytes: Optional[int] = None):
        return chunk_video(self.video, n_workers or self.n_workers,
                           max_chunk_bytes=max_chunk_bytes)

    def detect_sample(self, start_frame: int) -> List[tuple]:
        """Real detection on a small sample of a chunk's frames."""
        stop = min(start_frame + self.detect_frames_per_chunk,
                   self.video.n_frames)
        sample = chunk_video(self.video, self.video.n_frames)[0]
        detections: List[tuple] = []
        for index in range(start_frame, stop):
            frame = self.video.frame(index)
            from repro.workloads.video.facedetect import FaceDetector
            for row, col in FaceDetector(self.model).detect_frame(frame):
                detections.append((index, row, col))
        return detections


_WORKLOADS: Dict[tuple, VideoWorkload] = {}


def video_workload(n_workers: int = 20, seed: int = 0,
                   **kwargs) -> VideoWorkload:
    """Process-wide cache of video workloads."""
    key = (n_workers, seed, tuple(sorted(kwargs.items())))
    if key not in _WORKLOADS:
        _WORKLOADS[key] = VideoWorkload(n_workers=n_workers, seed=seed,
                                        **kwargs)
    return _WORKLOADS[key]


#: Blob keys shared by all video deployments.
VIDEO_KEY = "videos/input"
MODEL_KEY = "models/face-detect"


def make_split_handler(workload: VideoWorkload,
                       max_chunk_bytes: Optional[int] = None):
    """Step 1: fetch the video, cut it into chunks, store chunk bytes.

    ``max_chunk_bytes`` raises the chunk count past ``n_workers`` when a
    platform cannot digest ``total / n_workers`` bytes in one invocation
    (payload or execution-time limits); see :func:`chunk_video`.
    """
    def handler(ctx, event) -> Generator:
        yield from ctx.blob.get(VIDEO_KEY)
        n_workers = event["n_workers"]
        chunks = workload.chunks(n_workers, max_chunk_bytes)
        yield from ctx.work("split", units=workload.total_mb)
        chunk_refs = []
        for chunk in chunks:
            key = f"video-runs/{event['run_id']}/chunks/{chunk.index}"
            yield from ctx.blob.put(key, {"range": (chunk.start_frame,
                                                    chunk.stop_frame)},
                                    size=chunk.payload_size)
            chunk_refs.append({
                "run_id": event["run_id"], "chunk_key": key,
                "index": chunk.index, "start": chunk.start_frame,
                "stop": chunk.stop_frame,
                "chunk_bytes": chunk.payload_size})
        return {"run_id": event["run_id"], "chunks": chunk_refs}
    return handler


def make_detect_handler(workload: VideoWorkload):
    """Step 2 (per worker): fetch model + chunk, detect faces."""
    def handler(ctx, event) -> Generator:
        yield from ctx.blob.get(MODEL_KEY)        # 1 MB model per worker
        yield from ctx.blob.get(event["chunk_key"])
        detections = workload.detect_sample(event["start"])  # real kernel
        yield from ctx.work("detect", units=event["chunk_bytes"] / MB)
        return {"index": event["index"],
                "n_detections": len(detections),
                "detections": detections[:50]}
    return handler


def make_merge_handler(workload: VideoWorkload):
    """Step 3: aggregate worker outputs into the final result."""
    def handler(ctx, event) -> Generator:
        results = event["results"]
        yield from ctx.work("merge", units=len(results))
        merged = merge_chunks(
            [(result["index"], result["detections"])
             for result in results])
        output_key = f"video-runs/{event['run_id']}/result"
        yield from ctx.blob.put(output_key, merged,
                                size=workload.video.total_bytes)
        return {"run_id": event["run_id"], "n_chunks": merged.n_chunks,
                "n_detections": sum(result["n_detections"]
                                    for result in results)}
    return handler


def make_video_monolith_handler(workload: VideoWorkload):
    """All three steps inside one function."""
    def handler(ctx, event) -> Generator:
        yield from ctx.blob.get(VIDEO_KEY)
        yield from ctx.blob.get(MODEL_KEY)
        chunks = workload.chunks(event["n_workers"])
        yield from ctx.work("split", units=workload.total_mb)
        results = []
        for chunk in chunks:
            detections = workload.detect_sample(chunk.start_frame)
            yield from ctx.work("detect",
                                units=chunk.payload_size / MB)
            results.append((chunk.index, detections))
        yield from ctx.work("merge", units=len(chunks))
        merged = merge_chunks(results)
        output_key = f"video-runs/{event['run_id']}/result"
        yield from ctx.blob.put(output_key, merged,
                                size=workload.video.total_bytes)
        return {"run_id": event["run_id"], "n_chunks": merged.n_chunks}
    return handler


class AWSLambdaVideo(Deployment):
    """Table II 'AWS-Lambda' video: one Lambda, serial detection."""

    name = "AWS-Lambda"
    platform = "aws"
    stateful = False
    description = "One stateless Lambda function."
    function_count = 1
    code_size_mb = 70.8

    def __init__(self, testbed: Testbed, workload: VideoWorkload):
        super().__init__(testbed)
        self.workload = workload

    def setup(self) -> Generator:
        self.testbed.lambdas.register(FunctionSpec(
            name="video-monolith",
            handler=make_video_monolith_handler(self.workload),
            memory_mb=2048, timeout_s=900.0,
            work_models=video_work_models()))
        yield from _seed_video_blobs(self.testbed.aws.blob, self.workload)

    def invoke(self, n_workers: Optional[int] = None) -> Generator:
        run_id = self.next_run_id()
        started = self.testbed.now
        result = yield from self.testbed.lambdas.invoke(
            "video-monolith",
            {"run_id": run_id, "n_workers": 1})
        return RunResult(
            deployment=self.name, started_at=started,
            finished_at=self.testbed.now, value=result.value,
            cold_start_delay=result.cold_start_duration or None,
            execution_time=result.duration)


class AWSStepVideo(Deployment):
    """Table II 'AWS-Step' video: Map-state fan-out (Figure 5)."""

    name = "AWS-Step"
    platform = "aws"
    stateful = True
    description = ("Workflow implementation using AWS Step Functions "
                   "with a Map state for dynamic parallelism.")
    function_count = 3
    code_size_mb = 214.8

    machine_name = "video-processing"

    def __init__(self, testbed: Testbed, workload: VideoWorkload):
        super().__init__(testbed)
        self.workload = workload

    def setup(self) -> Generator:
        lambdas = self.testbed.lambdas
        models = video_work_models()
        for name, handler in [
                ("video-split", make_split_handler(self.workload)),
                ("video-detect", make_detect_handler(self.workload)),
                ("video-merge", make_merge_handler(self.workload))]:
            lambdas.register(FunctionSpec(
                name=name, handler=handler, memory_mb=2048,
                timeout_s=900.0, work_models=models))
        self.testbed.stepfunctions.create_state_machine(self.machine_name, {
            "Comment": "Video processing (paper Figure 5)",
            "StartAt": "Split",
            "States": {
                "Split": {"Type": "Task", "Resource": "video-split",
                          "Next": "DetectFaces"},
                "DetectFaces": {
                    "Type": "Map", "ItemsPath": "$.chunks",
                    "ResultPath": "$.results",
                    "Iterator": {
                        "StartAt": "Detect",
                        "States": {"Detect": {"Type": "Task",
                                              "Resource": "video-detect",
                                              "End": True}},
                    },
                    "Next": "Merge"},
                "Merge": {"Type": "Task", "Resource": "video-merge",
                          "Parameters": {"run_id.$": "$.run_id",
                                         "results.$": "$.results"},
                          "End": True},
            },
        })
        yield from _seed_video_blobs(self.testbed.aws.blob, self.workload)

    def invoke(self, n_workers: Optional[int] = None) -> Generator:
        run_id = self.next_run_id()
        started = self.testbed.now
        record = yield from self.testbed.stepfunctions.start_execution(
            self.machine_name,
            {"run_id": run_id,
             "n_workers": n_workers or self.workload.n_workers})
        if record.status != "SUCCEEDED":
            raise RuntimeError(f"AWS-Step video failed: {record.error}")
        return RunResult(
            deployment=self.name, started_at=started,
            finished_at=self.testbed.now, value=record.output)


class AzureFuncVideo(Deployment):
    """Table II 'Az-Func' video: one Azure function, serial detection."""

    name = "Az-Func"
    platform = "azure"
    stateful = False
    description = "One stateless Azure function."
    function_count = 1
    code_size_mb = 204.0

    def __init__(self, testbed: Testbed, workload: VideoWorkload):
        super().__init__(testbed)
        self.workload = workload

    def setup(self) -> Generator:
        self.testbed.app.register(FunctionSpec(
            name="az-video-monolith",
            handler=make_video_monolith_handler(self.workload),
            memory_mb=1536, timeout_s=1800.0, measured_memory_mb=1024,
            work_models=video_work_models()))
        yield from _seed_video_blobs(self.testbed.azure.blob, self.workload)

    def invoke(self, n_workers: Optional[int] = None) -> Generator:
        run_id = self.next_run_id()
        started = self.testbed.now
        result = yield from self.testbed.app.invoke(
            "az-video-monolith", {"run_id": run_id, "n_workers": 1},
            trigger=TRIGGER_HTTP)
        return RunResult(
            deployment=self.name, started_at=started,
            finished_at=self.testbed.now, value=result.value,
            cold_start_delay=(result.queue_wait if result.cold_start
                              else None),
            queue_time=result.queue_wait, execution_time=result.duration)


class AzureDorchVideo(Deployment):
    """Table II 'Az-Dorch' video: durable fan-out with task_all.

    "Azure durable orchestrator library allows dynamic parallel workers
    to be implemented with a single line of code" (§V-B) — the
    ``task_all`` below — but the workers then fight the scale controller
    for instances.
    """

    name = "Az-Dorch"
    platform = "azure"
    stateful = True
    description = ("Workflow implemented using Azure Durable orchestrators "
                   "with a parallel activity fan-out.")
    function_count = 3
    code_size_mb = 219.0

    orchestrator_name = "video-dorch"

    def __init__(self, testbed: Testbed, workload: VideoWorkload):
        super().__init__(testbed)
        self.workload = workload

    def setup(self) -> Generator:
        app = self.testbed.app
        models = video_work_models()
        for name, handler in [
                ("az-video-split", make_split_handler(self.workload)),
                ("az-video-detect", make_detect_handler(self.workload)),
                ("az-video-merge", make_merge_handler(self.workload))]:
            if name not in app.function_names:
                app.register(FunctionSpec(
                    name=name, handler=handler, memory_mb=1536,
                    timeout_s=1800.0, measured_memory_mb=1024,
                    work_models=models))

        def orchestrator(context):
            meta = context.input
            split = yield context.call_activity("az-video-split", meta)
            tasks = [context.call_activity("az-video-detect", chunk)
                     for chunk in split["chunks"]]
            results = yield context.task_all(tasks)
            merged = yield context.call_activity(
                "az-video-merge",
                {"run_id": meta["run_id"],
                 "results": [{"index": result["index"],
                              "n_detections": result["n_detections"],
                              "detections": []}
                             for result in results]})
            return merged

        self.testbed.durable.register_orchestrator(OrchestratorSpec(
            self.orchestrator_name, orchestrator, measured_memory_mb=256))
        yield from _seed_video_blobs(self.testbed.azure.blob, self.workload)

    def invoke(self, n_workers: Optional[int] = None) -> Generator:
        run_id = self.next_run_id()
        client = self.testbed.durable.client
        instance_id = yield from client.start_new(
            self.orchestrator_name,
            {"run_id": f"video-{run_id}",
             "n_workers": n_workers or self.workload.n_workers})
        value = yield from client.wait_for_completion(instance_id)
        instance = client.get_status(instance_id)
        return RunResult(
            deployment=self.name, started_at=instance.running_at,
            finished_at=instance.completed_at, value=value,
            cold_start_delay=instance.cold_start_delay)


class GCPWorkflowsVideo(Deployment):
    """'GCP-Flows' video: a parallel ``for`` step fans the chunks out.

    The step dialect's dynamic-parallelism primitive — the analogue of
    AWS's Map state and Azure's ``task_all``.  Worker outputs are
    stripped to summaries inside the loop body (like the Azure variant)
    so the merge call stays under the 64 KB step payload limit.

    gen1 caps execution at 540 s (``GCPCalibration.time_limit_s``), far
    below Lambda's 900 s and Azure's 1800 s, so at small fan-outs a
    per-worker chunk of the 100 MB clip cannot finish in one invocation.
    A real GCP port must split finer; the split function is therefore
    registered with a chunk-byte cap derived from the time limit, and
    the ``for`` step simply runs the extra chunks.
    """

    name = "GCP-Flows"
    platform = "gcp"
    stateful = True
    description = ("Workflow implementation using GCP Workflows with a "
                   "parallel for step for dynamic parallelism.")
    function_count = 3
    code_size_mb = 214.8

    workflow_name = "video-processing"

    def __init__(self, testbed: Testbed, workload: VideoWorkload):
        super().__init__(testbed)
        self.workload = workload

    def setup(self) -> Generator:
        functions = self.testbed.cloudfunctions
        models = video_work_models()
        calibration = self.testbed.calibration("gcp")
        # Largest chunk whose expected detection time fits the gen1
        # execution cap with headroom for fetches and jitter.
        budget_s = 0.8 * calibration.time_limit_s
        max_chunk_bytes = int(max(
            1.0, (budget_s - 0.5) / VIDEO_DETECT_S_PER_MB) * MB)
        for name, handler in [
                ("gcp-video-split", make_split_handler(
                    self.workload, max_chunk_bytes=max_chunk_bytes)),
                ("gcp-video-detect", make_detect_handler(self.workload)),
                ("gcp-video-merge", make_merge_handler(self.workload))]:
            functions.register(FunctionSpec(
                name=name, handler=handler, memory_mb=2048,
                timeout_s=900.0, work_models=models))
        self.testbed.workflows.create_workflow(self.workflow_name, [
            {"name": "Split", "call": "gcp-video-split",
             "args": "$.data", "result": "data"},
            {"name": "DetectFaces", "for": {
                "value": "chunk", "in": "$.data.chunks",
                "steps": [
                    {"name": "Detect", "call": "gcp-video-detect",
                     "args": "$.chunk", "result": "data"},
                    {"name": "Strip", "assign": [
                        ["data", {"index": "$.data.index",
                                  "n_detections": "$.data.n_detections",
                                  "detections": []}]]},
                ],
                "result": "results"}},
            {"name": "Merge", "call": "gcp-video-merge",
             "args": {"run_id": "$.data.run_id",
                      "results": "$.results"},
             "result": "data"},
            {"name": "Done", "return": "$.data"},
        ])
        yield from _seed_video_blobs(self.testbed.gcp.blob, self.workload)

    def invoke(self, n_workers: Optional[int] = None) -> Generator:
        run_id = self.next_run_id()
        started = self.testbed.now
        record = yield from self.testbed.workflows.execute(
            self.workflow_name,
            {"run_id": run_id,
             "n_workers": n_workers or self.workload.n_workers})
        if record.status != "SUCCEEDED":
            raise RuntimeError(f"GCP-Flows video failed: {record.error}")
        return RunResult(
            deployment=self.name, started_at=started,
            finished_at=self.testbed.now, value=record.output)


def _seed_video_blobs(blob, workload: VideoWorkload) -> Generator:
    if not blob.exists(VIDEO_KEY):
        yield from blob.put(VIDEO_KEY, {"video": workload.video.seed},
                            size=workload.video.total_bytes)
    if not blob.exists(MODEL_KEY):
        yield from blob.put(MODEL_KEY, {"model": workload.model.name},
                            size=workload.model.payload_size)
    return None


def build_video_deployments(testbed: Testbed, n_workers: int = 20,
                            seed: int = 0) -> Dict[str, Deployment]:
    """The paper's four video variants (Fig 12/13/15) plus GCP-Flows.

    Variants whose platform the testbed did not build (``platforms=``
    restriction) are omitted.
    """
    workload = video_workload(n_workers, seed)
    deployments = {
        "AWS-Lambda": AWSLambdaVideo,
        "AWS-Step": AWSStepVideo,
        "Az-Func": AzureFuncVideo,
        "Az-Dorch": AzureDorchVideo,
        "GCP-Flows": GCPWorkflowsVideo,
    }
    return {name: cls(testbed, workload)
            for name, cls in deployments.items()
            if cls.platform in testbed.platform_names}
